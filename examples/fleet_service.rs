//! Fleet-scale serving: 100 concurrent trips multiplexed through the
//! multi-tenant session service.
//!
//! Every trip becomes one continuous-query session; the deterministic
//! event scheduler interleaves all their segment re-ranks, 15-minute
//! forecast-window rollovers and Dynamic-Cache adaptations in one total
//! order, batching each tick through the parallel executor. The run
//! prints the service-wide counters — including how often one session's
//! forecast work answered another session's read.
//!
//! ```text
//! cargo run --example fleet_service --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use ecocharge_session::{ServiceConfig, SessionService};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams};

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 150, seed: 5, ..Default::default() });
    let sims = SimProviders::new(5);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());

    let trips = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 100,
            min_trip_m: 6_000.0,
            max_trip_m: 16_000.0,
            seed: 12,
            ..Default::default()
        },
    );

    let mut service = SessionService::new(ServiceConfig::default());
    for trip in &trips {
        service.register(&ctx, trip).expect("admission");
    }
    println!(
        "registered {} sessions ({} scheduled events); serving…\n",
        service.active_sessions(),
        service.pending_events()
    );

    let started = std::time::Instant::now();
    service.run_to_completion(&ctx).expect("serving");
    let wall = started.elapsed().as_secs_f64();

    let stats = service.stats();
    println!("fleet served in {wall:.2}s wall-clock");
    println!("  sessions completed   {:>8}", stats.sessions_completed);
    println!("  sessions shed        {:>8}", stats.sessions_shed);
    println!("  events executed      {:>8}", stats.events_executed);
    println!("  events deferred      {:>8}", stats.events_deferred);
    println!("  tables emitted       {:>8}", stats.tables_emitted);
    println!("  heartbeats           {:>8}", stats.heartbeats);
    println!("  forecast misses      {:>8}", stats.forecast_misses);
    println!("  forecast self hits   {:>8}", stats.forecast_self_hits);
    println!("  forecast shared hits {:>8}", stats.forecast_shared_hits);
    println!("  shared-forecast rate {:>7.1}%", stats.shared_hit_rate() * 100.0);

    // One session's story, end to end.
    let sample = service.sessions().next().expect("sessions exist");
    println!(
        "\nsession {} ({:.1} km trip): {} solves, final top offer {:?}",
        sample.id,
        sample.trip.length_m() / 1_000.0,
        sample.solves.len(),
        sample.current_ranking().and_then(|r| r.first().copied()),
    );
    for solve in sample.solves.iter().take(5) {
        println!(
            "  {:>8} @ {} offset {:>6.0} m — top {:?}{}",
            solve.kind.label(),
            solve.time,
            solve.offset_m,
            solve.table.charger_ids().first().copied(),
            if solve.emitted { " (pushed)" } else { " (heartbeat)" }
        );
    }
}
