//! The after-school scenario from the paper's introduction: "parents
//! waiting in their idle EVs while their children attend after-school
//! activities" — a predictable two-hour idle window, perfect for
//! renewable hoarding.
//!
//! The parent drives a fixed weekly route; this example shows how the
//! Offering Table changes with the search radius `R` (the paper's Fig. 7
//! trade-off, seen from one driver's seat): a small `R` answers fast from
//! the neighbourhood, a large `R` finds sunnier chargers farther out.
//!
//! ```text
//! cargo run --example school_run --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use std::time::Instant;
use trajgen::{generate_trips, BrinkhoffParams};

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 400, seed: 33, ..Default::default() });
    let sims = SimProviders::new(33);
    let server = InfoServer::from_sims(sims.clone());

    // Wednesday 15:30 school pickup, then a 2 h activity window.
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 6_000.0,
            max_trip_m: 12_000.0,
            window_start: ec_types::SimTime::at(0, ec_types::DayOfWeek::Wed, 15, 30),
            window_secs: 1,
            seed: 5,
        },
    )
    .remove(0);
    println!(
        "school run: {:.1} km departing {}; idle window at destination: 2 h\n",
        trip.length_m() / 1_000.0,
        trip.depart
    );

    // Query from the destination's final approach (last segment).
    let offset = (trip.length_m() - 500.0).max(0.0);
    let now = trip.eta_at_offset(&graph, offset);

    for radius_km in [10.0, 25.0, 50.0] {
        let config =
            EcoChargeConfig { radius_km, k: 4, charge_window_h: 2.0, ..EcoChargeConfig::default() };
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, config);
        let mut method = EcoCharge::new();
        let started = Instant::now();
        match method.offering_table(&ctx, &trip, offset, now) {
            Ok(table) => {
                let ms = started.elapsed().as_secs_f64() * 1_000.0;
                let candidates = fleet
                    .within_radius(&trip.position_at_offset(&graph, offset), radius_km * 1_000.0)
                    .len();
                println!(
                    "R = {radius_km:>4.0} km  ({candidates:>3} candidates, {ms:.2} ms)  best offers:"
                );
                for e in &table.entries {
                    let b = fleet.get(e.charger);
                    println!(
                        "    {} {:?} @ {:?}: SC {} -> est. {:>5.1} clean kWh over 2 h",
                        e.charger,
                        b.kind,
                        b.archetype,
                        e.sc,
                        e.est_clean_kwh.value()
                    );
                }
            }
            Err(e) => println!("R = {radius_km:>4.0} km  -> {e}"),
        }
        println!();
    }
    println!("Larger R explores more candidates (slower) and can only improve the best offer —");
    println!("the monotone trade-off behind the paper's R-opt evaluation.");
}
