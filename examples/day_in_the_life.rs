//! A full simulated fleet day, closed loop: vehicles drive their
//! schedules, occupy chargers, harvest the solar the production series
//! actually delivers, and buy the rest from the grid. Three charging
//! policies compete on the identical world.
//!
//! This is the system-level view of the paper's premise — renewable
//! *hoarding* — with physical charger occupancy closing the loop the
//! open-loop evaluation cannot.
//!
//! ```text
//! cargo run --example day_in_the_life --release
//! ```

use fleetsim::{simulate_day, FleetSimConfig, Policy, ScheduleParams};
use roadnet::{urban_grid, UrbanGridParams};

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let config = FleetSimConfig {
        schedule: ScheduleParams { vehicles: 60, seed: 3, ..Default::default() },
        charger_count: 350,
        charge_target_kwh: 15.0,
        max_plug_h: 2.0,
        seed: 3,
        ..Default::default()
    };
    println!(
        "simulating a Tuesday: {} vehicles, {} chargers, {:.0}x{:.0} km city\n",
        config.schedule.vehicles,
        config.charger_count,
        graph.bounds().width_m() / 1_000.0,
        graph.bounds().height_m() / 1_000.0
    );

    println!(
        "{:<11} {:>7} {:>10} {:>11} {:>10} {:>9} {:>12} {:>8}",
        "policy", "stops", "conflicts", "clean kWh", "grid kWh", "clean %", "detour kWh", "skipped"
    );
    let mut outcomes = Vec::new();
    for mut policy in [Policy::ecocharge(), Policy::Nearest, Policy::random(99)] {
        let out = simulate_day(&graph, &mut policy, &config);
        println!(
            "{:<11} {:>7} {:>10} {:>11.1} {:>10.1} {:>8.1}% {:>12.1} {:>8}",
            out.policy,
            out.charge_stops,
            out.conflicts,
            out.clean_kwh,
            out.grid_kwh,
            out.clean_fraction() * 100.0,
            out.detour_kwh,
            out.skipped
        );
        outcomes.push(out);
    }

    let eco = &outcomes[0];
    let near = &outcomes[1];
    println!(
        "\nEcoCharge hoarded {:.0} kWh more solar than the nearest-charger habit \
         (+{:.0} percentage points of clean fraction),",
        eco.clean_kwh - near.clean_kwh,
        (eco.clean_fraction() - near.clean_fraction()) * 100.0
    );
    println!(
        "at a price of {:.0} extra detour kWh and {} charger conflicts — the trade-off",
        eco.detour_kwh - near.detour_kwh,
        eco.conflicts
    );
    println!("the paper's weighted Sustainability Score is designed to balance.");
}
