//! The paper's future-work scenario (§VII): "investigate the balance of
//! the produced traffic to chargers by the suggested Offering Tables, and
//! monitor the congestion to redirect drivers to alternative EV charging
//! stations."
//!
//! A burst of taxis goes idle in the same district within minutes. Plain
//! EcoCharge sends many of them to the same top charger; the
//! load-balanced variant watches outstanding recommendations and spreads
//! the fleet, trading a sliver of individual score for much lower queue
//! risk.
//!
//! ```text
//! cargo run --example fleet_balance --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{
    BalancedEcoCharge, EcoCharge, EcoChargeConfig, LoadTracker, QueryCtx, RankingMethod,
};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use std::collections::HashMap;
use trajgen::{generate_trips, BrinkhoffParams, Trip};

fn summarize(label: &str, tops: &[ec_types::ChargerId]) {
    let mut counts: HashMap<_, u32> = HashMap::new();
    for t in tops {
        *counts.entry(*t).or_insert(0) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    println!(
        "{label:<14} -> {} vehicles, {} distinct top offers, worst charger gets {} vehicles",
        tops.len(),
        counts.len(),
        max
    );
    let mut pairs: Vec<_> = counts.into_iter().collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (c, n) in pairs.iter().take(5) {
        println!("    {c}: {n} vehicle(s)");
    }
}

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 250, seed: 19, ..Default::default() });
    let sims = SimProviders::new(19);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());

    // 30 taxis going idle in one lunch-hour burst.
    let trips: Vec<Trip> = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 30,
            min_trip_m: 4_000.0,
            max_trip_m: 10_000.0,
            window_start: ec_types::SimTime::at(0, ec_types::DayOfWeek::Fri, 12, 0),
            window_secs: 15 * 60,
            seed: 3,
        },
    );
    println!("{} taxis going idle between 12:00 and 12:15 on Friday\n", trips.len());

    // Plain EcoCharge: everyone ranks independently.
    let mut plain = EcoCharge::new();
    let plain_tops: Vec<_> = trips
        .iter()
        .filter_map(|trip| {
            plain.reset_trip();
            plain
                .offering_table(&ctx, trip, 0.0, trip.depart)
                .ok()
                .and_then(|t| t.best().map(|e| e.charger))
        })
        .collect();
    summarize("EcoCharge", &plain_tops);
    println!();

    // Balanced: a shared load tracker counts tentative bookings.
    let loads = LoadTracker::new();
    let mut balanced = BalancedEcoCharge::new(loads.clone());
    balanced.auto_claim = true;
    let balanced_tops: Vec<_> = trips
        .iter()
        .filter_map(|trip| {
            balanced.reset_trip();
            balanced
                .offering_table(&ctx, trip, 0.0, trip.depart)
                .ok()
                .and_then(|t| t.best().map(|e| e.charger))
        })
        .collect();
    summarize("EcoCharge+LB", &balanced_tops);

    println!(
        "\noutstanding recommendations after the burst: {} (max on one charger: {})",
        loads.total(),
        loads.max_load()
    );
    println!("Balancing spreads the burst over more chargers at a small SC cost — the paper's");
    println!("future-work redirection realised via contention-discounted availability.");
}
