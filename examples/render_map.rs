//! Render the EcoCharge "app view" as an SVG map — the headless analog of
//! the paper's Folium/Leaflet client (§IV-B): road network, charger fleet,
//! the scheduled trip with its split points, and the current Offering
//! Table's chargers highlighted with their ranks.
//!
//! ```text
//! cargo run --example render_map --release          # writes ecocharge_map.svg
//! ```

use chargers::{synth_fleet, FleetParams};
use ec_types::{BoundingBox, GeoPoint};
use ecocharge_core::{CknnQuery, EcoCharge, EcoChargeConfig, QueryCtx};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, RoadClass, UrbanGridParams};
use std::fmt::Write as _;
use trajgen::{generate_trips, BrinkhoffParams};

const W: f64 = 1200.0;
const H: f64 = 900.0;

struct Projector {
    bb: BoundingBox,
}

impl Projector {
    fn px(&self, p: &GeoPoint) -> (f64, f64) {
        let x = (p.lon - self.bb.min.lon) / (self.bb.max.lon - self.bb.min.lon) * (W - 40.0) + 20.0;
        let y =
            H - 20.0 - (p.lat - self.bb.min.lat) / (self.bb.max.lat - self.bb.min.lat) * (H - 40.0);
        (x, y)
    }
}

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 250, seed: 31, ..Default::default() });
    let sims = SimProviders::new(31);
    let server = InfoServer::from_sims(sims.clone());
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 15_000.0,
            max_trip_m: 25_000.0,
            seed: 14,
            ..Default::default()
        },
    )
    .remove(0);
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let query = CknnQuery::new(&ctx, &trip).expect("trip is valid");
    let mut method = EcoCharge::new();
    let table = {
        use ecocharge_core::RankingMethod as _;
        method.offering_table(&ctx, &trip, 0.0, trip.depart).expect("offers exist")
    };

    let proj = Projector { bb: graph.bounds() };
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
    );
    let _ = writeln!(svg, r##"<rect width="{W}" height="{H}" fill="#fbfaf7"/>"##);

    // Roads (arterials heavier).
    for v in 0..graph.num_nodes() {
        let v = ec_types::NodeId::from_index(v);
        let (x1, y1) = proj.px(&graph.point(v));
        for (e, u) in graph.out_edges(v) {
            if u.0 < v.0 {
                continue; // draw each two-way street once
            }
            let (x2, y2) = proj.px(&graph.point(u));
            let (color, width) = match graph.edge_class(e) {
                RoadClass::Motorway => ("#9a9a9a", 2.2),
                RoadClass::Primary => ("#b9b4a6", 1.6),
                _ => ("#ddd8cc", 0.8),
            };
            let _ = writeln!(
                svg,
                r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="{width}"/>"#
            );
        }
    }

    // Charger fleet (small dots, archetype-free grey).
    for c in fleet.iter() {
        let (x, y) = proj.px(&c.loc);
        let _ = writeln!(svg, r##"<circle cx="{x:.1}" cy="{y:.1}" r="2.5" fill="#8aa0b4"/>"##);
    }

    // The scheduled trip.
    let mut path = String::new();
    for (i, n) in trip.route.nodes().iter().enumerate() {
        let (x, y) = proj.px(&graph.point(*n));
        let _ = write!(path, "{}{x:.1},{y:.1} ", if i == 0 { "M" } else { "L" });
    }
    let _ = writeln!(
        svg,
        r##"<path d="{path}" fill="none" stroke="#2b6cb0" stroke-width="3.5" stroke-linecap="round"/>"##
    );

    // Split points.
    for sp in query.split_points() {
        let (x, y) = proj.px(&sp.position);
        let _ = writeln!(
            svg,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="5" fill="#fff" stroke="#2b6cb0" stroke-width="2"/>"##
        );
    }

    // Offering Table chargers with rank badges.
    for (rank, entry) in table.entries.iter().enumerate() {
        let c = fleet.get(entry.charger);
        let (x, y) = proj.px(&c.loc);
        let _ = writeln!(
            svg,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="11" fill="#38a169" stroke="#1c4532" stroke-width="2"/>
<text x="{x:.1}" y="{:.1}" font-family="sans-serif" font-size="12" font-weight="bold" fill="#fff" text-anchor="middle">{}</text>"##,
            y + 4.0,
            rank + 1
        );
    }

    // Legend.
    let _ = writeln!(
        svg,
        r##"<text x="24" y="32" font-family="sans-serif" font-size="18" fill="#333">EcoCharge Offering Table — trip {:.1} km, {} chargers, k = {}</text>"##,
        trip.length_m() / 1_000.0,
        fleet.len(),
        table.len()
    );
    let _ = writeln!(svg, "</svg>");

    let out = "ecocharge_map.svg";
    std::fs::write(out, &svg).expect("writable working directory");
    println!("wrote {out} ({} bytes)", svg.len());
    println!("top offer: {} (SC {})", table.best().unwrap().charger, table.best().unwrap().sc);
}
