//! A walk-through of Dynamic Caching (the paper's Fig. 5b): as the
//! vehicle advances along its scheduled trip, the first Offering Table
//! `O₁` is computed in full; while the vehicle stays within range `Q` of
//! the last full solve, subsequent tables are *adapted* — only the
//! derouting component is refreshed — and a full recomputation happens
//! only after the vehicle has moved far enough.
//!
//! The example prints, for every split point, whether the table was
//! adapted or recomputed and what it cost, then contrasts the end-to-end
//! timings with caching disabled (`Q = 0`).
//!
//! ```text
//! cargo run --example dynamic_caching --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{CknnQuery, EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use std::time::Instant;
use trajgen::{generate_trips, BrinkhoffParams, Trip};

fn drive(ctx: &QueryCtx<'_>, trip: &Trip, label: &str) -> (f64, u64, u64) {
    let query = CknnQuery::new(ctx, trip).expect("trip is non-degenerate");
    let mut method = EcoCharge::new();
    println!("{label}:");
    let mut total_ms = 0.0;
    for sp in query.split_points() {
        let started = Instant::now();
        let table = method
            .offering_table(ctx, trip, sp.offset_m, sp.eta)
            .expect("candidates exist at R=50km");
        let ms = started.elapsed().as_secs_f64() * 1_000.0;
        total_ms += ms;
        println!(
            "  {} @ {:>5.1} km: {:>9} in {:>7.3} ms, best {} (SC {})",
            sp.segment,
            sp.offset_m / 1_000.0,
            if table.adapted { "adapted" } else { "recomputed" },
            ms,
            table.best().map(|e| e.charger.to_string()).unwrap_or_default(),
            table.best().map(|e| e.sc.to_string()).unwrap_or_default(),
        );
    }
    let (hits, misses) = method.cache_stats();
    println!("  -> total {total_ms:.2} ms, {hits} adaptations, {misses} full solves\n");
    (total_ms, hits, misses)
}

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 500, seed: 11, ..Default::default() });
    let sims = SimProviders::new(11);
    let server = InfoServer::from_sims(sims.clone());
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 20_000.0,
            max_trip_m: 35_000.0,
            seed: 2,
            ..Default::default()
        },
    )
    .remove(0);
    println!("trip: {:.1} km, {} chargers in the region\n", trip.length_m() / 1_000.0, fleet.len());

    let cached_cfg = EcoChargeConfig::default(); // Q = 5 km
    let uncached_cfg = EcoChargeConfig { range_km: 0.0, ..EcoChargeConfig::default() };

    let ctx_cached = QueryCtx::new(&graph, &fleet, &server, &sims, cached_cfg);
    let (cached_ms, hits, _) = drive(&ctx_cached, &trip, "with Dynamic Caching (Q = 5 km)");

    let ctx_uncached = QueryCtx::new(&graph, &fleet, &server, &sims, uncached_cfg);
    let (uncached_ms, _, _) = drive(&ctx_uncached, &trip, "without caching (Q = 0)");

    assert!(hits > 0, "a 20 km trip at Q=5 km must adapt at least once");
    println!(
        "caching saved {:.1}% of the per-trip ranking time ({:.2} ms -> {:.2} ms)",
        (1.0 - cached_ms / uncached_ms) * 100.0,
        uncached_ms,
        cached_ms
    );
}
