//! Degraded-mode ranking: what the driver sees when feeds fail.
//!
//! A drive under a chaos plan — seeded random failures, a hard weather
//! blackout, injected latency — with the full resilience stack enabled:
//! in-server bounded retries, a per-feed circuit breaker, and the
//! stale-with-widened-uncertainty last-known-good tier. The app keeps
//! receiving ranked tables the whole way; rows computed from degraded
//! data say so, and their intervals are honestly wider.
//!
//! ```text
//! cargo run --example degraded_mode --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ec_types::SimDuration;
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use eis::{
    ChaosConfig, ChaosProvider, FeedKind, InfoServer, Mode, OutageWindow, ResiliencePolicy,
    SimProviders,
};
use roadnet::{urban_grid, UrbanGridParams};
use std::sync::Arc;
use trajgen::{generate_trips, BrinkhoffParams};

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 400, seed: 13, ..Default::default() });
    let sims = SimProviders::new(13);
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 18_000.0,
            max_trip_m: 28_000.0,
            seed: 6,
            ..Default::default()
        },
    )
    .remove(0);

    // The fault plan: 5% random failures on every feed plus a total
    // weather blackout from minute 10 to minute 40 of the drive.
    let blackout_from = trip.depart + SimDuration::from_mins(10);
    let blackout_until = trip.depart + SimDuration::from_mins(40);
    let chaos = Arc::new(ChaosProvider::new(
        sims.clone(),
        ChaosConfig {
            seed: 4242,
            failure_rate: 0.05,
            target: None,
            outages: vec![OutageWindow {
                feed: Some(FeedKind::Weather),
                from: blackout_from,
                until: blackout_until,
            }],
            mean_latency_ms: 15.0,
        },
    ));

    let server = InfoServer::new(chaos.clone(), chaos.clone(), chaos.clone())
        .with_stale_serving()
        .with_resilience(ResiliencePolicy::default(), 13);
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());

    println!(
        "driving {:.1} km; weather feed black from +10 min to +40 min\n",
        trip.length_m() / 1_000.0
    );

    let mut method = EcoCharge::new();
    let mut offset = 0.0;
    while offset < trip.length_m() {
        let now = trip.eta_at_offset(&graph, offset);
        match method.offering_table(&ctx, &trip, offset, now) {
            Ok(table) => {
                let badge =
                    table.best().map(|e| e.provenance.worst().to_string()).unwrap_or_default();
                println!(
                    "  @ {:>5.1} km ({})  top {}  L {}  data: {}{}",
                    offset / 1_000.0,
                    now,
                    table.best().map(|e| e.charger.to_string()).unwrap_or_default(),
                    table.best().map(|e| e.l.to_string()).unwrap_or_default(),
                    badge,
                    if table.is_degraded() { "  [degraded]" } else { "" },
                );
            }
            Err(e) => println!("  @ {:>5.1} km  no table: {e}", offset / 1_000.0),
        }
        offset += 3_000.0;
    }

    println!("\nresilience layer accounting:");
    for feed in FeedKind::ALL {
        if let Some(g) = server.guard_stats(feed) {
            println!(
                "  {:>12}: {} calls, {} retries, {} failures, {} shed, breaker {:?}",
                feed.name(),
                g.calls,
                g.retries,
                g.failures,
                g.short_circuits,
                server.breaker_state(feed).expect("resilience enabled"),
            );
        }
    }
    println!(
        "  stale-served entries: {}, virtual backoff {:.1} ms, injected latency {:.1} ms",
        server.stats().stale_served(),
        server.virtual_backoff_ms(),
        chaos.injected_latency_ms(),
    );

    // The mode cost model with the fault overhead folded in: degraded
    // fetches pay the injected latency + backoff only when data is cold.
    let overhead_ms = if chaos.calls() > 0 {
        chaos.injected_latency_ms() / chaos.calls() as f64
            + server.virtual_backoff_ms() / chaos.calls() as f64
    } else {
        0.0
    };
    println!("\nmodelled refresh latency with per-fetch fault overhead {overhead_ms:.2} ms:");
    for mode in Mode::ALL {
        let costs = mode.costs();
        println!(
            "  {:?}: cold {:.1} ms / warm {:.1} ms",
            mode,
            costs.degraded_refresh_latency_ms(5.0, false, overhead_ms),
            costs.degraded_refresh_latency_ms(5.0, true, overhead_ms)
        );
    }
}
