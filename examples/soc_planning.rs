//! Battery-aware planning: the same trip seen by three very different
//! vehicles.
//!
//! The paper's worked example drives "an 11kW AC charger car" (§III-C) —
//! vehicle-side limits matter. This example attaches three vehicle models
//! to the same query: a comfortable city EV, the same car nearly empty
//! (where battery feasibility prunes the candidate pool), and a
//! long-range EV whose 22 kW AC / 250 kW DC acceptance makes fast plazas
//! far more attractive.
//!
//! ```text
//! cargo run --example soc_planning --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ec_types::VehicleId;
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod, Vehicle};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams};

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 350, seed: 23, ..Default::default() });
    let sims = SimProviders::new(23);
    let server = InfoServer::from_sims(sims.clone());
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 10_000.0,
            max_trip_m: 18_000.0,
            seed: 8,
            ..Default::default()
        },
    )
    .remove(0);
    println!("trip: {:.1} km departing {}\n", trip.length_m() / 1_000.0, trip.depart);

    let scenarios: [(&str, Option<Vehicle>); 4] = [
        ("no vehicle model (paper setting)", None),
        ("city EV @ 70% SoC", Some(Vehicle::city_ev(VehicleId(1), 0.7))),
        ("city EV @ 13% SoC (range anxiety)", Some(Vehicle::city_ev(VehicleId(1), 0.13))),
        ("long-range EV @ 70% SoC", Some(Vehicle::long_range(VehicleId(2), 0.7))),
    ];

    for (label, vehicle) in scenarios {
        let config = EcoChargeConfig { vehicle, ..EcoChargeConfig::default() };
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, config);
        let mut method = EcoCharge::new();
        println!("-- {label} --");
        match method.offering_table(&ctx, &trip, 0.0, trip.depart) {
            Ok(table) => {
                if let Some(v) = vehicle {
                    println!(
                        "   usable energy {:.1} kWh, headroom {:.1} kWh",
                        v.usable_kwh(),
                        v.headroom_kwh()
                    );
                }
                for e in &table.entries {
                    let b = fleet.get(e.charger);
                    let pos = trip.position_at_offset(&graph, 0.0);
                    println!(
                        "   {} {:?} at {:>4.1} km: SC {} -> {:>5.1} clean kWh/h",
                        e.charger,
                        b.kind,
                        pos.fast_dist_m(&b.loc) / 1_000.0,
                        e.sc,
                        e.est_clean_kwh.value(),
                    );
                }
            }
            Err(e) => println!("   {e}"),
        }
        println!();
    }
    println!("Feasibility gating shrinks the low-SoC table to nearby chargers; acceptance-rate");
    println!("caps reshape the clean-energy estimates between the 11 kW and 22 kW AC vehicles.");
}
