//! Mode 2 deployment: EcoCharge running centrally behind a request bus
//! (§IV: "Mode 2, where EIS takes over EcoCharge calculations centrally").
//!
//! A server thread owns the world (network, fleet, information server,
//! warm caches); vehicle clients send `(trip, offset, now)` requests over
//! a channel and receive finished Offering Tables. The example verifies
//! that all three modes return identical rankings and compares their
//! modelled end-to-end refresh latency.
//!
//! ```text
//! cargo run --example server_mode --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ec_types::{ChargerId, SimTime};
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use eis::rpc::ServiceBus;
use eis::{InfoServer, Mode, SimProviders};
use roadnet::{urban_grid, DetourCh, UrbanGridParams};
use std::sync::Arc;
use std::time::Instant;
use trajgen::{generate_trips, BrinkhoffParams, Trip};

/// What the vehicle sends: where it is on which trip, and when.
struct TableRequest {
    trip: Arc<Trip>,
    offset_m: f64,
    now: SimTime,
}

/// What the server returns: the ranked charger ids and the pure compute
/// time the ranking took server-side.
struct TableResponse {
    ranking: Vec<ChargerId>,
    compute_ms: f64,
}

fn main() {
    // The world lives inside the server thread.
    let (client, _bus) = ServiceBus::spawn({
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet =
            synth_fleet(&graph, &FleetParams { count: 400, seed: 13, ..Default::default() });
        let sims = SimProviders::new(13);
        let server = InfoServer::from_sims(sims.clone());
        // Mode 2 runs the CH detour backend: pay the preprocessing once at
        // server start, amortise it over every vehicle served.
        let config = EcoChargeConfig {
            detour_backend: Mode::Server.costs().detour_backend,
            ..EcoChargeConfig::default()
        };
        let build_started = Instant::now();
        let detour_ch = Arc::new(DetourCh::build(&graph, 4));
        println!(
            "server start: CH preprocessing took {:.1} ms ({} shortcut arcs over {} nodes)",
            build_started.elapsed().as_secs_f64() * 1_000.0,
            detour_ch.time.num_shortcuts() + detour_ch.energy.num_shortcuts(),
            graph.num_nodes()
        );
        let mut method = EcoCharge::new();
        move |req: TableRequest| {
            let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, config);
            ctx.adopt_detour_ch(Arc::clone(&detour_ch));
            let started = Instant::now();
            let table = method
                .offering_table(&ctx, &req.trip, req.offset_m, req.now)
                .expect("candidates exist");
            TableResponse {
                ranking: table.charger_ids(),
                compute_ms: started.elapsed().as_secs_f64() * 1_000.0,
            }
        }
    });

    // The vehicle side: same network generated from the same seed (the
    // EIS hands out road-network data, §IV-B).
    let graph = urban_grid(&UrbanGridParams::default());
    let trip = Arc::new(
        generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 1,
                min_trip_m: 15_000.0,
                max_trip_m: 25_000.0,
                seed: 6,
                ..Default::default()
            },
        )
        .remove(0),
    );

    println!("driving a {:.1} km trip against the Mode-2 server:\n", trip.length_m() / 1_000.0);
    let mut compute_ms_total = 0.0;
    let mut refreshes = 0usize;
    let mut offset = 0.0;
    while offset < trip.length_m() {
        let now = trip.eta_at_offset(&graph, offset);
        let resp = client
            .call(TableRequest { trip: trip.clone(), offset_m: offset, now })
            .expect("server thread is alive");
        println!(
            "  @ {:>5.1} km -> top offer {} (server compute {:.3} ms)",
            offset / 1_000.0,
            resp.ranking.first().map(ChargerId::to_string).unwrap_or_default(),
            resp.compute_ms
        );
        compute_ms_total += resp.compute_ms;
        refreshes += 1;
        offset += 4_000.0;
    }

    // The same deployment scaled out: `spawn_pool` puts N ranking workers
    // behind one request bus, each owning its private method state while
    // sharing the read-only world. A fleet of vehicles asking at once is
    // served concurrently — and because the engine is deterministic, every
    // vehicle gets the exact table the single-worker server would return.
    let world = Arc::new({
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet =
            synth_fleet(&graph, &FleetParams { count: 400, seed: 13, ..Default::default() });
        let sims = SimProviders::new(13);
        let server = InfoServer::from_sims(sims.clone());
        // One CH index shared by all pool workers (each worker keeps its
        // own query scratch and bucket cache inside its SearchPool).
        let detour_ch = Arc::new(DetourCh::build(&graph, 4));
        (graph, fleet, sims, server, detour_ch)
    });
    let (pool_client, pool_bus) = ServiceBus::spawn_pool(4, |_worker| {
        let world = Arc::clone(&world);
        let mut method = EcoCharge::new();
        move |req: TableRequest| {
            let (graph, fleet, sims, server, detour_ch) = &*world;
            let config = EcoChargeConfig {
                detour_backend: Mode::Server.costs().detour_backend,
                ..EcoChargeConfig::default()
            };
            let ctx = QueryCtx::new(graph, fleet, server, sims, config);
            ctx.adopt_detour_ch(Arc::clone(detour_ch));
            let started = Instant::now();
            method.reset_trip();
            let table =
                method.offering_table(&ctx, &req.trip, req.offset_m, req.now).expect("candidates");
            TableResponse {
                ranking: table.charger_ids(),
                compute_ms: started.elapsed().as_secs_f64() * 1_000.0,
            }
        }
    });
    let now = trip.eta_at_offset(&graph, 0.0);
    let fleet_answers: Vec<Vec<ChargerId>> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                let c = pool_client.clone();
                let trip = trip.clone();
                scope.spawn(move || c.call(TableRequest { trip, offset_m: 0.0, now }))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client thread").expect("pool is alive").ranking)
            .collect()
    });
    assert!(fleet_answers.windows(2).all(|w| w[0] == w[1]), "pool answers must agree");
    println!(
        "\n8 concurrent vehicles served by a 4-worker pool; all received the identical top offer {}",
        fleet_answers[0].first().map(ChargerId::to_string).unwrap_or_default()
    );
    drop(pool_client);
    pool_bus.join();

    // The mode cost model: same compute, different communication shape —
    // and `with_threads` models the pool dividing the compute term.
    let mean_compute = compute_ms_total / refreshes as f64;
    println!("\nmean server-side ranking time: {mean_compute:.3} ms");
    println!("modelled end-to-end refresh latency per mode (cold / warm provider data):");
    for mode in Mode::ALL {
        let costs = mode.costs();
        println!(
            "  {:?}: {:.1} ms / {:.1} ms",
            mode,
            costs.refresh_latency_ms(mean_compute, false),
            costs.refresh_latency_ms(mean_compute, true)
        );
    }
    let pooled = Mode::Server.costs().with_threads(4);
    println!(
        "  Server with a 4-worker pool: {:.1} ms warm (compute term / 4)",
        pooled.refresh_latency_ms(mean_compute, true)
    );
    println!("\nAll modes rank identically — they differ only in where the computation and the data live.");
}
