//! The electric-taxi scenario from the paper's introduction: "electric
//! taxis (e.g., Lyft, Uber, Bolt) during idle periods are waiting to be
//! called or booked online" — idle time that renewable hoarding can use.
//!
//! A taxi finishing a fare compares three charging strategies for its
//! idle hour: the nearest charger (pure derouting), the greenest charger
//! (pure sustainable level), and EcoCharge's balanced default. The run
//! prints what each strategy would actually harvest, using the simulators'
//! ground truth as the referee.
//!
//! ```text
//! cargo run --example taxi_idle --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{EcoCharge, EcoChargeConfig, Oracle, QueryCtx, RankingMethod, Weights};
use eis::{InfoServer, SimProviders};
use roadnet::{ring_radial, RingRadialParams};
use trajgen::{generate_trips, BrinkhoffParams};

fn main() {
    // A ring-radial city (Beijing-like) with a dense taxi-serving fleet.
    let graph = ring_radial(&RingRadialParams { rings: 8, spokes: 32, ..Default::default() });
    let fleet = synth_fleet(&graph, &FleetParams { count: 150, seed: 21, ..Default::default() });
    let sims = SimProviders::new(21);
    let server = InfoServer::from_sims(sims.clone());

    // The taxi's repositioning trip after dropping a passenger.
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 8_000.0,
            max_trip_m: 16_000.0,
            seed: 4,
            ..Default::default()
        },
    )
    .remove(0);
    let now = trip.depart;
    println!("taxi repositioning {:.1} km at {now}; idle window: 1 h\n", trip.length_m() / 1_000.0);

    let strategies: [(&str, Weights); 3] = [
        ("nearest (ODC)", Weights::odc()),
        ("greenest (OSC)", Weights::osc()),
        ("EcoCharge (AWE)", Weights::awe()),
    ];

    // Referee everything with the equal-weight ground truth.
    let mut referee = Oracle::new(Weights::awe());
    let node = trip.route.nearest_node_at(0.0);

    for (label, weights) in strategies {
        let config = EcoChargeConfig { weights, k: 3, ..EcoChargeConfig::default() };
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, config);
        let rejoin = trip.route.nearest_node_at(4_000.0_f64.min(trip.length_m()));
        let mut method = EcoCharge::new();
        let table = method.offering_table(&ctx, &trip, 0.0, now).expect("candidates exist");
        let set = table.charger_ids();
        let true_sc = referee
            .true_sc_of_set(&ctx, &set, node, rejoin, now)
            .expect("offered chargers are reachable");
        let (l, a, dc) = referee
            .attained_objectives(&ctx, &set, node, rejoin, now)
            .expect("offered chargers are reachable");
        println!("strategy {label:<16} -> true SC {true_sc:.3}  (clean level {l:.2}, availability {a:.2}, derouting complement {dc:.2})");
        for e in &table.entries {
            let b = fleet.get(e.charger);
            println!(
                "    {} {:?} {:?}  est. clean {:>5.1} kWh  eta {}",
                e.charger,
                b.kind,
                b.archetype,
                e.est_clean_kwh.value(),
                e.eta
            );
        }
        println!();
    }

    println!("The balanced AWE strategy should dominate or match both single-objective strategies on true SC —");
    println!("the same interplay the paper's Fig. 9 ablation quantifies.");
}
