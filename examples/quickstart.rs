//! Quickstart: build a small world, schedule a trip, and print the
//! Offering Table EcoCharge produces for every path segment.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{CknnQuery, EcoCharge, EcoChargeConfig, QueryCtx};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams};

fn main() {
    // 1. A mid-size city road network (Oldenburg-like, ~1 300 nodes).
    let graph = urban_grid(&UrbanGridParams::default());
    println!(
        "network: {} nodes, {} directed edges, {:.0}×{:.0} km",
        graph.num_nodes(),
        graph.num_edges(),
        graph.bounds().width_m() / 1_000.0,
        graph.bounds().height_m() / 1_000.0
    );

    // 2. A PlugShare-style charger fleet with attached solar capacity.
    let fleet = synth_fleet(&graph, &FleetParams { count: 300, seed: 7, ..Default::default() });
    println!(
        "fleet:   {} chargers (max clean power {:.0} kW)",
        fleet.len(),
        fleet.max_clean_power_kw()
    );

    // 3. The estimated-component providers behind the information server.
    let sims = SimProviders::new(7);
    let server = InfoServer::from_sims(sims.clone());

    // 4. A scheduled trip (Tuesday morning, 12–20 km across town).
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 12_000.0,
            max_trip_m: 20_000.0,
            ..Default::default()
        },
    )
    .remove(0);
    println!(
        "trip:    {:.1} km departing {} (free-flow {})\n",
        trip.length_m() / 1_000.0,
        trip.depart,
        trip.duration(&graph)
    );

    // 5. Run the continuous query: one Offering Table per ~4 km segment.
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let query = CknnQuery::new(&ctx, &trip).expect("trip is non-degenerate");
    let mut method = EcoCharge::new();
    let results = query.run(&ctx, &trip, &mut method).expect("providers are simulated");

    for (sp, table) in &results {
        println!("-- segment {} ({}) --", sp.segment, sp.eta);
        print!("{}", table.render());
        println!();
    }
    let (hits, misses) = method.cache_stats();
    println!("dynamic cache: {hits} adaptations, {misses} full recomputations");
    let (cache_hits, cache_misses) = server.cache_stats();
    println!("info server:   {cache_hits} cache hits / {cache_misses} misses across providers");
}
