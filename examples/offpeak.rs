//! Smart-grid awareness: combining the Offering Table with time-of-use
//! tariffs and grid carbon intensity (the paper's §VII future work).
//!
//! The driver wants 20 kWh into the pack. For each offered charger the
//! example splits that target into the *clean* share (solar
//! self-consumption over the idle window — free and zero-carbon) and the
//! *grid top-up* (bought at the tariff in force at arrival, at the grid's
//! forecast carbon intensity), then ranks offers by total cost and by
//! total CO₂ — showing how the sustainable choice and the cheap choice
//! relate across the day.
//!
//! ```text
//! cargo run --example offpeak --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ec_models::TariffModel;
use ec_types::{DayOfWeek, SimTime};
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams};

const TARGET_KWH: f64 = 20.0;

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 300, seed: 29, ..Default::default() });
    let sims = SimProviders::new(29);
    let server = InfoServer::from_sims(sims.clone());
    let tariff = TariffModel::new(29);

    for (label, hour) in [("midday idle (solar valley)", 12), ("evening idle (grid peak)", 18)] {
        let trip = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 1,
                min_trip_m: 8_000.0,
                max_trip_m: 14_000.0,
                window_start: SimTime::at(0, DayOfWeek::Thu, hour, 0),
                window_secs: 1,
                seed: 12,
            },
        )
        .remove(0);
        let config = EcoChargeConfig { charge_window_h: 2.0, ..EcoChargeConfig::default() };
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, config);
        let mut method = EcoCharge::new();
        let table = method.offering_table(&ctx, &trip, 0.0, trip.depart).expect("offers exist");

        println!("== {label} (depart {}) ==", trip.depart);
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>12} {:>12}",
            "rank", "charger", "clean kWh", "grid kWh", "cost (EUR)", "CO2 (kg)"
        );
        for (i, e) in table.entries.iter().enumerate() {
            let clean = e.est_clean_kwh.value().min(TARGET_KWH);
            let grid = TARGET_KWH - clean;
            let cost = tariff.import_cost_eur(grid, e.eta);
            let co2_kg =
                grid * tariff.forecast_carbon_intensity(trip.depart, e.eta).mid() / 1_000.0;
            println!(
                "{:>6} {:>10} {:>10.1} {:>10.1} {:>12.2} {:>12.2}",
                i + 1,
                e.charger.to_string(),
                clean,
                grid,
                cost,
                co2_kg
            );
        }
        println!(
            "   tariff at arrival: {:.2} EUR/kWh; grid intensity ~{:.0} gCO2/kWh\n",
            tariff.price_eur_per_kwh(trip.depart),
            tariff.actual_carbon_intensity(trip.depart)
        );
    }
    println!("At midday the top sustainable offers are also nearly free of grid cost; in the");
    println!("evening every kWh not hoarded from solar is bought at the peak rate and the");
    println!("dirtiest grid mix of the day — the quantitative case for renewable hoarding.");
}
