//! The paper's Figure 2, in the terminal: a charger's "popular times"
//! busy histogram, plus the availability forecast EcoCharge derives from
//! it for a given ETA.
//!
//! ```text
//! cargo run --example popular_times --release
//! ```

use chargers::{synth_fleet, FleetParams};
use ec_models::SiteArchetype;
use ec_types::{DayOfWeek, SimDuration, SimTime};
use eis::SimProviders;
use roadnet::{urban_grid, UrbanGridParams};

fn bar(v: f64, width: usize) -> String {
    let filled = (v.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "█".repeat(filled), "·".repeat(width - filled))
}

fn main() {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 200, seed: 17, ..Default::default() });
    let sims = SimProviders::new(17);

    // One charger per archetype, like browsing stations in the app.
    for archetype in SiteArchetype::ALL {
        let Some(charger) = fleet.iter().find(|c| c.archetype == archetype) else {
            continue;
        };
        println!("\n{} — {:?} ({:?})", charger.id, charger.archetype, charger.kind);
        println!("  typical Tuesday (busyness by hour):");
        for hour in 6..23 {
            let t = SimTime::at(0, DayOfWeek::Tue, hour, 30);
            let busy = sims.availability.busy_fraction(charger.entity_seed(), charger.archetype, t);
            println!("    {hour:>2}:00 {} {:>4.0}%", bar(busy, 30), busy * 100.0);
        }
        // The interval EcoCharge actually consumes: availability at an
        // ETA 45 minutes out.
        let now = SimTime::at(0, DayOfWeek::Tue, 16, 0);
        let eta = now + SimDuration::from_mins(45);
        let forecast = sims.availability.forecast_availability(
            charger.entity_seed(),
            charger.archetype,
            now,
            eta,
        );
        println!("  availability forecast for a {} arrival (issued 16:00): {}", eta, forecast);
    }
    println!("\nEach archetype carries its own weekly rhythm (the paper's Fig. 2 source data);");
    println!("per-charger phase jitter keeps stations of one archetype from being clones.");
}
