//! # EcoCharge — facade crate
//!
//! Re-exports the whole workspace under one roof. See the individual
//! crates for detail; `ecocharge_core` holds the paper's contribution.

pub use chargers;
pub use ec_models;
pub use ec_types;
pub use ecocharge_core as core;
pub use ecocharge_outcomes as outcomes;
pub use ecocharge_session as session;
pub use eis;
pub use fleetsim;
pub use roadnet;
pub use spatial_index;
pub use trajgen;
