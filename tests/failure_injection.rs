//! Resilience: what happens when a provider feed fails mid-drive.
//!
//! The EIS caches give natural resilience — a failed upstream call only
//! hurts when the needed entry is cold. These tests wire
//! [`FlakyProvider`] failure injection behind the information server and
//! check that (a) errors surface as typed `ProviderUnavailable`, (b)
//! cached entries keep answering through outages, and (c) the system
//! recovers after the outage.

use chargers::{synth_fleet, FleetParams};
use ec_types::{EcError, GeoPoint, SimDuration};
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use eis::{FlakyProvider, InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use std::sync::Arc;
use trajgen::{generate_trips, BrinkhoffParams, Trip};

fn world() -> (roadnet::RoadGraph, chargers::ChargerFleet, SimProviders, Vec<Trip>) {
    let graph = urban_grid(&UrbanGridParams { cols: 14, rows: 14, ..Default::default() });
    let fleet = synth_fleet(&graph, &FleetParams { count: 60, seed: 9, ..Default::default() });
    let sims = SimProviders::new(9);
    let trips = generate_trips(
        &graph,
        &BrinkhoffParams { trips: 1, min_trip_m: 8_000.0, max_trip_m: 12_000.0, seed: 9, ..Default::default() },
    );
    (graph, fleet, sims, trips)
}

#[test]
fn hard_weather_outage_surfaces_typed_error() {
    let (graph, fleet, sims, trips) = world();
    // Weather fails on every call; availability and traffic stay healthy.
    let weather = Arc::new(FlakyProvider::new(sims.clone(), 1, "weather"));
    let healthy = Arc::new(sims.clone());
    let server = InfoServer::new(weather, healthy.clone(), healthy);
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let mut method = EcoCharge::new();
    let err = method.offering_table(&ctx, &trips[0], 0.0, trips[0].depart).unwrap_err();
    assert_eq!(err, EcError::ProviderUnavailable("weather".to_string()));
}

#[test]
fn intermittent_failures_heal_through_retries_and_cache() {
    let (graph, fleet, sims, trips) = world();
    // Every 7th upstream call fails.
    let flaky = Arc::new(FlakyProvider::new(sims.clone(), 7, "bundle"));
    let server = InfoServer::new(flaky.clone(), flaky.clone(), flaky.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let mut method = EcoCharge::new();
    let trip = &trips[0];

    // Retry loop, as a client app would: failed fetches are not cached,
    // but every *successful* fetch before the failure is — so each retry
    // makes monotone progress (~7 new entries per attempt here) until a
    // pass completes without touching a failing call.
    let mut ok = 0;
    for attempt in 0..40 {
        match method.offering_table(&ctx, trip, 0.0, trip.depart) {
            Ok(table) => {
                assert!(!table.is_empty());
                ok += 1;
                break;
            }
            Err(EcError::ProviderUnavailable(_)) => continue,
            Err(other) => panic!("unexpected error on attempt {attempt}: {other}"),
        }
    }
    assert_eq!(ok, 1, "a few retries must eventually fill the caches");

    // Once warm, the same query point answers entirely from cache: no new
    // upstream calls, no exposure to the flakiness.
    let calls_before = flaky.calls();
    let again = method.offering_table(&ctx, trip, 100.0, trip.depart + SimDuration::from_mins(1));
    assert!(again.is_ok(), "warm caches must mask the flaky provider");
    let new_calls = flaky.calls() - calls_before;
    assert!(
        new_calls <= 2,
        "adaptation path should be nearly cache-complete, made {new_calls} upstream calls"
    );
}

#[test]
fn degenerate_inputs_are_typed_errors() {
    let (graph, fleet, sims, _trips) = world();
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());

    // A trip of one node cannot be built at all.
    let one_node = roadnet::Route::from_nodes(&graph, vec![ec_types::NodeId(0)]);
    assert!(matches!(one_node, Err(EcError::DegenerateTrip(_))));

    // An empty fleet yields NoCandidates for any query.
    let empty_fleet = chargers::ChargerFleet::new(Vec::new());
    let ctx2 = QueryCtx::new(&graph, &empty_fleet, &server, &sims, EcoChargeConfig::default());
    let trips = generate_trips(
        &graph,
        &BrinkhoffParams { trips: 1, min_trip_m: 8_000.0, max_trip_m: 12_000.0, seed: 4, ..Default::default() },
    );
    let mut method = EcoCharge::new();
    assert!(matches!(
        method.offering_table(&ctx2, &trips[0], 0.0, trips[0].depart),
        Err(EcError::NoCandidates)
    ));
    let _ = ctx; // keep the healthy context alive for symmetry
}

#[test]
fn stale_cache_expires_even_when_provider_is_down() {
    let (graph, fleet, sims, trips) = world();
    let trip = &trips[0];
    // Healthy warm-up, then total outage.
    let toggle = Arc::new(FlakyProvider::new(sims.clone(), 0, "bundle"));
    let server = InfoServer::new(toggle.clone(), toggle.clone(), toggle.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let mut method = EcoCharge::new();
    assert!(method.offering_table(&ctx, trip, 0.0, trip.depart).is_ok());

    // 20 minutes later (past the 15-minute forecast TTL *and* past the
    // dynamic-cache gate only if we move), a failing provider means the
    // refreshed forecasts cannot be served.
    let down = Arc::new(FlakyProvider::new(sims.clone(), 1, "bundle"));
    let server_down = InfoServer::new(down.clone(), down.clone(), down);
    let ctx_down = QueryCtx::new(&graph, &fleet, &server_down, &sims, EcoChargeConfig::default());
    let later = trip.depart + SimDuration::from_mins(20);
    let mut fresh_method = EcoCharge::new();
    assert!(matches!(
        fresh_method.offering_table(&ctx_down, trip, 6_000.0, later),
        Err(EcError::ProviderUnavailable(_))
    ));
}

#[test]
fn geo_point_edge_of_world_is_rejected_cleanly() {
    // Coordinate validation is a panic (programming error), not a typed
    // error — verify the contract.
    let result = std::panic::catch_unwind(|| GeoPoint::new(200.0, 0.0));
    assert!(result.is_err());
}
