//! Resilience: what happens when a provider feed fails mid-drive.
//!
//! The EIS caches give natural resilience — a failed upstream call only
//! hurts when the needed entry is cold — and the degraded-mode layers on
//! top of them guarantee a ranked table whenever any answer is
//! defensible. These tests wire failure injection behind the information
//! server and check that (a) with fallback disabled, errors surface as
//! typed `ProviderUnavailable`; (b) with the default policy, an outage
//! degrades per-component instead of erroring, with honest provenance;
//! (c) warm last-known-good caches bridge a total outage with widened
//! intervals; (d) the circuit breaker sheds a dead feed and recovers when
//! the feed heals.

use chargers::{synth_fleet, FleetParams};
use ec_types::{ComponentQuality, EcError, GeoPoint, SimDuration};
use ecocharge_core::{DegradedPolicy, EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use eis::{
    BreakerPolicy, BreakerState, ChaosConfig, ChaosProvider, FeedKind, FlakyProvider, InfoServer,
    OutageWindow, ResiliencePolicy, SimProviders,
};
use roadnet::{urban_grid, UrbanGridParams};
use std::sync::Arc;
use trajgen::{generate_trips, BrinkhoffParams, Trip};

fn world() -> (roadnet::RoadGraph, chargers::ChargerFleet, SimProviders, Vec<Trip>) {
    let graph = urban_grid(&UrbanGridParams { cols: 14, rows: 14, ..Default::default() });
    let fleet = synth_fleet(&graph, &FleetParams { count: 60, seed: 9, ..Default::default() });
    let sims = SimProviders::new(9);
    let trips = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 8_000.0,
            max_trip_m: 12_000.0,
            seed: 9,
            ..Default::default()
        },
    );
    (graph, fleet, sims, trips)
}

fn strict() -> EcoChargeConfig {
    EcoChargeConfig { degraded: DegradedPolicy::disabled(), ..Default::default() }
}

#[test]
fn hard_weather_outage_surfaces_typed_error_when_fallback_disabled() {
    let (graph, fleet, sims, trips) = world();
    // Weather fails on every call; availability and traffic stay healthy.
    let weather = Arc::new(FlakyProvider::new(sims.clone(), 1, "weather"));
    let healthy = Arc::new(sims.clone());
    let server = InfoServer::new(weather, healthy.clone(), healthy);
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, strict());
    let mut method = EcoCharge::new();
    let err = method.offering_table(&ctx, &trips[0], 0.0, trips[0].depart).unwrap_err();
    assert_eq!(err, EcError::ProviderUnavailable("weather"));
}

#[test]
fn hard_weather_outage_degrades_to_fallback_under_default_policy() {
    let (graph, fleet, sims, trips) = world();
    let weather = Arc::new(FlakyProvider::new(sims.clone(), 1, "weather"));
    let healthy = Arc::new(sims.clone());
    let server = InfoServer::new(weather, healthy.clone(), healthy);
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let mut method = EcoCharge::new();
    let table = method.offering_table(&ctx, &trips[0], 0.0, trips[0].depart).unwrap();
    assert!(!table.is_empty(), "fallback keeps the query answerable");
    assert!(table.is_degraded());
    for e in &table.entries {
        assert_eq!(e.provenance.l, ComponentQuality::Fallback, "L lost its weather feed");
        assert!(e.provenance.a.is_fresh(), "availability was healthy");
        assert!(e.provenance.d.is_fresh(), "traffic was healthy");
        // The fallback interval is the whole unit domain — maximum honest
        // uncertainty — scaled through L's pool normalisation.
        assert!(e.l.lo() >= 0.0 && e.l.hi() <= 1.0);
    }
    assert!(table.render().contains("[degraded data]"));
}

#[test]
fn warm_lkg_tier_bridges_total_weather_outage_with_stale_intervals() {
    let (graph, fleet, sims, trips) = world();
    let trip = &trips[0];
    // Weather blacks out 10 minutes after departure, for the whole run.
    let outage_from = trip.depart + SimDuration::from_mins(10);
    let chaos = Arc::new(ChaosProvider::new(
        sims.clone(),
        ChaosConfig {
            outages: vec![OutageWindow {
                feed: Some(FeedKind::Weather),
                from: outage_from,
                until: outage_from + SimDuration::from_hours(48),
            }],
            ..ChaosConfig::calm(11)
        },
    ));
    let server = InfoServer::new(chaos.clone(), chaos.clone(), chaos.clone())
        .with_wind(chaos)
        .with_stale_serving();
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());

    // Healthy warm-up fills the fresh caches AND the last-known-good tier.
    let mut warm = EcoCharge::new();
    let t0 = warm.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
    assert!(!t0.is_degraded(), "warm-up ran on healthy feeds");

    // 20 minutes in: fresh TTLs expired, weather is black — but a cold
    // ranking instance still gets a full table off the widened LKG tier.
    let later = trip.depart + SimDuration::from_mins(20);
    let mut cold = EcoCharge::new();
    let table = cold.offering_table(&ctx, trip, 0.0, later).unwrap();
    assert!(!table.is_empty());
    assert!(table.is_degraded());
    for e in &table.entries {
        assert!(
            !e.provenance.l.is_fresh(),
            "L must be stale-served or fallback during the outage, got {}",
            e.provenance.l
        );
        assert!(e.provenance.a.is_fresh() && e.provenance.d.is_fresh());
    }
    assert!(
        table.entries.iter().any(|e| matches!(e.provenance.l, ComponentQuality::Stale { .. })),
        "at least part of the pool must be served from the LKG tier"
    );
    assert!(server.stats().stale_served() > 0, "the stale tier answered");
}

#[test]
fn breaker_sheds_dead_feed_and_recovers_when_it_heals() {
    let (graph, fleet, sims, trips) = world();
    let trip = &trips[0];
    // Weather is black for 30 minutes from departure, then heals.
    let outage = OutageWindow {
        feed: Some(FeedKind::Weather),
        from: trip.depart,
        until: trip.depart + SimDuration::from_mins(30),
    };
    let chaos = Arc::new(ChaosProvider::new(
        sims.clone(),
        ChaosConfig { outages: vec![outage], ..ChaosConfig::calm(13) },
    ));
    let policy = ResiliencePolicy {
        breaker: BreakerPolicy { failure_threshold: 3, cooldown: SimDuration::from_mins(5) },
        ..Default::default()
    };
    let server = InfoServer::new(chaos.clone(), chaos.clone(), chaos.clone())
        .with_wind(chaos)
        .with_resilience(policy, 17);
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());

    // During the outage, a query falls back (default policy) and trips
    // the weather breaker within the first few candidates.
    let mut method = EcoCharge::new();
    let t1 = method.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
    assert!(t1.is_degraded());
    assert!(matches!(server.breaker_state(FeedKind::Weather), Some(BreakerState::Open { .. })));
    // An open breaker sheds: querying again moves the guard's
    // short-circuit counter, not the upstream call counter.
    let upstream_before = server.stats().snapshot().0;
    let shed_before = server.guard_stats(FeedKind::Weather).unwrap().short_circuits;
    let mut again = EcoCharge::new();
    let _ = again.offering_table(&ctx, trip, 0.0, trip.depart + SimDuration::from_mins(1));
    assert_eq!(server.stats().snapshot().0, upstream_before, "open breaker sheds upstream load");
    assert!(server.guard_stats(FeedKind::Weather).unwrap().short_circuits > shed_before);

    // After the outage ends and the cooldown elapses, the half-open probe
    // succeeds, the breaker closes, and the feed serves fresh again.
    let healed = trip.depart + SimDuration::from_mins(45);
    let mut late = EcoCharge::new();
    let t2 = late.offering_table(&ctx, trip, 0.0, healed).unwrap();
    assert!(matches!(
        server.breaker_state(FeedKind::Weather),
        Some(BreakerState::Closed { consecutive_failures: 0 })
    ));
    assert!(server.stats().snapshot().0 > upstream_before, "upstream calls resumed");
    assert!(
        t2.entries.iter().all(|e| e.provenance.l.is_fresh()),
        "healed feed serves fresh L again"
    );
}

#[test]
fn intermittent_failures_heal_through_retries_and_cache() {
    let (graph, fleet, sims, trips) = world();
    // Every 7th upstream call fails; strict policy so failures surface.
    let flaky = Arc::new(FlakyProvider::new(sims.clone(), 7, "bundle"));
    let server = InfoServer::new(flaky.clone(), flaky.clone(), flaky.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, strict());
    let mut method = EcoCharge::new();
    let trip = &trips[0];

    // Retry loop, as a client app would: failed fetches are not cached,
    // but every *successful* fetch before the failure is — so each retry
    // makes monotone progress (~7 new entries per attempt here) until a
    // pass completes without touching a failing call.
    let mut ok = 0;
    for attempt in 0..40 {
        match method.offering_table(&ctx, trip, 0.0, trip.depart) {
            Ok(table) => {
                assert!(!table.is_empty());
                ok += 1;
                break;
            }
            Err(EcError::ProviderUnavailable(_)) => continue,
            Err(other) => panic!("unexpected error on attempt {attempt}: {other}"),
        }
    }
    assert_eq!(ok, 1, "a few retries must eventually fill the caches");

    // Once warm, the same query point answers entirely from cache: no new
    // upstream calls, no exposure to the flakiness.
    let calls_before = flaky.calls();
    let again = method.offering_table(&ctx, trip, 100.0, trip.depart + SimDuration::from_mins(1));
    assert!(again.is_ok(), "warm caches must mask the flaky provider");
    let new_calls = flaky.calls() - calls_before;
    assert!(
        new_calls <= 2,
        "adaptation path should be nearly cache-complete, made {new_calls} upstream calls"
    );
}

#[test]
fn in_server_retries_mask_intermittent_failures_in_one_pass() {
    let (graph, fleet, sims, trips) = world();
    // Every 5th call fails — but the server's own bounded retry (3
    // attempts) makes every logical fetch succeed, so even the strict
    // no-fallback policy answers on the first pass.
    let flaky = Arc::new(FlakyProvider::new(sims.clone(), 5, "bundle"));
    let server = InfoServer::new(flaky.clone(), flaky.clone(), flaky.clone())
        .with_resilience(ResiliencePolicy::default(), 23);
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, strict());
    let mut method = EcoCharge::new();
    let trip = &trips[0];
    let table = method.offering_table(&ctx, trip, 0.0, trip.depart).unwrap();
    assert!(!table.is_empty());
    assert!(!table.is_degraded(), "retried fetches are fresh, not degraded");
    // The flakiness hits whichever feed draws the unlucky call number, so
    // aggregate the guard stats across all four feeds.
    let (retries, failures) = FeedKind::ALL
        .iter()
        .filter_map(|&f| server.guard_stats(f))
        .fold((0, 0), |(r, fl), g| (r + g.retries, fl + g.failures));
    assert!(retries > 0, "the flaky bundle must have forced retries somewhere");
    assert_eq!(failures, 0, "no logical call may exhaust its retry budget");
    assert!(server.virtual_backoff_ms() > 0.0, "backoff was accounted, not slept");
}

#[test]
fn degenerate_inputs_are_typed_errors() {
    let (graph, fleet, sims, _trips) = world();
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());

    // A trip of one node cannot be built at all.
    let one_node = roadnet::Route::from_nodes(&graph, vec![ec_types::NodeId(0)]);
    assert!(matches!(one_node, Err(EcError::DegenerateTrip(_))));

    // An empty fleet yields NoCandidates for any query.
    let empty_fleet = chargers::ChargerFleet::new(Vec::new());
    let ctx2 = QueryCtx::new(&graph, &empty_fleet, &server, &sims, EcoChargeConfig::default());
    let trips = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 8_000.0,
            max_trip_m: 12_000.0,
            seed: 4,
            ..Default::default()
        },
    );
    let mut method = EcoCharge::new();
    assert!(matches!(
        method.offering_table(&ctx2, &trips[0], 0.0, trips[0].depart),
        Err(EcError::NoCandidates)
    ));
    let _ = ctx; // keep the healthy context alive for symmetry
}

#[test]
fn stale_cache_expires_even_when_provider_is_down() {
    let (graph, fleet, sims, trips) = world();
    let trip = &trips[0];
    // Healthy warm-up, then total outage. Strict policy and no stale
    // serving: the pre-degraded-mode contract still holds.
    let toggle = Arc::new(FlakyProvider::new(sims.clone(), 0, "bundle"));
    let server = InfoServer::new(toggle.clone(), toggle.clone(), toggle.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, strict());
    let mut method = EcoCharge::new();
    assert!(method.offering_table(&ctx, trip, 0.0, trip.depart).is_ok());

    // 20 minutes later (past the 15-minute forecast TTL *and* past the
    // dynamic-cache gate only if we move), a failing provider means the
    // refreshed forecasts cannot be served.
    let down = Arc::new(FlakyProvider::new(sims.clone(), 1, "bundle"));
    let server_down = InfoServer::new(down.clone(), down.clone(), down);
    let ctx_down = QueryCtx::new(&graph, &fleet, &server_down, &sims, strict());
    let later = trip.depart + SimDuration::from_mins(20);
    let mut fresh_method = EcoCharge::new();
    assert!(matches!(
        fresh_method.offering_table(&ctx_down, trip, 6_000.0, later),
        Err(EcError::ProviderUnavailable(_))
    ));
}

#[test]
fn geo_point_edge_of_world_is_rejected_cleanly() {
    // Coordinate validation is a panic (programming error), not a typed
    // error — verify the contract.
    let result = std::panic::catch_unwind(|| GeoPoint::new(200.0, 0.0));
    assert!(result.is_err());
}
