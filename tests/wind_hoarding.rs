//! Wind-backed stations extend renewable hoarding past sunset.
//!
//! The paper's clean energy "might come from either local sources (e.g.,
//! locally attached solar panels on carports) or virtually
//! net-metered/net-billed from a remote renewable energy production farm"
//! (§II-A) and §I names wind turbines among the RES. With a mixed fleet,
//! EcoCharge's `L` component stays meaningful at night — and the ranking
//! should visibly prefer wind-backed stations once the sun is down.

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use trajgen::{generate_trips, BrinkhoffParams};

fn world(wind_fraction: f64) -> (roadnet::RoadGraph, chargers::ChargerFleet, SimProviders) {
    let graph = urban_grid(&UrbanGridParams::default());
    let fleet = synth_fleet(&graph, &FleetParams { count: 200, seed: 13, wind_fraction });
    let sims = SimProviders::new(13);
    (graph, fleet, sims)
}

#[test]
fn night_tables_prefer_wind_backed_stations() {
    let (graph, fleet, sims) = world(0.3);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
    // A night drive (23:00).
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 10_000.0,
            max_trip_m: 16_000.0,
            window_start: ec_types::SimTime::at(0, ec_types::DayOfWeek::Tue, 23, 0),
            window_secs: 1,
            seed: 2,
        },
    )
    .remove(0);
    let mut method = EcoCharge::new();
    let table = method.offering_table(&ctx, &trip, 0.0, trip.depart).unwrap();
    // At 23:00 solar output is zero; any station with positive L must be
    // wind-backed, and the table's best offers should include wind.
    let wind_in_top = table.entries.iter().filter(|e| fleet.get(e.charger).has_wind()).count();
    assert!(
        wind_in_top >= 3,
        "night ranking should surface wind stations, got {wind_in_top}/{} (top: {:?})",
        table.len(),
        table.charger_ids()
    );
    for e in &table.entries {
        if !fleet.get(e.charger).has_wind() {
            assert!(e.l.hi() < 1e-9, "solar station with L > 0 at 23:00: {}", e.l);
        }
    }
}

#[test]
fn solar_only_fleet_has_zero_l_at_night() {
    let (graph, fleet, sims) = world(0.0);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 10_000.0,
            max_trip_m: 16_000.0,
            window_start: ec_types::SimTime::at(0, ec_types::DayOfWeek::Tue, 23, 0),
            window_secs: 1,
            seed: 2,
        },
    )
    .remove(0);
    let mut method = EcoCharge::new();
    let table = method.offering_table(&ctx, &trip, 0.0, trip.depart).unwrap();
    for e in &table.entries {
        assert!(e.l.hi() < 1e-9, "solar-only fleet must have L = 0 at night");
    }
    // Stats: the wind endpoint was never asked for a solar-only fleet.
    assert_eq!(server.stats().snapshot().3, 0, "no wind calls for a solar-only fleet");
}

#[test]
fn daytime_mixed_fleet_still_ranks_consistently() {
    // The wind extension must not degrade the default daytime behaviour:
    // a mixed fleet's table is still dominated by high-L, available,
    // close stations (SC ranked descending).
    let (graph, fleet, sims) = world(0.3);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let trip = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 1,
            min_trip_m: 10_000.0,
            max_trip_m: 16_000.0,
            window_start: ec_types::SimTime::at(0, ec_types::DayOfWeek::Tue, 12, 0),
            window_secs: 1,
            seed: 2,
        },
    )
    .remove(0);
    let mut method = EcoCharge::new();
    let table = method.offering_table(&ctx, &trip, 0.0, trip.depart).unwrap();
    assert_eq!(table.len(), ctx.config.k);
    for w in table.entries.windows(2) {
        assert!(w[0].sc.mid() >= w[1].sc.mid());
    }
}
