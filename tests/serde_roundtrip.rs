//! The serialisable surface: configurations, charger records, GPS traces
//! and production series all derive `Serialize`/`Deserialize` — the
//! contract a Mode-2 deployment relies on when shipping config and data
//! between the EIS and clients. No JSON crate is in the approved offline
//! dependency set, so these tests pin the contract at the type level
//! (trait-bound assertions compile only while the derives exist) plus
//! value-level copy semantics.

use chargers::{Charger, ChargerKind};
use ec_models::SiteArchetype;
use ec_types::{ChargerId, GeoPoint, Interval, Kilowatts, NodeId, SimTime};
use ecocharge_core::{EcoChargeConfig, Vehicle, Weights};
use trajgen::{GpsFix, TraceParams};

/// Compile-time proof that the public data types implement the serde
/// traits (a Mode-2 wire format can be layered on without touching the
/// library).
fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}

#[test]
fn public_types_are_serde_capable() {
    assert_serde::<Interval>();
    assert_serde::<GeoPoint>();
    assert_serde::<SimTime>();
    assert_serde::<ChargerId>();
    assert_serde::<NodeId>();
    assert_serde::<Charger>();
    assert_serde::<ChargerKind>();
    assert_serde::<SiteArchetype>();
    assert_serde::<EcoChargeConfig>();
    assert_serde::<Weights>();
    assert_serde::<Vehicle>();
    assert_serde::<GpsFix>();
    assert_serde::<ec_models::ProductionSeries>();
}

#[test]
fn config_copies_preserve_semantics() {
    let config = EcoChargeConfig {
        k: 7,
        radius_km: 33.0,
        range_km: 2.0,
        weights: Weights::new(2.0, 1.0, 1.0),
        vehicle: Some(Vehicle::city_ev(ec_types::VehicleId(4), 0.42)),
        ..EcoChargeConfig::default()
    };
    let copy = config;
    assert_eq!(config, copy);
    assert!(copy.validate().is_ok());
    assert_eq!(copy.weights.w1(), 0.5);
}

#[test]
fn charger_clone_roundtrip() {
    let c = Charger {
        id: ChargerId(9),
        loc: GeoPoint::new(8.2, 53.1),
        node: NodeId(17),
        kind: ChargerKind::Dc50,
        panel: Kilowatts(60.0),
        wind: Kilowatts(0.0),
        archetype: SiteArchetype::Highway,
    };
    let d = c.clone();
    assert_eq!(c, d);
    assert_eq!(c.entity_seed(), d.entity_seed());
}

#[test]
fn trace_params_default_is_geolife_like() {
    let p = TraceParams::default();
    assert!((1.0..=10.0).contains(&p.period_s), "Geolife logs every 1-5 s");
    assert!(p.noise_sigma_m <= 10.0, "consumer GPS noise");
}

#[test]
fn deserialized_intervals_cannot_bypass_invariants() {
    // `Interval` deserializes through `RawInterval` (`#[serde(try_from)]`),
    // so wire data is funnelled through the same checks as constructors —
    // a crafted payload cannot smuggle in a NaN or flipped endpoints.
    use ec_types::RawInterval;
    assert!(Interval::try_from(RawInterval { lo: 2.0, hi: 1.0 }).is_err());
    assert!(Interval::try_from(RawInterval { lo: f64::NAN, hi: 1.0 }).is_err());
    assert!(Interval::try_from(RawInterval { lo: 0.0, hi: f64::INFINITY }).is_err());
    let ok = Interval::try_from(RawInterval { lo: 1.0, hi: 2.0 }).unwrap();
    assert_eq!(RawInterval::from(ok), RawInterval { lo: 1.0, hi: 2.0 });
    assert_serde::<RawInterval>();
}

#[test]
fn deserialized_weights_cannot_bypass_invariants() {
    // Same funnel for `Weights`: negative, all-zero and non-finite weight
    // vectors are rejected at the deserialization boundary, and accepted
    // ones arrive already normalised.
    use ecocharge_core::RawWeights;
    assert!(Weights::try_from(RawWeights { w1: -1.0, w2: 1.0, w3: 1.0 }).is_err());
    assert!(Weights::try_from(RawWeights { w1: 0.0, w2: 0.0, w3: 0.0 }).is_err());
    assert!(Weights::try_from(RawWeights { w1: f64::NAN, w2: 1.0, w3: 1.0 }).is_err());
    let w = Weights::try_from(RawWeights { w1: 2.0, w2: 1.0, w3: 1.0 }).unwrap();
    assert_eq!(w.w1(), 0.5);
    assert_serde::<RawWeights>();
}
