//! Cross-crate closed-loop integration: the fleet-day simulation must
//! reproduce the system-level ordering the paper's whole design implies —
//! EcoCharge harvests more solar than naive policies on the same world —
//! across several independently seeded worlds.

use fleetsim::{simulate_day, FleetSimConfig, Policy, ScheduleParams};
use roadnet::{urban_grid, UrbanGridParams};

fn config(seed: u64) -> FleetSimConfig {
    FleetSimConfig {
        schedule: ScheduleParams { vehicles: 25, seed, ..Default::default() },
        charger_count: 200,
        seed,
        ..Default::default()
    }
}

#[test]
fn ecocharge_beats_nearest_on_clean_fraction_across_seeds() {
    for seed in [1u64, 7, 42] {
        let graph = urban_grid(&UrbanGridParams { seed, ..Default::default() });
        let cfg = config(seed);
        let mut eco = Policy::ecocharge();
        let eco_out = simulate_day(&graph, &mut eco, &cfg);
        let mut near = Policy::Nearest;
        let near_out = simulate_day(&graph, &mut near, &cfg);
        assert!(
            eco_out.clean_fraction() > near_out.clean_fraction(),
            "seed {seed}: EcoCharge {:.3} vs Nearest {:.3}",
            eco_out.clean_fraction(),
            near_out.clean_fraction()
        );
        assert!(eco_out.charge_stops > 0 && near_out.charge_stops > 0);
    }
}

#[test]
fn random_policy_is_not_the_best_hoarder() {
    let graph = urban_grid(&UrbanGridParams::default());
    let cfg = config(5);
    let mut eco = Policy::ecocharge();
    let eco_out = simulate_day(&graph, &mut eco, &cfg);
    let mut rnd = Policy::random(11);
    let rnd_out = simulate_day(&graph, &mut rnd, &cfg);
    assert!(
        eco_out.clean_fraction() > rnd_out.clean_fraction(),
        "EcoCharge {:.3} vs Random {:.3}",
        eco_out.clean_fraction(),
        rnd_out.clean_fraction()
    );
}

#[test]
fn occupancy_is_respected_fleet_wide() {
    // Pile many vehicles into a tiny charger fleet: the simulation must
    // record conflicts rather than over-booking plugs.
    let graph = urban_grid(&UrbanGridParams::default());
    let cfg = FleetSimConfig {
        schedule: ScheduleParams { vehicles: 40, seed: 9, ..Default::default() },
        charger_count: 12,
        seed: 9,
        ..Default::default()
    };
    let mut eco = Policy::ecocharge();
    let out = simulate_day(&graph, &mut eco, &cfg);
    assert!(
        out.conflicts > 0 || out.skipped > 0,
        "40 vehicles on 12 chargers must contend: {out:?}"
    );
    // Everyone either charged, skipped, or had too short a window.
    assert!(out.charge_stops + out.skipped <= 40 * 3);
}
