//! Cross-crate property tests: invariants that must hold for *arbitrary*
//! worlds, not just the checked-in fixtures.

use chargers::{synth_fleet, FleetParams};
use ec_types::{GeoPoint, SimTime, SplitMix64};
use ecocharge_core::{EcoCharge, EcoChargeConfig, Oracle, QueryCtx, RankingMethod, Weights};
use eis::{InfoServer, SimProviders};
use proptest::prelude::*;
use roadnet::{urban_grid, UrbanGridParams};
use spatial_index::{brute, QuadTree};
use trajgen::{generate_trips, BrinkhoffParams};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Quadtree kNN must agree with the linear scan for any point cloud.
    #[test]
    fn quadtree_knn_equals_brute(seed in 0u64..1_000, n in 1usize..300, k in 1usize..20) {
        let mut rng = SplitMix64::new(seed);
        let origin = GeoPoint::new(8.0, 53.0);
        let items: Vec<(GeoPoint, usize)> = (0..n)
            .map(|i| (origin.offset_m(rng.range_f64(0.0, 30_000.0), rng.range_f64(0.0, 30_000.0)), i))
            .collect();
        let tree = QuadTree::bulk(items.clone());
        let q = origin.offset_m(rng.range_f64(-5_000.0, 35_000.0), rng.range_f64(-5_000.0, 35_000.0));
        let got: Vec<usize> = tree.knn(&q, k).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, k).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    /// For any seed, EcoCharge's offers stay inside the configured radius
    /// and the table never exceeds k entries.
    #[test]
    fn offers_respect_radius_and_k(seed in 0u64..200, k in 1usize..8, radius_km in 5.0f64..60.0) {
        let graph = urban_grid(&UrbanGridParams { cols: 12, rows: 12, seed, ..Default::default() });
        let fleet = synth_fleet(&graph, &FleetParams { count: 40, seed, ..Default::default() });
        let sims = SimProviders::new(seed);
        let server = InfoServer::from_sims(sims.clone());
        let config = EcoChargeConfig { k, radius_km, range_km: 0.0, ..EcoChargeConfig::default() };
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, config);
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams { trips: 1, min_trip_m: 3_000.0, max_trip_m: 8_000.0, seed, ..Default::default() },
        );
        let mut m = EcoCharge::new();
        match m.offering_table(&ctx, &trips[0], 0.0, trips[0].depart) {
            Ok(table) => {
                prop_assert!(table.len() <= k);
                let pos = trips[0].position_at_offset(&graph, 0.0);
                for e in &table.entries {
                    let d = pos.fast_dist_m(&fleet.get(e.charger).loc);
                    prop_assert!(d <= radius_km * 1_000.0 + 1.0, "offer at {} m with R = {} km", d, radius_km);
                    // Interval invariants.
                    prop_assert!(e.sc.lo() <= e.sc.hi());
                    prop_assert!(e.l.lo() >= 0.0 && e.l.hi() <= 1.0);
                    prop_assert!(e.a.lo() >= 0.0 && e.a.hi() <= 1.0);
                    prop_assert!(e.d.lo() >= 0.0 && e.d.hi() <= 1.0);
                }
            }
            Err(ec_types::EcError::NoCandidates) => {} // small radius, fine
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }

    /// The oracle's best-k upper-bounds any method's set under the same
    /// weights — for arbitrary query times, including night.
    #[test]
    fn oracle_best_is_an_upper_bound(seed in 0u64..100, hour in 0u64..24) {
        let graph = urban_grid(&UrbanGridParams { cols: 10, rows: 10, seed, ..Default::default() });
        let fleet = synth_fleet(&graph, &FleetParams { count: 30, seed, ..Default::default() });
        let sims = SimProviders::new(seed);
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 1,
                min_trip_m: 3_000.0,
                max_trip_m: 8_000.0,
                window_start: SimTime::at(0, ec_types::DayOfWeek::Thu, hour, 0),
                window_secs: 1,
                seed,
            },
        );
        let trip = &trips[0];
        let mut oracle = Oracle::new(Weights::awe());
        let node = trip.route.nearest_node_at(0.0);
        let rejoin = trip.route.nearest_node_at(4_000.0_f64.min(trip.length_m()));
        let (_, best_mean) = oracle.best_k(&ctx, node, rejoin, trip.depart, 5);

        let mut m = EcoCharge::new();
        if let Ok(table) = m.offering_table(&ctx, trip, 0.0, trip.depart) {
            if let Some(mean) =
                oracle.true_sc_of_set(&ctx, &table.charger_ids(), node, rejoin, trip.depart)
            {
                prop_assert!(mean <= best_mean + 1e-9, "method {mean} beat the oracle {best_mean}");
            }
        }
    }
}
