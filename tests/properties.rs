//! Cross-crate property tests: invariants that must hold for *arbitrary*
//! worlds, not just the checked-in fixtures.

use chargers::{synth_fleet, FleetParams};
use ec_types::{ComponentQuality, GeoPoint, Interval, SimDuration, SimTime, SplitMix64};
use ecocharge_core::{EcoCharge, EcoChargeConfig, Oracle, QueryCtx, RankingMethod, Weights};
use eis::{
    staleness_half_width, widen_factor, widen_unit, FlakyProvider, InfoServer, SimProviders,
};
use proptest::prelude::*;
use roadnet::{urban_grid, UrbanGridParams};
use spatial_index::{brute, QuadTree};
use std::sync::Arc;
use trajgen::{generate_trips, BrinkhoffParams};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Quadtree kNN must agree with the linear scan for any point cloud.
    #[test]
    fn quadtree_knn_equals_brute(seed in 0u64..1_000, n in 1usize..300, k in 1usize..20) {
        let mut rng = SplitMix64::new(seed);
        let origin = GeoPoint::new(8.0, 53.0);
        let items: Vec<(GeoPoint, usize)> = (0..n)
            .map(|i| (origin.offset_m(rng.range_f64(0.0, 30_000.0), rng.range_f64(0.0, 30_000.0)), i))
            .collect();
        let tree = QuadTree::bulk(items.clone());
        let q = origin.offset_m(rng.range_f64(-5_000.0, 35_000.0), rng.range_f64(-5_000.0, 35_000.0));
        let got: Vec<usize> = tree.knn(&q, k).iter().map(|h| *h.item).collect();
        let want: Vec<usize> = brute::knn_scan(&items, &q, k).iter().map(|h| *h.item).collect();
        prop_assert_eq!(got, want);
    }

    /// For any seed, EcoCharge's offers stay inside the configured radius
    /// and the table never exceeds k entries.
    #[test]
    fn offers_respect_radius_and_k(seed in 0u64..200, k in 1usize..8, radius_km in 5.0f64..60.0) {
        let graph = urban_grid(&UrbanGridParams { cols: 12, rows: 12, seed, ..Default::default() });
        let fleet = synth_fleet(&graph, &FleetParams { count: 40, seed, ..Default::default() });
        let sims = SimProviders::new(seed);
        let server = InfoServer::from_sims(sims.clone());
        let config = EcoChargeConfig { k, radius_km, range_km: 0.0, ..EcoChargeConfig::default() };
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, config);
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams { trips: 1, min_trip_m: 3_000.0, max_trip_m: 8_000.0, seed, ..Default::default() },
        );
        let mut m = EcoCharge::new();
        match m.offering_table(&ctx, &trips[0], 0.0, trips[0].depart) {
            Ok(table) => {
                prop_assert!(table.len() <= k);
                let pos = trips[0].position_at_offset(&graph, 0.0);
                for e in &table.entries {
                    let d = pos.fast_dist_m(&fleet.get(e.charger).loc);
                    prop_assert!(d <= radius_km * 1_000.0 + 1.0, "offer at {} m with R = {} km", d, radius_km);
                    // Interval invariants.
                    prop_assert!(e.sc.lo() <= e.sc.hi());
                    prop_assert!(e.l.lo() >= 0.0 && e.l.hi() <= 1.0);
                    prop_assert!(e.a.lo() >= 0.0 && e.a.hi() <= 1.0);
                    prop_assert!(e.d.lo() >= 0.0 && e.d.hi() <= 1.0);
                }
            }
            Err(ec_types::EcError::NoCandidates) => {} // small radius, fine
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }

    /// The oracle's best-k upper-bounds any method's set under the same
    /// weights — for arbitrary query times, including night.
    #[test]
    fn oracle_best_is_an_upper_bound(seed in 0u64..100, hour in 0u64..24) {
        let graph = urban_grid(&UrbanGridParams { cols: 10, rows: 10, seed, ..Default::default() });
        let fleet = synth_fleet(&graph, &FleetParams { count: 30, seed, ..Default::default() });
        let sims = SimProviders::new(seed);
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: 1,
                min_trip_m: 3_000.0,
                max_trip_m: 8_000.0,
                window_start: SimTime::at(0, ec_types::DayOfWeek::Thu, hour, 0),
                window_secs: 1,
                seed,
            },
        );
        let trip = &trips[0];
        let mut oracle = Oracle::new(Weights::awe());
        let node = trip.route.nearest_node_at(0.0);
        let rejoin = trip.route.nearest_node_at(4_000.0_f64.min(trip.length_m()));
        let (_, best_mean) = oracle.best_k(&ctx, node, rejoin, trip.depart, 5);

        let mut m = EcoCharge::new();
        if let Ok(table) = m.offering_table(&ctx, trip, 0.0, trip.depart) {
            if let Some(mean) =
                oracle.true_sc_of_set(&ctx, &table.charger_ids(), node, rejoin, trip.depart)
            {
                prop_assert!(mean <= best_mean + 1e-9, "method {mean} beat the oracle {best_mean}");
            }
        }
    }

    /// Stale serving must be *honest*: for any unit-domain interval and any
    /// pair of ages, the widened interval contains the fresh one, stays in
    /// the domain, and widening is monotone in staleness.
    #[test]
    fn stale_widening_contains_fresh_and_grows_with_age(
        lo in 0.0f64..1.0,
        width in 0.0f64..1.0,
        mins_a in 0u64..600,
        mins_b in 0u64..600,
    ) {
        let v = Interval::new(lo, (lo + width).min(1.0));
        let (young, old) = if mins_a <= mins_b { (mins_a, mins_b) } else { (mins_b, mins_a) };
        let wa = staleness_half_width(SimDuration::from_mins(young));
        let wb = staleness_half_width(SimDuration::from_mins(old));
        prop_assert!(wa >= 0.0 && wb >= wa, "half-width must grow with age: {wa} vs {wb}");

        let va = widen_unit(v, wa);
        let vb = widen_unit(v, wb);
        // Containment chain: fresh ⊆ young-stale ⊆ old-stale, all in [0,1].
        prop_assert!(va.lo() <= v.lo() && va.hi() >= v.hi());
        prop_assert!(vb.lo() <= va.lo() && vb.hi() >= va.hi());
        prop_assert!(vb.lo() >= 0.0 && vb.hi() <= 1.0);
    }

    /// Same honesty contract for traffic factors (relative widening with a
    /// floor at the free-flow multiplier 1.0).
    #[test]
    fn stale_factor_widening_contains_fresh_and_grows_with_age(
        lo in 1.0f64..2.5,
        width in 0.0f64..1.5,
        mins_a in 0u64..600,
        mins_b in 0u64..600,
    ) {
        let v = Interval::new(lo, lo + width);
        let (young, old) = if mins_a <= mins_b { (mins_a, mins_b) } else { (mins_b, mins_a) };
        let wa = staleness_half_width(SimDuration::from_mins(young));
        let wb = staleness_half_width(SimDuration::from_mins(old));
        let va = widen_factor(v, wa);
        let vb = widen_factor(v, wb);
        prop_assert!(va.lo() <= v.lo() && va.hi() >= v.hi());
        prop_assert!(vb.lo() <= va.lo() && vb.hi() >= va.hi());
        prop_assert!(vb.lo() >= 1.0, "a traffic factor can never fall below free flow");
    }

    /// Under the default degraded policy, a 100% outage of any *single*
    /// feed never errors: the affected component falls back (non-fresh
    /// provenance) and the other components stay fresh.
    #[test]
    fn single_feed_outage_degrades_exactly_one_component(
        seed in 0u64..100,
        feed in 0usize..3,
    ) {
        let graph = urban_grid(&UrbanGridParams { cols: 10, rows: 10, seed, ..Default::default() });
        let fleet = synth_fleet(&graph, &FleetParams { count: 30, seed, ..Default::default() });
        let sims = SimProviders::new(seed);
        let dead = |name| Arc::new(FlakyProvider::new(sims.clone(), 1, name));
        let healthy = Arc::new(sims.clone());
        let server = match feed {
            0 => InfoServer::new(dead("weather"), healthy.clone(), healthy),
            1 => InfoServer::new(healthy.clone(), dead("availability"), healthy),
            _ => InfoServer::new(healthy.clone(), healthy, dead("traffic")),
        };
        let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams { trips: 1, min_trip_m: 3_000.0, max_trip_m: 8_000.0, seed, ..Default::default() },
        );
        let mut m = EcoCharge::new();
        match m.offering_table(&ctx, &trips[0], 0.0, trips[0].depart) {
            Ok(table) => {
                prop_assert!(!table.is_empty());
                prop_assert!(table.is_degraded());
                for e in &table.entries {
                    let q = [e.provenance.l, e.provenance.a, e.provenance.d];
                    prop_assert_eq!(q[feed], ComponentQuality::Fallback);
                    for (i, qi) in q.iter().enumerate() {
                        if i != feed {
                            prop_assert!(qi.is_fresh(), "feed {} down degraded component {}", feed, i);
                        }
                    }
                }
            }
            Err(ec_types::EcError::NoCandidates) => {} // sparse world, fine
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error: {other}"))),
        }
    }
}
