//! The three operating modes (§IV) must be *semantically* equivalent:
//! where the ranking runs changes latency and bytes, never the table.
//! Mode 1 (embedded) runs in-process; Mode 2 (server) runs behind a
//! crossbeam request bus in another thread; Mode 3 (edge) is a second
//! in-process instance with its own caches. All three must produce
//! identical rankings for the same trip.

use chargers::{synth_fleet, FleetParams};
use ec_types::{ChargerId, SimTime};
use ecocharge_core::{CknnQuery, EcoCharge, EcoChargeConfig, QueryCtx, RankingMethod};
use eis::rpc::ServiceBus;
use eis::{InfoServer, Mode, SimProviders};
use roadnet::{urban_grid, UrbanGridParams};
use std::sync::Arc;
use trajgen::{generate_trips, BrinkhoffParams, Trip};

const SEED: u64 = 77;

fn world() -> (roadnet::RoadGraph, Vec<Trip>) {
    let graph = urban_grid(&UrbanGridParams { cols: 20, rows: 20, ..Default::default() });
    let trips = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: 2,
            min_trip_m: 10_000.0,
            max_trip_m: 16_000.0,
            seed: SEED,
            ..Default::default()
        },
    );
    (graph, trips)
}

/// Drive the whole trip in-process and return per-segment rankings.
fn drive_in_process(graph: &roadnet::RoadGraph, trip: &Trip) -> Vec<Vec<ChargerId>> {
    let fleet = synth_fleet(graph, &FleetParams { count: 150, seed: SEED, ..Default::default() });
    let sims = SimProviders::new(SEED);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let query = CknnQuery::new(&ctx, trip).unwrap();
    let mut method = EcoCharge::new();
    query.run(&ctx, trip, &mut method).unwrap().into_iter().map(|(_, t)| t.charger_ids()).collect()
}

/// Drive the trip against a Mode-2 server thread.
fn drive_via_server(graph_seed_world: &roadnet::RoadGraph, trip: &Trip) -> Vec<Vec<ChargerId>> {
    let (client, _bus) = ServiceBus::spawn({
        // The server rebuilds the identical world from the same seeds.
        let graph = urban_grid(&UrbanGridParams { cols: 20, rows: 20, ..Default::default() });
        let fleet =
            synth_fleet(&graph, &FleetParams { count: 150, seed: SEED, ..Default::default() });
        let sims = SimProviders::new(SEED);
        let server = InfoServer::from_sims(sims.clone());
        let mut method = EcoCharge::new();
        move |(trip, offset_m, now, reset): (Arc<Trip>, f64, SimTime, bool)| {
            let ctx = QueryCtx::new(&graph, &fleet, &server, &sims, EcoChargeConfig::default());
            if reset {
                method.reset_trip();
            }
            method
                .offering_table(&ctx, &trip, offset_m, now)
                .map(|t| t.charger_ids())
                .unwrap_or_default()
        }
    });

    // The client only needs the split offsets, which it derives from its
    // own copy of the world.
    let fleet = synth_fleet(
        graph_seed_world,
        &FleetParams { count: 150, seed: SEED, ..Default::default() },
    );
    let sims = SimProviders::new(SEED);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(graph_seed_world, &fleet, &server, &sims, EcoChargeConfig::default());
    let query = CknnQuery::new(&ctx, trip).unwrap();
    let shared = Arc::new(trip.clone());
    query
        .split_points()
        .iter()
        .enumerate()
        .map(|(i, sp)| {
            client.call((shared.clone(), sp.offset_m, sp.eta, i == 0)).expect("server alive")
        })
        .collect()
}

#[test]
fn all_modes_rank_identically() {
    let (graph, trips) = world();
    for trip in &trips {
        let mode1 = drive_in_process(&graph, trip); // embedded
        let mode2 = drive_via_server(&graph, trip); // central server
        let mode3 = drive_in_process(&graph, trip); // edge device (own caches)
        assert_eq!(mode1, mode2, "server mode diverged");
        assert_eq!(mode1, mode3, "edge mode diverged");
        assert!(!mode1.is_empty());
        assert!(mode1.iter().all(|r| !r.is_empty()));
    }
}

#[test]
fn mode_cost_model_orderings() {
    // With warm data everywhere, the embedded mode has no network cost at
    // all for small compute; the server mode wins once compute dominates.
    let ranking_cost_ms = 1.0; // what we measured for EcoCharge
    let embedded = Mode::Embedded.costs().refresh_latency_ms(ranking_cost_ms, true);
    let server = Mode::Server.costs().refresh_latency_ms(ranking_cost_ms, true);
    let edge = Mode::Edge.costs().refresh_latency_ms(ranking_cost_ms, true);
    assert!(embedded < server, "cheap compute favours on-vehicle ranking");
    assert!(edge < server);
    // Cold provider data penalises the modes that fetch raw feeds.
    let embedded_cold = Mode::Embedded.costs().refresh_latency_ms(ranking_cost_ms, false);
    assert!(embedded_cold > server, "cold embedded refresh pays the data fetch");
}
