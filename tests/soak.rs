//! Paper-scale soak runs, `#[ignore]`d by default (minutes of CPU).
//!
//! ```text
//! cargo test --release --test soak -- --ignored
//! ```
//!
//! These exercise the system at the evaluation's full trajectory
//! cardinality (4 000 Oldenburg trips) and a long continuous drive, to
//! catch anything the scaled-down CI tests cannot: allocator pressure in
//! the search buffers, cache growth over thousands of refreshes, drift in
//! the split-list arithmetic over 100+ km trips.

use chargers::{synth_fleet, FleetParams};
use ec_types::SimDuration;
use ecocharge_core::{
    evaluate_method, CknnQuery, EcoCharge, EcoChargeConfig, Oracle, QueryCtx, Weights,
};
use eis::{
    ChaosConfig, ChaosProvider, FeedKind, InfoServer, OutageWindow, ResiliencePolicy, SimProviders,
};
use std::sync::Arc;
use trajgen::{Dataset, DatasetKind, DatasetScale};

#[test]
#[ignore = "paper-scale: ~minutes"]
fn full_oldenburg_cardinality_generates() {
    let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::paper(), 42);
    assert_eq!(dataset.trips.len(), 4_000);
    // Every trip is well-formed.
    for t in &dataset.trips {
        assert!(t.length_m() > 0.0);
        assert_ne!(t.route.start(), t.route.end());
    }
}

#[test]
#[ignore = "paper-scale: ~minutes"]
fn thousand_refreshes_stay_stable() {
    let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::bench(), 42);
    let fleet =
        synth_fleet(&dataset.graph, &FleetParams { count: 600, seed: 42, ..Default::default() });
    let sims = SimProviders::new(42);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&dataset.graph, &fleet, &server, &sims, EcoChargeConfig::default());

    let mut method = EcoCharge::new();
    let mut tables = 0usize;
    for trip in &dataset.trips {
        let query = CknnQuery::new(&ctx, trip).expect("valid trip");
        let results = query.run(&ctx, trip, &mut method).expect("simulated providers");
        tables += results.len();
        for (_, t) in &results {
            assert!(!t.is_empty());
            assert!(t.len() <= ctx.config.k);
        }
    }
    assert!(tables > 800, "200 trips × ≥4 segments: got {tables}");
    let (hits, misses) = method.cache_stats();
    assert!(hits > 0 && misses > 0, "both cache paths must exercise: {hits}/{misses}");
}

/// One full chaos run: seeded random failures on every feed, a weather
/// blackout window, injected latency, retry + breaker + stale serving all
/// enabled. Returns everything observable so runs can be diffed.
fn chaos_run(seed: u64) -> (Vec<String>, u64, u64, f64, u64) {
    let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::smoke(), seed);
    let fleet =
        synth_fleet(&dataset.graph, &FleetParams { count: 120, seed, ..Default::default() });
    let sims = SimProviders::new(seed);
    let depart = dataset.trips[0].depart;
    let chaos = Arc::new(ChaosProvider::new(
        sims.clone(),
        ChaosConfig {
            seed,
            failure_rate: 0.08,
            target: None,
            outages: vec![OutageWindow {
                feed: Some(FeedKind::Weather),
                from: depart + SimDuration::from_mins(30),
                until: depart + SimDuration::from_mins(60),
            }],
            mean_latency_ms: 12.0,
        },
    ));
    let server = InfoServer::new(chaos.clone(), chaos.clone(), chaos.clone())
        .with_stale_serving()
        .with_resilience(ResiliencePolicy::default(), seed);
    let ctx = QueryCtx::new(&dataset.graph, &fleet, &server, &sims, EcoChargeConfig::default());

    let mut method = EcoCharge::new();
    let mut rendered = Vec::new();
    for trip in &dataset.trips[..8] {
        let query = CknnQuery::new(&ctx, trip).expect("valid trip");
        // Under chaos a segment may still fail (non-weather feeds have no
        // fallback-independent path when a burst exhausts retries) — the
        // *outcome*, success or typed error, must be identical across runs.
        match query.run(&ctx, trip, &mut method) {
            Ok(results) => {
                for (sp, t) in &results {
                    rendered.push(format!("{:.0}@{}", sp.offset_m, t.render()));
                }
            }
            Err(e) => rendered.push(format!("err:{e}")),
        }
    }
    (
        rendered,
        chaos.calls(),
        chaos.failures(),
        chaos.injected_latency_ms(),
        server.stats().stale_served(),
    )
}

#[test]
fn chaos_soak_is_deterministic_across_runs() {
    let a = chaos_run(77);
    let b = chaos_run(77);
    assert_eq!(a, b, "identically seeded chaos runs must be bit-identical");
    assert!(a.1 > 0, "chaos plan must have been exercised");
    assert!(a.2 > 0, "the fault plan must actually inject failures");
    assert!(a.3 > 0.0, "latency injection must be accounted");
    // A different seed must produce a different realisation somewhere.
    let c = chaos_run(78);
    assert_ne!((&a.0, a.1, a.2), (&c.0, c.1, c.2), "seeds must matter");
}

#[test]
#[ignore = "paper-scale: ~minutes"]
fn evaluation_statistics_are_stable_across_seeds() {
    // The headline EcoCharge SC% must hold across independently seeded
    // worlds, not just the default seed.
    for seed in [7u64, 99, 1234] {
        let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::bench(), seed);
        let fleet =
            synth_fleet(&dataset.graph, &FleetParams { count: 600, seed, ..Default::default() });
        let sims = SimProviders::new(seed);
        let server = InfoServer::from_sims(sims.clone());
        let ctx = QueryCtx::new(&dataset.graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let trips = &dataset.trips[..12];
        let mut oracle = Oracle::new(Weights::awe());
        let mut eco = EcoCharge::new();
        let out = evaluate_method(&ctx, trips, &mut eco, &mut oracle).unwrap();
        assert!(
            out.mean_sc_pct > 95.0,
            "seed {seed}: EcoCharge SC {} below the reproduction band",
            out.mean_sc_pct
        );
    }
}
