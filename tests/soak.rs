//! Paper-scale soak runs, `#[ignore]`d by default (minutes of CPU).
//!
//! ```text
//! cargo test --release --test soak -- --ignored
//! ```
//!
//! These exercise the system at the evaluation's full trajectory
//! cardinality (4 000 Oldenburg trips) and a long continuous drive, to
//! catch anything the scaled-down CI tests cannot: allocator pressure in
//! the search buffers, cache growth over thousands of refreshes, drift in
//! the split-list arithmetic over 100+ km trips.

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{
    evaluate_method, CknnQuery, EcoCharge, EcoChargeConfig, Oracle, QueryCtx, Weights,
};
use eis::{InfoServer, SimProviders};
use trajgen::{Dataset, DatasetKind, DatasetScale};

#[test]
#[ignore = "paper-scale: ~minutes"]
fn full_oldenburg_cardinality_generates() {
    let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::paper(), 42);
    assert_eq!(dataset.trips.len(), 4_000);
    // Every trip is well-formed.
    for t in &dataset.trips {
        assert!(t.length_m() > 0.0);
        assert_ne!(t.route.start(), t.route.end());
    }
}

#[test]
#[ignore = "paper-scale: ~minutes"]
fn thousand_refreshes_stay_stable() {
    let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::bench(), 42);
    let fleet = synth_fleet(&dataset.graph, &FleetParams { count: 600, seed: 42, ..Default::default() });
    let sims = SimProviders::new(42);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&dataset.graph, &fleet, &server, &sims, EcoChargeConfig::default());

    let mut method = EcoCharge::new();
    let mut tables = 0usize;
    for trip in &dataset.trips {
        let query = CknnQuery::new(&ctx, trip).expect("valid trip");
        let results = query.run(&ctx, trip, &mut method).expect("simulated providers");
        tables += results.len();
        for (_, t) in &results {
            assert!(!t.is_empty());
            assert!(t.len() <= ctx.config.k);
        }
    }
    assert!(tables > 800, "200 trips × ≥4 segments: got {tables}");
    let (hits, misses) = method.cache_stats();
    assert!(hits > 0 && misses > 0, "both cache paths must exercise: {hits}/{misses}");
}

#[test]
#[ignore = "paper-scale: ~minutes"]
fn evaluation_statistics_are_stable_across_seeds() {
    // The headline EcoCharge SC% must hold across independently seeded
    // worlds, not just the default seed.
    for seed in [7u64, 99, 1234] {
        let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::bench(), seed);
        let fleet = synth_fleet(&dataset.graph, &FleetParams { count: 600, seed, ..Default::default() });
        let sims = SimProviders::new(seed);
        let server = InfoServer::from_sims(sims.clone());
        let ctx =
            QueryCtx::new(&dataset.graph, &fleet, &server, &sims, EcoChargeConfig::default());
        let trips = &dataset.trips[..12];
        let mut oracle = Oracle::new(Weights::awe());
        let mut eco = EcoCharge::new();
        let out = evaluate_method(&ctx, trips, &mut eco, &mut oracle).unwrap();
        assert!(
            out.mean_sc_pct > 95.0,
            "seed {seed}: EcoCharge SC {} below the reproduction band",
            out.mean_sc_pct
        );
    }
}
