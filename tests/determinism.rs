//! End-to-end determinism: the whole stack — network generation, fleet
//! synthesis, weather/availability/traffic realisations, trip generation,
//! ranking — is a pure function of its seeds. Reproducibility is what
//! makes the evaluation's error bars meaningful.

use chargers::{synth_fleet, FleetParams};
use ec_types::ChargerId;
use ecocharge_core::{CknnQuery, EcoCharge, EcoChargeConfig, QueryCtx};
use eis::{InfoServer, SimProviders};
use trajgen::{Dataset, DatasetKind, DatasetScale};

fn full_run(seed: u64) -> Vec<Vec<ChargerId>> {
    let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::smoke(), seed);
    let fleet =
        synth_fleet(&dataset.graph, &FleetParams { count: 120, seed, ..Default::default() });
    let sims = SimProviders::new(seed);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&dataset.graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let trip = &dataset.trips[0];
    let query = CknnQuery::new(&ctx, trip).unwrap();
    let mut method = EcoCharge::new();
    query.run(&ctx, trip, &mut method).unwrap().into_iter().map(|(_, t)| t.charger_ids()).collect()
}

#[test]
fn identical_seeds_identical_rankings() {
    let a = full_run(123);
    let b = full_run(123);
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn different_seeds_different_worlds() {
    let a = full_run(123);
    let b = full_run(124);
    // The whole world differs; identical ranking sequences would indicate
    // a seed being ignored somewhere.
    assert_ne!(a, b);
}

#[test]
fn caches_do_not_change_results_only_cost() {
    // Run the same trip through a shared server twice: the second pass is
    // fully cache-hot. Rankings must be identical.
    let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 5);
    let fleet =
        synth_fleet(&dataset.graph, &FleetParams { count: 120, seed: 5, ..Default::default() });
    let sims = SimProviders::new(5);
    let server = InfoServer::from_sims(sims.clone());
    let ctx = QueryCtx::new(&dataset.graph, &fleet, &server, &sims, EcoChargeConfig::default());
    let trip = &dataset.trips[0];
    let query = CknnQuery::new(&ctx, trip).unwrap();

    let mut m1 = EcoCharge::new();
    let cold: Vec<_> =
        query.run(&ctx, trip, &mut m1).unwrap().into_iter().map(|(_, t)| t.charger_ids()).collect();
    let (hits_cold, _) = server.cache_stats();

    let mut m2 = EcoCharge::new();
    let warm: Vec<_> =
        query.run(&ctx, trip, &mut m2).unwrap().into_iter().map(|(_, t)| t.charger_ids()).collect();
    let (hits_warm, _) = server.cache_stats();

    assert_eq!(cold, warm, "cache state leaked into rankings");
    assert!(hits_warm > hits_cold, "second pass must actually hit the caches");
}

/// Full OfferingTables (scores, intervals, split metadata — not just the
/// charger id sequence) for every trip at a given worker-thread count.
fn full_tables(
    threads: usize,
    method: &mut dyn ecocharge_core::RankingMethod,
) -> Vec<Vec<(f64, ecocharge_core::OfferingTable)>> {
    let dataset = Dataset::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 11);
    let fleet =
        synth_fleet(&dataset.graph, &FleetParams { count: 120, seed: 11, ..Default::default() });
    let sims = SimProviders::new(11);
    let server = InfoServer::from_sims(sims.clone());
    let config = EcoChargeConfig { threads, ..EcoChargeConfig::default() };
    let ctx = QueryCtx::new(&dataset.graph, &fleet, &server, &sims, config);
    dataset
        .trips
        .iter()
        .take(3)
        .map(|trip| {
            let query = CknnQuery::new(&ctx, trip).unwrap();
            query
                .run(&ctx, trip, method)
                .unwrap()
                .into_iter()
                .map(|(sp, t)| (sp.offset_m, t))
                .collect()
        })
        .collect()
}

#[test]
fn parallel_ranking_bit_identical_to_sequential() {
    // The tentpole guarantee: the work-stealing engine must not perturb a
    // single bit of any Offering Table, across whole trips and warm
    // per-trip caches. OfferingTable is PartialEq over every field, so
    // this is a full bit-identity check, not a top-k id comparison.
    let mut seq_m = EcoCharge::new();
    let seq = full_tables(1, &mut seq_m);
    for threads in [2, 4] {
        let mut par_m = EcoCharge::new();
        assert_eq!(seq, full_tables(threads, &mut par_m), "threads={threads} diverged");
    }
    assert!(!seq.is_empty());
}

#[test]
fn parallel_baseline_bit_identical_to_sequential() {
    // Same guarantee for the exact Brute-Force baseline (its parallel
    // path shares scratch engines from the context pool).
    let mut seq_m = ecocharge_core::BruteForce::new();
    let seq = full_tables(1, &mut seq_m);
    let mut par_m = ecocharge_core::BruteForce::new();
    assert_eq!(seq, full_tables(4, &mut par_m));
    assert!(!seq.is_empty());
}
