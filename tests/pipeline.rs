//! End-to-end pipeline integration: every dataset preset, every method,
//! the full CkNN-EC loop, refereed by the oracle — the miniature version
//! of the Figure 6 evaluation with hard assertions on its shape.

use chargers::{synth_fleet, FleetParams};
use ecocharge_core::{
    evaluate_method, BruteForce, EcoCharge, EcoChargeConfig, IndexQuadtree, Oracle, QueryCtx,
    RandomPick, Weights,
};
use eis::{InfoServer, SimProviders};
use trajgen::{Dataset, DatasetKind, DatasetScale};

struct World {
    dataset: Dataset,
    fleet: chargers::ChargerFleet,
    sims: SimProviders,
    server: InfoServer,
}

impl World {
    fn build(kind: DatasetKind) -> Self {
        let dataset = Dataset::build(kind, DatasetScale::smoke(), 11);
        let fleet = synth_fleet(
            &dataset.graph,
            &FleetParams {
                count: 200.min(dataset.graph.num_nodes()),
                seed: 11,
                ..Default::default()
            },
        );
        let sims = SimProviders::new(11);
        let server = InfoServer::from_sims(sims.clone());
        Self { dataset, fleet, sims, server }
    }

    fn ctx(&self) -> QueryCtx<'_> {
        QueryCtx::new(
            &self.dataset.graph,
            &self.fleet,
            &self.server,
            &self.sims,
            EcoChargeConfig::default(),
        )
    }
}

fn shape_check(kind: DatasetKind) {
    // The cost-ordering claims below compare wall-clock means, and the
    // per-dataset shape tests run concurrently in this binary: a sibling
    // test's Brute-Force loop stealing cores mid-measurement can erase a
    // genuine 5x gap. Timing sections therefore run one dataset at a
    // time; the lock covers the measurements, not the world build.
    static TIMING: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let w = World::build(kind);
    let ctx = w.ctx();
    let _serial = TIMING.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let trips = &w.dataset.trips[..2.min(w.dataset.trips.len())];
    let mut oracle = Oracle::new(Weights::awe());

    let mut bf = BruteForce::new();
    let bf_out = evaluate_method(&ctx, trips, &mut bf, &mut oracle).unwrap();
    let mut qt = IndexQuadtree::new();
    let qt_out = evaluate_method(&ctx, trips, &mut qt, &mut oracle).unwrap();
    let mut rnd = RandomPick::new(5);
    let rnd_out = evaluate_method(&ctx, trips, &mut rnd, &mut oracle).unwrap();
    let mut eco = EcoCharge::new();
    let eco_out = evaluate_method(&ctx, trips, &mut eco, &mut oracle).unwrap();

    // Everyone produced tables.
    for out in [&bf_out, &qt_out, &rnd_out, &eco_out] {
        assert!(out.tables > 0, "{kind:?}/{}: no tables", out.method);
    }
    // Brute-Force is the 100 % line.
    assert!((bf_out.mean_sc_pct - 100.0).abs() < 1e-6, "{kind:?}: BF {}", bf_out.mean_sc_pct);
    // EcoCharge is near-optimal and clearly beats Random.
    assert!(eco_out.mean_sc_pct > 85.0, "{kind:?}: EcoCharge {}", eco_out.mean_sc_pct);
    assert!(
        eco_out.mean_sc_pct > rnd_out.mean_sc_pct,
        "{kind:?}: EcoCharge {} vs Random {}",
        eco_out.mean_sc_pct,
        rnd_out.mean_sc_pct
    );
    // Random is the floor of the scored methods.
    assert!(rnd_out.mean_sc_pct < qt_out.mean_sc_pct, "{kind:?}: Random beat Quadtree");
    // Cost ordering: the naive exhaustive loop dominates everything.
    assert!(
        bf_out.mean_ft_ms > qt_out.mean_ft_ms,
        "{kind:?}: BF {} !> QT {}",
        bf_out.mean_ft_ms,
        qt_out.mean_ft_ms
    );
    assert!(
        bf_out.mean_ft_ms > eco_out.mean_ft_ms * 5.0,
        "{kind:?}: BF {} not ≫ EcoCharge {}",
        bf_out.mean_ft_ms,
        eco_out.mean_ft_ms
    );
}

#[test]
fn oldenburg_pipeline_shape() {
    shape_check(DatasetKind::Oldenburg);
}

#[test]
fn california_pipeline_shape() {
    shape_check(DatasetKind::California);
}

#[test]
fn tdrive_pipeline_shape() {
    shape_check(DatasetKind::TDrive);
}

#[test]
fn geolife_pipeline_shape() {
    shape_check(DatasetKind::Geolife);
}

#[test]
fn radius_sweep_monotone_candidates() {
    // Growing R can only grow the candidate pool a full solve examines.
    let w = World::build(DatasetKind::Oldenburg);
    let trip = &w.dataset.trips[0];
    let pos = trip.position_at_offset(&w.dataset.graph, 0.0);
    let mut last = 0;
    for r in [10.0, 25.0, 50.0, 75.0] {
        let n = w.fleet.within_radius(&pos, r * 1_000.0).len();
        assert!(n >= last, "R={r}: {n} < {last}");
        last = n;
    }
    assert!(last > 0);
}
