//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` locks behind the (panic-free, non-poisoning) API
//! shape of `parking_lot`. Poisoned locks are recovered rather than
//! propagated: a panic while holding one of these locks already aborts the
//! surrounding test or request, and the guarded data in this workspace is
//! plain-old-data cache state that stays internally consistent.

use std::fmt;
use std::sync::{self, LockResult};

/// Mirror of `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Mirror of `parking_lot::MutexGuard`.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock, blocking until acquired. Never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.inner.lock())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Mirror of `parking_lot::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Mirror of `parking_lot::RwLockReadGuard`.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Mirror of `parking_lot::RwLockWriteGuard`.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never returns a poison error.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.inner.read())
    }

    /// Acquire an exclusive write guard. Never returns a poison error.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.inner.write())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

fn recover<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u32);
        *m.lock() += 41;
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7u32);
        let a = l.read();
        let b = l.read();
        assert_eq!((*a, *b), (7, 7));
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn locks_are_shareable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
