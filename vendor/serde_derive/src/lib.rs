//! Offline shim for `serde_derive`.
//!
//! The sibling `serde` shim blanket-implements its marker traits, so these
//! derives only need to (a) exist under the expected names and (b) accept
//! the inert `#[serde(...)]` helper attribute. They expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
