//! Offline shim for the `serde` façade.
//!
//! This workspace builds in environments with no crates.io access, so the
//! real `serde` cannot be fetched. The codebase uses serde purely as a
//! *type-level contract* — `#[derive(Serialize, Deserialize)]` pins which
//! public types are wire-format-capable; no serializer backend is linked
//! (see `tests/serde_roundtrip.rs`). This shim preserves that contract
//! surface: the trait names, the `de::DeserializeOwned` bound alias, and
//! the derive macros (re-exported from the sibling no-op `serde_derive`).
//!
//! The traits are blanket-implemented: swapping in the real `serde` is a
//! one-line `Cargo.toml` change and strictly *narrows* what compiles, so
//! nothing in this workspace can silently depend on the relaxation.

pub use serde_derive::{Deserialize, Serialize};

/// Type-level marker matching `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Type-level marker matching `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Deserialisation-side traits (`serde::de`).
pub mod de {
    /// Type-level marker matching `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: for<'de> super::Deserialize<'de> {}
    impl<T> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    fn assert_contract<T: crate::Serialize + crate::de::DeserializeOwned>() {}

    #[test]
    fn traits_are_nameable_and_bounds_compose() {
        assert_contract::<u64>();
        assert_contract::<String>();
        assert_contract::<Vec<(f64, f64)>>();
    }

    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
    struct Derived {
        x: f64,
    }

    #[derive(crate::Serialize, crate::Deserialize)]
    #[allow(dead_code)] // only the derive expansion is under test
    enum DerivedEnum {
        A,
        B(u32),
    }

    #[test]
    fn derive_macros_accept_structs_and_enums() {
        assert_contract::<Derived>();
        assert_contract::<DerivedEnum>();
        assert_eq!(Derived { x: 1.0 }, Derived { x: 1.0 });
    }
}
