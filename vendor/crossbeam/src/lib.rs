//! Offline shim for `crossbeam`.
//!
//! Provides the subset of `crossbeam::channel` the workspace uses
//! (`unbounded`, `bounded`, cloneable `Sender`, `Receiver`) on top of
//! `std::sync::mpsc`. std's bounded flavour (`SyncSender`) is a distinct
//! type, so `Sender` is an enum over both; cloning a bounded sender is
//! supported because `SyncSender` is itself `Clone`.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Mirror of `crossbeam::channel::Sender`.
    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Sender<T> {
        /// Send `value`, blocking if the channel is bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(tx) => tx.send(value),
                Sender::Bounded(tx) => tx.send(value),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(tx) => Sender::Unbounded(tx.clone()),
                Sender::Bounded(tx) => Sender::Bounded(tx.clone()),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// Mirror of `crossbeam::channel::Receiver`.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator over received values.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver { inner: rx })
    }

    /// Channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip_with_cloned_sender() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn bounded_roundtrip_across_threads() {
            let (tx, rx) = bounded::<u32>(1);
            let h = std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.iter().collect();
            h.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert!(rx.recv().is_err());
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }
    }
}
