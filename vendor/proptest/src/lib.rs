//! Offline shim for `proptest`.
//!
//! A deterministic mini property-test runner exposing the subset of the
//! proptest surface this workspace uses: the `proptest!` / `prop_assert!`
//! / `prop_assert_eq!` macros, `Strategy` with `prop_map`, range and tuple
//! strategies, `any::<T>()`, `prop::collection::vec`, and
//! `ProptestConfig { cases, .. }`.
//!
//! Unlike upstream proptest there is no OS-entropy seeding and no
//! shrinking: every case is generated from a SplitMix64 stream seeded by a
//! hash of the test name, so failures reproduce bit-identically on every
//! run — matching the repo-wide determinism discipline. A failing case
//! reports its case index; rerunning the same test replays it exactly.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Value generator. Mirror of `proptest::strategy::Strategy`, minus
    /// shrinking: `generate` plays the role of `new_tree` + `current`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            debug_assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty int range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty int range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3), (A.0, B.1, C.2, D.3, E.4));

    /// Mirror of `proptest::strategy::Just`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Primitive types with a full-domain generator, for `any::<T>()`.
    pub trait ArbitraryPrim {
        fn arbitrary_from(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryPrim for $t {
                fn arbitrary_from(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryPrim for bool {
        fn arbitrary_from(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryPrim for f64 {
        fn arbitrary_from(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric spread; full bit-pattern floats (NaN,
            // infinities) are not useful defaults for this workspace.
            (rng.next_f64() - 0.5) * 2.0e9
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryPrim> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_from(rng)
        }
    }

    /// Mirror of `proptest::prelude::any`.
    pub fn any<T: ArbitraryPrim>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds for [`vec`]; half-open like upstream's default.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    /// SplitMix64 stream driving all generation. Deliberately the same
    /// generator family as `ec_types::rng::SplitMix64` (kept local so the
    /// shim has no workspace dependencies).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Mirror of `proptest::test_runner::Config` under its prelude name.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Constructor namespace matching `proptest::test_runner::TestCaseError`.
    /// The shim's case-failure type is plain `String`, so these constructors
    /// return `String` — `return Err(TestCaseError::fail(..))` in test
    /// bodies typechecks exactly as with upstream proptest.
    pub struct TestCaseError;

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> String {
            msg.into()
        }

        pub fn reject(msg: impl Into<String>) -> String {
            msg.into()
        }
    }

    /// Per-property driver used by the expansion of `proptest!`.
    pub struct TestRunner {
        name: &'static str,
        seed: u64,
        cases: u32,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            // FNV-1a over the test name: stable across runs, platforms,
            // and link order, so every property has a fixed private seed.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { name, seed, cases: config.cases }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        pub fn case_rng(&self, case: u32) -> TestRng {
            TestRng::new(self.seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }

        pub fn check(&self, case: u32, outcome: Result<(), String>) {
            if let Err(msg) = outcome {
                panic!(
                    "property `{}` failed at case {}/{} (deterministic seed {:#x}): {}",
                    self.name, case, self.cases, self.seed, msg
                );
            }
        }
    }
}

/// Define deterministic property tests. Mirror of `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($body:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($body)*);
    };
    ($($body:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($body)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.case_rng(case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                runner.check(case, outcome);
            }
        }
    )*};
}

/// Mirror of `proptest::prop_assert!`: fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(
                ::std::format!("prop_assert!({}) failed", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert!({}) failed: {}",
                stringify!($cond),
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "prop_assert_eq!({}, {}) failed: {:?} != {:?}: {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Mirror of `proptest::prop_assume!`: skips the current case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if $cond {
        } else {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn unit_pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0..1.0f64, 0.0..1.0f64).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]
        #[test]
        fn ranges_respect_bounds(x in 0.0..1.0f64, n in 1u64..100, i in -5i32..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..100).contains(&n));
            prop_assert!((-5..5).contains(&i));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(unit_pair(), 0..10), seed in any::<u64>()) {
            prop_assert!(v.len() < 10);
            for (lo, hi) in &v {
                prop_assert!(lo <= hi, "unordered pair from seed {seed}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let runner = crate::test_runner::TestRunner::new(
            crate::test_runner::ProptestConfig::default(),
            "fixed_name",
        );
        let a: Vec<u64> = (0..8).map(|c| runner.case_rng(c).next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|c| runner.case_rng(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}
