//! Offline shim for `criterion`.
//!
//! A minimal wall-clock bench harness exposing the subset of the criterion
//! surface the `ecocharge-bench` targets use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! No warm-up modelling, outlier rejection, or statistical analysis — each
//! benchmark runs `sample_size` timed samples and reports min / mean /
//! max per iteration. Good enough to compare orders of magnitude offline;
//! swap in real criterion when a registry is reachable.

use std::hint::black_box;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 100;

/// Iterations per timed sample: enough to lift sub-microsecond bodies
/// above timer resolution without making slow bodies take minutes.
fn iters_per_sample(probe: Duration) -> u64 {
    if probe >= Duration::from_millis(1) {
        1
    } else {
        let per_iter_ns = probe.as_nanos().max(1);
        ((1_000_000 / per_iter_ns) as u64).clamp(1, 10_000)
    }
}

/// Mirror of `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: DEFAULT_SAMPLE_SIZE }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: DEFAULT_SAMPLE_SIZE }
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_bench(&id.into(), sample_size, f);
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion::Bencher`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut probe = Bencher { iterations: 1, elapsed: Duration::ZERO };
    f(&mut probe);
    let iterations = iters_per_sample(probe.elapsed);

    let mut per_iter: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iterations, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed / u32::try_from(iterations).unwrap_or(u32::MAX));
    }
    let min = per_iter.iter().min().copied().unwrap_or_default();
    let max = per_iter.iter().max().copied().unwrap_or_default();
    let mean = per_iter.iter().sum::<Duration>() / u32::try_from(sample_size.max(1)).unwrap_or(1);
    println!("  {id}: [{min:?} {mean:?} {max:?}] ({sample_size} samples x {iterations} iters)");
}

/// Mirror of `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Mirror of `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags (e.g. --bench); this
            // harness has no filtering, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_samples_and_finishes() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        // probe pass + 3 samples, each at least one iteration
        assert!(runs >= 4);
    }

    #[test]
    fn fast_bodies_get_batched_iterations() {
        assert!(iters_per_sample(Duration::from_nanos(10)) > 1);
        assert_eq!(iters_per_sample(Duration::from_millis(5)), 1);
    }
}
