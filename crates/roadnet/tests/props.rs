//! Property tests for the shortest-path engine and routes on randomly
//! generated networks.

use ec_types::NodeId;
use proptest::prelude::*;
use roadnet::{metric_cost, urban_grid, ChIndex, CostMetric, Route, SearchEngine, UrbanGridParams};

fn grid(seed: u64, side: usize) -> roadnet::RoadGraph {
    urban_grid(&UrbanGridParams { cols: side, rows: side, seed, ..UrbanGridParams::default() })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// d(a,c) ≤ d(a,b) + d(b,c) for shortest-path distances (they form a
    /// quasi-metric).
    #[test]
    fn shortest_paths_satisfy_triangle_inequality(
        seed in 0u64..500, pick in 0u64..1_000_000,
    ) {
        let g = grid(seed, 8);
        let n = g.num_nodes() as u64;
        let a = NodeId((pick % n) as u32);
        let b = NodeId(((pick / n) % n) as u32);
        let c = NodeId(((pick / (n * n)) % n) as u32);
        let mut e = SearchEngine::new();
        let cost = metric_cost(CostMetric::Distance);
        let (Some(ab), Some(bc), Some(ac)) = (
            e.one_to_one(&g, a, b, cost).map(|(c, _)| c),
            e.one_to_one(&g, b, c, cost).map(|(c, _)| c),
            e.one_to_one(&g, a, c, cost).map(|(c, _)| c),
        ) else {
            // Two-way generator output is connected; still, be safe.
            return Ok(());
        };
        prop_assert!(ac <= ab + bc + 1e-6, "d(a,c)={ac} > {ab}+{bc}");
    }

    /// Every prefix of a shortest path is itself shortest.
    #[test]
    fn prefixes_of_shortest_paths_are_shortest(seed in 0u64..500, pick in 0u64..1_000_000) {
        let g = grid(seed, 7);
        let n = g.num_nodes() as u64;
        let a = NodeId((pick % n) as u32);
        let b = NodeId(((pick / n) % n) as u32);
        let mut e = SearchEngine::new();
        let cost = metric_cost(CostMetric::Time);
        let Some((_, path)) = e.one_to_one(&g, a, b, cost) else { return Ok(()) };
        if path.len() < 3 {
            return Ok(());
        }
        // Check the middle node's prefix.
        let mid_idx = path.len() / 2;
        let mid = path[mid_idx];
        let direct = e.one_to_one(&g, a, mid, cost).map(|(c, _)| c).unwrap();
        let route = Route::from_nodes(&g, path[..=mid_idx].to_vec()).unwrap();
        let via = route.cost(&g, CostMetric::Time);
        prop_assert!((via - direct).abs() < 1e-6, "prefix cost {via} vs direct {direct}");
    }

    /// A* always agrees with Dijkstra.
    #[test]
    fn astar_equals_dijkstra(seed in 0u64..500, pick in 0u64..1_000_000) {
        let g = grid(seed, 7);
        let n = g.num_nodes() as u64;
        let a = NodeId((pick % n) as u32);
        let b = NodeId(((pick / n) % n) as u32);
        let mut e = SearchEngine::new();
        for metric in [CostMetric::Distance, CostMetric::Time, CostMetric::Energy, CostMetric::Co2] {
            let d = e.one_to_one(&g, a, b, metric_cost(metric)).map(|(c, _)| c);
            let s = e.astar(&g, a, b, metric).map(|(c, _)| c);
            match (d, s) {
                (Some(d), Some(s)) => prop_assert!((d - s).abs() <= d.max(1.0) * 1e-9),
                (None, None) => {}
                other => prop_assert!(false, "reachability mismatch {other:?}"),
            }
        }
    }

    /// Bounded forward search returns exactly the nodes whose one-to-one
    /// distance fits the budget.
    #[test]
    fn bounded_matches_one_to_one(seed in 0u64..300, origin_pick in 0u64..1_000, budget_km in 0.5..10.0f64) {
        let g = grid(seed, 6);
        let origin = NodeId((origin_pick % g.num_nodes() as u64) as u32);
        let budget = budget_km * 1_000.0;
        let mut e = SearchEngine::new();
        let cost = metric_cost(CostMetric::Distance);
        let settled: std::collections::HashMap<NodeId, f64> =
            e.bounded_from(&g, origin, budget, cost).into_iter().collect();
        for v in 0..g.num_nodes() {
            let v = NodeId::from_index(v);
            let direct = e.one_to_one(&g, origin, v, cost).map(|(c, _)| c);
            match (settled.get(&v), direct) {
                (Some(&s), Some(d)) => prop_assert!((s - d).abs() < 1e-6),
                (None, Some(d)) => prop_assert!(d > budget - 1e-6, "missed {v} at {d} within {budget}"),
                (None, None) => {}
                (Some(_), None) => prop_assert!(false, "settled unreachable node {v}"),
            }
        }
    }

    /// Route distance parameterisation: point_at(offset) advances
    /// monotonically and cost_to_offset is monotone non-decreasing.
    #[test]
    fn route_parameterisation_is_monotone(seed in 0u64..300, pick in 0u64..1_000_000) {
        let g = grid(seed, 7);
        let n = g.num_nodes() as u64;
        let a = NodeId((pick % n) as u32);
        let b = NodeId(((pick / n) % n) as u32);
        if a == b { return Ok(()); }
        let mut e = SearchEngine::new();
        let Some((_, path)) = e.one_to_one(&g, a, b, metric_cost(CostMetric::Distance)) else {
            return Ok(());
        };
        if path.len() < 2 { return Ok(()); }
        let route = Route::from_nodes(&g, path).unwrap();
        let len = route.length_m();
        let mut last_cost = -1.0;
        for i in 0..=10 {
            let off = len * f64::from(i) / 10.0;
            let c = route.cost_to_offset(&g, CostMetric::Energy, off);
            prop_assert!(c >= last_cost - 1e-9, "cost decreased along route");
            last_cost = c;
        }
        prop_assert!((route.cost_to_offset(&g, CostMetric::Energy, len)
            - route.cost(&g, CostMetric::Energy)).abs() < 1e-9);
    }

    /// Generated graphs are fully routable (largest-component pruning).
    #[test]
    fn generated_graphs_are_routable(seed in 0u64..200) {
        let g = grid(seed, 6);
        let mut e = SearchEngine::new();
        let last = NodeId::from_index(g.num_nodes() - 1);
        prop_assert!(e
            .one_to_one(&g, NodeId(0), last, metric_cost(CostMetric::Distance))
            .is_some());
        prop_assert!(e
            .one_to_one(&g, last, NodeId(0), metric_cost(CostMetric::Distance))
            .is_some());
    }

    /// The CH backend is bit-identical to Dijkstra: every metric, both
    /// query directions, duplicate targets, and point-to-point — costs
    /// compared by bit pattern, histograms and paths exactly.
    #[test]
    fn ch_agrees_with_dijkstra_on_random_graphs(seed in 0u64..200, pick in 0u64..1_000_000) {
        let g = grid(seed, 7);
        let n = g.num_nodes() as u64;
        let origin = NodeId((pick % n) as u32);
        let rejoin = NodeId(((pick / n) % n) as u32);
        // A spread of targets, with a deliberate duplicate.
        let mut targets: Vec<NodeId> = (0..8)
            .map(|i| NodeId(((pick / 7 + i * 13) % n) as u32))
            .collect();
        targets.push(targets[2]);

        let mut e = SearchEngine::new();
        for metric in [CostMetric::Distance, CostMetric::Time, CostMetric::Energy, CostMetric::Co2] {
            let ch = ChIndex::build(&g, metric, 1);
            let cost = metric_cost(metric);

            let dij = e.one_to_many_profiled(&g, origin, &targets, cost);
            let got = ch.one_to_many(&g, e.ch_scratch(), origin, &targets);
            for (i, (d, c)) in dij.iter().zip(&got).enumerate() {
                match (d, c) {
                    (Some((dc, dh)), Some(cc)) => {
                        prop_assert_eq!(dc.to_bits(), cc.cost.to_bits(),
                            "fwd cost mismatch t{} {metric:?}: {dc} vs {}", i, cc.cost);
                        prop_assert_eq!(*dh, cc.class_len_m, "fwd histogram mismatch t{}", i);
                    }
                    (None, None) => {}
                    other => prop_assert!(false, "fwd reachability mismatch {other:?}"),
                }
            }

            let dij = e.many_to_one_profiled(&g, rejoin, &targets, cost);
            let got = ch.many_to_one(&g, e.ch_scratch(), rejoin, &targets);
            for (i, (d, c)) in dij.iter().zip(&got).enumerate() {
                match (d, c) {
                    (Some((dc, dh)), Some(cc)) => {
                        prop_assert_eq!(dc.to_bits(), cc.cost.to_bits(),
                            "rev cost mismatch s{} {metric:?}: {dc} vs {}", i, cc.cost);
                        prop_assert_eq!(*dh, cc.class_len_m, "rev histogram mismatch s{}", i);
                    }
                    (None, None) => {}
                    other => prop_assert!(false, "rev reachability mismatch {other:?}"),
                }
            }

            let dij = e.one_to_one(&g, origin, rejoin, cost);
            let got = ch.one_to_one(&g, e.ch_scratch(), origin, rejoin);
            match (dij, got) {
                (Some((dc, dp)), Some((cc, cp))) => {
                    prop_assert_eq!(dc.to_bits(), cc.to_bits(), "p2p cost mismatch {metric:?}");
                    prop_assert_eq!(dp, cp, "p2p path mismatch {metric:?}");
                }
                (None, None) => {}
                other => prop_assert!(false, "p2p reachability mismatch {other:?}"),
            }
        }
    }

    /// The bidirectional point-to-point engine agrees with unidirectional
    /// Dijkstra up to floating-point summation order (the two frontiers
    /// meet in the middle, so the cost can differ in the last ulp).
    #[test]
    fn point_to_point_matches_one_to_one(seed in 0u64..300, pick in 0u64..1_000_000) {
        let g = grid(seed, 7);
        let n = g.num_nodes() as u64;
        let a = NodeId((pick % n) as u32);
        let b = NodeId(((pick / n) % n) as u32);
        let mut e = SearchEngine::new();
        for metric in [CostMetric::Distance, CostMetric::Time, CostMetric::Energy, CostMetric::Co2] {
            let cost = metric_cost(metric);
            let uni = e.one_to_one(&g, a, b, cost).map(|(c, _)| c);
            let bidi = e.point_to_point(&g, a, b, cost).map(|(c, _)| c);
            match (uni, bidi) {
                (Some(u), Some(d)) => {
                    prop_assert!((u - d).abs() <= u.max(1.0) * 1e-12, "{metric:?}: {u} vs {d}");
                }
                (None, None) => {}
                other => prop_assert!(false, "reachability mismatch {other:?}"),
            }
        }
    }
}
