//! Contraction-Hierarchy preprocessing (the detour engine's index).
//!
//! A [`ChIndex`] is built once per [`CostMetric`] and graph, then answers
//! point-to-point and batched one-to-many / many-to-one queries by
//! searching only *upward* in a node hierarchy — a few dozen settled
//! nodes where plain Dijkstra settles most of the network.
//!
//! ## Determinism rules (see DESIGN.md §4f)
//!
//! The index must be a pure function of `(graph, metric, seed)` so every
//! worker, thread count and run builds the same hierarchy:
//!
//! 1. **Ordering** is lazy edge-difference: a node's priority is
//!    `shortcuts_added − incident_arcs + contracted_neighbours`. Ties are
//!    broken by a seeded hash of the node id, then the node id itself —
//!    a strict total order, so the contraction sequence is unique.
//! 2. **Initial priorities** are computed in parallel with
//!    [`ec_exec::parallel_map`] (one independent witness-search
//!    simulation per node, results in pre-indexed slots); the contraction
//!    loop itself is sequential, so the shortcut set never depends on the
//!    thread count.
//! 3. **Witness searches** are bounded (settle cap
//!    [`WITNESS_SETTLE_LIMIT`]) local Dijkstras with a deterministic
//!    heap order. A missed witness only *adds* a redundant shortcut —
//!    never harms correctness, only index size.
//! 4. **Parallel arcs** are deduplicated up front keeping the minimum
//!    weight and, among equal weights, the smallest edge id — exactly the
//!    arc plain Dijkstra's strict-`<` relaxation would choose as parent.
//!
//! Shortcut arcs remember their two child arcs, so every query can unpack
//! its up-down path back to original edge ids and re-sum the cost in the
//! same fold order as the Dijkstra engine — that is what makes the two
//! backends **bit-identical**, not merely close (see `ch_query`).

use crate::edge::CostMetric;
use crate::graph::RoadGraph;
use serde::{Deserialize, Serialize};
use spatial_index::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which engine answers detour (derouting) queries.
///
/// `Auto` is the default: neither static choice wins everywhere (CH loses
/// on the small paper graphs where the sweeps settle the whole network
/// faster than the bucket scans pay off, and wins by large factors on
/// metro-scale grids), so the backend is resolved once per query context
/// from the [`crate::adaptive::BackendCostModel`] over the graph size and
/// the candidate fan-out. Both concrete engines are bit-identical, so the
/// resolution affects latency only, never Offering-Table bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetourBackend {
    /// Batched plain Dijkstra sweeps (no preprocessing, lowest memory).
    Dijkstra,
    /// Contraction-Hierarchy index (preprocessing once per graph, then
    /// microsecond queries; results bit-identical to Dijkstra).
    Ch,
    /// Pick per graph/query shape from the calibrated cost model.
    #[default]
    Auto,
}

impl DetourBackend {
    /// The concrete engines `Auto` resolves between, Dijkstra (the
    /// reference) first. Sweeps that time or cross-check backends iterate
    /// this pair; `Auto` is a selection policy, not a third engine.
    pub const ALL: [Self; 2] = [Self::Dijkstra, Self::Ch];

    /// CLI/JSON label.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Dijkstra => "dijkstra",
            Self::Ch => "ch",
            Self::Auto => "auto",
        }
    }

    /// Parse a CLI label (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "dijkstra" => Some(Self::Dijkstra),
            "ch" => Some(Self::Ch),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }
}

/// Witness searches stop after settling this many nodes. A missed
/// witness only inserts a redundant shortcut — correctness is never at
/// stake — but redundant shortcuts compound: they densify the remaining
/// graph, which makes later contractions insert even more, bloating the
/// upward/downward search spaces every query then pays for. The budget
/// is sized so city-scale grids (tens of thousands of nodes) keep a
/// lean hierarchy; on the small evaluation networks the searches
/// exhaust well before the cap anyway.
pub const WITNESS_SETTLE_LIMIT: usize = 256;

/// Default ordering tie-break seed (any constant works; fixed so every
/// build of the same graph agrees).
pub const DEFAULT_CH_SEED: u64 = 0xec0c_4a6e;

const ORIGINAL: u32 = u32::MAX;
pub(crate) const NO_ARC: u32 = u32::MAX;

/// Globally unique index ids, used by the query scratch to key its
/// bucket cache without risking pointer reuse (ABA).
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// The arc arena: original arcs first, shortcuts appended during
/// contraction. A shortcut stores its two child arc ids so paths unpack
/// recursively down to original edge ids.
#[derive(Debug, Default)]
pub(crate) struct Arcs {
    pub tail: Vec<u32>,
    pub head: Vec<u32>,
    pub weight: Vec<f64>,
    /// First child arc, or [`ORIGINAL`] for an original arc.
    pub child_a: Vec<u32>,
    /// Second child arc, or the original edge id.
    pub child_b: Vec<u32>,
}

impl Arcs {
    fn push(&mut self, tail: u32, head: u32, weight: f64, child_a: u32, child_b: u32) -> u32 {
        let id = u32::try_from(self.tail.len()).expect("arc count fits in u32");
        self.tail.push(tail);
        self.head.push(head);
        self.weight.push(weight);
        self.child_a.push(child_a);
        self.child_b.push(child_b);
        id
    }

    #[inline]
    pub(crate) fn is_original(&self, arc: u32) -> bool {
        self.child_a[arc as usize] == ORIGINAL
    }

    /// Append the original arcs under `arc` (pre-order, which is forward
    /// path order) to `out`.
    pub(crate) fn unpack_into(&self, arc: u32, out: &mut Vec<u32>, stack: &mut Vec<u32>) {
        stack.clear();
        stack.push(arc);
        while let Some(a) = stack.pop() {
            if self.is_original(a) {
                out.push(a);
            } else {
                // Push right child first so the left pops (emits) first.
                stack.push(self.child_b[a as usize]);
                stack.push(self.child_a[a as usize]);
            }
        }
    }

    /// The original graph edge id behind an original arc.
    #[inline]
    pub(crate) fn edge_id(&self, arc: u32) -> usize {
        debug_assert!(self.is_original(arc));
        self.child_b[arc as usize] as usize
    }
}

/// A contraction hierarchy over one `(graph, metric)` pair.
#[derive(Debug)]
pub struct ChIndex {
    metric: CostMetric,
    uid: u64,
    /// Contraction order: `rank[v]` is unique, higher = contracted later.
    rank: Vec<u32>,
    pub(crate) arcs: Arcs,
    /// Upward CSR by tail: arcs with `rank[tail] < rank[head]`.
    up_off: Vec<u32>,
    up_arc: Vec<u32>,
    /// Downward-in CSR by head: arcs with `rank[head] < rank[tail]`,
    /// traversed tail-ward by the backward search.
    down_off: Vec<u32>,
    down_arc: Vec<u32>,
    shortcuts: usize,
    /// Per-original-edge metric cost / class tag / length — the exact
    /// `f64` values `RoadGraph::edge_cost`/`edge_class`/`edge_len_m`
    /// return, cached flat so path re-summation skips the per-edge
    /// division. Values and fold order are unchanged, so bit-identity
    /// with the Dijkstra backend is unaffected.
    pub(crate) orig_cost: Vec<f64>,
    pub(crate) orig_class_tag: Vec<u8>,
    pub(crate) orig_len_m: Vec<f64>,
}

/// One shortcut candidate produced by a contraction simulation.
struct Shortcut {
    from: u32,
    to: u32,
    weight: f64,
    child_a: u32,
    child_b: u32,
}

/// Reusable witness-search scratch (one per build worker).
#[derive(Default)]
struct Witness {
    dist: Vec<f64>,
    stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
}

impl Witness {
    fn dist_of(&self, v: u32) -> f64 {
        if self.stamp[v as usize] == self.generation {
            self.dist[v as usize]
        } else {
            f64::INFINITY
        }
    }

    /// Bounded Dijkstra from `source` over the remaining (uncontracted)
    /// graph, skipping `skip` — the node whose contraction is simulated.
    fn search(
        &mut self,
        out: &[Vec<(u32, u32)>],
        arcs: &Arcs,
        contracted: &[bool],
        source: u32,
        skip: u32,
        bound: f64,
    ) {
        let n = out.len();
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.stamp.resize(n, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
        self.dist[source as usize] = 0.0;
        self.stamp[source as usize] = self.generation;
        self.heap.push(Reverse((OrdF64::new(0.0), source)));
        let mut settles = WITNESS_SETTLE_LIMIT;
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let d = d.get();
            if d > self.dist_of(v) {
                continue;
            }
            if d > bound || settles == 0 {
                break;
            }
            settles -= 1;
            for &(u, arc) in &out[v as usize] {
                if u == skip || contracted[u as usize] {
                    continue;
                }
                let nd = d + arcs.weight[arc as usize];
                if nd < self.dist_of(u) {
                    self.dist[u as usize] = nd;
                    self.stamp[u as usize] = self.generation;
                    self.heap.push(Reverse((OrdF64::new(nd), u)));
                }
            }
        }
    }
}

/// Simulate contracting `v`: the shortcuts it would need and its lazy
/// edge-difference priority.
fn simulate(
    out: &[Vec<(u32, u32)>],
    inn: &[Vec<(u32, u32)>],
    arcs: &Arcs,
    contracted: &[bool],
    deleted_neighbours: u32,
    wit: &mut Witness,
    v: u32,
) -> (i64, Vec<Shortcut>) {
    let ins: Vec<(u32, f64, u32)> = inn[v as usize]
        .iter()
        .filter(|&&(u, _)| u != v && !contracted[u as usize])
        .map(|&(u, arc)| (u, arcs.weight[arc as usize], arc))
        .collect();
    let outs: Vec<(u32, f64, u32)> = out[v as usize]
        .iter()
        .filter(|&&(u, _)| u != v && !contracted[u as usize])
        .map(|&(u, arc)| (u, arcs.weight[arc as usize], arc))
        .collect();

    let mut shortcuts = Vec::new();
    for &(u, w1, arc_in) in &ins {
        let mut bound = f64::NEG_INFINITY;
        for &(x, w2, _) in &outs {
            if x != u {
                bound = bound.max(w1 + w2);
            }
        }
        if bound == f64::NEG_INFINITY {
            continue; // no targets besides u itself
        }
        wit.search(out, arcs, contracted, u, v, bound);
        for &(x, w2, arc_out) in &outs {
            if x == u {
                continue;
            }
            let via = w1 + w2;
            if wit.dist_of(x) <= via {
                continue; // a witness path avoids v
            }
            shortcuts.push(Shortcut {
                from: u,
                to: x,
                weight: via,
                child_a: arc_in,
                child_b: arc_out,
            });
        }
    }
    let priority =
        shortcuts.len() as i64 - (ins.len() + outs.len()) as i64 + i64::from(deleted_neighbours);
    (priority, shortcuts)
}

/// Insert a shortcut keeping at most one arc per `(from, to)` pair —
/// the lighter one (matching Dijkstra's strict-`<` relaxation, which
/// never switches to an equal-weight alternative).
fn insert_shortcut(
    out: &mut [Vec<(u32, u32)>],
    inn: &mut [Vec<(u32, u32)>],
    arcs: &mut Arcs,
    s: &Shortcut,
) {
    if let Some(slot) = out[s.from as usize].iter().position(|&(h, _)| h == s.to) {
        let existing = out[s.from as usize][slot].1;
        if arcs.weight[existing as usize] <= s.weight {
            return; // the existing arc is at least as good
        }
        let id = arcs.push(s.from, s.to, s.weight, s.child_a, s.child_b);
        out[s.from as usize][slot].1 = id;
        let back = inn[s.to as usize]
            .iter()
            .position(|&(_, a)| a == existing)
            .expect("in-adjacency mirrors out-adjacency");
        inn[s.to as usize][back].1 = id;
    } else {
        let id = arcs.push(s.from, s.to, s.weight, s.child_a, s.child_b);
        out[s.from as usize].push((s.to, id));
        inn[s.to as usize].push((s.from, id));
    }
}

impl ChIndex {
    /// Build the hierarchy for `(g, metric)` with the default seed.
    /// `threads` parallelises the initial-priority pass only — the result
    /// is bit-identical at any thread count.
    #[must_use]
    pub fn build(g: &RoadGraph, metric: CostMetric, threads: usize) -> Self {
        Self::build_seeded(g, metric, threads, DEFAULT_CH_SEED)
    }

    /// [`Self::build`] with an explicit ordering tie-break seed.
    #[must_use]
    pub fn build_seeded(g: &RoadGraph, metric: CostMetric, threads: usize, seed: u64) -> Self {
        let n = g.num_nodes();

        // 1. Initial arcs, parallel edges deduplicated: keep the minimum
        // weight, tie-broken by the smallest edge id (the arc Dijkstra's
        // ascending-edge-id relaxation with strict `<` settles on).
        let mut raw: Vec<(u32, u32, f64, u32)> = Vec::with_capacity(g.num_edges());
        for v in 0..n {
            for (e, u) in g.out_edges(ec_types::NodeId::from_index(v)) {
                raw.push((
                    v as u32,
                    u.0,
                    g.edge_cost(e, metric),
                    u32::try_from(e).expect("edge id fits in u32"),
                ));
            }
        }
        raw.sort_by(|a, b| {
            (a.0, a.1, OrdF64::new(a.2), a.3).cmp(&(b.0, b.1, OrdF64::new(b.2), b.3))
        });
        raw.dedup_by_key(|&mut (t, h, _, _)| (t, h));

        let mut arcs = Arcs::default();
        let mut out: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut inn: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for &(t, h, w, e) in &raw {
            let id = arcs.push(t, h, w, ORIGINAL, e);
            out[t as usize].push((h, id));
            inn[h as usize].push((t, id));
        }

        // 2. Seeded tie-breaks: a strict total order on nodes.
        let tie: Vec<u64> = (0..n as u64).map(|v| ec_types::rng::mix(seed, v)).collect();

        // 3. Initial priorities — one independent simulation per node,
        // fanned out over `threads` workers with per-worker witness
        // scratch. Pre-indexed result slots keep this bit-identical to
        // the sequential pass.
        let contracted = vec![false; n];
        let ids: Vec<u32> = (0..n as u32).collect();
        let priorities: Vec<i64> = ec_exec::parallel_map(
            threads.max(1),
            &ids,
            |_| Witness::default(),
            |wit, _, &v| simulate(&out, &inn, &arcs, &contracted, 0, wit, v).0,
        );
        let mut contracted = contracted;

        let mut heap: BinaryHeap<Reverse<(i64, u64, u32)>> =
            (0..n as u32).map(|v| Reverse((priorities[v as usize], tie[v as usize], v))).collect();

        // 4. Lazy contraction: re-simulate on pop; contract only while
        // still no worse than the next candidate, else re-queue.
        let mut rank = vec![0u32; n];
        let mut deleted = vec![0u32; n];
        let mut wit = Witness::default();
        let mut next_rank = 0u32;
        let mut shortcut_count = 0usize;
        while let Some(Reverse((_, _, v))) = heap.pop() {
            if contracted[v as usize] {
                continue;
            }
            let (priority, shortcuts) =
                simulate(&out, &inn, &arcs, &contracted, deleted[v as usize], &mut wit, v);
            if let Some(&Reverse(top)) = heap.peek() {
                if (priority, tie[v as usize], v) > top {
                    heap.push(Reverse((priority, tie[v as usize], v)));
                    continue;
                }
            }
            for s in &shortcuts {
                insert_shortcut(&mut out, &mut inn, &mut arcs, s);
            }
            shortcut_count += shortcuts.len();
            contracted[v as usize] = true;
            rank[v as usize] = next_rank;
            next_rank += 1;
            for &(u, _) in &out[v as usize] {
                if !contracted[u as usize] {
                    deleted[u as usize] += 1;
                }
            }
            for &(u, _) in &inn[v as usize] {
                if !contracted[u as usize] {
                    deleted[u as usize] += 1;
                }
            }
        }

        // 5. Split the final adjacency into upward / downward CSR.
        let mut up: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut down: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            for &(h, arc) in &out[v] {
                if rank[v] < rank[h as usize] {
                    up[v].push(arc);
                } else {
                    down[h as usize].push(arc);
                }
            }
        }
        let (up_off, up_arc) = to_csr(&up);
        let (down_off, down_arc) = to_csr(&down);

        let m = g.num_edges();
        Self {
            metric,
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            rank,
            arcs,
            up_off,
            up_arc,
            down_off,
            down_arc,
            shortcuts: shortcut_count,
            orig_cost: (0..m).map(|e| g.edge_cost(e, metric)).collect(),
            orig_class_tag: (0..m).map(|e| g.edge_class(e).tag()).collect(),
            orig_len_m: (0..m).map(|e| g.edge_len_m(e)).collect(),
        }
    }

    /// The metric this index was built for.
    #[must_use]
    pub fn metric(&self) -> CostMetric {
        self.metric
    }

    /// Globally unique id of this index (bucket-cache key).
    #[must_use]
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Number of shortcut arcs inserted during preprocessing.
    #[must_use]
    pub fn num_shortcuts(&self) -> usize {
        self.shortcuts
    }

    /// Number of nodes covered by the hierarchy.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.rank.len()
    }

    /// Upward arcs out of `v` (forward search space).
    #[inline]
    pub(crate) fn up_arcs(&self, v: u32) -> &[u32] {
        &self.up_arc[self.up_off[v as usize] as usize..self.up_off[v as usize + 1] as usize]
    }

    /// Downward arcs into `v` (backward search space, traversed
    /// tail-ward).
    #[inline]
    pub(crate) fn down_arcs(&self, v: u32) -> &[u32] {
        &self.down_arc[self.down_off[v as usize] as usize..self.down_off[v as usize + 1] as usize]
    }
}

fn to_csr(adj: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
    let mut off = Vec::with_capacity(adj.len() + 1);
    let mut flat = Vec::with_capacity(adj.iter().map(Vec::len).sum());
    off.push(0u32);
    for list in adj {
        flat.extend_from_slice(list);
        off.push(u32::try_from(flat.len()).expect("arc count fits in u32"));
    }
    (off, flat)
}

/// The pair of hierarchies the detour computation needs: travel **time**
/// (for ETA) and **energy** (for the out-and-back derouting cost). Built
/// once per graph and shared read-only across workers.
#[derive(Debug)]
pub struct DetourCh {
    /// Hierarchy under [`CostMetric::Time`].
    pub time: ChIndex,
    /// Hierarchy under [`CostMetric::Energy`].
    pub energy: ChIndex,
}

impl DetourCh {
    /// Build both hierarchies (sequentially; each parallelises its
    /// initial-priority pass over `threads`).
    #[must_use]
    pub fn build(g: &RoadGraph, threads: usize) -> Self {
        Self {
            time: ChIndex::build(g, CostMetric::Time, threads),
            energy: ChIndex::build(g, CostMetric::Energy, threads),
        }
    }
}
