//! Road classes and the per-edge cost model.
//!
//! The paper models the network as a directed weighted graph where an edge
//! weight `w(u,v)` can be "the length of the road segment, the time
//! required to pass the road segment, or other costs like energy
//! consumption or CO₂ emissions" (§II-A). [`RoadClass`] carries the
//! free-flow speed and EV consumption per class; [`CostMetric`] selects
//! which weight a search optimises.

use serde::{Deserialize, Serialize};

/// Grams of CO₂ attributed to one kWh drawn from the traction battery.
///
/// Used only to express derouting energy as emissions (§III-B: "the
/// equation ensures the minimization of D and consequently the reduction
/// of CO₂ emissions since they are correlated"); any positive factor
/// preserves the ranking because the mapping is linear.
pub const DRIVING_CO2_G_PER_KWH: f64 = 420.0;

/// Functional road classes, coarsest to finest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Grade-separated motorway / freeway.
    Motorway,
    /// Major urban arterial.
    Primary,
    /// Collector / secondary street.
    Secondary,
    /// Residential / local street.
    Residential,
}

impl RoadClass {
    /// All classes, coarsest first.
    pub const ALL: [RoadClass; 4] =
        [Self::Motorway, Self::Primary, Self::Secondary, Self::Residential];

    /// Free-flow speed, km/h.
    #[must_use]
    pub const fn free_flow_kmh(self) -> f64 {
        match self {
            Self::Motorway => 110.0,
            Self::Primary => 60.0,
            Self::Secondary => 45.0,
            Self::Residential => 30.0,
        }
    }

    /// Free-flow speed, m/s.
    #[must_use]
    pub fn free_flow_ms(self) -> f64 {
        self.free_flow_kmh() / 3.6
    }

    /// EV traction consumption, kWh per km, at free-flow speed.
    ///
    /// Higher speed costs more per km (aerodynamic drag dominates);
    /// stop-and-go residential driving also pays a regeneration-loss
    /// penalty — values bracket the 0.13–0.21 kWh/km band typical of a
    /// mid-size EV.
    #[must_use]
    pub const fn kwh_per_km(self) -> f64 {
        match self {
            Self::Motorway => 0.21,
            Self::Primary => 0.16,
            Self::Secondary => 0.145,
            Self::Residential => 0.155,
        }
    }

    /// A stable small integer tag (used by generators and serialisation).
    #[must_use]
    pub const fn tag(self) -> u8 {
        match self {
            Self::Motorway => 0,
            Self::Primary => 1,
            Self::Secondary => 2,
            Self::Residential => 3,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    ///
    /// # Panics
    /// Panics on an unknown tag.
    #[must_use]
    pub fn from_tag(t: u8) -> Self {
        Self::ALL[usize::from(t)]
    }
}

/// Which per-edge weight a shortest-path search optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostMetric {
    /// Geometric length, metres.
    Distance,
    /// Free-flow travel time, seconds.
    Time,
    /// Traction energy, kWh.
    Energy,
    /// Emissions equivalent of the traction energy, grams CO₂.
    Co2,
}

impl CostMetric {
    /// Cost of traversing `len_m` metres of a `class` edge under this
    /// metric.
    #[must_use]
    pub fn edge_cost(self, len_m: f64, class: RoadClass) -> f64 {
        match self {
            Self::Distance => len_m,
            Self::Time => len_m / class.free_flow_ms(),
            Self::Energy => len_m / 1_000.0 * class.kwh_per_km(),
            Self::Co2 => len_m / 1_000.0 * class.kwh_per_km() * DRIVING_CO2_G_PER_KWH,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn motorway_is_fastest() {
        for c in RoadClass::ALL {
            assert!(RoadClass::Motorway.free_flow_kmh() >= c.free_flow_kmh());
        }
    }

    #[test]
    fn tag_roundtrip() {
        for c in RoadClass::ALL {
            assert_eq!(RoadClass::from_tag(c.tag()), c);
        }
    }

    #[test]
    fn time_cost_is_len_over_speed() {
        let t = CostMetric::Time.edge_cost(1_000.0, RoadClass::Primary);
        assert!((t - 60.0).abs() < 1e-9); // 1 km at 60 km/h = 60 s
    }

    #[test]
    fn distance_cost_is_identity() {
        assert_eq!(CostMetric::Distance.edge_cost(123.0, RoadClass::Residential), 123.0);
    }

    #[test]
    fn energy_scales_with_length() {
        let e1 = CostMetric::Energy.edge_cost(1_000.0, RoadClass::Motorway);
        let e2 = CostMetric::Energy.edge_cost(2_000.0, RoadClass::Motorway);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
        assert!((e1 - 0.21).abs() < 1e-12);
    }

    #[test]
    fn co2_is_energy_times_factor() {
        let e = CostMetric::Energy.edge_cost(5_000.0, RoadClass::Secondary);
        let g = CostMetric::Co2.edge_cost(5_000.0, RoadClass::Secondary);
        assert!((g - e * DRIVING_CO2_G_PER_KWH).abs() < 1e-9);
    }

    #[test]
    fn all_costs_positive_for_positive_length() {
        for c in RoadClass::ALL {
            for m in [CostMetric::Distance, CostMetric::Time, CostMetric::Energy, CostMetric::Co2] {
                assert!(m.edge_cost(10.0, c) > 0.0);
            }
        }
    }
}
