//! Synthetic road-network generators.
//!
//! The paper evaluates on four regions — Oldenburg (45×35 km), California
//! (1 220×400 km), Beijing (T-drive) and multi-city Geolife — none of which
//! ship with this reproduction (see DESIGN.md §3). These generators produce
//! networks with the same *structural* character at the same scales:
//!
//! * [`urban_grid`] — jittered Manhattan grid with arterial lines and
//!   random street dropouts; the shape of a mid-size European or Chinese
//!   city core (Oldenburg, Beijing presets);
//! * [`ring_radial`] — concentric ring roads with radial spokes, Beijing's
//!   signature topology, used to overlay grids;
//! * [`metro_regions`] — several urban grids scattered over a large extent
//!   and joined by a motorway backbone (California, Geolife presets).
//!
//! Every generator returns the largest connected component of what it drew,
//! so all shortest-path queries succeed, and is fully deterministic in its
//! seed.

use crate::edge::RoadClass;
use crate::graph::{GraphBuilder, RoadGraph};
use ec_types::{GeoPoint, SplitMix64};

/// Parameters for [`urban_grid`].
#[derive(Debug, Clone)]
pub struct UrbanGridParams {
    /// South-west anchor of the grid.
    pub origin: GeoPoint,
    /// Number of node columns (east-west).
    pub cols: usize,
    /// Number of node rows (north-south).
    pub rows: usize,
    /// Nominal block edge, metres.
    pub spacing_m: f64,
    /// Node position jitter as a fraction of `spacing_m` (0 = perfect grid).
    pub jitter_frac: f64,
    /// Probability of dropping a non-arterial street edge.
    pub drop_prob: f64,
    /// Every `arterial_every`-th row/column is a Primary arterial (0 =
    /// no arterials).
    pub arterial_every: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for UrbanGridParams {
    fn default() -> Self {
        Self {
            origin: GeoPoint::new(8.18, 53.10),
            cols: 40,
            rows: 32,
            spacing_m: 900.0,
            jitter_frac: 0.25,
            drop_prob: 0.08,
            arterial_every: 5,
            seed: 1,
        }
    }
}

/// Parameters for [`ring_radial`].
#[derive(Debug, Clone)]
pub struct RingRadialParams {
    /// City centre.
    pub center: GeoPoint,
    /// Number of concentric rings.
    pub rings: usize,
    /// Number of radial spokes.
    pub spokes: usize,
    /// Radial distance between consecutive rings, metres.
    pub ring_spacing_m: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for RingRadialParams {
    fn default() -> Self {
        Self {
            center: GeoPoint::new(116.4, 39.9),
            rings: 6,
            spokes: 24,
            ring_spacing_m: 3_000.0,
            seed: 1,
        }
    }
}

/// Parameters for [`metro_regions`].
#[derive(Debug, Clone)]
pub struct MetroRegionsParams {
    /// South-west corner of the covered region.
    pub origin: GeoPoint,
    /// East-west extent, metres.
    pub extent_x_m: f64,
    /// North-south extent, metres.
    pub extent_y_m: f64,
    /// Number of metropolitan clusters.
    pub cities: usize,
    /// Side of each city grid, nodes (cities are `city_side × city_side`).
    pub city_side: usize,
    /// Block edge within cities, metres.
    pub city_spacing_m: f64,
    /// Spacing of intermediate motorway nodes on inter-city links, metres.
    pub highway_node_m: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for MetroRegionsParams {
    fn default() -> Self {
        Self {
            origin: GeoPoint::new(-122.0, 34.0),
            extent_x_m: 600_000.0,
            extent_y_m: 300_000.0,
            cities: 8,
            city_side: 12,
            city_spacing_m: 1_000.0,
            highway_node_m: 10_000.0,
            seed: 1,
        }
    }
}

/// Accumulates an undirected drawing before component pruning.
struct RawNet {
    points: Vec<GeoPoint>,
    /// Undirected edges `(a, b, len_m, class)`; expanded to both directions
    /// at build time.
    edges: Vec<(u32, u32, f32, RoadClass)>,
}

impl RawNet {
    fn new() -> Self {
        Self { points: Vec::new(), edges: Vec::new() }
    }

    fn add_point(&mut self, p: GeoPoint) -> u32 {
        let id = u32::try_from(self.points.len()).expect("node count fits u32");
        self.points.push(p);
        id
    }

    fn add_street(&mut self, a: u32, b: u32, len_m: f32, class: RoadClass) {
        debug_assert!(a != b, "self-loop street");
        self.edges.push((a, b, len_m, class));
    }

    /// Keep only the largest connected component, remap ids densely, and
    /// freeze into a graph with two-way edges.
    fn into_graph(self) -> RoadGraph {
        assert!(!self.points.is_empty(), "generator drew no nodes");
        // Union-find over the undirected drawing.
        let n = self.points.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }
        for &(a, b, _, _) in &self.edges {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra as usize] = rb;
            }
        }
        let mut sizes = vec![0usize; n];
        for i in 0..n as u32 {
            sizes[find(&mut parent, i) as usize] += 1;
        }
        let best_root =
            u32::try_from((0..n).max_by_key(|&i| sizes[i]).expect("non-empty point set"))
                .expect("fits u32");
        let best_root = find(&mut parent, best_root);

        let mut remap = vec![u32::MAX; n];
        let mut b = GraphBuilder::new();
        for i in 0..n as u32 {
            if find(&mut parent, i) == best_root {
                remap[i as usize] = b.add_node(self.points[i as usize]).0;
            }
        }
        for &(a, bb, len, class) in &self.edges {
            let (ra, rb) = (remap[a as usize], remap[bb as usize]);
            if ra != u32::MAX && rb != u32::MAX {
                b.add_two_way_with_len(ec_types::NodeId(ra), ec_types::NodeId(rb), len, class);
            }
        }
        b.build()
    }
}

/// Street length: straight-line distance with a curvature surcharge — real
/// streets are 5–25 % longer than the crow flies.
fn street_len(a: &GeoPoint, b: &GeoPoint, rng: &mut SplitMix64) -> f32 {
    (a.fast_dist_m(b) * rng.range_f64(1.05, 1.25)).max(1.0) as f32
}

/// Generate a jittered urban grid. See [`UrbanGridParams`].
///
/// # Panics
/// Panics when `cols`/`rows` < 2 or `spacing_m` ≤ 0.
#[must_use]
pub fn urban_grid(p: &UrbanGridParams) -> RoadGraph {
    assert!(p.cols >= 2 && p.rows >= 2, "grid needs at least 2×2 nodes");
    assert!(p.spacing_m > 0.0, "spacing must be positive");
    let mut rng = SplitMix64::new(p.seed);
    let mut net = RawNet::new();

    let idx = |r: usize, c: usize| (r * p.cols + c) as u32;
    for r in 0..p.rows {
        for c in 0..p.cols {
            let jx = rng.range_f64(-p.jitter_frac, p.jitter_frac) * p.spacing_m;
            let jy = rng.range_f64(-p.jitter_frac, p.jitter_frac) * p.spacing_m;
            let pt = p.origin.offset_m(c as f64 * p.spacing_m + jx, r as f64 * p.spacing_m + jy);
            net.add_point(pt);
        }
    }

    let is_arterial_line = |i: usize| p.arterial_every > 0 && i.is_multiple_of(p.arterial_every);
    for r in 0..p.rows {
        for c in 0..p.cols {
            // East and north neighbours.
            let here = idx(r, c);
            let mut connect = |there: u32, arterial: bool, rng: &mut SplitMix64| {
                let class = if arterial {
                    RoadClass::Primary
                } else if rng.next_f64() < 0.3 {
                    RoadClass::Secondary
                } else {
                    RoadClass::Residential
                };
                if !arterial && rng.next_f64() < p.drop_prob {
                    return;
                }
                let len = street_len(&net.points[here as usize], &net.points[there as usize], rng);
                net.add_street(here, there, len, class);
            };
            if c + 1 < p.cols {
                connect(idx(r, c + 1), is_arterial_line(r), &mut rng);
            }
            if r + 1 < p.rows {
                connect(idx(r + 1, c), is_arterial_line(c), &mut rng);
            }
        }
    }
    net.into_graph()
}

/// Generate a ring-radial city. See [`RingRadialParams`].
///
/// # Panics
/// Panics when `rings` < 1 or `spokes` < 3.
#[must_use]
pub fn ring_radial(p: &RingRadialParams) -> RoadGraph {
    assert!(p.rings >= 1, "need at least one ring");
    assert!(p.spokes >= 3, "need at least three spokes");
    let mut rng = SplitMix64::new(p.seed);
    let mut net = RawNet::new();

    let center = net.add_point(p.center);
    // ring i (1-based), spoke j → node id.
    let mut ids = vec![vec![0u32; p.spokes]; p.rings];
    for (i, ring) in ids.iter_mut().enumerate() {
        let radius = (i + 1) as f64 * p.ring_spacing_m;
        for (j, slot) in ring.iter_mut().enumerate() {
            let angle =
                std::f64::consts::TAU * j as f64 / p.spokes as f64 + rng.range_f64(-0.02, 0.02);
            let pt = p.center.offset_m(radius * angle.cos(), radius * angle.sin());
            *slot = net.add_point(pt);
        }
    }
    // Ring edges: inner rings Primary, outermost ring Motorway.
    for (i, ring) in ids.iter().enumerate() {
        let class = if i + 1 == p.rings { RoadClass::Motorway } else { RoadClass::Primary };
        for j in 0..p.spokes {
            let a = ring[j];
            let b = ring[(j + 1) % p.spokes];
            let len = street_len(&net.points[a as usize], &net.points[b as usize], &mut rng);
            net.add_street(a, b, len, class);
        }
    }
    // Spoke edges.
    #[allow(clippy::needless_range_loop)] // `j` indexes two parallel rings at once below
    for j in 0..p.spokes {
        let a = ids[0][j];
        let len = street_len(&net.points[center as usize], &net.points[a as usize], &mut rng);
        net.add_street(center, a, len, RoadClass::Secondary);
        for i in 0..p.rings - 1 {
            let (a, b) = (ids[i][j], ids[i + 1][j]);
            let len = street_len(&net.points[a as usize], &net.points[b as usize], &mut rng);
            net.add_street(a, b, len, RoadClass::Primary);
        }
    }
    net.into_graph()
}

/// Generate several city grids joined by a motorway backbone. See
/// [`MetroRegionsParams`].
///
/// # Panics
/// Panics when `cities` < 1 or `city_side` < 2.
#[must_use]
pub fn metro_regions(p: &MetroRegionsParams) -> RoadGraph {
    assert!(p.cities >= 1, "need at least one city");
    assert!(p.city_side >= 2, "city grids need at least 2×2 nodes");
    let mut rng = SplitMix64::new(p.seed);
    let mut net = RawNet::new();

    // Place city anchor points with a minimum separation (best effort).
    let min_sep = (p.extent_x_m.min(p.extent_y_m) / (p.cities as f64 + 1.0)).max(20_000.0);
    let mut anchors: Vec<GeoPoint> = Vec::with_capacity(p.cities);
    let mut attempts = 0;
    while anchors.len() < p.cities && attempts < 10_000 {
        attempts += 1;
        let cand =
            p.origin.offset_m(rng.range_f64(0.0, p.extent_x_m), rng.range_f64(0.0, p.extent_y_m));
        if anchors.iter().all(|a| a.fast_dist_m(&cand) >= min_sep) {
            anchors.push(cand);
        }
    }
    while anchors.len() < p.cities {
        // Separation impossible at this density; fill uniformly.
        anchors.push(
            p.origin.offset_m(rng.range_f64(0.0, p.extent_x_m), rng.range_f64(0.0, p.extent_y_m)),
        );
    }

    // Draw each city grid and remember one gateway node per city.
    let mut gateways: Vec<u32> = Vec::with_capacity(p.cities);
    for anchor in &anchors {
        let first = net.points.len() as u32;
        let side = p.city_side;
        let idx = |r: usize, c: usize| first + (r * side + c) as u32;
        for r in 0..side {
            for c in 0..side {
                let jx = rng.range_f64(-0.2, 0.2) * p.city_spacing_m;
                let jy = rng.range_f64(-0.2, 0.2) * p.city_spacing_m;
                net.add_point(
                    anchor.offset_m(
                        c as f64 * p.city_spacing_m + jx,
                        r as f64 * p.city_spacing_m + jy,
                    ),
                );
            }
        }
        for r in 0..side {
            for c in 0..side {
                let arterial = r.is_multiple_of(4) || c.is_multiple_of(4);
                let class = if arterial { RoadClass::Primary } else { RoadClass::Residential };
                if c + 1 < side {
                    let (a, b) = (idx(r, c), idx(r, c + 1));
                    let len =
                        street_len(&net.points[a as usize], &net.points[b as usize], &mut rng);
                    net.add_street(a, b, len, class);
                }
                if r + 1 < side {
                    let (a, b) = (idx(r, c), idx(r + 1, c));
                    let len =
                        street_len(&net.points[a as usize], &net.points[b as usize], &mut rng);
                    net.add_street(a, b, len, class);
                }
            }
        }
        gateways.push(idx(side / 2, side / 2));
    }

    // Motorway backbone: Euclidean MST over anchors (Prim), plus a link
    // from each city to its second-nearest neighbour for redundancy.
    let mut links: Vec<(usize, usize)> = Vec::new();
    if p.cities > 1 {
        let mut in_tree = vec![false; p.cities];
        let mut best = vec![(f64::INFINITY, 0usize); p.cities];
        in_tree[0] = true;
        for j in 1..p.cities {
            best[j] = (anchors[0].fast_dist_m(&anchors[j]), 0);
        }
        for _ in 1..p.cities {
            let next = (0..p.cities)
                .filter(|&j| !in_tree[j])
                .min_by(|&a, &b| best[a].0.partial_cmp(&best[b].0).expect("finite"))
                .expect("a node remains outside the tree");
            in_tree[next] = true;
            links.push((best[next].1, next));
            for j in 0..p.cities {
                if !in_tree[j] {
                    let d = anchors[next].fast_dist_m(&anchors[j]);
                    if d < best[j].0 {
                        best[j] = (d, next);
                    }
                }
            }
        }
        // Redundancy links.
        for i in 0..p.cities {
            let mut near: Vec<usize> = (0..p.cities).filter(|&j| j != i).collect();
            near.sort_by(|&a, &b| {
                anchors[i]
                    .fast_dist_m(&anchors[a])
                    .partial_cmp(&anchors[i].fast_dist_m(&anchors[b]))
                    .expect("finite")
            });
            if let Some(&second) = near.get(1) {
                let pair = (i.min(second), i.max(second));
                if !links.contains(&pair) && !links.contains(&(pair.1, pair.0)) {
                    links.push(pair);
                }
            }
        }
    }

    // Materialise each link as a motorway polyline with intermediate nodes.
    for (i, j) in links {
        let (a, b) = (gateways[i], gateways[j]);
        let (pa, pb) = (net.points[a as usize], net.points[b as usize]);
        let total = pa.fast_dist_m(&pb);
        let hops = ((total / p.highway_node_m).ceil() as usize).max(1);
        let mut prev = a;
        for h in 1..hops {
            let t = h as f64 / hops as f64;
            // Slight meander so motorways are not ruler lines.
            let base = pa.lerp(&pb, t);
            let meander = rng.range_f64(-0.03, 0.03) * total / hops as f64;
            let node = net.add_point(base.offset_m(meander, -meander));
            let len = street_len(&net.points[prev as usize], &net.points[node as usize], &mut rng);
            net.add_street(prev, node, len, RoadClass::Motorway);
            prev = node;
        }
        let len = street_len(&net.points[prev as usize], &net.points[b as usize], &mut rng);
        net.add_street(prev, b, len, RoadClass::Motorway);
    }

    net.into_graph()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::CostMetric;
    use crate::search::{metric_cost, SearchEngine};
    use ec_types::NodeId;

    #[test]
    fn urban_grid_is_connected_and_sized() {
        let g = urban_grid(&UrbanGridParams::default());
        // Dropouts + pruning may lose a few nodes, but most must survive.
        assert!(g.num_nodes() > 40 * 32 * 9 / 10, "nodes: {}", g.num_nodes());
        assert_eq!(g.largest_component().len(), g.num_nodes());
    }

    #[test]
    fn urban_grid_is_deterministic() {
        let a = urban_grid(&UrbanGridParams::default());
        let b = urban_grid(&UrbanGridParams::default());
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.point(NodeId(7)), b.point(NodeId(7)));
    }

    #[test]
    fn urban_grid_seeds_differ() {
        let a = urban_grid(&UrbanGridParams::default());
        let b = urban_grid(&UrbanGridParams { seed: 2, ..UrbanGridParams::default() });
        assert_ne!(a.point(NodeId(7)), b.point(NodeId(7)));
    }

    #[test]
    fn urban_grid_routes_exist() {
        let g = urban_grid(&UrbanGridParams::default());
        let mut engine = SearchEngine::new();
        let from = NodeId(0);
        let to = NodeId(u32::try_from(g.num_nodes() - 1).unwrap());
        let got = engine.one_to_one(&g, from, to, metric_cost(CostMetric::Distance));
        assert!(got.is_some(), "grid must be routable corner to corner");
        let (cost, path) = got.unwrap();
        assert!(cost > 0.0);
        assert_eq!(path.first().copied(), Some(from));
        assert_eq!(path.last().copied(), Some(to));
    }

    #[test]
    fn ring_radial_connected_with_motorway_ring() {
        let g = ring_radial(&RingRadialParams::default());
        assert_eq!(g.largest_component().len(), g.num_nodes());
        let has_motorway = (0..g.num_edges()).any(|e| g.edge_class(e) == RoadClass::Motorway);
        assert!(has_motorway);
    }

    #[test]
    fn metro_regions_connected_across_cities() {
        let p = MetroRegionsParams { cities: 4, ..MetroRegionsParams::default() };
        let g = metro_regions(&p);
        assert_eq!(g.largest_component().len(), g.num_nodes());
        // Region extent should be large (hundreds of km).
        assert!(g.bounds().width_m() > 100_000.0);
        let mut engine = SearchEngine::new();
        let far = NodeId(u32::try_from(g.num_nodes() - 1).unwrap());
        assert!(engine.one_to_one(&g, NodeId(0), far, metric_cost(CostMetric::Distance)).is_some());
    }

    #[test]
    fn street_lengths_exceed_crow_flies() {
        let g = urban_grid(&UrbanGridParams::default());
        let mut checked = 0;
        for v in 0..g.num_nodes().min(200) {
            let v = NodeId::from_index(v);
            for (e, u) in g.out_edges(v) {
                let crow = g.point(v).fast_dist_m(&g.point(u));
                assert!(g.edge_len_m(e) >= crow * 0.99, "edge shorter than geometry");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    #[should_panic(expected = "2×2")]
    fn tiny_grid_panics() {
        let _ = urban_grid(&UrbanGridParams { cols: 1, ..UrbanGridParams::default() });
    }
}
