//! Bidirectional Dijkstra for point-to-point queries.
//!
//! Expands alternately from the source (forward edges) and the target
//! (reverse edges); terminates when the frontiers provably cannot improve
//! the best meeting found. On block-grid networks this roughly halves the
//! settled-node count vs unidirectional Dijkstra and needs no heuristic,
//! making it the better engine for the exact point-to-point derouting
//! queries the naive baselines issue in bulk.

use crate::graph::RoadGraph;
use ec_types::NodeId;
use spatial_index::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const NO_PARENT: u32 = u32::MAX;

#[derive(Debug, Default)]
struct Half {
    dist: Vec<f64>,
    parent: Vec<u32>,
    stamp: Vec<u32>,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
}

impl Half {
    fn begin(&mut self, n: usize, generation: u32) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, NO_PARENT);
            self.stamp.resize(n, 0);
        }
        self.heap.clear();
        let _ = generation;
    }

    #[inline]
    fn dist_of(&self, v: usize, generation: u32) -> f64 {
        if self.stamp[v] == generation {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn set(&mut self, v: usize, d: f64, parent: u32, generation: u32) {
        self.dist[v] = d;
        self.parent[v] = parent;
        self.stamp[v] = generation;
    }
}

/// Reusable bidirectional point-to-point engine.
#[derive(Debug, Default)]
pub struct BidiEngine {
    fwd: Half,
    bwd: Half,
    generation: u32,
}

impl BidiEngine {
    /// A fresh engine; buffers grow lazily.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Shortest path `from → to` under `cost`; `None` when unreachable.
    pub fn one_to_one<F>(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        to: NodeId,
        cost: F,
    ) -> Option<(f64, Vec<NodeId>)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        let n = g.num_nodes();
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.fwd.stamp.fill(0);
            self.bwd.stamp.fill(0);
            self.generation = 1;
        }
        let generation = self.generation;
        self.fwd.begin(n, generation);
        self.bwd.begin(n, generation);

        self.fwd.set(from.index(), 0.0, NO_PARENT, generation);
        self.fwd.heap.push(Reverse((OrdF64::new(0.0), from.0)));
        self.bwd.set(to.index(), 0.0, NO_PARENT, generation);
        self.bwd.heap.push(Reverse((OrdF64::new(0.0), to.0)));

        let mut best: f64 = f64::INFINITY;
        let mut meet: Option<u32> = None;

        loop {
            let f_top = self.fwd.heap.peek().map(|Reverse((d, _))| d.get());
            let b_top = self.bwd.heap.peek().map(|Reverse((d, _))| d.get());
            match (f_top, b_top) {
                (None, None) => break,
                (Some(f), Some(b)) if f + b >= best => break,
                _ => {}
            }
            // Expand the smaller frontier.
            let expand_fwd = match (f_top, b_top) {
                (Some(f), Some(b)) => f <= b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("handled above"),
            };
            if expand_fwd {
                if let Some(Reverse((d, v))) = self.fwd.heap.pop() {
                    let d = d.get();
                    if d > self.fwd.dist_of(v as usize, generation) {
                        continue;
                    }
                    if d >= best {
                        continue;
                    }
                    for (e, u) in g.out_edges(NodeId(v)) {
                        let nd = d + cost(g, e);
                        if nd < self.fwd.dist_of(u.index(), generation) {
                            self.fwd.set(u.index(), nd, v, generation);
                            self.fwd.heap.push(Reverse((OrdF64::new(nd), u.0)));
                            let via = nd + self.bwd.dist_of(u.index(), generation);
                            if via < best {
                                best = via;
                                meet = Some(u.0);
                            }
                        }
                    }
                    // The popped node itself may complete a meeting.
                    let via = d + self.bwd.dist_of(v as usize, generation);
                    if via < best {
                        best = via;
                        meet = Some(v);
                    }
                }
            } else if let Some(Reverse((d, v))) = self.bwd.heap.pop() {
                let d = d.get();
                if d > self.bwd.dist_of(v as usize, generation) {
                    continue;
                }
                if d >= best {
                    continue;
                }
                for (e, u) in g.in_edges(NodeId(v)) {
                    let nd = d + cost(g, e);
                    if nd < self.bwd.dist_of(u.index(), generation) {
                        self.bwd.set(u.index(), nd, v, generation);
                        self.bwd.heap.push(Reverse((OrdF64::new(nd), u.0)));
                        let via = nd + self.fwd.dist_of(u.index(), generation);
                        if via < best {
                            best = via;
                            meet = Some(u.0);
                        }
                    }
                }
                let via = d + self.fwd.dist_of(v as usize, generation);
                if via < best {
                    best = via;
                    meet = Some(v);
                }
            }
        }

        let meet = meet?;
        // Stitch: from → meet via forward parents, meet → to via backward
        // parents (which point towards `to`).
        let mut path = Vec::new();
        let mut v = meet;
        while v != NO_PARENT {
            path.push(NodeId(v));
            if v == from.0 {
                break;
            }
            v = self.fwd.parent[v as usize];
        }
        path.reverse();
        let mut v = self.bwd.parent[meet as usize];
        while v != NO_PARENT {
            path.push(NodeId(v));
            if v == to.0 {
                break;
            }
            v = self.bwd.parent[v as usize];
        }
        Some((best, path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::CostMetric;
    use crate::generate::{urban_grid, UrbanGridParams};
    use crate::search::{metric_cost, SearchEngine};
    use ec_types::SplitMix64;

    #[test]
    fn agrees_with_dijkstra_on_random_pairs() {
        let g = urban_grid(&UrbanGridParams { cols: 14, rows: 14, ..Default::default() });
        let mut uni = SearchEngine::new();
        let mut bidi = BidiEngine::new();
        let mut rng = SplitMix64::new(5);
        for metric in [CostMetric::Distance, CostMetric::Time, CostMetric::Energy] {
            for _ in 0..30 {
                let a = NodeId(u32::try_from(rng.below(g.num_nodes() as u64)).unwrap());
                let b = NodeId(u32::try_from(rng.below(g.num_nodes() as u64)).unwrap());
                let d = uni.one_to_one(&g, a, b, metric_cost(metric));
                let s = bidi.one_to_one(&g, a, b, metric_cost(metric));
                match (&d, &s) {
                    (Some((dc, _)), Some((sc, _))) => {
                        assert!((dc - sc).abs() < 1e-6 * dc.max(1.0), "{a}->{b}: {dc} vs {sc}")
                    }
                    (None, None) => {}
                    other => panic!("reachability mismatch for {a}->{b}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn path_is_valid_and_costed_correctly() {
        let g = urban_grid(&UrbanGridParams { cols: 10, rows: 10, ..Default::default() });
        let mut bidi = BidiEngine::new();
        let from = NodeId(0);
        let to = NodeId(u32::try_from(g.num_nodes() - 1).unwrap());
        let (cost, path) = bidi.one_to_one(&g, from, to, metric_cost(CostMetric::Time)).unwrap();
        assert_eq!(path.first().copied(), Some(from));
        assert_eq!(path.last().copied(), Some(to));
        // Re-cost the returned path.
        let route = crate::path::Route::from_nodes(&g, path).unwrap();
        let recost = route.cost(&g, CostMetric::Time);
        assert!((cost - recost).abs() < 1e-6, "claimed {cost} vs path cost {recost}");
    }

    #[test]
    fn source_equals_target() {
        let g = urban_grid(&UrbanGridParams { cols: 5, rows: 5, ..Default::default() });
        let mut bidi = BidiEngine::new();
        let (cost, path) =
            bidi.one_to_one(&g, NodeId(3), NodeId(3), metric_cost(CostMetric::Distance)).unwrap();
        assert_eq!(cost, 0.0);
        assert_eq!(path, vec![NodeId(3)]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = crate::graph::GraphBuilder::new();
        let o = ec_types::GeoPoint::new(8.0, 53.0);
        let v0 = b.add_node(o);
        let v1 = b.add_node(o.offset_m(500.0, 0.0));
        let v2 = b.add_node(o.offset_m(1_000.0, 0.0));
        b.add_edge(v0, v1, crate::edge::RoadClass::Primary); // one-way, v2 isolated
        let g = b.build();
        let mut bidi = BidiEngine::new();
        assert!(bidi.one_to_one(&g, v0, v2, metric_cost(CostMetric::Distance)).is_none());
        assert!(bidi.one_to_one(&g, v1, v0, metric_cost(CostMetric::Distance)).is_none());
    }

    #[test]
    fn engine_reuse_is_safe() {
        let g = urban_grid(&UrbanGridParams { cols: 8, rows: 8, ..Default::default() });
        let mut bidi = BidiEngine::new();
        let a = bidi.one_to_one(&g, NodeId(0), NodeId(20), metric_cost(CostMetric::Distance));
        let _ = bidi.one_to_one(&g, NodeId(5), NodeId(40), metric_cost(CostMetric::Distance));
        let b = bidi.one_to_one(&g, NodeId(0), NodeId(20), metric_cost(CostMetric::Distance));
        assert_eq!(a.map(|(c, _)| c), b.map(|(c, _)| c));
    }
}
