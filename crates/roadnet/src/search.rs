//! Shortest-path searches over [`RoadGraph`].
//!
//! All searches are Dijkstra variants over a caller-supplied edge-cost
//! function, so the same engine serves free-flow distance/time/energy
//! queries *and* traffic-adjusted derouting queries (the cost closure
//! multiplies by a congestion factor). [`SearchEngine`] owns the
//! distance/parent/stamp buffers and reuses them across calls — the
//! continuous query re-runs derouting searches every segment, and the
//! buffer reuse keeps that allocation-free after warm-up.
//!
//! Variants:
//! * [`SearchEngine::one_to_one`] — early-exit Dijkstra with path
//!   extraction;
//! * [`SearchEngine::astar`] — A* with an admissible straight-line
//!   heuristic, for long point-to-point routes;
//! * [`SearchEngine::one_to_many`] — settle a target set (vehicle →
//!   candidate chargers);
//! * [`SearchEngine::many_to_one`] — reverse search (candidate chargers →
//!   rejoin node), one pass instead of one per charger;
//! * [`SearchEngine::bounded_from`] / [`bounded_to`](SearchEngine::bounded_to)
//!   — all nodes within a cost budget, the filtering-phase primitive.

use crate::edge::CostMetric;
use crate::graph::RoadGraph;
use ec_types::NodeId;
use spatial_index::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const NO_PARENT: u32 = u32::MAX;

/// Reusable Dijkstra/A* state.
#[derive(Debug, Default)]
pub struct SearchEngine {
    dist: Vec<f64>,
    parent: Vec<u32>,
    stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
}

impl SearchEngine {
    /// A fresh engine; buffers grow lazily to the graph size.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, NO_PARENT);
            self.stamp.resize(n, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap: invalidate everything once per 2^32 searches.
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn is_fresh(&self, v: usize) -> bool {
        self.stamp[v] == self.generation
    }

    #[inline]
    fn set(&mut self, v: usize, d: f64, parent: u32) {
        self.dist[v] = d;
        self.parent[v] = parent;
        self.stamp[v] = self.generation;
    }

    /// Tentative distance of `v` in the current search (`INFINITY` when
    /// unreached).
    #[inline]
    fn dist_of(&self, v: usize) -> f64 {
        if self.is_fresh(v) {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    /// Shortest path `from → to`. Returns `(cost, node_sequence)` or
    /// `None` when unreachable.
    pub fn one_to_one<F>(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        to: NodeId,
        cost: F,
    ) -> Option<(f64, Vec<NodeId>)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.begin(g.num_nodes());
        self.set(from.index(), 0.0, NO_PARENT);
        self.heap.push(Reverse((OrdF64::new(0.0), from.0)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let d = d.get();
            let vi = v as usize;
            if d > self.dist_of(vi) {
                continue;
            }
            if v == to.0 {
                return Some((d, self.extract_path(from, to)));
            }
            for (e, u) in g.out_edges(NodeId(v)) {
                let w = cost(g, e);
                debug_assert!(w >= 0.0, "negative edge cost");
                let nd = d + w;
                if nd < self.dist_of(u.index()) {
                    self.set(u.index(), nd, v);
                    self.heap.push(Reverse((OrdF64::new(nd), u.0)));
                }
            }
        }
        None
    }

    /// A* `from → to` under a [`CostMetric`], using the straight-line
    /// lower bound scaled to the metric's best case (admissible because no
    /// edge beats a motorway's speed or undercuts the cheapest per-km
    /// consumption).
    pub fn astar(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        to: NodeId,
        metric: CostMetric,
    ) -> Option<(f64, Vec<NodeId>)> {
        let goal = g.point(to);
        // Best possible cost per metre over any edge class.
        let per_m = crate::edge::RoadClass::ALL
            .iter()
            .map(|&c| metric.edge_cost(1.0, c))
            .fold(f64::INFINITY, f64::min);
        // 0.5 % slack keeps the heuristic admissible despite the
        // equirectangular metric's per-pair mean-latitude distortion
        // (edge lengths and the heuristic use slightly different
        // reference latitudes).
        let h = |p: ec_types::GeoPoint| p.fast_dist_m(&goal) * per_m * 0.995;

        self.begin(g.num_nodes());
        self.set(from.index(), 0.0, NO_PARENT);
        self.heap.push(Reverse((OrdF64::new(h(g.point(from))), from.0)));
        while let Some(Reverse((f, v))) = self.heap.pop() {
            let vi = v as usize;
            let d = self.dist[vi];
            if !self.is_fresh(vi) {
                continue;
            }
            if f.get() - h(g.point(NodeId(v))) > d + 1e-9 {
                continue; // stale heap entry
            }
            if v == to.0 {
                return Some((d, self.extract_path(from, to)));
            }
            for (e, u) in g.out_edges(NodeId(v)) {
                let nd = d + g.edge_cost(e, metric);
                if nd < self.dist_of(u.index()) {
                    self.set(u.index(), nd, v);
                    self.heap.push(Reverse((OrdF64::new(nd + h(g.point(u))), u.0)));
                }
            }
        }
        None
    }

    /// Costs `from → t` for every `t` in `targets` (`None` when
    /// unreachable). One Dijkstra, early exit once every target settles.
    pub fn one_to_many<F>(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        targets: &[NodeId],
        cost: F,
    ) -> Vec<Option<f64>>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.settle_set(g, from, targets, cost, Direction::Forward)
    }

    /// Costs `s → to` for every `s` in `sources`, via one reverse Dijkstra
    /// from `to`.
    pub fn many_to_one<F>(
        &mut self,
        g: &RoadGraph,
        to: NodeId,
        sources: &[NodeId],
        cost: F,
    ) -> Vec<Option<f64>>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.settle_set(g, to, sources, cost, Direction::Reverse)
    }

    fn settle_set<F>(
        &mut self,
        g: &RoadGraph,
        origin: NodeId,
        wanted: &[NodeId],
        cost: F,
        dir: Direction,
    ) -> Vec<Option<f64>>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.begin(g.num_nodes());
        // Count how many *distinct* wanted nodes must settle; duplicates in
        // `wanted` are answered from the same settled distance.
        let mut pending: std::collections::HashSet<u32> = wanted.iter().map(|t| t.0).collect();
        self.set(origin.index(), 0.0, NO_PARENT);
        self.heap.push(Reverse((OrdF64::new(0.0), origin.0)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let d = d.get();
            if d > self.dist_of(v as usize) {
                continue;
            }
            pending.remove(&v);
            if pending.is_empty() {
                break;
            }
            self.relax_neighbors(g, NodeId(v), d, &cost, dir);
        }
        wanted
            .iter()
            .map(|t| {
                let d = self.dist_of(t.index());
                d.is_finite().then_some(d)
            })
            .collect()
    }

    /// All nodes reachable from `from` within `max_cost`, as
    /// `(node, cost)` pairs in settling (ascending-cost) order.
    pub fn bounded_from<F>(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        max_cost: f64,
        cost: F,
    ) -> Vec<(NodeId, f64)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.bounded(g, from, max_cost, cost, Direction::Forward)
    }

    /// All nodes that can reach `to` within `max_cost` (reverse search),
    /// as `(node, cost)` pairs in ascending-cost order.
    pub fn bounded_to<F>(
        &mut self,
        g: &RoadGraph,
        to: NodeId,
        max_cost: f64,
        cost: F,
    ) -> Vec<(NodeId, f64)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.bounded(g, to, max_cost, cost, Direction::Reverse)
    }

    fn bounded<F>(
        &mut self,
        g: &RoadGraph,
        origin: NodeId,
        max_cost: f64,
        cost: F,
        dir: Direction,
    ) -> Vec<(NodeId, f64)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.begin(g.num_nodes());
        self.set(origin.index(), 0.0, NO_PARENT);
        self.heap.push(Reverse((OrdF64::new(0.0), origin.0)));
        let mut settled = Vec::new();
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let d = d.get();
            if d > max_cost {
                break;
            }
            if d > self.dist_of(v as usize) {
                continue;
            }
            settled.push((NodeId(v), d));
            self.relax_neighbors(g, NodeId(v), d, &cost, dir);
        }
        settled
    }

    fn relax_neighbors<F>(&mut self, g: &RoadGraph, v: NodeId, d: f64, cost: &F, dir: Direction)
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        match dir {
            Direction::Forward => {
                for (e, u) in g.out_edges(v) {
                    let nd = d + cost(g, e);
                    if nd < self.dist_of(u.index()) {
                        self.set(u.index(), nd, v.0);
                        self.heap.push(Reverse((OrdF64::new(nd), u.0)));
                    }
                }
            }
            Direction::Reverse => {
                for (e, u) in g.in_edges(v) {
                    let nd = d + cost(g, e);
                    if nd < self.dist_of(u.index()) {
                        self.set(u.index(), nd, v.0);
                        self.heap.push(Reverse((OrdF64::new(nd), u.0)));
                    }
                }
            }
        }
    }

    fn extract_path(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut path = vec![to];
        let mut v = to.0;
        while v != from.0 {
            v = self.parent[v as usize];
            debug_assert_ne!(v, NO_PARENT, "broken parent chain");
            path.push(NodeId(v));
        }
        path.reverse();
        path
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Reverse,
}

/// Convenience: free-flow cost closure for a metric.
#[must_use = "the closure does nothing until passed to a search"]
pub fn metric_cost(metric: CostMetric) -> impl Fn(&RoadGraph, usize) -> f64 + Copy {
    move |g, e| g.edge_cost(e, metric)
}
