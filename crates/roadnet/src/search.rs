//! Shortest-path searches over [`RoadGraph`].
//!
//! All searches are Dijkstra variants over a caller-supplied edge-cost
//! function, so the same engine serves free-flow distance/time/energy
//! queries *and* traffic-adjusted derouting queries (the cost closure
//! multiplies by a congestion factor). [`SearchEngine`] owns the
//! distance/parent/stamp buffers and reuses them across calls — the
//! continuous query re-runs derouting searches every segment, and the
//! buffer reuse keeps that allocation-free after warm-up.
//!
//! Variants:
//! * [`SearchEngine::one_to_one`] — early-exit Dijkstra with path
//!   extraction;
//! * [`SearchEngine::point_to_point`] — bidirectional Dijkstra (wraps an
//!   embedded [`BidiEngine`]), the default exact point-to-point path when
//!   no admissible heuristic applies;
//! * [`SearchEngine::astar`] — A* with an admissible straight-line
//!   heuristic, for long point-to-point routes;
//! * [`SearchEngine::one_to_many`] — settle a target set (vehicle →
//!   candidate chargers);
//! * [`SearchEngine::many_to_one`] — reverse search (candidate chargers →
//!   rejoin node), one pass instead of one per charger;
//! * [`SearchEngine::one_to_many_profiled`] /
//!   [`many_to_one_profiled`](SearchEngine::many_to_one_profiled) — the
//!   same sweeps, additionally reporting the per-road-class metre
//!   histogram of each shortest path (the derouting traffic model picks
//!   its congestion class from it);
//! * [`SearchEngine::bounded_from`] / [`bounded_to`](SearchEngine::bounded_to)
//!   — all nodes within a cost budget, the filtering-phase primitive.
//!
//! The engine also embeds the per-worker Contraction-Hierarchy scratch
//! ([`ChScratch`](crate::ch_query::ChScratch)), so a pooled engine serves
//! either detour backend without extra allocation.

use crate::bidirectional::BidiEngine;
use crate::edge::CostMetric;
use crate::graph::RoadGraph;
use ec_types::NodeId;
use spatial_index::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const NO_PARENT: u32 = u32::MAX;
const NO_EDGE: u32 = u32::MAX;

/// Reusable Dijkstra/A* state.
#[derive(Debug, Default)]
pub struct SearchEngine {
    dist: Vec<f64>,
    parent: Vec<u32>,
    /// Edge id through which each node was last relaxed (for path
    /// profiling without re-resolving node pairs to edges).
    parent_edge: Vec<u32>,
    stamp: Vec<u32>,
    /// Stamp marking the *wanted* nodes of the current `settle_set` call;
    /// replaces the per-call `HashSet` the multi-target sweep used to
    /// allocate.
    want: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
    settled: usize,
    bidi: BidiEngine,
    ch: crate::ch_query::ChScratch,
}

impl SearchEngine {
    /// A fresh engine; buffers grow lazily to the graph size.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Nodes settled (popped with a final distance) by the most recent
    /// search on this engine. A cheap effort proxy for the benches.
    #[must_use]
    pub fn last_settled(&self) -> usize {
        self.settled
    }

    /// The engine's Contraction-Hierarchy query scratch. Living inside
    /// the engine means every [`SearchPool`](crate::pool::SearchPool)
    /// worker gets per-worker CH state for free.
    pub fn ch_scratch(&mut self) -> &mut crate::ch_query::ChScratch {
        &mut self.ch
    }

    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, NO_PARENT);
            self.parent_edge.resize(n, NO_EDGE);
            self.stamp.resize(n, 0);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap: invalidate everything once per 2^32 searches.
            self.stamp.fill(0);
            self.want.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
        self.settled = 0;
    }

    #[inline]
    fn is_fresh(&self, v: usize) -> bool {
        self.stamp[v] == self.generation
    }

    #[inline]
    fn set(&mut self, v: usize, d: f64, parent: u32, via_edge: u32) {
        self.dist[v] = d;
        self.parent[v] = parent;
        self.parent_edge[v] = via_edge;
        self.stamp[v] = self.generation;
    }

    /// Tentative distance of `v` in the current search (`INFINITY` when
    /// unreached).
    #[inline]
    fn dist_of(&self, v: usize) -> f64 {
        if self.is_fresh(v) {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    /// Shortest path `from → to`. Returns `(cost, node_sequence)` or
    /// `None` when unreachable.
    pub fn one_to_one<F>(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        to: NodeId,
        cost: F,
    ) -> Option<(f64, Vec<NodeId>)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.begin(g.num_nodes());
        self.set(from.index(), 0.0, NO_PARENT, NO_EDGE);
        self.heap.push(Reverse((OrdF64::new(0.0), from.0)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let d = d.get();
            let vi = v as usize;
            if d > self.dist_of(vi) {
                continue;
            }
            self.settled += 1;
            if v == to.0 {
                return Some((d, self.extract_path(from, to)));
            }
            for (e, u) in g.out_edges(NodeId(v)) {
                let w = cost(g, e);
                debug_assert!(w >= 0.0, "negative edge cost");
                let nd = d + w;
                if nd < self.dist_of(u.index()) {
                    self.set(u.index(), nd, v, u32::try_from(e).unwrap_or(NO_EDGE));
                    self.heap.push(Reverse((OrdF64::new(nd), u.0)));
                }
            }
        }
        None
    }

    /// Exact point-to-point query via the embedded bidirectional engine —
    /// the default when no admissible heuristic applies (use
    /// [`Self::astar`] when a [`CostMetric`] lower bound is available).
    /// Expands roughly half the nodes of [`Self::one_to_one`] on grid
    /// networks; the cost can differ from the unidirectional engine in
    /// the last ulp because the two frontiers' sums meet in the middle.
    pub fn point_to_point<F>(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        to: NodeId,
        cost: F,
    ) -> Option<(f64, Vec<NodeId>)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.bidi.one_to_one(g, from, to, cost)
    }

    /// A* `from → to` under a [`CostMetric`], using the straight-line
    /// lower bound scaled to the metric's best case (admissible because no
    /// edge beats a motorway's speed or undercuts the cheapest per-km
    /// consumption).
    pub fn astar(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        to: NodeId,
        metric: CostMetric,
    ) -> Option<(f64, Vec<NodeId>)> {
        let goal = g.point(to);
        // Best possible cost per metre over any edge class.
        let per_m = crate::edge::RoadClass::ALL
            .iter()
            .map(|&c| metric.edge_cost(1.0, c))
            .fold(f64::INFINITY, f64::min);
        // 0.5 % slack keeps the heuristic admissible despite the
        // equirectangular metric's per-pair mean-latitude distortion
        // (edge lengths and the heuristic use slightly different
        // reference latitudes).
        let h = |p: ec_types::GeoPoint| p.fast_dist_m(&goal) * per_m * 0.995;

        self.begin(g.num_nodes());
        self.set(from.index(), 0.0, NO_PARENT, NO_EDGE);
        self.heap.push(Reverse((OrdF64::new(h(g.point(from))), from.0)));
        while let Some(Reverse((f, v))) = self.heap.pop() {
            let vi = v as usize;
            let d = self.dist[vi];
            if !self.is_fresh(vi) {
                continue;
            }
            if f.get() - h(g.point(NodeId(v))) > d + 1e-9 {
                continue; // stale heap entry
            }
            self.settled += 1;
            if v == to.0 {
                return Some((d, self.extract_path(from, to)));
            }
            for (e, u) in g.out_edges(NodeId(v)) {
                let nd = d + g.edge_cost(e, metric);
                if nd < self.dist_of(u.index()) {
                    self.set(u.index(), nd, v, u32::try_from(e).unwrap_or(NO_EDGE));
                    self.heap.push(Reverse((OrdF64::new(nd + h(g.point(u))), u.0)));
                }
            }
        }
        None
    }

    /// Costs `from → t` for every `t` in `targets` (`None` when
    /// unreachable). One Dijkstra, early exit once every target settles.
    pub fn one_to_many<F>(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        targets: &[NodeId],
        cost: F,
    ) -> Vec<Option<f64>>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.settle_set(g, from, targets, cost, Direction::Forward)
    }

    /// Costs `s → to` for every `s` in `sources`, via one reverse Dijkstra
    /// from `to`.
    pub fn many_to_one<F>(
        &mut self,
        g: &RoadGraph,
        to: NodeId,
        sources: &[NodeId],
        cost: F,
    ) -> Vec<Option<f64>>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.settle_set(g, to, sources, cost, Direction::Reverse)
    }

    /// [`Self::one_to_many`] plus, per reachable target, the shortest
    /// path's per-[`RoadClass`](crate::edge::RoadClass) metre histogram
    /// (indexed by `RoadClass::tag()`), accumulated in forward path order
    /// (`from` towards the target).
    pub fn one_to_many_profiled<F>(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        targets: &[NodeId],
        cost: F,
    ) -> Vec<Option<(f64, [f64; 4])>>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        let costs = self.settle_set(g, from, targets, cost, Direction::Forward);
        targets
            .iter()
            .zip(costs)
            .map(|(t, c)| c.map(|c| (c, self.forward_histogram(g, from, *t))))
            .collect()
    }

    /// [`Self::many_to_one`] plus the per-class metre histogram of each
    /// source's path *towards* `to`, accumulated in forward path order
    /// (source towards `to`) so both search directions — and both detour
    /// backends — sum the histogram identically.
    pub fn many_to_one_profiled<F>(
        &mut self,
        g: &RoadGraph,
        to: NodeId,
        sources: &[NodeId],
        cost: F,
    ) -> Vec<Option<(f64, [f64; 4])>>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        let costs = self.settle_set(g, to, sources, cost, Direction::Reverse);
        sources
            .iter()
            .zip(costs)
            .map(|(s, c)| c.map(|c| (c, self.reverse_histogram(g, to, *s))))
            .collect()
    }

    /// Class histogram of the forward-search shortest path `from → t`.
    /// The parent chain runs `t → from`, so the edges are collected and
    /// then accumulated reversed (forward path order).
    fn forward_histogram(&self, g: &RoadGraph, from: NodeId, t: NodeId) -> [f64; 4] {
        let mut edges: Vec<u32> = Vec::new();
        let mut v = t.0;
        while v != from.0 {
            let e = self.parent_edge[v as usize];
            debug_assert_ne!(e, NO_EDGE, "broken parent chain");
            edges.push(e);
            v = self.parent[v as usize];
        }
        let mut hist = [0.0f64; 4];
        for &e in edges.iter().rev() {
            hist[g.edge_class(e as usize).tag() as usize] += g.edge_len_m(e as usize);
        }
        hist
    }

    /// Class histogram of the reverse-search shortest path `s → to`. The
    /// reverse search's parents point towards `to`, so the chain from `s`
    /// is already in forward path order.
    fn reverse_histogram(&self, g: &RoadGraph, to: NodeId, s: NodeId) -> [f64; 4] {
        let mut hist = [0.0f64; 4];
        let mut v = s.0;
        while v != to.0 {
            let e = self.parent_edge[v as usize];
            debug_assert_ne!(e, NO_EDGE, "broken parent chain");
            hist[g.edge_class(e as usize).tag() as usize] += g.edge_len_m(e as usize);
            v = self.parent[v as usize];
        }
        hist
    }

    fn settle_set<F>(
        &mut self,
        g: &RoadGraph,
        origin: NodeId,
        wanted: &[NodeId],
        cost: F,
        dir: Direction,
    ) -> Vec<Option<f64>>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.begin(g.num_nodes());
        if wanted.is_empty() {
            return Vec::new();
        }
        if self.want.len() < g.num_nodes() {
            self.want.resize(g.num_nodes(), 0);
        }
        // Count how many *distinct* wanted nodes must settle; duplicates
        // in `wanted` are answered from the same settled distance. The
        // stamp array replaces the `HashSet` this used to allocate and
        // hash into per call.
        let mut pending = 0usize;
        for t in wanted {
            if self.want[t.index()] != self.generation {
                self.want[t.index()] = self.generation;
                pending += 1;
            }
        }
        self.set(origin.index(), 0.0, NO_PARENT, NO_EDGE);
        self.heap.push(Reverse((OrdF64::new(0.0), origin.0)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let d = d.get();
            if d > self.dist_of(v as usize) {
                continue;
            }
            self.settled += 1;
            if self.want[v as usize] == self.generation {
                // Clear the stamp (generation is never 0) so a duplicate
                // equal-distance heap entry cannot decrement twice.
                self.want[v as usize] = 0;
                pending -= 1;
                if pending == 0 {
                    break;
                }
            }
            self.relax_neighbors(g, NodeId(v), d, &cost, dir);
        }
        wanted
            .iter()
            .map(|t| {
                let d = self.dist_of(t.index());
                d.is_finite().then_some(d)
            })
            .collect()
    }

    /// All nodes reachable from `from` within `max_cost`, as
    /// `(node, cost)` pairs in settling (ascending-cost) order.
    pub fn bounded_from<F>(
        &mut self,
        g: &RoadGraph,
        from: NodeId,
        max_cost: f64,
        cost: F,
    ) -> Vec<(NodeId, f64)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.bounded(g, from, max_cost, cost, Direction::Forward)
    }

    /// All nodes that can reach `to` within `max_cost` (reverse search),
    /// as `(node, cost)` pairs in ascending-cost order.
    pub fn bounded_to<F>(
        &mut self,
        g: &RoadGraph,
        to: NodeId,
        max_cost: f64,
        cost: F,
    ) -> Vec<(NodeId, f64)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.bounded(g, to, max_cost, cost, Direction::Reverse)
    }

    fn bounded<F>(
        &mut self,
        g: &RoadGraph,
        origin: NodeId,
        max_cost: f64,
        cost: F,
        dir: Direction,
    ) -> Vec<(NodeId, f64)>
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        self.begin(g.num_nodes());
        self.set(origin.index(), 0.0, NO_PARENT, NO_EDGE);
        self.heap.push(Reverse((OrdF64::new(0.0), origin.0)));
        let mut settled = Vec::new();
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let d = d.get();
            if d > max_cost {
                break;
            }
            if d > self.dist_of(v as usize) {
                continue;
            }
            self.settled += 1;
            settled.push((NodeId(v), d));
            self.relax_neighbors(g, NodeId(v), d, &cost, dir);
        }
        settled
    }

    fn relax_neighbors<F>(&mut self, g: &RoadGraph, v: NodeId, d: f64, cost: &F, dir: Direction)
    where
        F: Fn(&RoadGraph, usize) -> f64,
    {
        match dir {
            Direction::Forward => {
                for (e, u) in g.out_edges(v) {
                    let nd = d + cost(g, e);
                    if nd < self.dist_of(u.index()) {
                        self.set(u.index(), nd, v.0, u32::try_from(e).unwrap_or(NO_EDGE));
                        self.heap.push(Reverse((OrdF64::new(nd), u.0)));
                    }
                }
            }
            Direction::Reverse => {
                for (e, u) in g.in_edges(v) {
                    let nd = d + cost(g, e);
                    if nd < self.dist_of(u.index()) {
                        self.set(u.index(), nd, v.0, u32::try_from(e).unwrap_or(NO_EDGE));
                        self.heap.push(Reverse((OrdF64::new(nd), u.0)));
                    }
                }
            }
        }
    }

    fn extract_path(&self, from: NodeId, to: NodeId) -> Vec<NodeId> {
        let mut path = vec![to];
        let mut v = to.0;
        while v != from.0 {
            v = self.parent[v as usize];
            debug_assert_ne!(v, NO_PARENT, "broken parent chain");
            path.push(NodeId(v));
        }
        path.reverse();
        path
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Forward,
    Reverse,
}

/// Convenience: free-flow cost closure for a metric.
#[must_use = "the closure does nothing until passed to a search"]
pub fn metric_cost(metric: CostMetric) -> impl Fn(&RoadGraph, usize) -> f64 + Copy {
    move |g, e| g.edge_cost(e, metric)
}
