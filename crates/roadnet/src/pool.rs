//! A checkout pool of reusable [`SearchEngine`]s for parallel workers.
//!
//! Each [`SearchEngine`] owns sizeable scratch buffers (distance, parent
//! and stamp arrays plus a heap), so parallel per-candidate computation
//! wants one engine *per worker*, reused across items — not one per
//! search. [`SearchPool`] provides exactly that: `checkout()` hands out
//! an engine (recycled if available, freshly allocated otherwise) and
//! the guard returns it on drop. The pool is `Sync`, so it can live in a
//! shared query context and be tapped from scoped worker threads.

use crate::search::SearchEngine;
use parking_lot::Mutex;
use std::ops::{Deref, DerefMut};

/// Shared pool of reusable [`SearchEngine`] scratch state.
#[derive(Default)]
pub struct SearchPool {
    idle: Mutex<Vec<SearchEngine>>,
}

impl SearchPool {
    /// An empty pool; engines are allocated lazily on first checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out an engine, reusing a previously returned one when
    /// possible. The engine goes back into the pool when the returned
    /// guard drops.
    pub fn checkout(&self) -> PooledEngine<'_> {
        let engine = self.idle.lock().pop().unwrap_or_default();
        PooledEngine { engine: Some(engine), pool: self }
    }

    /// Number of engines currently idle in the pool.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().len()
    }
}

impl std::fmt::Debug for SearchPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchPool").field("idle", &self.idle_count()).finish()
    }
}

/// Checkout guard dereferencing to a [`SearchEngine`]; returns the
/// engine to its [`SearchPool`] on drop.
pub struct PooledEngine<'a> {
    engine: Option<SearchEngine>,
    pool: &'a SearchPool,
}

impl Deref for PooledEngine<'_> {
    type Target = SearchEngine;
    fn deref(&self) -> &SearchEngine {
        self.engine.as_ref().expect("engine present until drop")
    }
}

impl DerefMut for PooledEngine<'_> {
    fn deref_mut(&mut self) -> &mut SearchEngine {
        self.engine.as_mut().expect("engine present until drop")
    }
}

impl Drop for PooledEngine<'_> {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            self.pool.idle.lock().push(engine);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{CostMetric, RoadClass};
    use crate::graph::GraphBuilder;
    use crate::search::metric_cost;
    use ec_types::{GeoPoint, NodeId};

    #[test]
    fn checkout_recycles_returned_engines() {
        let pool = SearchPool::new();
        assert_eq!(pool.idle_count(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            assert_eq!(pool.idle_count(), 0);
        }
        assert_eq!(pool.idle_count(), 2);
        let _c = pool.checkout();
        assert_eq!(pool.idle_count(), 1);
    }

    #[test]
    fn pooled_engine_runs_searches_via_deref() {
        let mut b = GraphBuilder::new();
        let o = GeoPoint::new(8.0, 53.0);
        let v0 = b.add_node(o);
        let v1 = b.add_node(o.offset_m(1_000.0, 0.0));
        b.add_edge(v0, v1, RoadClass::Primary);
        let g = b.build();

        let pool = SearchPool::new();
        let mut e = pool.checkout();
        let got = e.one_to_one(&g, v0, v1, metric_cost(CostMetric::Distance));
        assert!(got.is_some());
        assert_eq!(got.unwrap().1, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = SearchPool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _e = pool.checkout();
                });
            }
        });
        assert!(pool.idle_count() >= 1 && pool.idle_count() <= 4);
    }
}
