//! Cost-model-driven detour-backend selection (DESIGN.md §4j).
//!
//! Neither detour engine wins everywhere: the batched Dijkstra sweeps
//! settle the whole network per query point (cost ∝ graph size, almost
//! independent of the candidate count), while the Contraction-Hierarchy
//! index answers from per-candidate bucket scans and path unpacking
//! (cost ∝ candidate fan-out, and — measured, not hypothesised — the
//! *per-candidate* cost itself grows with graph size: deeper hierarchies
//! mean longer upward sweeps, fatter buckets and longer unpacked paths).
//! On the paper's city-scale graphs with fleet-sized fan-outs the sweeps
//! win — the detour benchmarks measured CH at 0.69× on Oldenburg — while
//! on large grids with *small* fan-outs CH wins by the better part of an
//! order of magnitude. Large graph **and** large fan-out goes back to
//! Dijkstra: a 484k-unit grid at 4 096 candidates measured the warm
//! hierarchy at 1.5× the sweep time.
//!
//! [`BackendCostModel`] captures exactly that trade as two cost
//! predictions, each affine in the graph size, and picks the cheaper
//! one. The decision rule
//!
//! ```text
//! choose CH  ⟺  units · dij_ns_per_unit
//!                  ≥ ch_ns_base + fanout · (ch_ns_per_cand + units · ch_ns_per_cand_unit)
//! ```
//!
//! (`units = nodes + edges`) is *monotone by construction*: for a fixed
//! fan-out both sides are affine in `units`, so growing the graph can
//! only flip the choice Dijkstra → CH, once, at
//! [`BackendCostModel::crossover_units`] — or never, when the fan-out is
//! so large that the hierarchy's per-candidate slope
//! (`fanout · ch_ns_per_cand_unit`) exceeds the sweep slope. No flapping
//! across the threshold either way. Both engines are bit-identical (see
//! [`crate::ch`]), so the resolution affects latency only, never result
//! bytes.
//!
//! One refinement: the sweeps terminate early once every candidate is
//! settled, so on graphs much larger than the query radius their true
//! cost is a *fraction* of `units · dij_ns_per_unit`. Callers that know
//! the actual candidate pool (it is exactly the chargers within the
//! radius) estimate that fraction with
//! [`BackendCostModel::settle_fraction`] and resolve through
//! [`BackendCostModel::choose_frac`]; at any fixed fraction the
//! monotonicity argument above carries over unchanged.
//!
//! The constants ship with conservative defaults and are refined by a
//! **one-shot seeded micro-calibration** ([`BackendCostModel::calibrated`])
//! the first time an `Auto` backend is resolved: a small seeded grid is
//! generated, both engines are timed on it, and the measured per-unit /
//! per-candidate slopes are clamped into a sane band around the defaults
//! so a noisy timer can never produce an absurd threshold.

use crate::ch::{DetourBackend, DetourCh};
use crate::edge::CostMetric;
use crate::generate::{urban_grid, UrbanGridParams};
use crate::graph::RoadGraph;
use crate::search::{metric_cost, SearchEngine};
use ec_types::NodeId;
use std::sync::OnceLock;
use std::time::Instant;

/// Affine latency model of the two detour engines over one batched query
/// point (the three settle-set sweeps / the three CH batch queries).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendCostModel {
    /// Predicted Dijkstra cost per graph work unit (`nodes + edges`), ns.
    pub dij_ns_per_unit: f64,
    /// Fixed per-query-point CH overhead (upward searches, bucket
    /// bookkeeping), ns.
    pub ch_ns_base: f64,
    /// Graph-size-independent part of the per-candidate CH cost (bucket
    /// entry bookkeeping, result assembly), ns.
    pub ch_ns_per_cand: f64,
    /// Graph-size-*dependent* part of the per-candidate CH cost, ns per
    /// candidate per work unit: bucket scans along the upward sweep and
    /// path unpacking both lengthen as the hierarchy deepens. Fitted from
    /// warm-query measurements across 10k–484k-unit grids (≈ 0.65 µs/cand
    /// at 10.7k units, ≈ 8 µs/cand at 484k units per sweep); not
    /// micro-calibratable from a single small grid, so it ships as a
    /// constant and is band-checked end-to-end by the `repro adaptive`
    /// gate instead.
    pub ch_ns_per_cand_unit: f64,
    /// CH preprocessing cost per graph work unit, ns. Charged — amortized
    /// over [`Self::AMORTIZE_QUERIES`] query points — only when the
    /// context has no prebuilt index to adopt; a shared index is a sunk
    /// cost.
    pub ch_build_ns_per_unit: f64,
}

impl BackendCostModel {
    /// Conservative defaults, measured on the development reference
    /// machine; the micro-calibration refines them within
    /// [`CLAMP_FACTOR`]. Sized so the paper's city-scale graphs
    /// (≲ 10k units) with fleet-sized fan-outs (600–1200 chargers)
    /// resolve to Dijkstra, large grids with modest fan-outs resolve to
    /// CH, and metro grids with fleet-scale fan-outs (where even warm
    /// bucket scans measured slower than the early-terminating sweeps)
    /// resolve back to Dijkstra.
    pub const DEFAULT: Self = Self {
        dij_ns_per_unit: 80.0,
        ch_ns_base: 100_000.0,
        ch_ns_per_cand: 1_200.0,
        ch_ns_per_cand_unit: 0.05,
        ch_build_ns_per_unit: 5_000.0,
    };

    /// Measured constants may deviate from [`Self::DEFAULT`] by at most
    /// this factor either way — the guard rail that keeps one noisy
    /// timer reading from flipping the policy wholesale.
    pub const CLAMP_FACTOR: f64 = 16.0;

    /// Separate, much wider band for the preprocessing constant: the
    /// build is one large (milliseconds-to-seconds) measurement, so timer
    /// noise is negligible, while its true per-unit cost varies by orders
    /// of magnitude between optimised and unoptimised builds. Clamping it
    /// as tightly as the query slopes would make a cold context underpay
    /// the build and pick CH on graphs where building dwarfs the queries.
    pub const BUILD_CLAMP_FACTOR: f64 = 256.0;

    /// Query points a cold context is assumed to answer before being
    /// dropped — the horizon the CH preprocessing cost is amortized over
    /// when no prebuilt index is available (a serving session answers
    /// hundreds of Offering Tables per world).
    pub const AMORTIZE_QUERIES: f64 = 256.0;

    /// Safety factor on the settled-region estimate in
    /// [`Self::settle_fraction`]: the batched sweeps terminate early once
    /// every candidate is settled, but the settled ball is a superset of
    /// the candidates' coverage fraction (Dijkstra settles by distance,
    /// not by membership). Fitted from measured effective fractions —
    /// 0.20 at 12 % pool coverage on a 454k-unit grid, 0.43 at 25 % on a
    /// 5.2k-unit network — both ≈ 1.7× the coverage; 2.5 keeps the
    /// estimate conservative (biased toward the full-settle cost).
    pub const SETTLE_SLACK: f64 = 2.5;

    /// The fraction of the graph one early-terminating sweep is expected
    /// to settle when the candidate pool holds `fanout` of the fleet's
    /// `fleet_size` chargers: the pool is exactly the chargers within the
    /// query radius, so `fanout / fleet_size` estimates how much of the
    /// charger-bearing area the radius covers, widened by
    /// [`Self::SETTLE_SLACK`] and capped at a full settle. `1.0` when the
    /// fleet size is unknown or degenerate.
    #[must_use]
    pub fn settle_fraction(fanout: usize, fleet_size: usize) -> f64 {
        if fleet_size == 0 {
            1.0
        } else {
            (Self::SETTLE_SLACK * fanout as f64 / fleet_size as f64).min(1.0)
        }
    }

    /// Predicted cost of one full-settle Dijkstra query point, ns.
    #[must_use]
    pub fn dijkstra_ns(&self, nodes: usize, edges: usize) -> f64 {
        (nodes + edges) as f64 * self.dij_ns_per_unit
    }

    /// Predicted cost of one Dijkstra query point that settles only
    /// `settle_fraction` of the graph before every candidate is reached.
    #[must_use]
    pub fn dijkstra_ns_frac(&self, nodes: usize, edges: usize, settle_fraction: f64) -> f64 {
        self.dijkstra_ns(nodes, edges) * settle_fraction.clamp(0.0, 1.0)
    }

    /// Predicted cost of one warm CH query point at `fanout` candidates
    /// on a `nodes`/`edges`-sized graph, ns.
    #[must_use]
    pub fn ch_ns(&self, nodes: usize, edges: usize, fanout: usize) -> f64 {
        let units = (nodes + edges) as f64;
        self.ch_ns_base + fanout as f64 * (self.ch_ns_per_cand + units * self.ch_ns_per_cand_unit)
    }

    /// The graph size (in `nodes + edges` units) above which CH is
    /// predicted cheaper at `fanout` candidates per query point —
    /// `f64::INFINITY` when the fan-out is large enough that the
    /// hierarchy's per-candidate slope swamps the sweep slope and CH
    /// never wins.
    #[must_use]
    pub fn crossover_units(&self, fanout: usize) -> f64 {
        let net_slope = self.dij_ns_per_unit - fanout as f64 * self.ch_ns_per_cand_unit;
        if net_slope <= 0.0 {
            f64::INFINITY
        } else {
            (self.ch_ns_base + self.ch_ns_per_cand * fanout as f64) / net_slope
        }
    }

    /// The concrete engine predicted cheaper for this graph/fan-out
    /// shape when a prebuilt CH index is available (preprocessing is a
    /// sunk cost), assuming full-settle sweeps. Never returns
    /// [`DetourBackend::Auto`].
    #[must_use]
    pub fn choose(&self, nodes: usize, edges: usize, fanout: usize) -> DetourBackend {
        self.choose_frac(nodes, edges, fanout, 1.0)
    }

    /// [`Self::choose`] with an explicit early-termination estimate for
    /// the sweep side (see [`Self::settle_fraction`]). At any *fixed*
    /// fraction both sides stay affine in the graph size, so the
    /// one-flip monotonicity argument carries over unchanged.
    #[must_use]
    pub fn choose_frac(
        &self,
        nodes: usize,
        edges: usize,
        fanout: usize,
        settle_fraction: f64,
    ) -> DetourBackend {
        if self.dijkstra_ns_frac(nodes, edges, settle_fraction) >= self.ch_ns(nodes, edges, fanout)
        {
            DetourBackend::Ch
        } else {
            DetourBackend::Dijkstra
        }
    }

    /// The concrete engine predicted cheaper when the index would have to
    /// be built first: the CH side additionally carries its preprocessing
    /// cost amortized over [`Self::AMORTIZE_QUERIES`] query points. Both
    /// sides stay affine in the graph size, so the choice still flips at
    /// most once (Dijkstra → CH) as the graph grows — or never, when the
    /// build-plus-bucket slope exceeds the sweep slope.
    #[must_use]
    pub fn choose_cold(&self, nodes: usize, edges: usize, fanout: usize) -> DetourBackend {
        self.choose_cold_frac(nodes, edges, fanout, 1.0)
    }

    /// [`Self::choose_cold`] with an explicit early-termination estimate
    /// for the sweep side.
    #[must_use]
    pub fn choose_cold_frac(
        &self,
        nodes: usize,
        edges: usize,
        fanout: usize,
        settle_fraction: f64,
    ) -> DetourBackend {
        let units = (nodes + edges) as f64;
        let build_am = units * self.ch_build_ns_per_unit / Self::AMORTIZE_QUERIES;
        if self.dijkstra_ns_frac(nodes, edges, settle_fraction)
            >= self.ch_ns(nodes, edges, fanout) + build_am
        {
            DetourBackend::Ch
        } else {
            DetourBackend::Dijkstra
        }
    }

    /// The process-wide calibrated model: [`Self::DEFAULT`] refined by a
    /// one-shot seeded micro-benchmark on first call (a few milliseconds;
    /// later calls are a load). Calibration changes *when* each engine is
    /// picked, never *what* it computes, so timing noise cannot reach the
    /// Offering Tables.
    #[must_use]
    pub fn calibrated() -> Self {
        static MODEL: OnceLock<BackendCostModel> = OnceLock::new();
        *MODEL.get_or_init(|| Self::measure().map_or(Self::DEFAULT, Self::clamped))
    }

    /// Clamp every constant into `DEFAULT / CLAMP_FACTOR ..= DEFAULT ×
    /// CLAMP_FACTOR`, discarding non-finite readings.
    #[must_use]
    pub fn clamped(self) -> Self {
        fn band(measured: f64, default: f64, factor: f64) -> f64 {
            if measured.is_finite() {
                measured.clamp(default / factor, default * factor)
            } else {
                default
            }
        }
        Self {
            dij_ns_per_unit: band(
                self.dij_ns_per_unit,
                Self::DEFAULT.dij_ns_per_unit,
                Self::CLAMP_FACTOR,
            ),
            ch_ns_base: band(self.ch_ns_base, Self::DEFAULT.ch_ns_base, Self::CLAMP_FACTOR),
            ch_ns_per_cand: band(
                self.ch_ns_per_cand,
                Self::DEFAULT.ch_ns_per_cand,
                Self::CLAMP_FACTOR,
            ),
            ch_ns_per_cand_unit: band(
                self.ch_ns_per_cand_unit,
                Self::DEFAULT.ch_ns_per_cand_unit,
                Self::CLAMP_FACTOR,
            ),
            ch_build_ns_per_unit: band(
                self.ch_build_ns_per_unit,
                Self::DEFAULT.ch_build_ns_per_unit,
                Self::BUILD_CLAMP_FACTOR,
            ),
        }
    }

    /// One seeded micro-benchmark: generate a small grid near the
    /// decision boundary, time one Dijkstra query point and two CH query
    /// points at different fan-outs (min over a few repetitions, after a
    /// warm-up), and solve for the three slopes. `None` when the timings
    /// are degenerate (e.g. a zero-resolution clock).
    fn measure() -> Option<Self> {
        const SEED: u64 = 0xada8_7e01;
        const REPS: usize = 3;
        const F_LO: usize = 16;
        const F_HI: usize = 128;

        let g = urban_grid(&UrbanGridParams {
            cols: 32,
            rows: 26,
            seed: SEED,
            ..UrbanGridParams::default()
        });
        let units = g.num_nodes() + g.num_edges();
        if g.num_nodes() < F_HI * 2 {
            return None;
        }
        let source = NodeId((g.num_nodes() / 2) as u32);
        let rejoin = NodeId((g.num_nodes() / 3) as u32);
        let stride = g.num_nodes() / F_HI;
        let targets: Vec<NodeId> = (0..F_HI).map(|i| NodeId((i * stride) as u32)).collect();

        let mut engine = SearchEngine::new();
        let dij_point = |engine: &mut SearchEngine, nodes: &[NodeId]| {
            let t = engine.one_to_many(&g, source, nodes, metric_cost(CostMetric::Time));
            let f = engine.one_to_many_profiled(&g, source, nodes, metric_cost(CostMetric::Energy));
            let r = engine.many_to_one_profiled(&g, rejoin, nodes, metric_cost(CostMetric::Energy));
            (t, f, r)
        };
        let _warm = dij_point(&mut engine, &targets);
        let mut dij_ns = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let _ = dij_point(&mut engine, &targets);
            dij_ns = dij_ns.min(t0.elapsed().as_nanos() as f64);
        }

        let t_build = Instant::now();
        let ch = DetourCh::build(&g, 1);
        let build_ns = t_build.elapsed().as_nanos() as f64;
        let mut ch_point = |nodes: &[NodeId]| {
            let t = ch.time.one_to_many(&g, engine.ch_scratch(), source, nodes);
            let f = ch.energy.one_to_many(&g, engine.ch_scratch(), source, nodes);
            let r = ch.energy.many_to_one(&g, engine.ch_scratch(), rejoin, nodes);
            (t, f, r)
        };
        let mut timed = |nodes: &[NodeId]| {
            let _warm = ch_point(nodes);
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let _ = ch_point(nodes);
                best = best.min(t0.elapsed().as_nanos() as f64);
            }
            best
        };
        let ch_lo_ns = timed(&targets[..F_LO]);
        let ch_hi_ns = timed(&targets);

        if !(dij_ns.is_finite() && ch_lo_ns.is_finite() && ch_hi_ns.is_finite()) || dij_ns <= 0.0 {
            return None;
        }
        // The measured per-candidate slope on the calibration grid mixes
        // the fixed part with the graph-size-dependent part; subtract the
        // shipped units-slope's contribution at this grid's size to
        // recover the fixed part. The units-slope itself needs timings at
        // several graph sizes (each behind a multi-second CH build), so
        // it is not re-measured here.
        let slope = (ch_hi_ns - ch_lo_ns) / (F_HI - F_LO) as f64;
        let per_cand = slope - Self::DEFAULT.ch_ns_per_cand_unit * units as f64;
        let base = ch_lo_ns - slope * F_LO as f64;
        Some(Self {
            dij_ns_per_unit: dij_ns / units as f64,
            ch_ns_base: base,
            ch_ns_per_cand: per_cand,
            ch_ns_per_cand_unit: Self::DEFAULT.ch_ns_per_cand_unit,
            ch_build_ns_per_unit: build_ns / units as f64,
        })
    }
}

impl Default for BackendCostModel {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// Resolve a requested backend to a concrete engine for a graph/fan-out
/// shape: static choices pass through, [`DetourBackend::Auto`] consults
/// the process-wide calibrated cost model. `prebuilt` says whether the
/// caller already holds a CH index it could adopt — without one, the CH
/// side is additionally charged its amortized preprocessing cost.
/// `settle_fraction` is the sweep side's early-termination estimate
/// ([`BackendCostModel::settle_fraction`]); pass `1.0` when the actual
/// candidate pool is unknown (full-settle, the conservative-for-CH
/// assumption).
#[must_use]
pub fn resolve_backend(
    requested: DetourBackend,
    graph: &RoadGraph,
    fanout: usize,
    prebuilt: bool,
    settle_fraction: f64,
) -> DetourBackend {
    match requested {
        DetourBackend::Auto => {
            let m = BackendCostModel::calibrated();
            let (n, e) = (graph.num_nodes(), graph.num_edges());
            if prebuilt {
                m.choose_frac(n, e, fanout, settle_fraction)
            } else {
                m.choose_cold_frac(n, e, fanout, settle_fraction)
            }
        }
        concrete => concrete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_model_picks_dijkstra_on_city_scale_fleet_fanouts() {
        let m = BackendCostModel::DEFAULT;
        // Oldenburg-shaped: ~1.3k nodes, ~3.4k directed edges, 600-charger
        // fleet. CH measured 0.69× here — the model must agree.
        assert_eq!(m.choose(1_300, 3_400, 600), DetourBackend::Dijkstra);
        // All paper fleets (600–1200) on graphs up to ~10k units.
        for fanout in [600, 800, 1000, 1200] {
            assert_eq!(m.choose(2_500, 7_000, fanout), DetourBackend::Dijkstra);
        }
    }

    #[test]
    fn default_model_picks_ch_on_large_graphs_with_modest_fanouts() {
        let m = BackendCostModel::DEFAULT;
        // 240² benchmark grid (~57.6k nodes), 128-charger fleet: CH
        // measured 5.5× faster.
        assert_eq!(m.choose(57_600, 155_000, 128), DetourBackend::Ch);
        // Sparse fleet on a mid-size grid: CH measured ~5× faster warm.
        assert_eq!(m.choose(2_304, 8_458, 64), DetourBackend::Ch);
        // Metro tier, low-density fleet: the hierarchy's home turf.
        assert_eq!(m.choose(1_050_000, 2_900_000, 1_024), DetourBackend::Ch);
    }

    #[test]
    fn default_model_picks_dijkstra_on_metro_scale_fleet_fanouts() {
        let m = BackendCostModel::DEFAULT;
        // Measured on a 484k-unit grid at 4 096 candidates: the warm
        // hierarchy ran at 1.5× the (early-terminating) sweep time, and
        // the gap widens with fan-out — per-candidate bucket/unpack cost
        // grows with graph size, the sweep cost does not.
        assert_eq!(m.choose(95_998, 358_222, 10_000), DetourBackend::Dijkstra);
        assert_eq!(m.choose(1_050_000, 2_900_000, 32_768), DetourBackend::Dijkstra);
        assert_eq!(m.choose(1_050_000, 2_900_000, 100_000), DetourBackend::Dijkstra);
    }

    #[test]
    fn settle_fraction_keeps_sparse_metro_pools_on_dijkstra() {
        let m = BackendCostModel::DEFAULT;
        // Metro substrate, 10k-charger fleet, but the 50 km radius only
        // admits ~1.2k of them: the sweep settles ~a third of the graph
        // and measured 3× faster than the warm hierarchy (7.4 ms vs
        // 22.7 ms). The full-settle rule would flip to CH here.
        let frac = BackendCostModel::settle_fraction(1_200, 10_000);
        assert!((0.25..=0.45).contains(&frac), "{frac}");
        assert_eq!(m.choose_frac(95_998, 358_222, 1_200, frac), DetourBackend::Dijkstra);
        assert_eq!(m.choose(95_998, 358_222, 1_200), DetourBackend::Ch);
        // A pool that *is* the whole fleet settles everything: the
        // fraction saturates and choose_frac degenerates to choose.
        assert_eq!(BackendCostModel::settle_fraction(64, 64), 1.0);
        assert_eq!(m.choose_frac(2_304, 8_458, 64, 1.0), m.choose(2_304, 8_458, 64));
        // Degenerate fleet: assume a full settle rather than divide by 0.
        assert_eq!(BackendCostModel::settle_fraction(10, 0), 1.0);
    }

    #[test]
    fn static_choices_pass_through_resolution() {
        let g = urban_grid(&UrbanGridParams { cols: 8, rows: 6, ..UrbanGridParams::default() });
        for prebuilt in [false, true] {
            assert_eq!(
                resolve_backend(DetourBackend::Dijkstra, &g, 10_000, prebuilt, 1.0),
                DetourBackend::Dijkstra
            );
            assert_eq!(resolve_backend(DetourBackend::Ch, &g, 1, prebuilt, 1.0), DetourBackend::Ch);
            // Auto always lands on a concrete engine.
            assert_ne!(
                resolve_backend(DetourBackend::Auto, &g, 64, prebuilt, 1.0),
                DetourBackend::Auto
            );
        }
    }

    #[test]
    fn cold_resolution_is_at_least_as_reluctant_to_pick_ch() {
        let m = BackendCostModel::DEFAULT;
        for fanout in [16usize, 128, 600, 4_096, 32_768] {
            let mut units = 64usize;
            while units < 1 << 24 {
                let (n, e) = (units / 4, units - units / 4);
                // choose_cold never picks CH where choose would not.
                if m.choose_cold(n, e, fanout) == DetourBackend::Ch {
                    assert_eq!(m.choose(n, e, fanout), DetourBackend::Ch);
                }
                units *= 2;
            }
        }
        // And the low-density metro shape still clears the amortized
        // build cost.
        assert_eq!(m.choose_cold(1_050_000, 2_900_000, 1_024), DetourBackend::Ch);
    }

    #[test]
    fn calibrated_model_is_within_the_clamp_band() {
        let m = BackendCostModel::calibrated();
        let d = BackendCostModel::DEFAULT;
        let f = BackendCostModel::CLAMP_FACTOR;
        assert!(
            m.dij_ns_per_unit >= d.dij_ns_per_unit / f
                && m.dij_ns_per_unit <= d.dij_ns_per_unit * f
        );
        assert!(m.ch_ns_base >= d.ch_ns_base / f && m.ch_ns_base <= d.ch_ns_base * f);
        assert!(
            m.ch_ns_per_cand >= d.ch_ns_per_cand / f && m.ch_ns_per_cand <= d.ch_ns_per_cand * f
        );
        // The units-slope is never re-measured — it passes through as the
        // shipped constant.
        assert_eq!(m.ch_ns_per_cand_unit, d.ch_ns_per_cand_unit);
        // Calibration is one-shot: a second call returns the same model.
        assert_eq!(m, BackendCostModel::calibrated());
    }

    proptest! {
        /// No flapping across the threshold: for any model in the clamp
        /// band and any fixed fan-out, the choice as a function of graph
        /// size flips at most once, and only Dijkstra → CH.
        #[test]
        fn choice_is_monotone_in_graph_size(
            dij in 5.0f64..1_300.0,
            base in 3_750.0f64..1_000_000.0,
            per_cand in 37.5f64..10_000.0,
            per_cand_unit in 0.003_125f64..0.8,
            build in 312.5f64..80_000.0,
            fanout in 0usize..200_000,
        ) {
            let m = BackendCostModel {
                dij_ns_per_unit: dij,
                ch_ns_base: base,
                ch_ns_per_cand: per_cand,
                ch_ns_per_cand_unit: per_cand_unit,
                ch_build_ns_per_unit: build,
            };
            let mut seen_ch = false;
            let mut seen_ch_cold = false;
            // Exponential sweep over graph sizes spanning city to metro.
            let mut units = 64usize;
            while units < 1 << 24 {
                let choice = m.choose(units / 4, units - units / 4, fanout);
                if seen_ch {
                    prop_assert_eq!(choice, DetourBackend::Ch,
                        "choice flapped back to Dijkstra at {} units", units);
                }
                seen_ch |= choice == DetourBackend::Ch;
                // The cold rule is affine on both sides too: monotone as
                // long as the sweep slope exceeds the amortized build
                // slope, and constant-Dijkstra otherwise.
                let cold = m.choose_cold(units / 4, units - units / 4, fanout);
                if seen_ch_cold {
                    prop_assert_eq!(cold, DetourBackend::Ch,
                        "cold choice flapped back to Dijkstra at {} units", units);
                }
                seen_ch_cold |= cold == DetourBackend::Ch;
                units *= 2;
            }
            // The analytic crossover agrees with the scan: infinite
            // exactly when the scan never reached CH because the bucket
            // slope swamps the sweep slope; positive and finite
            // otherwise.
            let cross = m.crossover_units(fanout);
            prop_assert!(cross > 0.0);
            if !cross.is_finite() {
                prop_assert!(!seen_ch,
                    "scan picked CH although the crossover is unreachable");
            }
        }

        /// Growing the fan-out at a fixed graph size can only move the
        /// choice CH → Dijkstra (more candidates make the sweeps
        /// relatively cheaper), never the other way.
        #[test]
        fn choice_is_antitone_in_fanout(
            dij in 5.0f64..1_300.0,
            base in 3_750.0f64..1_000_000.0,
            per_cand in 37.5f64..10_000.0,
            per_cand_unit in 0.003_125f64..0.8,
            units in 64usize..2_000_000,
        ) {
            let m = BackendCostModel {
                dij_ns_per_unit: dij,
                ch_ns_base: base,
                ch_ns_per_cand: per_cand,
                ch_ns_per_cand_unit: per_cand_unit,
                ch_build_ns_per_unit: BackendCostModel::DEFAULT.ch_build_ns_per_unit,
            };
            let mut seen_dij = false;
            let mut fanout = 1usize;
            while fanout < 1 << 18 {
                let choice = m.choose(units / 4, units - units / 4, fanout);
                if seen_dij {
                    prop_assert_eq!(choice, DetourBackend::Dijkstra);
                }
                seen_dij |= choice == DetourBackend::Dijkstra;
                fanout *= 2;
            }
        }
    }
}
