//! Import/export of road networks in the Brinkhoff node/edge format.
//!
//! The original Oldenburg dataset (and the other networks the Brinkhoff
//! generator ships) come as two whitespace-separated text files:
//!
//! ```text
//! # name.node          # name.edge
//! <id> <x> <y>         <edge-id> <node1> <node2> [<class>]
//! ```
//!
//! with planar integer coordinates. [`parse_node_edge`] ingests that
//! format, mapping the planar coordinates into WGS-84 around a caller-
//! supplied anchor so the rest of the workspace (distances in metres,
//! solar geometry by latitude) works unchanged. This is the hook for
//! running the reproduction on the *real* evaluation networks when a copy
//! is available; [`write_node_edge`] round-trips our synthetic networks
//! into the same format for external tools.

use crate::edge::RoadClass;
use crate::graph::{GraphBuilder, RoadGraph};
use ec_types::{EcError, GeoPoint, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// How planar file coordinates map into WGS-84.
#[derive(Debug, Clone, Copy)]
pub struct PlanarAnchor {
    /// WGS-84 position of the planar origin `(0, 0)`.
    pub origin: GeoPoint,
    /// Metres per planar coordinate unit.
    pub meters_per_unit: f64,
}

impl Default for PlanarAnchor {
    fn default() -> Self {
        // Oldenburg's conventional anchor: the dataset's 45×35 km region.
        Self { origin: GeoPoint::new(8.13, 53.09), meters_per_unit: 1.0 }
    }
}

/// Parse Brinkhoff-style `.node` and `.edge` file contents into a graph.
/// Every edge is treated as two-way (the generator's networks are);
/// unknown class tags default to `Residential`; the largest connected
/// component is kept.
///
/// # Errors
/// [`EcError::InvalidConfig`] on malformed lines or dangling edge
/// references; [`EcError::DegenerateTrip`] when fewer than two nodes
/// parse.
pub fn parse_node_edge(
    node_text: &str,
    edge_text: &str,
    anchor: &PlanarAnchor,
) -> Result<RoadGraph, EcError> {
    let mut builder = GraphBuilder::new();
    let mut id_map: HashMap<i64, NodeId> = HashMap::new();

    for (lineno, line) in node_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (id, x, y) = (parts.next(), parts.next(), parts.next());
        let (Some(id), Some(x), Some(y)) = (id, x, y) else {
            return Err(EcError::InvalidConfig(format!(
                "node line {} needs `id x y`, got `{line}`",
                lineno + 1
            )));
        };
        let id: i64 = id.parse().map_err(|_| {
            EcError::InvalidConfig(format!("bad node id `{id}` on line {}", lineno + 1))
        })?;
        let x: f64 = x
            .parse()
            .map_err(|_| EcError::InvalidConfig(format!("bad x `{x}` on line {}", lineno + 1)))?;
        let y: f64 = y
            .parse()
            .map_err(|_| EcError::InvalidConfig(format!("bad y `{y}` on line {}", lineno + 1)))?;
        let point = anchor.origin.offset_m(x * anchor.meters_per_unit, y * anchor.meters_per_unit);
        id_map.insert(id, builder.add_node(point));
    }
    if id_map.len() < 2 {
        return Err(EcError::DegenerateTrip(format!(
            "only {} nodes parsed — not a network",
            id_map.len()
        )));
    }

    let mut any_edge = false;
    for (lineno, line) in edge_text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (_edge_id, a, b) = (parts.next(), parts.next(), parts.next());
        let (Some(_), Some(a), Some(b)) = (_edge_id, a, b) else {
            return Err(EcError::InvalidConfig(format!(
                "edge line {} needs `id node1 node2 [class]`, got `{line}`",
                lineno + 1
            )));
        };
        let parse_ref = |s: &str| -> Result<NodeId, EcError> {
            let id: i64 = s.parse().map_err(|_| {
                EcError::InvalidConfig(format!("bad node ref `{s}` on line {}", lineno + 1))
            })?;
            id_map
                .get(&id)
                .copied()
                .ok_or_else(|| EcError::InvalidConfig(format!("edge references unknown node {id}")))
        };
        let (a, b) = (parse_ref(a)?, parse_ref(b)?);
        if a == b {
            continue; // self-loops carry no routing information
        }
        let class = parts
            .next()
            .and_then(|t| t.parse::<u8>().ok())
            .filter(|&t| (t as usize) < RoadClass::ALL.len())
            .map_or(RoadClass::Residential, RoadClass::from_tag);
        builder.add_two_way(a, b, class);
        any_edge = true;
    }
    if !any_edge {
        return Err(EcError::InvalidConfig("no edges parsed".into()));
    }

    // Keep the largest component (files may carry disconnected fragments).
    let graph = builder.build();
    let component = graph.largest_component();
    if component.len() == graph.num_nodes() {
        return Ok(graph);
    }
    let keep: std::collections::HashSet<NodeId> = component.into_iter().collect();
    let mut pruned = GraphBuilder::new();
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    for v in 0..graph.num_nodes() {
        let v = NodeId::from_index(v);
        if keep.contains(&v) {
            remap.insert(v, pruned.add_node(graph.point(v)));
        }
    }
    for v in 0..graph.num_nodes() {
        let v = NodeId::from_index(v);
        let Some(&nv) = remap.get(&v) else { continue };
        for (e, u) in graph.out_edges(v) {
            if let Some(&nu) = remap.get(&u) {
                pruned.add_edge_with_len(nv, nu, graph.edge_len_m(e) as f32, graph.edge_class(e));
            }
        }
    }
    Ok(pruned.build())
}

/// Serialise a graph into `(node_text, edge_text)` in the same format
/// (planar coordinates relative to `anchor`; each two-way street written
/// once, class as the trailing tag).
#[must_use]
pub fn write_node_edge(graph: &RoadGraph, anchor: &PlanarAnchor) -> (String, String) {
    let mut nodes = String::new();
    let origin = anchor.origin;
    for v in 0..graph.num_nodes() {
        let p = graph.point(NodeId::from_index(v));
        // Invert offset_m around the anchor (equirectangular, consistent
        // with parse).
        let y =
            (p.lat - origin.lat).to_radians() * ec_types::EARTH_RADIUS_M / anchor.meters_per_unit;
        let x = (p.lon - origin.lon).to_radians()
            * origin.lat.to_radians().cos()
            * ec_types::EARTH_RADIUS_M
            / anchor.meters_per_unit;
        let _ = writeln!(nodes, "{v} {x:.3} {y:.3}");
    }
    let mut edges = String::new();
    let mut edge_id = 0usize;
    for v in 0..graph.num_nodes() {
        let v = NodeId::from_index(v);
        for (e, u) in graph.out_edges(v) {
            if u.0 <= v.0 {
                continue; // one line per two-way street
            }
            let _ = writeln!(edges, "{edge_id} {} {} {}", v.0, u.0, graph.edge_class(e).tag());
            edge_id += 1;
        }
    }
    (nodes, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{urban_grid, UrbanGridParams};

    #[test]
    fn parses_a_tiny_network() {
        let nodes = "0 0 0\n1 1000 0\n2 1000 1000\n# comment\n\n3 0 1000\n";
        let edges = "0 0 1 1\n1 1 2\n2 2 3 0\n3 3 0\n";
        let g = parse_node_edge(nodes, edges, &PlanarAnchor::default()).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 8); // 4 two-way streets
                                      // Class tags honoured: edge 0 is Primary (tag 1), edge 2 Motorway (tag 0).
        let v0 = NodeId(0);
        let (e, _) = g.out_edges(v0).find(|&(_, u)| u == NodeId(1)).unwrap();
        assert_eq!(g.edge_class(e), RoadClass::Primary);
        // ~1 km block edges.
        assert!((g.edge_len_m(e) - 1_000.0).abs() < 10.0);
    }

    #[test]
    fn keeps_largest_component() {
        let nodes = "0 0 0\n1 1000 0\n2 50000 50000\n3 51000 50000\n4 2000 0\n";
        let edges = "0 0 1\n1 1 4\n2 2 3\n";
        let g = parse_node_edge(nodes, edges, &PlanarAnchor::default()).unwrap();
        assert_eq!(g.num_nodes(), 3, "the 2-node island must be pruned");
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        let anchor = PlanarAnchor::default();
        assert!(matches!(parse_node_edge("0 1\n", "", &anchor), Err(EcError::InvalidConfig(_))));
        assert!(matches!(
            parse_node_edge("0 0 0\n1 10 10\n", "0 0 99\n", &anchor),
            Err(EcError::InvalidConfig(_)) // dangling node ref
        ));
        assert!(matches!(
            parse_node_edge("0 0 0\n1 10 10\n", "", &anchor),
            Err(EcError::InvalidConfig(_)) // no edges
        ));
        assert!(matches!(parse_node_edge("0 0 0\n", "", &anchor), Err(EcError::DegenerateTrip(_))));
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let original = urban_grid(&UrbanGridParams { cols: 8, rows: 8, ..Default::default() });
        let anchor = PlanarAnchor::default();
        let (nodes, edges) = write_node_edge(&original, &anchor);
        let parsed = parse_node_edge(&nodes, &edges, &anchor).unwrap();
        assert_eq!(parsed.num_nodes(), original.num_nodes());
        assert_eq!(parsed.num_edges(), original.num_edges());
        // Node positions survive within metres.
        for v in (0..original.num_nodes()).step_by(7) {
            let v = NodeId::from_index(v);
            let d = original.point(v).fast_dist_m(&parsed.point(v));
            assert!(d < 5.0, "{v} moved {d} m in the round trip");
        }
        // Note: generated curvature-inflated lengths are not representable
        // in the format (it carries no length column), so edge lengths
        // come back as straight-line distances — structure, not weights,
        // is the round-trip contract.
    }

    #[test]
    fn self_loops_are_dropped() {
        let nodes = "0 0 0\n1 1000 0\n";
        let edges = "0 0 0\n1 0 1\n";
        let g = parse_node_edge(nodes, edges, &PlanarAnchor::default()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}
