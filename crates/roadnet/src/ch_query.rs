//! Contraction-Hierarchy queries: bidirectional point-to-point and
//! bucket-based one-to-many / many-to-one over a [`ChIndex`].
//!
//! ## Bucket query sketch
//!
//! A one-to-many query `from → {t₁…tₘ}` runs one *backward upward*
//! search per distinct target (relaxing [`ChIndex::down_arcs`]
//! tail-ward), dropping `(target, dist, tree-entry)` items into a
//! per-node **bucket**; then a single *forward upward* search from
//! `from` scans the bucket at every settled node and keeps, per target,
//! the best `d_fwd(v) + d_bwd(v)` meeting node. Many-to-one mirrors it
//! (forward fills, one shared backward sweep).
//!
//! The CkNN-EC loop re-queries the *same* candidate set from a new
//! segment node every segment, so [`ChScratch`] caches bucket fills
//! keyed by `(index uid, direction, target list)` — a pure function of
//! the index and the targets, hence safe to reuse and irrelevant to
//! determinism. Steady state is therefore one ~O(hierarchy-height)
//! upward sweep per query instead of a near-full-graph Dijkstra.
//!
//! ## Bit-identity with the Dijkstra backend
//!
//! The hierarchy search only *selects* the shortest path; the reported
//! cost is re-summed over the unpacked original edges in exactly the
//! fold order the [`SearchEngine`](crate::search::SearchEngine) uses:
//! forward queries fold `from → target` edge order, reverse queries fold
//! `target ← to` (reversed) order, and the road-class histogram always
//! accumulates in forward path order. Floating-point addition is not
//! associative, so re-summation — not the search's own accumulated
//! distance — is what makes `Ch` bit-identical to `Dijkstra`.

use crate::ch::{ChIndex, NO_ARC};
use crate::graph::RoadGraph;
use ec_types::NodeId;
use spatial_index::OrdF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const NO_ENTRY: u32 = u32::MAX;

/// Cached bucket fills kept per scratch (per pooled worker). One detour
/// batch needs **three** fills — time-index Down, energy-index Down,
/// energy-index Up — and a serving worker interleaves several trips,
/// each with its own radius-filtered candidate set. A cap of 4 thrashed
/// as soon as two pools alternated (6 distinct fills), silently turning
/// every warm query back into `fanout` upward searches; this cap holds
/// four pools' worth. Fills are pure functions of `(index, direction,
/// targets)`, so capacity affects latency only, never results.
const BUCKET_CACHE_CAP: usize = 12;

/// Cost of one unpacked shortest path: the re-summed metric cost plus
/// the per-[`RoadClass`](crate::edge::RoadClass) metre histogram
/// (indexed by `RoadClass::tag()`, forward path order).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChCost {
    /// Path cost under the index's metric, bit-identical to the
    /// Dijkstra backend.
    pub cost: f64,
    /// Metres travelled per road class along the path.
    pub class_len_m: [f64; 4],
}

/// One node of a shortest-path tree: the arc that reached this node and
/// the entry of the node it was reached from.
#[derive(Debug, Clone, Copy)]
struct TreeNode {
    arc: u32,
    parent: u32,
}

/// One bucket item: a distinct target's backward (or forward) distance
/// through this node, plus its tree entry for path unpacking.
#[derive(Debug, Clone, Copy)]
struct BucketItem {
    target: u32,
    dist: f64,
    entry: u32,
}

/// Search direction over the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Relax [`ChIndex::up_arcs`] head-ward (source-side search).
    Up,
    /// Relax [`ChIndex::down_arcs`] tail-ward (target-side search).
    Down,
}

/// A completed set of bucket fills for one `(index, direction, targets)`
/// triple. Pure function of its key, so reusing it across queries cannot
/// change any result.
#[derive(Debug)]
struct BucketFill {
    uid: u64,
    dir: Dir,
    /// The target list exactly as passed by the caller (including
    /// duplicates) — the cache key.
    key: Vec<u32>,
    /// Distinct targets in first-occurrence order.
    uniq: Vec<u32>,
    /// `key[i]`'s index into `uniq`.
    remap: Vec<u32>,
    /// Per-node bucket items as CSR (`bucket_off[v]..bucket_off[v+1]`
    /// indexes `bucket_items`): the sweep's hot loop scans one flat
    /// array instead of chasing a `Vec` per node.
    bucket_off: Vec<u32>,
    bucket_items: Vec<BucketItem>,
    /// Tree-entry arena shared by all fills of this set.
    entries: Vec<TreeNode>,
}

impl BucketFill {
    /// The bucket items at node `v`.
    #[inline]
    fn bucket(&self, v: u32) -> &[BucketItem] {
        &self.bucket_items
            [self.bucket_off[v as usize] as usize..self.bucket_off[v as usize + 1] as usize]
    }
}

/// Reusable per-worker CH query state. Embedded in every
/// [`SearchEngine`](crate::search::SearchEngine), so a
/// [`SearchPool`](crate::pool::SearchPool) checkout carries its own CH
/// scratch — and its own warm bucket cache — with no extra allocation.
#[derive(Debug, Default)]
pub struct ChScratch {
    dist: Vec<f64>,
    stamp: Vec<u32>,
    entry_of: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<Reverse<(OrdF64, u32)>>,
    entries: Vec<TreeNode>,
    settled: usize,
    cache: Vec<BucketFill>,
    /// Unpack work buffers (arc stack, original-arc accumulator,
    /// unpacked-edge accumulator).
    stack: Vec<u32>,
    arcs_buf: Vec<u32>,
    edges_buf: Vec<u32>,
}

impl ChScratch {
    /// Nodes settled by the most recent query on this scratch (bucket
    /// fills included when they were not served from cache).
    #[must_use]
    pub fn last_settled(&self) -> usize {
        self.settled
    }

    /// Drop all cached bucket fills (tests / memory pressure).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.stamp.resize(n, 0);
            self.entry_of.resize(n, NO_ENTRY);
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(0);
            self.generation = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn dist_of(&self, v: u32) -> f64 {
        if self.stamp[v as usize] == self.generation {
            self.dist[v as usize]
        } else {
            f64::INFINITY
        }
    }

    /// Full upward search from `source`, calling `visit(v, dist, entry)`
    /// on every settled node. Tree entries go into `entries`.
    fn upward_search<F>(
        &mut self,
        index: &ChIndex,
        dir: Dir,
        source: u32,
        entries: &mut Vec<TreeNode>,
        mut visit: F,
    ) where
        F: FnMut(u32, f64, u32),
    {
        self.begin(index.num_nodes());
        let root = push_entry(entries, NO_ARC, NO_ENTRY);
        self.dist[source as usize] = 0.0;
        self.stamp[source as usize] = self.generation;
        self.entry_of[source as usize] = root;
        self.heap.push(Reverse((OrdF64::new(0.0), source)));
        while let Some(Reverse((d, v))) = self.heap.pop() {
            let d = d.get();
            if d > self.dist_of(v) {
                continue;
            }
            self.settled += 1;
            let ve = self.entry_of[v as usize];
            visit(v, d, ve);
            let arcs = match dir {
                Dir::Up => index.up_arcs(v),
                Dir::Down => index.down_arcs(v),
            };
            for &arc in arcs {
                let u = match dir {
                    Dir::Up => index.arcs.head[arc as usize],
                    Dir::Down => index.arcs.tail[arc as usize],
                };
                let nd = d + index.arcs.weight[arc as usize];
                if nd < self.dist_of(u) {
                    self.dist[u as usize] = nd;
                    self.stamp[u as usize] = self.generation;
                    self.entry_of[u as usize] = push_entry(entries, arc, ve);
                    self.heap.push(Reverse((OrdF64::new(nd), u)));
                }
            }
        }
    }

    /// Get-or-build the bucket fill for `(index, dir, targets)`.
    fn fill_index(&mut self, index: &ChIndex, dir: Dir, targets: &[NodeId]) -> usize {
        if let Some(i) = self
            .cache
            .iter()
            .position(|f| f.uid == index.uid() && f.dir == dir && key_matches(&f.key, targets))
        {
            return i;
        }
        let key: Vec<u32> = targets.iter().map(|t| t.0).collect();
        let mut uniq: Vec<u32> = Vec::new();
        let mut remap: Vec<u32> = Vec::with_capacity(key.len());
        for &t in &key {
            match uniq.iter().position(|&u| u == t) {
                Some(i) => remap.push(i as u32),
                None => {
                    remap.push(uniq.len() as u32);
                    uniq.push(t);
                }
            }
        }
        let mut fill = BucketFill {
            uid: index.uid(),
            dir,
            key,
            uniq,
            remap,
            bucket_off: Vec::new(),
            bucket_items: Vec::new(),
            entries: Vec::new(),
        };
        let mut buckets: Vec<Vec<BucketItem>> = vec![Vec::new(); index.num_nodes()];
        for ti in 0..fill.uniq.len() {
            let t = fill.uniq[ti];
            let mut entries = std::mem::take(&mut fill.entries);
            self.upward_search(index, dir, t, &mut entries, |v, d, entry| {
                buckets[v as usize].push(BucketItem { target: ti as u32, dist: d, entry });
            });
            fill.entries = entries;
        }
        // Flatten to CSR for the sweep's scan.
        fill.bucket_off.reserve(buckets.len() + 1);
        fill.bucket_off.push(0);
        fill.bucket_items.reserve(buckets.iter().map(Vec::len).sum());
        for b in &buckets {
            fill.bucket_items.extend_from_slice(b);
            let len = u32::try_from(fill.bucket_items.len()).expect("bucket item count fits u32");
            fill.bucket_off.push(len);
        }
        if self.cache.len() == BUCKET_CACHE_CAP {
            self.cache.remove(0);
        }
        self.cache.push(fill);
        self.cache.len() - 1
    }
}

fn push_entry(entries: &mut Vec<TreeNode>, arc: u32, parent: u32) -> u32 {
    let id = u32::try_from(entries.len()).expect("tree entry count fits in u32");
    entries.push(TreeNode { arc, parent });
    id
}

fn key_matches(key: &[u32], targets: &[NodeId]) -> bool {
    key.len() == targets.len() && key.iter().zip(targets).all(|(&k, t)| k == t.0)
}

/// Per-target best meeting point found by the shared sweep.
#[derive(Clone, Copy)]
struct Meet {
    total: f64,
    sweep_entry: u32,
    fill_entry: u32,
}

impl ChIndex {
    /// Costs `from → t` for every `t` in `targets` (`None` when
    /// unreachable), with per-class metre histograms. Bit-identical to
    /// [`SearchEngine::one_to_many_profiled`](crate::search::SearchEngine::one_to_many_profiled)
    /// whenever shortest paths are unique.
    pub fn one_to_many(
        &self,
        g: &RoadGraph,
        scratch: &mut ChScratch,
        from: NodeId,
        targets: &[NodeId],
    ) -> Vec<Option<ChCost>> {
        self.batched(g, scratch, from, targets, Dir::Up)
    }

    /// Costs `s → to` for every `s` in `sources`, mirroring
    /// [`SearchEngine::many_to_one_profiled`](crate::search::SearchEngine::many_to_one_profiled):
    /// the cost folds the path's edges in *reverse* order (as the
    /// reverse Dijkstra accumulates them), the histogram in forward
    /// order.
    pub fn many_to_one(
        &self,
        g: &RoadGraph,
        scratch: &mut ChScratch,
        to: NodeId,
        sources: &[NodeId],
    ) -> Vec<Option<ChCost>> {
        self.batched(g, scratch, to, sources, Dir::Down)
    }

    fn batched(
        &self,
        g: &RoadGraph,
        scratch: &mut ChScratch,
        origin: NodeId,
        targets: &[NodeId],
        sweep_dir: Dir,
    ) -> Vec<Option<ChCost>> {
        debug_assert_eq!(g.num_nodes(), self.num_nodes(), "index built for a different graph");
        scratch.settled = 0;
        if targets.is_empty() {
            return Vec::new();
        }
        // Bucket fills search the opposite direction of the sweep.
        let fill_dir = match sweep_dir {
            Dir::Up => Dir::Down,
            Dir::Down => Dir::Up,
        };
        let fi = scratch.fill_index(self, fill_dir, targets);
        // Lift the fill out of the cache for the duration of the query
        // (re-inserted at the back below — a free LRU touch).
        let fill = scratch.cache.remove(fi);

        let mut best: Vec<Meet> =
            vec![
                Meet { total: f64::INFINITY, sweep_entry: NO_ENTRY, fill_entry: NO_ENTRY };
                fill.uniq.len()
            ];
        let mut sweep_entries = std::mem::take(&mut scratch.entries);
        sweep_entries.clear();
        scratch.upward_search(self, sweep_dir, origin.0, &mut sweep_entries, |v, d, ve| {
            for item in fill.bucket(v) {
                let total = d + item.dist;
                let m = &mut best[item.target as usize];
                if total < m.total {
                    *m = Meet { total, sweep_entry: ve, fill_entry: item.entry };
                }
            }
        });
        scratch.entries = sweep_entries;

        // Reconstruct each distinct target's path and re-sum its cost in
        // the Dijkstra backend's fold order.
        let mut per_uniq: Vec<Option<ChCost>> = Vec::with_capacity(fill.uniq.len());
        for m in &best {
            if !m.total.is_finite() {
                per_uniq.push(None);
                continue;
            }
            let mut arcs_buf = std::mem::take(&mut scratch.arcs_buf);
            let mut stack = std::mem::take(&mut scratch.stack);
            let mut edges = std::mem::take(&mut scratch.edges_buf);
            arcs_buf.clear();
            edges.clear();
            // Sweep chain: walking the tree entries from the meeting node
            // yields the arcs in reverse path order for a forward sweep
            // (origin→meeting, collected meeting-first) but already in
            // forward order for a backward sweep (each backward entry
            // stores the forward arc *leaving* its node).
            let mut e = m.sweep_entry;
            while e != NO_ENTRY {
                let node = scratch.entries[e as usize];
                if node.arc != NO_ARC {
                    arcs_buf.push(node.arc);
                }
                e = node.parent;
            }
            if sweep_dir == Dir::Up {
                arcs_buf.reverse();
            }
            let sweep_arcs = arcs_buf.len();
            // Fill chain: for a backward fill the walk yields forward
            // order (meeting→target) as-is; a forward fill's chain is
            // reversed and flipped below.
            let mut e = m.fill_entry;
            while e != NO_ENTRY {
                let node = fill.entries[e as usize];
                if node.arc != NO_ARC {
                    arcs_buf.push(node.arc);
                }
                e = node.parent;
            }
            // Forward path order origin→target: for an upward sweep the
            // sweep chain leads and the fill chain (target side) trails;
            // for a downward sweep (many-to-one) the *fill* chain is the
            // source side, so it leads — and it is the reversed one.
            match sweep_dir {
                Dir::Up => {
                    for &arc in &arcs_buf[..sweep_arcs] {
                        self.unpack_edges(arc, &mut edges, &mut stack);
                    }
                    for &arc in &arcs_buf[sweep_arcs..] {
                        self.unpack_edges(arc, &mut edges, &mut stack);
                    }
                }
                Dir::Down => {
                    // Fill chain runs meeting→source; flip it to get
                    // source→meeting, then append the sweep chain
                    // (meeting→to) as-is.
                    arcs_buf[sweep_arcs..].reverse();
                    for &arc in &arcs_buf[sweep_arcs..] {
                        self.unpack_edges(arc, &mut edges, &mut stack);
                    }
                    for &arc in &arcs_buf[..sweep_arcs] {
                        self.unpack_edges(arc, &mut edges, &mut stack);
                    }
                }
            }
            // `edges` is now the full path in forward order. Cost folds
            // forward for one-to-many, reverse for many-to-one (matching
            // each Dijkstra direction's accumulation); the histogram is
            // always forward. The folds read the index's cached per-edge
            // tables — the same `f64`s `RoadGraph` computes, minus the
            // per-edge division.
            let mut cost = 0.0f64;
            match sweep_dir {
                Dir::Up => {
                    for &e in &edges {
                        cost += self.orig_cost[e as usize];
                    }
                }
                Dir::Down => {
                    for &e in edges.iter().rev() {
                        cost += self.orig_cost[e as usize];
                    }
                }
            }
            let mut hist = [0.0f64; 4];
            for &e in &edges {
                hist[self.orig_class_tag[e as usize] as usize] += self.orig_len_m[e as usize];
            }
            per_uniq.push(Some(ChCost { cost, class_len_m: hist }));
            scratch.arcs_buf = arcs_buf;
            scratch.stack = stack;
            scratch.edges_buf = edges;
        }

        let out = fill.remap.iter().map(|&u| per_uniq[u as usize]).collect();
        scratch.cache.push(fill);
        out
    }

    /// Exact point-to-point query: full forward and backward upward
    /// searches meeting in the middle, path unpacked to original edges,
    /// cost re-summed in forward order — bit-identical to
    /// [`SearchEngine::one_to_one`](crate::search::SearchEngine::one_to_one)
    /// whenever the shortest path is unique.
    pub fn one_to_one(
        &self,
        g: &RoadGraph,
        scratch: &mut ChScratch,
        from: NodeId,
        to: NodeId,
    ) -> Option<(f64, Vec<NodeId>)> {
        debug_assert_eq!(g.num_nodes(), self.num_nodes(), "index built for a different graph");
        scratch.settled = 0;
        let n = self.num_nodes();
        // Backward upward search from `to`, recorded as a dense map.
        let mut bwd_dist = vec![f64::INFINITY; n];
        let mut bwd_entry = vec![NO_ENTRY; n];
        let mut bwd_entries: Vec<TreeNode> = Vec::new();
        scratch.upward_search(self, Dir::Down, to.0, &mut bwd_entries, |v, d, e| {
            bwd_dist[v as usize] = d;
            bwd_entry[v as usize] = e;
        });
        // Forward upward search from `from`, scanning the backward map.
        let mut best = Meet { total: f64::INFINITY, sweep_entry: NO_ENTRY, fill_entry: NO_ENTRY };
        let mut fwd_entries = std::mem::take(&mut scratch.entries);
        fwd_entries.clear();
        scratch.upward_search(self, Dir::Up, from.0, &mut fwd_entries, |v, d, e| {
            let total = d + bwd_dist[v as usize];
            if total < best.total {
                best = Meet { total, sweep_entry: e, fill_entry: bwd_entry[v as usize] };
            }
        });
        scratch.entries = fwd_entries;
        if !best.total.is_finite() {
            return None;
        }
        // Forward chain (reversed) then backward chain (already
        // meeting→to order).
        let mut arcs_buf = std::mem::take(&mut scratch.arcs_buf);
        let mut stack = std::mem::take(&mut scratch.stack);
        arcs_buf.clear();
        let mut e = best.sweep_entry;
        while e != NO_ENTRY {
            let node = scratch.entries[e as usize];
            if node.arc != NO_ARC {
                arcs_buf.push(node.arc);
            }
            e = node.parent;
        }
        arcs_buf.reverse();
        let mut e = best.fill_entry;
        while e != NO_ENTRY {
            let node = bwd_entries[e as usize];
            if node.arc != NO_ARC {
                arcs_buf.push(node.arc);
            }
            e = node.parent;
        }
        let mut orig_arcs: Vec<u32> = Vec::new();
        for &arc in &arcs_buf {
            // Keep original *arc* ids here (not edge ids): the arc arena
            // carries tail/head, which the node path needs below.
            self.unpack_arcs(arc, &mut orig_arcs, &mut stack);
        }
        let mut cost = 0.0f64;
        let mut path = vec![from];
        for &arc in &orig_arcs {
            cost += self.orig_cost[self.arcs.edge_id(arc)];
            path.push(NodeId(self.arcs.head[arc as usize]));
        }
        scratch.arcs_buf = arcs_buf;
        scratch.stack = stack;
        Some((cost, path))
    }

    /// Unpack `arc` to original **edge ids** (forward order).
    fn unpack_edges(&self, arc: u32, out: &mut Vec<u32>, stack: &mut Vec<u32>) {
        let at = out.len();
        self.arcs.unpack_into(arc, out, stack);
        for e in &mut out[at..] {
            *e = u32::try_from(self.arcs.edge_id(*e)).expect("edge id fits in u32");
        }
    }

    /// Unpack `arc` to original **arc ids** (forward order).
    fn unpack_arcs(&self, arc: u32, out: &mut Vec<u32>, stack: &mut Vec<u32>) {
        self.arcs.unpack_into(arc, out, stack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{CostMetric, RoadClass};
    use crate::generate::{urban_grid, UrbanGridParams};
    use crate::graph::GraphBuilder;
    use crate::search::{metric_cost, SearchEngine};
    use ec_types::GeoPoint;

    fn grid(seed: u64) -> crate::graph::RoadGraph {
        urban_grid(&UrbanGridParams { cols: 9, rows: 9, seed, ..UrbanGridParams::default() })
    }

    /// Grid with a one-way appendix: node `sink` only has an outgoing
    /// edge, so it is unreachable forward and reaches everything reverse.
    fn graph_with_unreachable() -> (crate::graph::RoadGraph, NodeId) {
        let mut b = GraphBuilder::new();
        let o = GeoPoint::new(8.0, 53.0);
        let v: Vec<_> = (0..4).map(|i| b.add_node(o.offset_m(f64::from(i) * 900.0, 0.0))).collect();
        for w in v.windows(2) {
            b.add_edge_with_len(w[0], w[1], 1_000.0, RoadClass::Secondary);
            b.add_edge_with_len(w[1], w[0], 1_000.0, RoadClass::Secondary);
        }
        let sink = b.add_node(o.offset_m(0.0, 900.0));
        b.add_edge_with_len(sink, v[0], 700.0, RoadClass::Residential);
        (b.build(), sink)
    }

    #[test]
    fn build_is_thread_invariant() {
        let g = grid(11);
        let a = ChIndex::build(&g, CostMetric::Energy, 1);
        let b = ChIndex::build(&g, CostMetric::Energy, 4);
        assert_eq!(a.num_shortcuts(), b.num_shortcuts());
        let targets: Vec<NodeId> = (0..g.num_nodes() as u32).step_by(5).map(NodeId).collect();
        let mut s1 = ChScratch::default();
        let mut s2 = ChScratch::default();
        let from = NodeId(1);
        let ra = a.one_to_many(&g, &mut s1, from, &targets);
        let rb = b.one_to_many(&g, &mut s2, from, &targets);
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.map(|c| c.cost.to_bits()), y.map(|c| c.cost.to_bits()));
        }
    }

    #[test]
    fn unreachable_and_duplicate_targets() {
        let (g, sink) = graph_with_unreachable();
        let ch = ChIndex::build(&g, CostMetric::Distance, 1);
        let mut scratch = ChScratch::default();
        let from = NodeId(0);
        // sink is unreachable forward; 0 appears twice; 0 is the origin.
        let targets = [sink, NodeId(2), NodeId(0), NodeId(2), NodeId(0)];
        let got = ch.one_to_many(&g, &mut scratch, from, &targets);
        assert!(got[0].is_none(), "sink must be unreachable forward");
        assert_eq!(got[1].map(|c| c.cost.to_bits()), got[3].map(|c| c.cost.to_bits()));
        assert_eq!(got[2].unwrap().cost, 0.0);
        assert_eq!(got[4].unwrap().cost, 0.0);
        // Reverse: sink *can* reach node 2.
        let got = ch.many_to_one(&g, &mut scratch, NodeId(2), &targets);
        assert!(got[0].is_some(), "sink reaches the chain in reverse");
        let mut e = SearchEngine::new();
        let dij = e.many_to_one(&g, NodeId(2), &targets, metric_cost(CostMetric::Distance));
        for (d, c) in dij.iter().zip(&got) {
            assert_eq!(d.map(f64::to_bits), c.map(|c| c.cost.to_bits()));
        }
    }

    #[test]
    fn empty_target_list_is_empty() {
        let g = grid(3);
        let ch = ChIndex::build(&g, CostMetric::Time, 1);
        let mut scratch = ChScratch::default();
        assert!(ch.one_to_many(&g, &mut scratch, NodeId(0), &[]).is_empty());
        assert!(ch.many_to_one(&g, &mut scratch, NodeId(0), &[]).is_empty());
    }

    #[test]
    fn bucket_cache_reuse_is_result_invariant() {
        let g = grid(7);
        let ch = ChIndex::build(&g, CostMetric::Time, 1);
        let targets: Vec<NodeId> = (0..g.num_nodes() as u32).step_by(7).map(NodeId).collect();
        let mut warm = ChScratch::default();
        // Warm the cache, then query from several origins; a cold scratch
        // must agree bit-for-bit every time.
        let _ = ch.one_to_many(&g, &mut warm, NodeId(0), &targets);
        let warm_fill_settles = warm.last_settled();
        for origin in [NodeId(3), NodeId(40), NodeId(77)] {
            let cached = ch.one_to_many(&g, &mut warm, origin, &targets);
            assert!(
                warm.last_settled() < warm_fill_settles,
                "cached query should skip the bucket fills"
            );
            let mut cold = ChScratch::default();
            let fresh = ch.one_to_many(&g, &mut cold, origin, &targets);
            for (a, b) in cached.iter().zip(&fresh) {
                assert_eq!(a.map(|c| c.cost.to_bits()), b.map(|c| c.cost.to_bits()));
                assert_eq!(a.map(|c| c.class_len_m), b.map(|c| c.class_len_m));
            }
        }
        // Rotating through >CAP distinct sets must still be correct.
        for k in 0..(BUCKET_CACHE_CAP + 2) {
            let subset: Vec<NodeId> = targets.iter().skip(k).copied().collect();
            let got = ch.one_to_many(&g, &mut warm, NodeId(5), &subset);
            let mut e = SearchEngine::new();
            let dij = e.one_to_many(&g, NodeId(5), &subset, metric_cost(CostMetric::Time));
            for (d, c) in dij.iter().zip(&got) {
                assert_eq!(d.map(f64::to_bits), c.map(|c| c.cost.to_bits()));
            }
        }
    }
}
