//! The road-network graph `G = (V, E)` in compressed sparse row form.
//!
//! Nodes carry WGS-84 coordinates; directed edges carry a length and a
//! [`crate::RoadClass`] from which every [`CostMetric`]
//! (distance / time / energy / CO₂) weight derives. Both forward and
//! reverse adjacency are materialised: the derouting computation needs
//! *into-charger* distances (forward search from the vehicle) **and**
//! *out-of-charger* distances back to the scheduled route (reverse search
//! from the rejoin node), and the reverse CSR makes the latter one Dijkstra
//! instead of one per charger.

use crate::edge::{CostMetric, RoadClass};
use ec_types::{BoundingBox, EcError, GeoPoint, NodeId};
use spatial_index::GridIndex;

/// Builder accumulating nodes and directed edges before freezing to CSR.
///
/// ```
/// use ec_types::GeoPoint;
/// use roadnet::{metric_cost, CostMetric, GraphBuilder, RoadClass, SearchEngine};
///
/// let mut b = GraphBuilder::new();
/// let o = GeoPoint::new(8.0, 53.0);
/// let a = b.add_node(o);
/// let c = b.add_node(o.offset_m(1_000.0, 0.0));
/// b.add_two_way(a, c, RoadClass::Primary);
/// let graph = b.build();
///
/// let mut engine = SearchEngine::new();
/// let (time_s, path) = engine
///     .one_to_one(&graph, a, c, metric_cost(CostMetric::Time))
///     .expect("connected");
/// assert_eq!(path, vec![a, c]);
/// assert!((time_s - 60.0).abs() < 2.0); // 1 km at 60 km/h
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    points: Vec<GeoPoint>,
    edges: Vec<(u32, u32, f32, RoadClass)>,
}

impl GraphBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges added so far.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, p: GeoPoint) -> NodeId {
        let id = NodeId::from_index(self.points.len());
        self.points.push(p);
        id
    }

    /// Add one directed edge; length is the straight-line distance between
    /// the endpoints.
    ///
    /// # Panics
    /// Panics when either endpoint is unknown.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, class: RoadClass) {
        let len = self.points[from.index()].fast_dist_m(&self.points[to.index()]).max(1.0) as f32;
        self.add_edge_with_len(from, to, len, class);
    }

    /// Add one directed edge with an explicit length in metres (roads are
    /// rarely straight; generators add a curvature factor).
    ///
    /// # Panics
    /// Panics on unknown endpoints or a non-positive length.
    pub fn add_edge_with_len(&mut self, from: NodeId, to: NodeId, len_m: f32, class: RoadClass) {
        assert!(from.index() < self.points.len(), "unknown from-node {from}");
        assert!(to.index() < self.points.len(), "unknown to-node {to}");
        assert!(len_m > 0.0, "edge length must be positive, got {len_m}");
        self.edges.push((from.0, to.0, len_m, class));
    }

    /// Add both directions of a two-way street.
    pub fn add_two_way(&mut self, a: NodeId, b: NodeId, class: RoadClass) {
        self.add_edge(a, b, class);
        self.add_edge(b, a, class);
    }

    /// Add both directions with an explicit length.
    pub fn add_two_way_with_len(&mut self, a: NodeId, b: NodeId, len_m: f32, class: RoadClass) {
        self.add_edge_with_len(a, b, len_m, class);
        self.add_edge_with_len(b, a, len_m, class);
    }

    /// Freeze into a [`RoadGraph`].
    ///
    /// # Panics
    /// Panics when no nodes were added.
    #[must_use]
    pub fn build(self) -> RoadGraph {
        assert!(!self.points.is_empty(), "cannot build an empty road graph");
        let n = self.points.len();
        let m = self.edges.len();

        // Forward CSR.
        let mut f_off = vec![0u32; n + 1];
        for &(from, _, _, _) in &self.edges {
            f_off[from as usize + 1] += 1;
        }
        for i in 0..n {
            f_off[i + 1] += f_off[i];
        }
        let mut f_cursor = f_off.clone();
        let mut f_to = vec![0u32; m];
        let mut f_edge = vec![0u32; m];
        let mut len_m = vec![0f32; m];
        let mut class = vec![RoadClass::Residential; m];
        for (e, &(from, to, l, c)) in self.edges.iter().enumerate() {
            let slot = f_cursor[from as usize] as usize;
            f_cursor[from as usize] += 1;
            f_to[slot] = to;
            f_edge[slot] = u32::try_from(e).expect("edge count fits u32");
            len_m[e] = l;
            class[e] = c;
        }

        // Reverse CSR (edge ids shared with forward storage).
        let mut r_off = vec![0u32; n + 1];
        for &(_, to, _, _) in &self.edges {
            r_off[to as usize + 1] += 1;
        }
        for i in 0..n {
            r_off[i + 1] += r_off[i];
        }
        let mut r_cursor = r_off.clone();
        let mut r_from = vec![0u32; m];
        let mut r_edge = vec![0u32; m];
        for (e, &(from, to, _, _)) in self.edges.iter().enumerate() {
            let slot = r_cursor[to as usize] as usize;
            r_cursor[to as usize] += 1;
            r_from[slot] = from;
            r_edge[slot] = u32::try_from(e).expect("edge count fits u32");
        }

        let bounds = BoundingBox::of_points(self.points.iter().copied())
            .expect("non-empty point set has a bounding box");
        // Node snap grid: ~600 m cells keep ring searches short on urban
        // networks while staying coarse enough for region-scale graphs.
        let node_grid = GridIndex::build(
            self.points.iter().enumerate().map(|(i, p)| (*p, NodeId::from_index(i))).collect(),
            600.0,
        );

        RoadGraph {
            points: self.points,
            f_off,
            f_to,
            f_edge,
            r_off,
            r_from,
            r_edge,
            len_m,
            class,
            bounds,
            node_grid,
        }
    }
}

/// An immutable CSR road network.
#[derive(Debug)]
pub struct RoadGraph {
    points: Vec<GeoPoint>,
    f_off: Vec<u32>,
    f_to: Vec<u32>,
    f_edge: Vec<u32>,
    r_off: Vec<u32>,
    r_from: Vec<u32>,
    r_edge: Vec<u32>,
    len_m: Vec<f32>,
    class: Vec<RoadClass>,
    bounds: BoundingBox,
    node_grid: GridIndex<NodeId>,
}

impl RoadGraph {
    /// Number of nodes `|V|`.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of directed edges `|E|`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.len_m.len()
    }

    /// Coordinates of node `v`.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    #[must_use]
    pub fn point(&self, v: NodeId) -> GeoPoint {
        self.points[v.index()]
    }

    /// Checked coordinate lookup.
    pub fn try_point(&self, v: NodeId) -> Result<GeoPoint, EcError> {
        self.points.get(v.index()).copied().ok_or(EcError::UnknownNode(v.0))
    }

    /// The network's bounding box.
    #[must_use]
    pub const fn bounds(&self) -> BoundingBox {
        self.bounds
    }

    /// Outgoing edges of `v` as `(edge_index, head_node)` pairs.
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        let lo = self.f_off[v.index()] as usize;
        let hi = self.f_off[v.index() + 1] as usize;
        (lo..hi).map(move |s| (self.f_edge[s] as usize, NodeId(self.f_to[s])))
    }

    /// Incoming edges of `v` as `(edge_index, tail_node)` pairs.
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        let lo = self.r_off[v.index()] as usize;
        let hi = self.r_off[v.index() + 1] as usize;
        (lo..hi).map(move |s| (self.r_edge[s] as usize, NodeId(self.r_from[s])))
    }

    /// Out-degree of `v`.
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.f_off[v.index() + 1] - self.f_off[v.index()]) as usize
    }

    /// Length of edge `e`, metres.
    #[must_use]
    pub fn edge_len_m(&self, e: usize) -> f64 {
        f64::from(self.len_m[e])
    }

    /// Road class of edge `e`.
    #[must_use]
    pub fn edge_class(&self, e: usize) -> RoadClass {
        self.class[e]
    }

    /// Weight of edge `e` under `metric` at free flow.
    #[must_use]
    pub fn edge_cost(&self, e: usize, metric: CostMetric) -> f64 {
        metric.edge_cost(f64::from(self.len_m[e]), self.class[e])
    }

    /// The node geometrically nearest to `p`.
    #[must_use]
    pub fn nearest_node(&self, p: &GeoPoint) -> NodeId {
        *self.node_grid.nearest(p).expect("graph is non-empty").item
    }

    /// All nodes within `radius_m` of `p`, nearest first.
    #[must_use]
    pub fn nodes_within(&self, p: &GeoPoint, radius_m: f64) -> Vec<(NodeId, f64)> {
        self.node_grid.range(p, radius_m).into_iter().map(|h| (*h.item, h.dist_m)).collect()
    }

    /// Total directed-edge length of the network, metres.
    #[must_use]
    pub fn total_edge_len_m(&self) -> f64 {
        self.len_m.iter().map(|&l| f64::from(l)).sum()
    }

    /// Node ids of the largest weakly-connected component (on a network
    /// built with two-way edges this is also the largest strongly-connected
    /// component). Generators use this to prune disconnected fragments.
    #[must_use]
    pub fn largest_component(&self) -> Vec<NodeId> {
        let n = self.num_nodes();
        let mut comp = vec![u32::MAX; n];
        let mut best: (u32, usize) = (0, 0);
        let mut next_comp = 0u32;
        let mut stack = Vec::new();
        for start in 0..n {
            if comp[start] != u32::MAX {
                continue;
            }
            let mut size = 0usize;
            stack.push(start);
            comp[start] = next_comp;
            while let Some(v) = stack.pop() {
                size += 1;
                let v = NodeId::from_index(v);
                for (_, u) in self.out_edges(v).chain(self.in_edges(v)) {
                    if comp[u.index()] == u32::MAX {
                        comp[u.index()] = next_comp;
                        stack.push(u.index());
                    }
                }
            }
            if size > best.1 {
                best = (next_comp, size);
            }
            next_comp += 1;
        }
        (0..n).filter(|&i| comp[i] == best.0).map(NodeId::from_index).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2×2 square: v0 -(east)- v1, v0 -(north)- v2, v1 - v3, v2 - v3.
    fn square() -> RoadGraph {
        let mut b = GraphBuilder::new();
        let o = GeoPoint::new(8.0, 53.0);
        let v0 = b.add_node(o);
        let v1 = b.add_node(o.offset_m(1_000.0, 0.0));
        let v2 = b.add_node(o.offset_m(0.0, 1_000.0));
        let v3 = b.add_node(o.offset_m(1_000.0, 1_000.0));
        b.add_two_way(v0, v1, RoadClass::Primary);
        b.add_two_way(v0, v2, RoadClass::Residential);
        b.add_two_way(v1, v3, RoadClass::Residential);
        b.add_two_way(v2, v3, RoadClass::Primary);
        b.build()
    }

    #[test]
    fn counts() {
        let g = square();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 8);
    }

    #[test]
    fn out_edges_match_construction() {
        let g = square();
        let heads: Vec<u32> = g.out_edges(NodeId(0)).map(|(_, v)| v.0).collect();
        assert_eq!(heads.len(), 2);
        assert!(heads.contains(&1) && heads.contains(&2));
    }

    #[test]
    fn in_edges_are_reverse_of_out() {
        let g = square();
        for v in 0..4u32 {
            let v = NodeId(v);
            for (_, u) in g.out_edges(v) {
                assert!(
                    g.in_edges(u).any(|(_, w)| w == v),
                    "edge {v}->{u} missing from reverse CSR"
                );
            }
        }
    }

    #[test]
    fn edge_lengths_close_to_geometry() {
        let g = square();
        for (e, _) in g.out_edges(NodeId(0)) {
            assert!((g.edge_len_m(e) - 1_000.0).abs() < 5.0);
        }
    }

    #[test]
    fn edge_cost_uses_class() {
        let g = square();
        // v0->v1 is Primary (60 km/h): 1 km ≈ 60 s.
        let (e, _) = g.out_edges(NodeId(0)).find(|&(_, v)| v == NodeId(1)).unwrap();
        let t = g.edge_cost(e, CostMetric::Time);
        assert!((t - 60.0).abs() < 1.0, "got {t}");
    }

    #[test]
    fn nearest_node_snaps() {
        let g = square();
        let q = GeoPoint::new(8.0, 53.0).offset_m(950.0, 30.0);
        assert_eq!(g.nearest_node(&q), NodeId(1));
    }

    #[test]
    fn nodes_within_radius() {
        let g = square();
        let o = GeoPoint::new(8.0, 53.0);
        let hits = g.nodes_within(&o, 1_100.0);
        assert_eq!(hits.len(), 3); // v0 at 0, v1 & v2 at 1 km; v3 at ~1.41 km excluded
        assert_eq!(hits[0].0, NodeId(0));
    }

    #[test]
    fn largest_component_of_connected_graph_is_everything() {
        let g = square();
        assert_eq!(g.largest_component().len(), 4);
    }

    #[test]
    fn largest_component_prunes_islands() {
        let mut b = GraphBuilder::new();
        let o = GeoPoint::new(8.0, 53.0);
        // triangle
        let a = b.add_node(o);
        let c = b.add_node(o.offset_m(500.0, 0.0));
        let d = b.add_node(o.offset_m(0.0, 500.0));
        b.add_two_way(a, c, RoadClass::Residential);
        b.add_two_way(c, d, RoadClass::Residential);
        // isolated pair far away
        let x = b.add_node(o.offset_m(20_000.0, 0.0));
        let y = b.add_node(o.offset_m(20_500.0, 0.0));
        b.add_two_way(x, y, RoadClass::Residential);
        let g = b.build();
        let comp = g.largest_component();
        assert_eq!(comp.len(), 3);
        assert!(comp.contains(&a) && comp.contains(&c) && comp.contains(&d));
    }

    #[test]
    #[should_panic(expected = "empty road graph")]
    fn empty_build_panics() {
        let _ = GraphBuilder::new().build();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_edge_panics() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(GeoPoint::new(0.0, 0.0));
        let c = b.add_node(GeoPoint::new(0.1, 0.0));
        b.add_edge_with_len(a, c, 0.0, RoadClass::Primary);
    }

    #[test]
    fn try_point_errors_on_unknown() {
        let g = square();
        assert!(g.try_point(NodeId(99)).is_err());
        assert!(g.try_point(NodeId(2)).is_ok());
    }
}
