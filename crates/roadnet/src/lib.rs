//! # `roadnet` — road networks, shortest paths, and network generators
//!
//! The paper models the world as "a directed weighted graph G=(V,E)" whose
//! edge weights can express length, travel time, energy, or CO₂ (§II-A).
//! This crate is that substrate:
//!
//! * [`RoadGraph`] — an immutable CSR graph (forward *and* reverse
//!   adjacency) with WGS-84 node coordinates and classed edges, built via
//!   [`GraphBuilder`];
//! * [`CostMetric`] / [`RoadClass`] — the per-edge weight model;
//! * [`SearchEngine`] — reusable-buffer Dijkstra / A* with the one-to-many,
//!   many-to-one and cost-bounded variants the derouting computation needs;
//! * [`BidiEngine`] — bidirectional Dijkstra for bulk exact point-to-point
//!   queries;
//! * [`Route`] — a concrete path with distance parameterisation and the
//!   paper's ~3–5 km trip segmentation;
//! * [`generate`] — deterministic synthetic network generators at the
//!   scales of the paper's four evaluation regions;
//! * [`io`] — the Brinkhoff node/edge file format, so the reproduction can
//!   ingest the real evaluation networks when a copy is available.

pub mod adaptive;
pub mod bidirectional;
pub mod ch;
pub mod ch_query;
pub mod edge;
pub mod generate;
pub mod graph;
pub mod io;
pub mod path;
pub mod pool;
pub mod search;

pub use adaptive::{resolve_backend, BackendCostModel};
pub use bidirectional::BidiEngine;
pub use ch::{ChIndex, DetourBackend, DetourCh};
pub use ch_query::{ChCost, ChScratch};
pub use edge::{CostMetric, RoadClass, DRIVING_CO2_G_PER_KWH};
pub use generate::{
    metro_regions, ring_radial, urban_grid, MetroRegionsParams, RingRadialParams, UrbanGridParams,
};
pub use graph::{GraphBuilder, RoadGraph};
pub use io::{parse_node_edge, write_node_edge, PlanarAnchor};
pub use path::Route;
pub use pool::{PooledEngine, SearchPool};
pub use search::{metric_cost, SearchEngine};

#[cfg(test)]
mod search_tests {
    use super::*;
    use ec_types::{GeoPoint, NodeId};

    /// Small diamond with a shortcut: 0→1→3 long, 0→2→3 short.
    fn diamond() -> RoadGraph {
        let mut b = GraphBuilder::new();
        let o = GeoPoint::new(8.0, 53.0);
        let v0 = b.add_node(o);
        let v1 = b.add_node(o.offset_m(1_000.0, 800.0));
        let v2 = b.add_node(o.offset_m(1_000.0, -200.0));
        let v3 = b.add_node(o.offset_m(2_000.0, 0.0));
        b.add_edge_with_len(v0, v1, 1_500.0, RoadClass::Primary);
        b.add_edge_with_len(v1, v3, 1_500.0, RoadClass::Primary);
        b.add_edge_with_len(v0, v2, 1_100.0, RoadClass::Residential);
        b.add_edge_with_len(v2, v3, 1_100.0, RoadClass::Residential);
        b.add_edge_with_len(v3, v0, 2_500.0, RoadClass::Motorway);
        b.build()
    }

    #[test]
    fn one_to_one_picks_shorter_distance() {
        let g = diamond();
        let mut e = SearchEngine::new();
        let (cost, path) =
            e.one_to_one(&g, NodeId(0), NodeId(3), metric_cost(CostMetric::Distance)).unwrap();
        assert!((cost - 2_200.0).abs() < 1e-6);
        assert_eq!(path, vec![NodeId(0), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn one_to_one_picks_faster_time_route() {
        // Under Time the Primary route wins (60 km/h vs 30 km/h).
        let g = diamond();
        let mut e = SearchEngine::new();
        let (cost, path) =
            e.one_to_one(&g, NodeId(0), NodeId(3), metric_cost(CostMetric::Time)).unwrap();
        assert_eq!(path, vec![NodeId(0), NodeId(1), NodeId(3)]);
        assert!((cost - 3_000.0 / (60.0 / 3.6)).abs() < 1.0);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = GraphBuilder::new();
        let o = GeoPoint::new(8.0, 53.0);
        let v0 = b.add_node(o);
        let v1 = b.add_node(o.offset_m(1_000.0, 0.0));
        let v2 = b.add_node(o.offset_m(2_000.0, 0.0));
        b.add_edge(v0, v1, RoadClass::Primary); // one-way; v2 isolated
        let g = b.build();
        let mut e = SearchEngine::new();
        assert!(e.one_to_one(&g, v0, v2, metric_cost(CostMetric::Distance)).is_none());
        assert!(e.one_to_one(&g, v1, v0, metric_cost(CostMetric::Distance)).is_none());
    }

    #[test]
    fn source_equals_target() {
        let g = diamond();
        let mut e = SearchEngine::new();
        let (cost, path) =
            e.one_to_one(&g, NodeId(1), NodeId(1), metric_cost(CostMetric::Distance)).unwrap();
        assert_eq!(cost, 0.0);
        assert_eq!(path, vec![NodeId(1)]);
    }

    #[test]
    fn one_to_many_matches_individual_queries() {
        let g = diamond();
        let mut e = SearchEngine::new();
        let targets = [NodeId(1), NodeId(2), NodeId(3), NodeId(0)];
        let many = e.one_to_many(&g, NodeId(0), &targets, metric_cost(CostMetric::Distance));
        for (t, got) in targets.iter().zip(&many) {
            let want =
                e.one_to_one(&g, NodeId(0), *t, metric_cost(CostMetric::Distance)).map(|(c, _)| c);
            match (got, want) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "target {t}"),
                (None, None) => {}
                other => panic!("mismatch for {t}: {other:?}"),
            }
        }
    }

    #[test]
    fn many_to_one_is_forward_cost_into_target() {
        let g = diamond();
        let mut e = SearchEngine::new();
        let sources = [NodeId(0), NodeId(1), NodeId(2)];
        let got = e.many_to_one(&g, NodeId(3), &sources, metric_cost(CostMetric::Distance));
        for (s, got) in sources.iter().zip(&got) {
            let want =
                e.one_to_one(&g, *s, NodeId(3), metric_cost(CostMetric::Distance)).map(|(c, _)| c);
            assert_eq!(got.is_some(), want.is_some());
            if let (Some(a), Some(b)) = (got, want) {
                assert!((a - b).abs() < 1e-9, "source {s}");
            }
        }
    }

    #[test]
    fn bounded_from_respects_budget() {
        let g = diamond();
        let mut e = SearchEngine::new();
        let settled = e.bounded_from(&g, NodeId(0), 1_200.0, metric_cost(CostMetric::Distance));
        let ids: Vec<NodeId> = settled.iter().map(|&(v, _)| v).collect();
        assert!(ids.contains(&NodeId(0)) && ids.contains(&NodeId(2)));
        assert!(!ids.contains(&NodeId(3)), "v3 is 2.2 km away");
        // Ascending order.
        for w in settled.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn bounded_to_uses_reverse_edges() {
        let g = diamond();
        let mut e = SearchEngine::new();
        // Who can reach v0 within 2 600 m? Only v3 (via the motorway
        // back-edge) and v0 itself.
        let settled = e.bounded_to(&g, NodeId(0), 2_600.0, metric_cost(CostMetric::Distance));
        let ids: Vec<NodeId> = settled.iter().map(|&(v, _)| v).collect();
        assert!(ids.contains(&NodeId(0)));
        assert!(ids.contains(&NodeId(3)));
        assert!(!ids.contains(&NodeId(1)), "v1 reaches v0 only via v3: 1.5+2.5 km");
    }

    #[test]
    fn astar_agrees_with_dijkstra_on_grid() {
        let g = urban_grid(&UrbanGridParams { cols: 15, rows: 15, ..UrbanGridParams::default() });
        let mut e = SearchEngine::new();
        let pairs = [(0usize, g.num_nodes() - 1), (3, g.num_nodes() / 2), (10, 20)];
        for (a, b) in pairs {
            let (a, b) = (NodeId::from_index(a), NodeId::from_index(b));
            for metric in [CostMetric::Distance, CostMetric::Time, CostMetric::Energy] {
                let d = e.one_to_one(&g, a, b, metric_cost(metric)).map(|(c, _)| c);
                let s = e.astar(&g, a, b, metric).map(|(c, _)| c);
                match (d, s) {
                    (Some(d), Some(s)) => {
                        assert!(
                            (d - s).abs() < 1e-6 * d.max(1.0),
                            "{a}->{b} {metric:?}: {d} vs {s}"
                        )
                    }
                    (None, None) => {}
                    other => panic!("reachability mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn engine_reuse_across_graphs_is_safe() {
        let g1 = diamond();
        let g2 = urban_grid(&UrbanGridParams { cols: 5, rows: 5, ..UrbanGridParams::default() });
        let mut e = SearchEngine::new();
        let a = e.one_to_one(&g1, NodeId(0), NodeId(3), metric_cost(CostMetric::Distance));
        let _ = e.one_to_one(&g2, NodeId(0), NodeId(8), metric_cost(CostMetric::Distance));
        let b = e.one_to_one(&g1, NodeId(0), NodeId(3), metric_cost(CostMetric::Distance));
        assert_eq!(a.map(|(c, _)| c), b.map(|(c, _)| c));
    }
}
