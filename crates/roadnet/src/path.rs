//! Routes: concrete node sequences with distance parameterisation.
//!
//! A [`Route`] is the materialised form of a scheduled trip `P` (or of a
//! derouting detour): the node sequence, the edge used for each hop, and
//! prefix sums of length so that "the point 7.3 km into the trip" — the
//! quantity the continuous query advances — is an O(log n) lookup.

use crate::edge::CostMetric;
use crate::graph::RoadGraph;
use ec_types::{EcError, GeoPoint, NodeId};

/// A concrete path through the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    nodes: Vec<NodeId>,
    /// Edge index used for hop `i` (`nodes[i] → nodes[i+1]`).
    edges: Vec<usize>,
    /// Cumulative length in metres; `cum[i]` = distance from the start to
    /// `nodes[i]`. `cum.len() == nodes.len()`.
    cum_m: Vec<f64>,
}

impl Route {
    /// Build a route from a node sequence, resolving each consecutive pair
    /// to the shortest connecting edge.
    ///
    /// # Errors
    /// [`EcError::DegenerateTrip`] when fewer than two nodes are given;
    /// [`EcError::Unreachable`] when two consecutive nodes share no edge.
    pub fn from_nodes(g: &RoadGraph, nodes: Vec<NodeId>) -> Result<Self, EcError> {
        if nodes.len() < 2 {
            return Err(EcError::DegenerateTrip(format!(
                "route needs at least two nodes, got {}",
                nodes.len()
            )));
        }
        let mut edges = Vec::with_capacity(nodes.len() - 1);
        let mut cum_m = Vec::with_capacity(nodes.len());
        cum_m.push(0.0);
        for w in nodes.windows(2) {
            let (a, b) = (w[0], w[1]);
            let edge = g
                .out_edges(a)
                .filter(|&(_, head)| head == b)
                .min_by(|&(e1, _), &(e2, _)| {
                    g.edge_len_m(e1)
                        .partial_cmp(&g.edge_len_m(e2))
                        .expect("edge lengths are finite")
                })
                .map(|(e, _)| e)
                .ok_or(EcError::Unreachable { from: a.0, to: b.0 })?;
            edges.push(edge);
            cum_m.push(cum_m.last().expect("cum_m is non-empty") + g.edge_len_m(edge));
        }
        Ok(Self { nodes, edges, cum_m })
    }

    /// The node sequence.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge index for each hop.
    #[must_use]
    pub fn edges(&self) -> &[usize] {
        &self.edges
    }

    /// First node.
    #[must_use]
    pub fn start(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    #[must_use]
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("routes have ≥ 2 nodes")
    }

    /// Total length, metres.
    #[must_use]
    pub fn length_m(&self) -> f64 {
        *self.cum_m.last().expect("routes have ≥ 2 nodes")
    }

    /// Total cost under `metric` at free flow.
    #[must_use]
    pub fn cost(&self, g: &RoadGraph, metric: CostMetric) -> f64 {
        self.edges.iter().map(|&e| g.edge_cost(e, metric)).sum()
    }

    /// Distance from the start to `nodes()[i]`, metres.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    #[must_use]
    pub fn offset_of_node(&self, i: usize) -> f64 {
        self.cum_m[i]
    }

    /// Index of the last node at or before `offset_m` along the route
    /// (clamped to the route).
    #[must_use]
    pub fn node_index_at(&self, offset_m: f64) -> usize {
        if offset_m <= 0.0 {
            return 0;
        }
        match self.cum_m.binary_search_by(|c| c.partial_cmp(&offset_m).expect("finite")) {
            Ok(i) => i,
            Err(i) => (i - 1).min(self.nodes.len() - 1),
        }
    }

    /// Interpolated position `offset_m` metres into the route (clamped).
    #[must_use]
    pub fn point_at(&self, g: &RoadGraph, offset_m: f64) -> GeoPoint {
        let off = offset_m.clamp(0.0, self.length_m());
        let i = self.node_index_at(off);
        if i + 1 >= self.nodes.len() {
            return g.point(self.end());
        }
        let seg_len = self.cum_m[i + 1] - self.cum_m[i];
        let t = if seg_len > 0.0 { (off - self.cum_m[i]) / seg_len } else { 0.0 };
        g.point(self.nodes[i]).lerp(&g.point(self.nodes[i + 1]), t)
    }

    /// The nearest route node to `offset_m` (rounds to whichever endpoint
    /// of the containing hop is closer).
    #[must_use]
    pub fn nearest_node_at(&self, offset_m: f64) -> NodeId {
        let off = offset_m.clamp(0.0, self.length_m());
        let i = self.node_index_at(off);
        if i + 1 >= self.nodes.len() {
            return self.end();
        }
        let mid = 0.5 * (self.cum_m[i] + self.cum_m[i + 1]);
        if off <= mid {
            self.nodes[i]
        } else {
            self.nodes[i + 1]
        }
    }

    /// Accumulated cost under `metric` from the start to `offset_m` along
    /// the route (final partial edge pro-rated; clamped to the route).
    #[must_use]
    pub fn cost_to_offset(&self, g: &RoadGraph, metric: CostMetric, offset_m: f64) -> f64 {
        let off = offset_m.clamp(0.0, self.length_m());
        let mut acc = 0.0;
        for (i, &e) in self.edges.iter().enumerate() {
            let seg_start = self.cum_m[i];
            let seg_end = self.cum_m[i + 1];
            let full = g.edge_cost(e, metric);
            if off >= seg_end {
                acc += full;
            } else {
                let seg_len = seg_end - seg_start;
                if seg_len > 0.0 && off > seg_start {
                    acc += full * (off - seg_start) / seg_len;
                }
                break;
            }
        }
        acc
    }

    /// Split offsets `[0, step, 2·step, …, length]` — the paper's trip
    /// segmentation into ~3–5 km pieces (§III-A Step 1). Always includes
    /// both endpoints; a final fragment shorter than `step/4` merges into
    /// the previous segment.
    ///
    /// # Panics
    /// Panics when `step_m` is not strictly positive.
    #[must_use]
    pub fn segment_offsets(&self, step_m: f64) -> Vec<f64> {
        assert!(step_m > 0.0, "segment step must be positive");
        let len = self.length_m();
        let mut offs = vec![0.0];
        let mut at = step_m;
        while at < len {
            offs.push(at);
            at += step_m;
        }
        // Merge a trailing sliver into the last full segment.
        if offs.len() > 1 && len - offs.last().expect("non-empty") < step_m / 4.0 {
            offs.pop();
        }
        offs.push(len);
        offs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::RoadClass;
    use crate::graph::GraphBuilder;

    /// A straight 4-node chain with 1 km hops.
    fn chain() -> (RoadGraph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let o = GeoPoint::new(8.0, 53.0);
        let ids: Vec<NodeId> =
            (0..4).map(|i| b.add_node(o.offset_m(f64::from(i) * 1_000.0, 0.0))).collect();
        for w in ids.windows(2) {
            b.add_two_way(w[0], w[1], RoadClass::Primary);
        }
        (b.build(), ids)
    }

    #[test]
    fn from_nodes_builds_and_measures() {
        let (g, ids) = chain();
        let r = Route::from_nodes(&g, ids).unwrap();
        assert!((r.length_m() - 3_000.0).abs() < 10.0);
        assert_eq!(r.start(), NodeId(0));
        assert_eq!(r.end(), NodeId(3));
        assert_eq!(r.edges().len(), 3);
    }

    #[test]
    fn from_nodes_rejects_short() {
        let (g, ids) = chain();
        assert!(matches!(Route::from_nodes(&g, vec![ids[0]]), Err(EcError::DegenerateTrip(_))));
    }

    #[test]
    fn from_nodes_rejects_disconnected_pair() {
        let (g, ids) = chain();
        // 0 -> 2 has no direct edge.
        assert!(matches!(
            Route::from_nodes(&g, vec![ids[0], ids[2]]),
            Err(EcError::Unreachable { from: 0, to: 2 })
        ));
    }

    #[test]
    fn point_at_interpolates() {
        let (g, ids) = chain();
        let r = Route::from_nodes(&g, ids).unwrap();
        let mid = r.point_at(&g, 1_500.0);
        let expect = GeoPoint::new(8.0, 53.0).offset_m(1_500.0, 0.0);
        assert!(mid.fast_dist_m(&expect) < 20.0);
        // Clamps beyond the ends.
        assert_eq!(r.point_at(&g, -10.0), g.point(NodeId(0)));
        assert_eq!(r.point_at(&g, 99_999.0), g.point(NodeId(3)));
    }

    #[test]
    fn nearest_node_rounds_to_closer_endpoint() {
        let (g, ids) = chain();
        let r = Route::from_nodes(&g, ids).unwrap();
        assert_eq!(r.nearest_node_at(200.0), NodeId(0));
        assert_eq!(r.nearest_node_at(800.0), NodeId(1));
        assert_eq!(r.nearest_node_at(2_900.0), NodeId(3));
    }

    #[test]
    fn cost_sums_edges() {
        let (g, ids) = chain();
        let r = Route::from_nodes(&g, ids).unwrap();
        // 3 km of Primary at 60 km/h ≈ 180 s.
        let t = r.cost(&g, CostMetric::Time);
        assert!((t - 180.0).abs() < 2.0, "got {t}");
    }

    #[test]
    fn segment_offsets_cover_route() {
        let (g, ids) = chain();
        let r = Route::from_nodes(&g, ids).unwrap();
        let offs = r.segment_offsets(1_000.0);
        assert_eq!(offs.first().copied(), Some(0.0));
        assert!((offs.last().unwrap() - r.length_m()).abs() < 1e-9);
        for w in offs.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn segment_offsets_merge_sliver() {
        let (g, ids) = chain();
        let r = Route::from_nodes(&g, ids).unwrap();
        // Step chosen so the last piece is a tiny sliver (< step/4).
        let len = r.length_m();
        let step = len / 2.001; // pieces: step, step, sliver
        let offs = r.segment_offsets(step);
        assert_eq!(offs.len(), 3, "sliver should merge: {offs:?}");
    }

    #[test]
    fn cost_to_offset_interpolates() {
        let (g, ids) = chain();
        let r = Route::from_nodes(&g, ids).unwrap();
        let total = r.cost(&g, CostMetric::Time);
        let half = r.cost_to_offset(&g, CostMetric::Time, r.length_m() / 2.0);
        assert!((half - total / 2.0).abs() < 1.0, "half {half} vs total {total}");
        assert_eq!(r.cost_to_offset(&g, CostMetric::Time, 0.0), 0.0);
        let full = r.cost_to_offset(&g, CostMetric::Time, r.length_m() + 100.0);
        assert!((full - total).abs() < 1e-9);
    }

    #[test]
    fn node_index_at_boundaries() {
        let (g, ids) = chain();
        let r = Route::from_nodes(&g, ids).unwrap();
        assert_eq!(r.node_index_at(0.0), 0);
        assert_eq!(r.node_index_at(r.length_m()), 3);
        assert_eq!(r.node_index_at(-5.0), 0);
    }
}
