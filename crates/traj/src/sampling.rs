//! GPS trace sampling: turning scheduled trips into the raw material the
//! real datasets are made of.
//!
//! T-drive and Geolife are *point traces* — timestamped GPS fixes with
//! device-dependent sampling ("91.5 % of the trajectories are logged …
//! every 1∼5 seconds or every 5∼10 meters per point", §V-A) and receiver
//! noise. [`sample_trace`] renders a [`Trip`] into such a trace:
//! positions along the route at a configurable period, displaced by
//! deterministic pseudo-GPS error. The inverse operation (recovering the
//! route from the noisy trace) lives in [`crate::matching`].

use crate::trip::Trip;
use ec_types::{GeoPoint, SimTime, SplitMix64};
use roadnet::{CostMetric, RoadGraph};
use serde::{Deserialize, Serialize};

/// One GPS fix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsFix {
    /// Timestamp of the fix.
    pub t: SimTime,
    /// Reported (noisy) position.
    pub pos: GeoPoint,
}

/// Parameters for [`sample_trace`].
#[derive(Debug, Clone)]
pub struct TraceParams {
    /// Seconds between fixes (Geolife logs at 1–5 s; T-drive at ~3 min).
    pub period_s: f64,
    /// GPS error standard deviation, metres (consumer receivers: 3–10 m).
    pub noise_sigma_m: f64,
    /// Probability of dropping a fix (urban canyons, tunnels).
    pub dropout: f64,
    /// Noise seed.
    pub seed: u64,
}

impl Default for TraceParams {
    fn default() -> Self {
        Self { period_s: 5.0, noise_sigma_m: 6.0, dropout: 0.02, seed: 1 }
    }
}

/// Render `trip` into a timestamped GPS trace. The vehicle moves at
/// free-flow speed along its route; fixes are equally spaced in time with
/// Gaussian-ish position noise (sum of uniforms) and occasional dropouts.
///
/// # Panics
/// Panics when `period_s` is not strictly positive.
#[must_use]
pub fn sample_trace(g: &RoadGraph, trip: &Trip, params: &TraceParams) -> Vec<GpsFix> {
    assert!(params.period_s > 0.0, "sampling period must be positive");
    let mut rng = SplitMix64::new(ec_types::rng::mix(params.seed, u64::from(trip.id.0)));
    let total_s = trip.route.cost(g, CostMetric::Time);
    let mut fixes = Vec::with_capacity((total_s / params.period_s) as usize + 2);
    let mut at_s = 0.0;
    while at_s <= total_s {
        let offset = offset_at_time(g, trip, at_s);
        let true_pos = trip.route.point_at(g, offset);
        if rng.next_f64() >= params.dropout {
            // Approximate Gaussian: mean of 4 uniforms, scaled.
            let gauss = |r: &mut SplitMix64| {
                ((r.next_f64() + r.next_f64() + r.next_f64() + r.next_f64()) - 2.0)
                    * params.noise_sigma_m
                    * 1.732
            };
            let pos = true_pos.offset_m(gauss(&mut rng), gauss(&mut rng));
            fixes.push(GpsFix { t: trip.depart + ec_types::SimDuration::from_secs_f64(at_s), pos });
        }
        at_s += params.period_s;
    }
    fixes
}

/// Route offset (metres) of a vehicle `elapsed_s` seconds into a trip at
/// free flow — inverse of [`Route::cost_to_offset`] under the Time metric,
/// found by bisection (routes are short; 30 iterations ≪ 1 µs each).
///
/// [`Route::cost_to_offset`]: roadnet::Route::cost_to_offset
#[must_use]
pub fn offset_at_time(g: &RoadGraph, trip: &Trip, elapsed_s: f64) -> f64 {
    let len = trip.route.length_m();
    let total_s = trip.route.cost(g, CostMetric::Time);
    if elapsed_s <= 0.0 {
        return 0.0;
    }
    if elapsed_s >= total_s {
        return len;
    }
    let (mut lo, mut hi) = (0.0, len);
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if trip.route.cost_to_offset(g, CostMetric::Time, mid) < elapsed_s {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Summary statistics of a trace set — the shape of the numbers the paper
/// quotes about its datasets ("91.5 % of the trajectories are logged …
/// every 1∼5 seconds", total kilometres, total hours).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of traces summarised.
    pub traces: usize,
    /// Total fixes across all traces.
    pub fixes: usize,
    /// Total crow-flies distance along the fixes, kilometres.
    pub total_km: f64,
    /// Total recorded duration, hours.
    pub total_hours: f64,
    /// Median inter-fix period, seconds.
    pub median_period_s: f64,
    /// Fraction of inter-fix gaps in the 1–5 s band (Geolife's
    /// dense-representation figure).
    pub dense_fraction: f64,
}

/// Summarise a set of traces. Empty input yields all-zero stats.
#[must_use]
pub fn trace_stats(traces: &[Vec<GpsFix>]) -> TraceStats {
    let mut fixes = 0usize;
    let mut total_m = 0.0f64;
    let mut total_s = 0.0f64;
    let mut gaps: Vec<f64> = Vec::new();
    for trace in traces {
        fixes += trace.len();
        for w in trace.windows(2) {
            total_m += w[0].pos.fast_dist_m(&w[1].pos);
            gaps.push(w[1].t.saturating_since(w[0].t).as_secs() as f64);
        }
        if let (Some(first), Some(last)) = (trace.first(), trace.last()) {
            total_s += last.t.saturating_since(first.t).as_secs() as f64;
        }
    }
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite gaps"));
    let median_period_s = if gaps.is_empty() { 0.0 } else { gaps[gaps.len() / 2] };
    let dense = gaps.iter().filter(|&&g| (1.0..=5.0).contains(&g)).count();
    TraceStats {
        traces: traces.len(),
        fixes,
        total_km: total_m / 1_000.0,
        total_hours: total_s / 3_600.0,
        median_period_s,
        dense_fraction: if gaps.is_empty() { 0.0 } else { dense as f64 / gaps.len() as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brinkhoff::{generate_trips, BrinkhoffParams};
    use roadnet::{urban_grid, UrbanGridParams};

    fn world() -> (RoadGraph, Trip) {
        let g = urban_grid(&UrbanGridParams::default());
        let trip = generate_trips(
            &g,
            &BrinkhoffParams {
                trips: 1,
                min_trip_m: 8_000.0,
                max_trip_m: 15_000.0,
                ..Default::default()
            },
        )
        .remove(0);
        (g, trip)
    }

    #[test]
    fn trace_covers_trip_duration() {
        let (g, trip) = world();
        let fixes = sample_trace(&g, &trip, &TraceParams { dropout: 0.0, ..Default::default() });
        let total_s = trip.route.cost(&g, CostMetric::Time);
        let expect = (total_s / 5.0) as usize + 1;
        assert_eq!(fixes.len(), expect);
        assert_eq!(fixes[0].t, trip.depart);
        assert!(fixes.last().unwrap().t <= trip.arrival(&g) + ec_types::SimDuration::from_secs(5));
    }

    #[test]
    fn timestamps_strictly_increase() {
        let (g, trip) = world();
        let fixes = sample_trace(&g, &trip, &TraceParams::default());
        for w in fixes.windows(2) {
            assert!(w[1].t > w[0].t);
        }
    }

    #[test]
    fn fixes_stay_near_the_route() {
        let (g, trip) = world();
        let params = TraceParams { noise_sigma_m: 5.0, dropout: 0.0, ..Default::default() };
        let fixes = sample_trace(&g, &trip, &params);
        for (i, f) in fixes.iter().enumerate() {
            let true_pos = trip.route.point_at(&g, offset_at_time(&g, &trip, i as f64 * 5.0));
            let err = f.pos.fast_dist_m(&true_pos);
            assert!(err < 60.0, "fix {i} is {err} m off the route");
        }
    }

    #[test]
    fn dropout_thins_the_trace() {
        let (g, trip) = world();
        let dense = sample_trace(&g, &trip, &TraceParams { dropout: 0.0, ..Default::default() });
        let sparse = sample_trace(&g, &trip, &TraceParams { dropout: 0.5, ..Default::default() });
        assert!(sparse.len() < dense.len());
        assert!(sparse.len() > dense.len() / 5, "dropout should be ~50%");
    }

    #[test]
    fn offset_at_time_is_monotone_and_bounded() {
        let (g, trip) = world();
        let total_s = trip.route.cost(&g, CostMetric::Time);
        let mut last = -1.0;
        for i in 0..=20 {
            let s = total_s * f64::from(i) / 20.0;
            let off = offset_at_time(&g, &trip, s);
            assert!(off >= last);
            assert!(off <= trip.route.length_m() + 1e-6);
            last = off;
        }
        assert_eq!(offset_at_time(&g, &trip, -5.0), 0.0);
        assert!((offset_at_time(&g, &trip, total_s * 2.0) - trip.route.length_m()).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed_and_trip() {
        let (g, trip) = world();
        let a = sample_trace(&g, &trip, &TraceParams::default());
        let b = sample_trace(&g, &trip, &TraceParams::default());
        assert_eq!(a, b);
        let c = sample_trace(&g, &trip, &TraceParams { seed: 2, ..Default::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn stats_summarise_a_geolife_like_set() {
        let g = urban_grid(&UrbanGridParams::default());
        let trips = generate_trips(
            &g,
            &BrinkhoffParams {
                trips: 5,
                min_trip_m: 6_000.0,
                max_trip_m: 12_000.0,
                ..Default::default()
            },
        );
        let traces: Vec<Vec<GpsFix>> = trips
            .iter()
            .map(|t| {
                sample_trace(
                    &g,
                    t,
                    &TraceParams { period_s: 3.0, dropout: 0.0, ..Default::default() },
                )
            })
            .collect();
        let stats = trace_stats(&traces);
        assert_eq!(stats.traces, 5);
        assert!(stats.fixes > 100);
        assert!((stats.median_period_s - 3.0).abs() < 1e-9);
        assert!(stats.dense_fraction > 0.99, "all gaps are 3 s: {}", stats.dense_fraction);
        // Crow-flies trace length is close to the routed length.
        let routed_km: f64 = trips.iter().map(|t| t.length_m() / 1_000.0).sum();
        assert!(stats.total_km > routed_km * 0.5 && stats.total_km < routed_km * 1.3);
        assert!(stats.total_hours > 0.0);
    }

    #[test]
    fn stats_of_empty_set_are_zero() {
        let stats = trace_stats(&[]);
        assert_eq!(stats.traces, 0);
        assert_eq!(stats.fixes, 0);
        assert_eq!(stats.dense_fraction, 0.0);
        assert_eq!(stats.median_period_s, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let (g, trip) = world();
        let _ = sample_trace(&g, &trip, &TraceParams { period_s: 0.0, ..Default::default() });
    }
}
