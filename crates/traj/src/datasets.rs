//! The four evaluation dataset presets.
//!
//! The paper evaluates on Oldenburg (4 000 synthetic trajectories, 45×35
//! km), California (7 000 trajectories, 1 220×400 km), T-drive (10 357
//! Beijing taxis) and Geolife (17 621 trajectories) (§V-A). The original
//! traces are not redistributable here, so each preset pairs a synthetic
//! network of the matching scale/topology with Brinkhoff-generated trips
//! at the matching (scaled) cardinality — see DESIGN.md §3 for why this
//! preserves the evaluation's behaviour.
//!
//! Cardinality ordering is preserved exactly: Oldenburg < California <
//! T-drive < Geolife, which is what drives the paper's per-dataset trends.

use crate::brinkhoff::{generate_trips, BrinkhoffParams};
use crate::trip::Trip;
use ec_types::GeoPoint;
use roadnet::{metro_regions, urban_grid, MetroRegionsParams, RoadGraph, UrbanGridParams};
use serde::{Deserialize, Serialize};

/// Which evaluation region to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Brinkhoff-generated trips on a 45×35 km mid-size city.
    Oldenburg,
    /// Sparse multi-metro region at 1 220×400 km extent.
    California,
    /// Dense taxi workload on a Beijing-scale grid.
    TDrive,
    /// Multi-city mixed workload at the largest cardinality.
    Geolife,
}

impl DatasetKind {
    /// All four presets, in the paper's size order.
    pub const ALL: [DatasetKind; 4] =
        [Self::Oldenburg, Self::California, Self::TDrive, Self::Geolife];

    /// Display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Oldenburg => "Oldenburg",
            Self::California => "California",
            Self::TDrive => "T-drive",
            Self::Geolife => "Geolife",
        }
    }

    /// Trajectory count in the original dataset.
    #[must_use]
    pub const fn paper_trips(self) -> usize {
        match self {
            Self::Oldenburg => 4_000,
            Self::California => 7_000,
            Self::TDrive => 10_357,
            Self::Geolife => 17_621,
        }
    }

    /// Charger-fleet size this preset pairs with (the paper uses ">1,000
    /// chargers"; we grow the fleet with the region so the search-space
    /// ordering matches the dataset ordering).
    #[must_use]
    pub const fn charger_count(self) -> usize {
        match self {
            Self::Oldenburg => 600,
            Self::California => 800,
            Self::TDrive => 1_000,
            Self::Geolife => 1_200,
        }
    }
}

/// Fraction of the paper's trajectory cardinality to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetScale(f64);

impl DatasetScale {
    /// Full paper cardinality (4 000–17 621 trips).
    #[must_use]
    pub const fn paper() -> Self {
        Self(1.0)
    }

    /// Benchmark default: 5 % of paper cardinality — enough trips for
    /// stable means without minutes of workload generation per run.
    #[must_use]
    pub const fn bench() -> Self {
        Self(0.05)
    }

    /// Smoke-test scale: a handful of trips.
    #[must_use]
    pub const fn smoke() -> Self {
        Self(0.002)
    }

    /// An arbitrary fraction (clamped to `(0, 1]`).
    #[must_use]
    pub fn fraction(f: f64) -> Self {
        Self(f.clamp(1e-4, 1.0))
    }

    /// Trips to generate for `kind` at this scale (at least 4).
    #[must_use]
    pub fn trips_for(self, kind: DatasetKind) -> usize {
        ((kind.paper_trips() as f64 * self.0).round() as usize).max(4)
    }

    /// The raw fraction of paper cardinality this scale represents.
    #[must_use]
    pub const fn factor(self) -> f64 {
        self.0
    }
}

/// A fully materialised evaluation dataset: network + scheduled trips.
#[derive(Debug)]
pub struct Dataset {
    /// Which preset this is.
    pub kind: DatasetKind,
    /// The road network.
    pub graph: RoadGraph,
    /// The scheduled trips, ready for the continuous query.
    pub trips: Vec<Trip>,
}

impl Dataset {
    /// Build a preset at `scale`, deterministic in `seed`.
    #[must_use]
    pub fn build(kind: DatasetKind, scale: DatasetScale, seed: u64) -> Self {
        let net_seed = ec_types::rng::subseed(seed, 10);
        let trip_seed = ec_types::rng::subseed(seed, 11);
        let graph = Self::build_graph(kind, net_seed);
        let trips = generate_trips(&graph, &Self::trip_params(kind, scale, trip_seed));
        Self { kind, graph, trips }
    }

    fn build_graph(kind: DatasetKind, seed: u64) -> RoadGraph {
        match kind {
            DatasetKind::Oldenburg => urban_grid(&UrbanGridParams {
                origin: GeoPoint::new(8.13, 53.09),
                cols: 41,
                rows: 33,
                spacing_m: 1_100.0,
                jitter_frac: 0.25,
                drop_prob: 0.08,
                arterial_every: 5,
                seed,
            }),
            DatasetKind::California => metro_regions(&MetroRegionsParams {
                origin: GeoPoint::new(-123.0, 33.8),
                extent_x_m: 1_220_000.0,
                extent_y_m: 400_000.0,
                cities: 10,
                city_side: 10,
                city_spacing_m: 1_200.0,
                highway_node_m: 15_000.0,
                seed,
            }),
            DatasetKind::TDrive => urban_grid(&UrbanGridParams {
                origin: GeoPoint::new(116.18, 39.75),
                cols: 52,
                rows: 46,
                spacing_m: 700.0,
                jitter_frac: 0.2,
                drop_prob: 0.05,
                arterial_every: 4,
                seed,
            }),
            DatasetKind::Geolife => metro_regions(&MetroRegionsParams {
                origin: GeoPoint::new(115.8, 39.3),
                extent_x_m: 320_000.0,
                extent_y_m: 260_000.0,
                cities: 6,
                city_side: 16,
                city_spacing_m: 900.0,
                highway_node_m: 8_000.0,
                seed,
            }),
        }
    }

    fn trip_params(kind: DatasetKind, scale: DatasetScale, seed: u64) -> BrinkhoffParams {
        let trips = scale.trips_for(kind);
        let (min_trip_m, max_trip_m) = match kind {
            DatasetKind::Oldenburg => (4_000.0, 18_000.0),
            DatasetKind::California => (8_000.0, 60_000.0),
            DatasetKind::TDrive => (3_000.0, 20_000.0),
            DatasetKind::Geolife => (3_000.0, 35_000.0),
        };
        BrinkhoffParams { trips, min_trip_m, max_trip_m, seed, ..BrinkhoffParams::default() }
    }

    /// Display name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_math() {
        assert_eq!(DatasetScale::paper().trips_for(DatasetKind::Oldenburg), 4_000);
        assert_eq!(DatasetScale::bench().trips_for(DatasetKind::Oldenburg), 200);
        assert_eq!(DatasetScale::bench().trips_for(DatasetKind::Geolife), 881);
        // Tiny scales floor at 4 trips.
        assert_eq!(DatasetScale::fraction(1e-9).trips_for(DatasetKind::Oldenburg), 4);
    }

    #[test]
    fn cardinality_ordering_preserved() {
        let counts: Vec<usize> =
            DatasetKind::ALL.iter().map(|k| DatasetScale::bench().trips_for(*k)).collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "{counts:?}");
        let chargers: Vec<usize> = DatasetKind::ALL.iter().map(|k| k.charger_count()).collect();
        assert!(chargers.windows(2).all(|w| w[0] < w[1]), "{chargers:?}");
    }

    #[test]
    fn oldenburg_smoke_builds() {
        let d = Dataset::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 1);
        assert_eq!(d.trips.len(), 8);
        assert!(d.graph.num_nodes() > 1_000);
        // Extent ≈ 45×35 km (jitter adds a margin).
        assert!((d.graph.bounds().width_m() - 45_000.0).abs() < 6_000.0);
        assert!((d.graph.bounds().height_m() - 35_000.0).abs() < 6_000.0);
    }

    #[test]
    fn california_smoke_is_region_scale() {
        let d = Dataset::build(DatasetKind::California, DatasetScale::smoke(), 1);
        assert!(d.graph.bounds().width_m() > 700_000.0, "width {}", d.graph.bounds().width_m());
        assert_eq!(d.trips.len(), 14);
    }

    #[test]
    fn tdrive_denser_than_oldenburg() {
        let o = Dataset::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 1);
        let t = Dataset::build(DatasetKind::TDrive, DatasetScale::smoke(), 1);
        assert!(t.graph.num_nodes() > o.graph.num_nodes());
    }

    #[test]
    fn deterministic_build() {
        let a = Dataset::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 5);
        let b = Dataset::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 5);
        assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
        for (x, y) in a.trips.iter().zip(&b.trips) {
            assert_eq!(x.route.nodes(), y.route.nodes());
        }
    }
}
