//! # `trajgen` — moving-object workloads
//!
//! The paper's evaluation is trace-driven: "real and synthetic datasets
//! are fed into our simulator" (§V-A) — Oldenburg (generated with the
//! Brinkhoff spatio-temporal generator), California, T-drive and Geolife.
//! This crate provides:
//!
//! * [`Trip`] — a scheduled trip `P`: a route on the network with a
//!   departure time and free-flow ETA parameterisation;
//! * [`brinkhoff`] — a network-based moving-object generator in the style
//!   of Brinkhoff's tool (the same generative process that produced the
//!   original Oldenburg dataset): objects pick a start node, a destination
//!   at a preferred trip length, route by fastest path, and depart within
//!   a time window;
//! * [`datasets`] — the four evaluation presets at (configurably scaled)
//!   paper cardinalities;
//! * [`sampling`] — rendering trips into noisy timestamped GPS traces,
//!   the raw shape of the T-drive/Geolife data;
//! * [`matching`] — snapping such traces back onto the network, the
//!   ingestion step a real-trace pipeline needs before segmentation.

pub mod brinkhoff;
pub mod datasets;
pub mod matching;
pub mod sampling;
pub mod trip;

pub use brinkhoff::{generate_trips, BrinkhoffParams};
pub use datasets::{Dataset, DatasetKind, DatasetScale};
pub use matching::{match_trace, MatchParams};
pub use sampling::{sample_trace, trace_stats, GpsFix, TraceParams, TraceStats};
pub use trip::Trip;
