//! Map matching: recovering a network route from a noisy GPS trace.
//!
//! Real evaluation traces (T-drive, Geolife) arrive as timestamped points;
//! before the continuous query can segment a trip, the trace must be
//! snapped onto the road network. [`match_trace`] implements the classic
//! incremental matcher:
//!
//! 1. snap each fix to candidate nodes (nearest within a gate radius);
//! 2. thread consecutive snapped anchors together with shortest paths,
//!    rejecting teleports (network distance ≫ trace distance);
//! 3. emit the stitched [`Route`].
//!
//! This is deliberately the simple nearest-node/shortest-path matcher, not
//! an HMM: with ≤ 10 m GPS noise on block-scale networks it recovers the
//! generating route almost always (the round-trip property tests assert
//! exactly that), and it has no tuning burden.

use crate::sampling::GpsFix;
use ec_types::{EcError, NodeId};
use roadnet::{metric_cost, CostMetric, RoadGraph, Route, SearchEngine};

/// Parameters for [`match_trace`].
#[derive(Debug, Clone)]
pub struct MatchParams {
    /// Ignore fixes farther than this from any network node, metres.
    pub gate_m: f64,
    /// Reject a shortest-path link when it is more than this factor
    /// longer than the straight line between the anchors (detour gate —
    /// catches snaps to the wrong block).
    pub detour_factor: f64,
    /// Thin the trace to roughly one anchor per this many metres (denser
    /// anchors only add Dijkstra calls, not accuracy).
    pub anchor_spacing_m: f64,
}

impl Default for MatchParams {
    fn default() -> Self {
        Self { gate_m: 150.0, detour_factor: 3.0, anchor_spacing_m: 400.0 }
    }
}

/// Match a GPS trace onto the network, returning the stitched route.
///
/// # Errors
/// [`EcError::DegenerateTrip`] when fewer than two usable anchors remain
/// after gating; [`EcError::Unreachable`] when no path threads the
/// anchors.
pub fn match_trace(
    g: &RoadGraph,
    fixes: &[GpsFix],
    params: &MatchParams,
) -> Result<Route, EcError> {
    // 1. Snap + thin.
    let mut anchors: Vec<NodeId> = Vec::new();
    let mut last_kept: Option<ec_types::GeoPoint> = None;
    for fix in fixes {
        if let Some(prev) = last_kept {
            if prev.fast_dist_m(&fix.pos) < params.anchor_spacing_m {
                continue;
            }
        }
        let node = g.nearest_node(&fix.pos);
        if g.point(node).fast_dist_m(&fix.pos) > params.gate_m {
            continue; // off-network outlier
        }
        if anchors.last() != Some(&node) {
            anchors.push(node);
            last_kept = Some(fix.pos);
        }
    }
    // Always try to anchor the final fix so the route reaches the end.
    if let Some(last_fix) = fixes.last() {
        let node = g.nearest_node(&last_fix.pos);
        if g.point(node).fast_dist_m(&last_fix.pos) <= params.gate_m
            && anchors.last() != Some(&node)
        {
            anchors.push(node);
        }
    }
    if anchors.len() < 2 {
        return Err(EcError::DegenerateTrip(format!(
            "only {} usable anchors after gating",
            anchors.len()
        )));
    }

    // 2. Thread anchors with shortest paths.
    let mut engine = SearchEngine::new();
    let mut nodes: Vec<NodeId> = vec![anchors[0]];
    for w in anchors.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a == b {
            continue;
        }
        let crow = g.point(a).fast_dist_m(&g.point(b));
        let Some((cost, path)) = engine.one_to_one(g, a, b, metric_cost(CostMetric::Distance))
        else {
            return Err(EcError::Unreachable { from: a.0, to: b.0 });
        };
        if cost > crow * params.detour_factor + 200.0 {
            // Wrong-block snap: skip this anchor rather than teleport.
            continue;
        }
        nodes.extend_from_slice(&path[1..]);
    }
    if nodes.len() < 2 {
        return Err(EcError::DegenerateTrip("anchors collapsed to one node".into()));
    }
    Route::from_nodes(g, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brinkhoff::{generate_trips, BrinkhoffParams};
    use crate::sampling::{sample_trace, TraceParams};
    use crate::trip::Trip;
    use ec_types::SimTime;
    use roadnet::{urban_grid, UrbanGridParams};

    fn world(seed: u64) -> (RoadGraph, Trip) {
        let g = urban_grid(&UrbanGridParams::default());
        let trip = generate_trips(
            &g,
            &BrinkhoffParams {
                trips: 1,
                min_trip_m: 8_000.0,
                max_trip_m: 15_000.0,
                seed,
                ..Default::default()
            },
        )
        .remove(0);
        (g, trip)
    }

    #[test]
    fn roundtrip_recovers_endpoints_and_length() {
        for seed in [1u64, 2, 3, 5, 8] {
            let (g, trip) = world(seed);
            let trace = sample_trace(&g, &trip, &TraceParams { seed, ..Default::default() });
            let matched = match_trace(&g, &trace, &MatchParams::default()).unwrap();
            assert_eq!(matched.start(), trip.route.start(), "seed {seed}");
            assert_eq!(matched.end(), trip.route.end(), "seed {seed}");
            let ratio = matched.length_m() / trip.route.length_m();
            assert!((0.95..=1.10).contains(&ratio), "seed {seed}: length ratio {ratio}");
        }
    }

    #[test]
    fn matched_route_overlaps_original_nodes() {
        let (g, trip) = world(4);
        let trace = sample_trace(&g, &trip, &TraceParams::default());
        let matched = match_trace(&g, &trace, &MatchParams::default()).unwrap();
        let original: std::collections::HashSet<_> = trip.route.nodes().iter().collect();
        let shared = matched.nodes().iter().filter(|n| original.contains(n)).count();
        let frac = shared as f64 / matched.nodes().len() as f64;
        assert!(frac > 0.8, "only {frac:.2} of matched nodes lie on the true route");
    }

    #[test]
    fn heavy_noise_still_produces_a_route() {
        let (g, trip) = world(6);
        let trace = sample_trace(
            &g,
            &trip,
            &TraceParams { noise_sigma_m: 40.0, dropout: 0.3, ..Default::default() },
        );
        let matched = match_trace(&g, &trace, &MatchParams::default()).unwrap();
        assert!(matched.length_m() > trip.route.length_m() * 0.7);
    }

    #[test]
    fn empty_and_singleton_traces_error() {
        let (g, _trip) = world(1);
        assert!(matches!(
            match_trace(&g, &[], &MatchParams::default()),
            Err(EcError::DegenerateTrip(_))
        ));
        let one = GpsFix { t: SimTime::ZERO, pos: g.point(ec_types::NodeId(0)) };
        assert!(matches!(
            match_trace(&g, &[one], &MatchParams::default()),
            Err(EcError::DegenerateTrip(_))
        ));
    }

    #[test]
    fn off_network_outliers_are_gated_out() {
        let (g, trip) = world(2);
        let mut trace =
            sample_trace(&g, &trip, &TraceParams { dropout: 0.0, ..Default::default() });
        // Inject an absurd outlier in the middle (GPS glitch 40 km away).
        let mid = trace.len() / 2;
        trace[mid].pos = trace[mid].pos.offset_m(40_000.0, 40_000.0);
        let matched = match_trace(&g, &trace, &MatchParams::default()).unwrap();
        let ratio = matched.length_m() / trip.route.length_m();
        assert!((0.9..=1.2).contains(&ratio), "outlier corrupted the match: ratio {ratio}");
    }
}
