//! A Brinkhoff-style network-based moving-object generator.
//!
//! Brinkhoff's framework ("A framework for generating network-based moving
//! objects", GeoInformatica 2002) — the tool that produced the paper's
//! Oldenburg dataset — spawns objects at network nodes, assigns each a
//! destination and routes it along a fastest path. This module reproduces
//! that process deterministically:
//!
//! 1. pick a start node uniformly;
//! 2. pick a destination whose straight-line distance lies in the
//!    preferred trip-length band (rejection sampling with graceful
//!    fallback);
//! 3. route start → destination by fastest path;
//! 4. depart at a uniform instant inside the generation window.
//!
//! Unroutable picks are retried; the generator only returns fully
//! materialised trips.

use crate::trip::Trip;
use ec_types::{NodeId, SimTime, SplitMix64, TripId, VehicleId};
use roadnet::{metric_cost, CostMetric, RoadGraph, Route, SearchEngine};

/// Parameters for [`generate_trips`].
#[derive(Debug, Clone)]
pub struct BrinkhoffParams {
    /// Number of trips to generate.
    pub trips: usize,
    /// Preferred straight-line trip length band, metres.
    pub min_trip_m: f64,
    /// Upper edge of the preferred band, metres.
    pub max_trip_m: f64,
    /// Departures are uniform in `[window_start, window_start + window]`.
    pub window_start: SimTime,
    /// Length of the departure window, seconds.
    pub window_secs: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for BrinkhoffParams {
    fn default() -> Self {
        Self {
            trips: 100,
            min_trip_m: 5_000.0,
            max_trip_m: 25_000.0,
            // A Tuesday morning: chargers near their weekday rhythm.
            window_start: SimTime::at(0, ec_types::DayOfWeek::Tue, 7, 0),
            window_secs: 12 * 3_600,
            seed: 1,
        }
    }
}

/// Generate `params.trips` scheduled trips on `graph`.
///
/// # Panics
/// Panics when the parameter band is inverted or the graph has fewer than
/// two nodes.
#[must_use]
pub fn generate_trips(graph: &RoadGraph, params: &BrinkhoffParams) -> Vec<Trip> {
    assert!(params.min_trip_m <= params.max_trip_m, "inverted trip-length band");
    assert!(graph.num_nodes() >= 2, "graph too small for trips");
    let mut rng = SplitMix64::new(ec_types::rng::subseed(params.seed, 1));
    let mut engine = SearchEngine::new();
    let mut trips = Vec::with_capacity(params.trips);
    let n = graph.num_nodes() as u64;

    let mut vehicle = 0u32;
    while trips.len() < params.trips {
        let start = NodeId(u32::try_from(rng.below(n)).expect("fits u32"));
        let dest = pick_destination(graph, start, params, &mut rng);
        let Some((_, nodes)) = engine.one_to_one(graph, start, dest, metric_cost(CostMetric::Time))
        else {
            continue; // disconnected pick (possible on directed leftovers)
        };
        if nodes.len() < 2 {
            continue;
        }
        let route = Route::from_nodes(graph, nodes).expect("search path is edge-connected");
        let depart = params.window_start
            + ec_types::SimDuration::from_secs(rng.below(params.window_secs.max(1)));
        trips.push(Trip {
            id: TripId::from_index(trips.len()),
            vehicle: VehicleId(vehicle),
            route,
            depart,
        });
        vehicle += 1;
    }
    trips
}

/// Sample a destination in the preferred distance band from `start`;
/// after a bounded number of rejections, accept the best candidate seen.
fn pick_destination(
    graph: &RoadGraph,
    start: NodeId,
    params: &BrinkhoffParams,
    rng: &mut SplitMix64,
) -> NodeId {
    let origin = graph.point(start);
    let n = graph.num_nodes() as u64;
    let mid_band = 0.5 * (params.min_trip_m + params.max_trip_m);
    let mut best = (f64::INFINITY, start);
    for _ in 0..64 {
        let cand = NodeId(u32::try_from(rng.below(n)).expect("fits u32"));
        if cand == start {
            continue;
        }
        let d = origin.fast_dist_m(&graph.point(cand));
        if (params.min_trip_m..=params.max_trip_m).contains(&d) {
            return cand;
        }
        let score = (d - mid_band).abs();
        if score < best.0 {
            best = (score, cand);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::{urban_grid, UrbanGridParams};

    fn graph() -> RoadGraph {
        urban_grid(&UrbanGridParams::default())
    }

    #[test]
    fn generates_requested_count() {
        let g = graph();
        let trips = generate_trips(&g, &BrinkhoffParams { trips: 50, ..Default::default() });
        assert_eq!(trips.len(), 50);
        for (i, t) in trips.iter().enumerate() {
            assert_eq!(t.id.index(), i);
        }
    }

    #[test]
    fn trips_prefer_the_length_band() {
        let g = graph();
        let p = BrinkhoffParams {
            trips: 60,
            min_trip_m: 8_000.0,
            max_trip_m: 20_000.0,
            ..Default::default()
        };
        let trips = generate_trips(&g, &p);
        // Straight-line start→end distance should mostly be in band; the
        // routed length is necessarily at least that.
        let in_band = trips
            .iter()
            .filter(|t| {
                let d = g.point(t.route.start()).fast_dist_m(&g.point(t.route.end()));
                (p.min_trip_m..=p.max_trip_m).contains(&d)
            })
            .count();
        assert!(in_band * 10 >= trips.len() * 8, "{in_band}/{} in band", trips.len());
        for t in &trips {
            assert!(t.length_m() >= p.min_trip_m * 0.9);
        }
    }

    #[test]
    fn departures_inside_window() {
        let g = graph();
        let p = BrinkhoffParams { trips: 40, ..Default::default() };
        let trips = generate_trips(&g, &p);
        for t in &trips {
            assert!(t.depart >= p.window_start);
            assert!(
                t.depart.as_secs() <= p.window_start.as_secs() + p.window_secs,
                "departure outside window"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph();
        let a = generate_trips(&g, &BrinkhoffParams { trips: 20, ..Default::default() });
        let b = generate_trips(&g, &BrinkhoffParams { trips: 20, ..Default::default() });
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.route.nodes(), y.route.nodes());
            assert_eq!(x.depart, y.depart);
        }
        let c = generate_trips(&g, &BrinkhoffParams { trips: 20, seed: 99, ..Default::default() });
        assert!(a.iter().zip(&c).any(|(x, y)| x.route.nodes() != y.route.nodes()));
    }

    #[test]
    fn routes_are_connected_node_sequences() {
        let g = graph();
        let trips = generate_trips(&g, &BrinkhoffParams { trips: 10, ..Default::default() });
        for t in &trips {
            // Route::from_nodes would have failed otherwise; double-check
            // the endpoints differ and length is positive.
            assert_ne!(t.route.start(), t.route.end());
            assert!(t.length_m() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_band_panics() {
        let g = graph();
        let _ = generate_trips(
            &g,
            &BrinkhoffParams { min_trip_m: 10_000.0, max_trip_m: 5_000.0, ..Default::default() },
        );
    }
}
