//! A scheduled trip `P`.

use ec_types::{GeoPoint, SimDuration, SimTime, TripId, VehicleId};
use roadnet::{CostMetric, RoadGraph, Route};

/// A scheduled trip: the route a vehicle `m` will drive, departing at
/// `depart`. The continuous query consumes trips segment by segment.
#[derive(Debug, Clone)]
pub struct Trip {
    /// Trip id.
    pub id: TripId,
    /// The vehicle driving it.
    pub vehicle: VehicleId,
    /// The path `P` through the network.
    pub route: Route,
    /// Departure instant.
    pub depart: SimTime,
}

impl Trip {
    /// Free-flow ETA at `offset_m` metres into the trip.
    #[must_use]
    pub fn eta_at_offset(&self, g: &RoadGraph, offset_m: f64) -> SimTime {
        let secs = self.route.cost_to_offset(g, CostMetric::Time, offset_m);
        self.depart + SimDuration::from_secs_f64(secs)
    }

    /// Free-flow total duration.
    #[must_use]
    pub fn duration(&self, g: &RoadGraph) -> SimDuration {
        SimDuration::from_secs_f64(self.route.cost(g, CostMetric::Time))
    }

    /// Arrival instant at the destination (free flow).
    #[must_use]
    pub fn arrival(&self, g: &RoadGraph) -> SimTime {
        self.depart + self.duration(g)
    }

    /// Inverse of [`Trip::eta_at_offset`]: how far (metres) the vehicle
    /// has driven by instant `t` under free flow, clamped to
    /// `[0, length]` outside the trip's time span. Deterministic
    /// bisection over the monotone ETA curve (48 fixed halvings —
    /// sub-millimetre on any realistic trip), so every caller asking the
    /// same `t` reconstructs the identical offset.
    #[must_use]
    pub fn offset_at_time(&self, g: &RoadGraph, t: SimTime) -> f64 {
        if t <= self.depart {
            return 0.0;
        }
        let len = self.length_m();
        if t >= self.arrival(g) {
            return len;
        }
        let (mut lo, mut hi) = (0.0_f64, len);
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if self.eta_at_offset(g, mid) <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Vehicle position at `offset_m` into the trip.
    #[must_use]
    pub fn position_at_offset(&self, g: &RoadGraph, offset_m: f64) -> GeoPoint {
        self.route.point_at(g, offset_m)
    }

    /// Trip length, metres.
    #[must_use]
    pub fn length_m(&self) -> f64 {
        self.route.length_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::{DayOfWeek, NodeId};
    use roadnet::{GraphBuilder, RoadClass};

    fn trip() -> (RoadGraph, Trip) {
        let mut b = GraphBuilder::new();
        let o = GeoPoint::new(8.0, 53.0);
        let ids: Vec<NodeId> =
            (0..4).map(|i| b.add_node(o.offset_m(f64::from(i) * 1_000.0, 0.0))).collect();
        for w in ids.windows(2) {
            b.add_two_way(w[0], w[1], RoadClass::Primary);
        }
        let g = b.build();
        let route = Route::from_nodes(&g, ids).unwrap();
        let t = Trip {
            id: TripId(0),
            vehicle: VehicleId(0),
            route,
            depart: SimTime::at(0, DayOfWeek::Tue, 10, 0),
        };
        (g, t)
    }

    #[test]
    fn eta_grows_along_trip() {
        let (g, t) = trip();
        let e0 = t.eta_at_offset(&g, 0.0);
        let e1 = t.eta_at_offset(&g, 1_500.0);
        let e2 = t.eta_at_offset(&g, t.length_m());
        assert_eq!(e0, t.depart);
        assert!(e1 > e0 && e2 > e1);
        assert_eq!(e2, t.arrival(&g));
    }

    #[test]
    fn duration_matches_route_time() {
        let (g, t) = trip();
        // 3 km of Primary at 60 km/h ≈ 180 s.
        let d = t.duration(&g).as_secs();
        assert!((d as f64 - 180.0).abs() < 3.0, "duration {d}");
    }

    #[test]
    fn offset_at_time_inverts_eta() {
        let (g, t) = trip();
        // ETAs have one-second granularity, so the inverse is exact to
        // within one second of travel (≈ 17 m at 60 km/h).
        let per_sec = t.length_m() / t.duration(&g).as_secs() as f64;
        for offset in [0.0, 400.0, 1_500.0, 2_700.0, t.length_m()] {
            let eta = t.eta_at_offset(&g, offset);
            let back = t.offset_at_time(&g, eta);
            assert!(
                (back - offset).abs() <= per_sec + 1e-6,
                "offset {offset} → eta {eta:?} → {back}"
            );
        }
        // Outside the span: clamped.
        assert_eq!(t.offset_at_time(&g, t.depart - SimDuration::from_mins(5)), 0.0);
        assert_eq!(t.offset_at_time(&g, t.arrival(&g) + SimDuration::from_mins(5)), t.length_m());
        // Deterministic: the same instant always reconstructs bit-equal.
        let mid = t.depart + SimDuration::from_secs_f64(90.0);
        assert_eq!(t.offset_at_time(&g, mid).to_bits(), t.offset_at_time(&g, mid).to_bits());
    }

    #[test]
    fn position_at_offset_tracks_route() {
        let (g, t) = trip();
        let p = t.position_at_offset(&g, 500.0);
        let expect = GeoPoint::new(8.0, 53.0).offset_m(500.0, 0.0);
        assert!(p.fast_dist_m(&expect) < 30.0);
    }
}
