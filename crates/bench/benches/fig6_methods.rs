//! Figure 6 micro-view: one Offering-Table computation per method on the
//! Oldenburg preset — the per-query cost whose mean the `repro fig6`
//! series reports.

use criterion::{criterion_group, criterion_main, Criterion};
use ecocharge_bench::ExperimentEnv;
use ecocharge_core::{
    BruteForce, EcoCharge, EcoChargeConfig, IndexQuadtree, RandomPick, RankingMethod,
};
use std::hint::black_box;
use trajgen::{DatasetKind, DatasetScale};

fn bench_methods(c: &mut Criterion) {
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 42);
    let ctx = env.ctx(EcoChargeConfig::default());
    let trip = env.dataset.trips[0].clone();
    let now = trip.depart;

    let mut g = c.benchmark_group("fig6_one_table_oldenburg");
    g.sample_size(10);

    g.bench_function("brute_force", |b| {
        let mut m = BruteForce::new();
        b.iter(|| black_box(m.offering_table(&ctx, &trip, 0.0, now).unwrap()))
    });
    g.bench_function("index_quadtree", |b| {
        let mut m = IndexQuadtree::new();
        b.iter(|| black_box(m.offering_table(&ctx, &trip, 0.0, now).unwrap()))
    });
    g.bench_function("random", |b| {
        let mut m = RandomPick::new(1);
        b.iter(|| black_box(m.offering_table(&ctx, &trip, 0.0, now).unwrap()))
    });
    g.bench_function("ecocharge_cold", |b| {
        let mut m = EcoCharge::new();
        b.iter(|| {
            m.reset_trip(); // force the full filtering path
            black_box(m.offering_table(&ctx, &trip, 0.0, now).unwrap())
        })
    });
    g.bench_function("ecocharge_adapted", |b| {
        let mut m = EcoCharge::new();
        // Warm the cache once; every measured call is an adaptation.
        let _ = m.offering_table(&ctx, &trip, 0.0, now).unwrap();
        b.iter(|| black_box(m.offering_table(&ctx, &trip, 2_000.0, now).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
