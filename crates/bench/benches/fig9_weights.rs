//! Figure 9 micro-view: the refinement phase under the four weight
//! configurations. The cost is weight-independent (the ablation's `SC`
//! differences come from *what* gets ranked, not from ranking cost) — this
//! bench documents that fact.

use criterion::{criterion_group, criterion_main, Criterion};
use ecocharge_bench::ExperimentEnv;
use ecocharge_core::{EcoCharge, EcoChargeConfig, RankingMethod, Weights};
use std::hint::black_box;
use trajgen::{DatasetKind, DatasetScale};

fn bench_weights(c: &mut Criterion) {
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 42);
    let trip = env.dataset.trips[0].clone();
    let now = trip.depart;

    let configs: [(&str, Weights); 4] = [
        ("AWE", Weights::awe()),
        ("OSC", Weights::osc()),
        ("OA", Weights::oa()),
        ("ODC", Weights::odc()),
    ];
    let mut g = c.benchmark_group("fig9_full_solve_by_weights");
    g.sample_size(20);
    for (label, weights) in configs {
        let ctx = env.ctx(EcoChargeConfig { weights, ..EcoChargeConfig::default() });
        g.bench_function(label, |b| {
            let mut m = EcoCharge::new();
            b.iter(|| {
                m.reset_trip();
                black_box(m.offering_table(&ctx, &trip, 0.0, now).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_weights);
criterion_main!(benches);
