//! Figure 8 micro-view: how the range distance `Q` trades recomputation
//! for adaptation across a whole trip — the Dynamic-Caching dial.

use criterion::{criterion_group, criterion_main, Criterion};
use ecocharge_bench::ExperimentEnv;
use ecocharge_core::{CknnQuery, EcoCharge, EcoChargeConfig};
use std::hint::black_box;
use trajgen::{DatasetKind, DatasetScale};

fn bench_range(c: &mut Criterion) {
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 42);
    // The longest available trip maximises the number of split points.
    let trip = env
        .dataset
        .trips
        .iter()
        .max_by(|a, b| a.length_m().partial_cmp(&b.length_m()).unwrap())
        .unwrap()
        .clone();

    let mut g = c.benchmark_group("fig8_whole_trip_by_range");
    g.sample_size(20);
    for range_km in [0.0, 5.0, 10.0, 15.0] {
        let ctx = env.ctx(EcoChargeConfig { range_km, ..EcoChargeConfig::default() });
        let query = CknnQuery::new(&ctx, &trip).unwrap();
        g.bench_function(format!("Q_{range_km:.0}km"), |b| {
            b.iter(|| {
                let mut m = EcoCharge::new();
                black_box(query.run(&ctx, &trip, &mut m).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_range);
criterion_main!(benches);
