//! Micro-benchmarks of the substrate operations every figure exercises:
//! spatial index queries (the Index-Quadtree access path), shortest-path
//! searches (the derouting computation), interval scoring (the refinement
//! phase) and trip segmentation.

use criterion::{criterion_group, criterion_main, Criterion};
use ec_types::{GeoPoint, Interval, SplitMix64};
use ecocharge_core::Weights;
use roadnet::{metric_cost, urban_grid, CostMetric, SearchEngine, UrbanGridParams};
use spatial_index::{brute, GridIndex, KdTree, QuadTree};
use std::hint::black_box;

fn points(n: usize, seed: u64) -> Vec<(GeoPoint, u32)> {
    let mut rng = SplitMix64::new(seed);
    let origin = GeoPoint::new(8.0, 53.0);
    (0..n)
        .map(|i| {
            let p = origin.offset_m(rng.range_f64(0.0, 45_000.0), rng.range_f64(0.0, 35_000.0));
            (p, u32::try_from(i).unwrap())
        })
        .collect()
}

fn bench_spatial(c: &mut Criterion) {
    let mut g = c.benchmark_group("spatial");
    g.sample_size(30);
    let items = points(1_000, 7);
    let tree = QuadTree::bulk(items.clone());
    let grid = GridIndex::build(items.clone(), 2_000.0);
    let q = GeoPoint::new(8.0, 53.0).offset_m(20_000.0, 18_000.0);

    g.bench_function("quadtree_knn_k10_n1000", |b| {
        b.iter(|| black_box(tree.knn(black_box(&q), 10)))
    });
    let kd = KdTree::bulk(items.clone());
    g.bench_function("kdtree_knn_k10_n1000", |b| b.iter(|| black_box(kd.knn(black_box(&q), 10))));
    g.bench_function("grid_knn_k10_n1000", |b| b.iter(|| black_box(grid.knn(black_box(&q), 10))));
    g.bench_function("brute_knn_k10_n1000", |b| {
        b.iter(|| black_box(brute::knn_scan(black_box(&items), &q, 10)))
    });
    g.bench_function("quadtree_range_50km_n1000", |b| {
        b.iter(|| black_box(tree.range(black_box(&q), 50_000.0)))
    });
    g.finish();
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("search");
    g.sample_size(20);
    let graph = urban_grid(&UrbanGridParams::default());
    let mut engine = SearchEngine::new();
    let from = ec_types::NodeId(0);
    let to = ec_types::NodeId(u32::try_from(graph.num_nodes() - 1).unwrap());
    let targets: Vec<ec_types::NodeId> = (0..200).map(|i| ec_types::NodeId(i * 5)).collect();

    g.bench_function("dijkstra_one_to_one", |b| {
        b.iter(|| black_box(engine.one_to_one(&graph, from, to, metric_cost(CostMetric::Time))))
    });
    g.bench_function("astar_one_to_one", |b| {
        b.iter(|| black_box(engine.astar(&graph, from, to, CostMetric::Time)))
    });
    g.bench_function("one_to_many_200_targets", |b| {
        b.iter(|| {
            black_box(engine.one_to_many(&graph, from, &targets, metric_cost(CostMetric::Energy)))
        })
    });
    g.bench_function("bounded_10km", |b| {
        b.iter(|| {
            black_box(engine.bounded_from(
                &graph,
                from,
                10_000.0,
                metric_cost(CostMetric::Distance),
            ))
        })
    });
    g.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let mut g = c.benchmark_group("scoring");
    let mut rng = SplitMix64::new(3);
    let comps: Vec<(Interval, Interval, Interval)> = (0..1_000)
        .map(|_| {
            let mk = |r: &mut SplitMix64| {
                let a = r.range_f64(0.0, 0.9);
                Interval::new(a, a + r.range_f64(0.0, 0.1))
            };
            (mk(&mut rng), mk(&mut rng), mk(&mut rng))
        })
        .collect();
    let w = Weights::awe();
    g.bench_function("interval_score_1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(l, a, d) in &comps {
                acc += w.interval_score(l, a, d).mid();
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_spatial, bench_search, bench_scoring);
criterion_main!(benches);
