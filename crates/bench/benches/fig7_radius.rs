//! Figure 7 micro-view: how the radius `R` scales the full (cache-miss)
//! ranking cost — more candidates within `R` mean a bigger filtering pool.

use criterion::{criterion_group, criterion_main, Criterion};
use ecocharge_bench::ExperimentEnv;
use ecocharge_core::{EcoCharge, EcoChargeConfig, RankingMethod};
use std::hint::black_box;
use trajgen::{DatasetKind, DatasetScale};

fn bench_radius(c: &mut Criterion) {
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 42);
    let trip = env.dataset.trips[0].clone();
    let now = trip.depart;

    let mut g = c.benchmark_group("fig7_full_solve_by_radius");
    g.sample_size(20);
    for radius_km in [25.0, 50.0, 75.0] {
        let ctx = env.ctx(EcoChargeConfig { radius_km, ..EcoChargeConfig::default() });
        g.bench_function(format!("R_{radius_km:.0}km"), |b| {
            let mut m = EcoCharge::new();
            b.iter(|| {
                m.reset_trip();
                black_box(m.offering_table(&ctx, &trip, 0.0, now).unwrap())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_radius);
criterion_main!(benches);
