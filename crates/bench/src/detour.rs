//! The `repro detour` series — Dijkstra vs Contraction-Hierarchy on the
//! `D` component's three-sweep workload, swept over **backend × graph
//! size**.
//!
//! Two row families:
//!
//! * **Dataset rows** — every evaluation dataset at the harness scale,
//!   timing the exact batch the component computation issues per query
//!   point (forward time, forward energy, reverse energy over the full
//!   candidate set), once per backend. These rows additionally run full
//!   EcoCharge Offering Tables and require them bit-identical across
//!   backend × thread count (same promise `repro scaling` makes for
//!   threads alone).
//! * **Generated rows** — jittered urban grids of increasing size with a
//!   fixed-size synthetic charger fleet, the regime the CH backend is
//!   for: Dijkstra's three sweeps settle the whole (growing) network,
//!   while CH's cost stays pinned to the candidate count. The charger
//!   fleet deliberately does *not* grow with the network — charger
//!   density, not road density, bounds the candidate set in the paper's
//!   setting.
//!
//! Every row cross-checks three ways:
//!
//! * the per-candidate batch results must agree **bit-for-bit**;
//! * dataset rows compare full Offering Tables across backend × threads;
//! * settled-node counts are reported so the speedup has a mechanism
//!   attached, not just a wall-clock ratio.
//!
//! Written as `BENCH_detour.json` (hand-rolled — the vendored serde has
//! no JSON backend) so CI can archive the sweep.

use crate::env::ExperimentEnv;
use crate::figures::HarnessConfig;
use chargers::{synth_fleet, FleetParams};
use ec_types::rng::SplitMix64;
use ec_types::NodeId;
use ecocharge_core::{DetourBackend, EcoCharge, EcoChargeConfig, OfferingTable, RankingMethod};
use roadnet::{
    metric_cost, urban_grid, CostMetric, DetourCh, RoadGraph, SearchEngine, UrbanGridParams,
};
use std::io::Write;
use std::path::Path;
use std::time::Instant;
use trajgen::{DatasetKind, DatasetScale};

/// Node columns/rows of the generated grids at the default bench scale
/// (`nodes = side²`). The largest is where the ≥5× CH speedup target is
/// measured; `--scale` shrinks the sides proportionally so smoke runs
/// stay fast.
const GRID_BASE_SIDES: [usize; 3] = [40, 80, 240];

/// Chargers placed on every generated grid (fixed across sizes — the
/// candidate set is bounded by the charger fleet, not the road network).
const GRID_FLEET: usize = 128;

/// One cell of the sweep: one graph under one backend.
#[derive(Debug, Clone)]
pub struct DetourRow {
    /// Dataset name, or `urban-grid SxS` for a generated network.
    pub dataset: String,
    /// Network size, nodes.
    pub nodes: usize,
    /// Detour backend measured.
    pub backend: DetourBackend,
    /// One-off preprocessing cost (CH build; zero for Dijkstra).
    pub preprocess_ms: f64,
    /// Shortcut arcs the preprocessing added (zero for Dijkstra).
    pub shortcuts: usize,
    /// Median wall-clock time of one three-sweep query batch, µs.
    pub median_query_us: f64,
    /// Mean nodes settled per query batch (all three sweeps).
    pub mean_settled: f64,
    /// `median(Dijkstra) / median(this backend)` on the same workload.
    pub speedup: f64,
    /// Whether this backend's batch results (and, on dataset rows,
    /// Offering Tables) equal the Dijkstra single-threaded baseline
    /// bit-for-bit.
    pub identical: bool,
}

/// One query point's three-sweep result, reduced to cost bit patterns
/// (`None` = unreachable) for exact comparison across backends.
type BatchBits = (Vec<Option<u64>>, Vec<Option<u64>>, Vec<Option<u64>>);

fn bits(costs: impl IntoIterator<Item = Option<f64>>) -> Vec<Option<u64>> {
    costs.into_iter().map(|c| c.map(f64::to_bits)).collect()
}

fn median_us(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Timings for one backend over one workload.
struct BackendSample {
    median_us: f64,
    mean_settled: f64,
    /// CH only: every batch bit-equal to the Dijkstra baseline.
    batches_identical: bool,
}

/// Time both backends on the identical `(at, rejoin)` workload over
/// `cands`. The CH index is built (and timed) by the caller so dataset
/// rows can reuse the environment's shared hierarchy.
fn time_backends(
    g: &RoadGraph,
    ch: &DetourCh,
    cands: &[NodeId],
    points: &[(NodeId, NodeId)],
) -> (BackendSample, BackendSample) {
    let mut engine = SearchEngine::new();

    // --- Dijkstra baseline: the three batched settle-set sweeps. ---
    let mut dij_batch = |at: NodeId, rejoin: NodeId| -> (BatchBits, usize) {
        let mut settled = 0;
        let secs = engine.one_to_many(g, at, cands, metric_cost(CostMetric::Time));
        settled += engine.last_settled();
        let fwd = engine.one_to_many_profiled(g, at, cands, metric_cost(CostMetric::Energy));
        settled += engine.last_settled();
        let ret = engine.many_to_one_profiled(g, rejoin, cands, metric_cost(CostMetric::Energy));
        settled += engine.last_settled();
        let b = (
            bits(secs),
            bits(fwd.into_iter().map(|c| c.map(|(c, _)| c))),
            bits(ret.into_iter().map(|c| c.map(|(c, _)| c))),
        );
        (b, settled)
    };
    let _ = dij_batch(points[0].0, points[0].1); // warm allocations
    let mut dij_times = Vec::with_capacity(points.len());
    let mut dij_settled = 0usize;
    let mut dij_results = Vec::with_capacity(points.len());
    for &(at, rejoin) in points {
        let t0 = Instant::now();
        let (b, s) = dij_batch(at, rejoin);
        dij_times.push(t0.elapsed().as_secs_f64() * 1e6);
        dij_settled += s;
        dij_results.push(b);
    }

    // --- CH: the same workload on the prebuilt hierarchy. ---
    let mut ch_batch = |at: NodeId, rejoin: NodeId| -> (BatchBits, usize) {
        let mut settled = 0;
        let secs = ch.time.one_to_many(g, engine.ch_scratch(), at, cands);
        settled += engine.ch_scratch().last_settled();
        let fwd = ch.energy.one_to_many(g, engine.ch_scratch(), at, cands);
        settled += engine.ch_scratch().last_settled();
        let ret = ch.energy.many_to_one(g, engine.ch_scratch(), rejoin, cands);
        settled += engine.ch_scratch().last_settled();
        let b = (
            bits(secs.into_iter().map(|c| c.map(|c| c.cost))),
            bits(fwd.into_iter().map(|c| c.map(|c| c.cost))),
            bits(ret.into_iter().map(|c| c.map(|c| c.cost))),
        );
        (b, settled)
    };
    let _ = ch_batch(points[0].0, points[0].1); // warm the bucket fills
    let mut ch_times = Vec::with_capacity(points.len());
    let mut ch_settled = 0usize;
    let mut batches_identical = true;
    for (i, &(at, rejoin)) in points.iter().enumerate() {
        let t0 = Instant::now();
        let (b, s) = ch_batch(at, rejoin);
        ch_times.push(t0.elapsed().as_secs_f64() * 1e6);
        ch_settled += s;
        batches_identical &= b == dij_results[i];
    }

    let n = points.len().max(1) as f64;
    (
        BackendSample {
            median_us: median_us(&mut dij_times),
            mean_settled: dij_settled as f64 / n,
            batches_identical: true,
        },
        BackendSample {
            median_us: median_us(&mut ch_times),
            mean_settled: ch_settled as f64 / n,
            batches_identical,
        },
    )
}

/// Everything about one graph's row pair that isn't a timing.
struct PairMeta<'a> {
    name: &'a str,
    nodes: usize,
    /// The network itself plus the candidate fan-out, for checking the
    /// `Auto` default's pick against the measured pair.
    graph: &'a RoadGraph,
    fanout: usize,
    preprocess_ms: f64,
    shortcuts: usize,
    /// Dijkstra row's extra identity evidence (parallel Offering Tables
    /// on dataset rows; trivially true on generated rows).
    dij_identical: bool,
    /// CH row's extra identity evidence beyond the batch bit-compare.
    ch_identical: bool,
}

/// Regression net for the [`DetourBackend::Auto`] default: on every row
/// pair the backend the cost model would pick (prebuilt-style, the way
/// the experiment environments resolve it) must not be decisively the
/// slower of the two. The 2× relative slack plus a 1 ms absolute floor
/// absorbs micro-timing noise on small graphs where both backends
/// finish in a few hundred µs (a loaded test runner can double those
/// numbers on scheduler jitter alone); what this catches is the
/// original regression class — the model sending a city-scale graph to
/// CH (or a metro-scale one to Dijkstra) and losing big, i.e. by tens
/// of milliseconds.
fn assert_default_not_slowest(meta: &PairMeta<'_>, dij: &BackendSample, ch: &BackendSample) {
    // Full-settle fraction: this series' workload is the raw batch over
    // the whole candidate list, with no wider fleet the sweeps could
    // terminate early against.
    let pick = roadnet::resolve_backend(DetourBackend::Auto, meta.graph, meta.fanout, true, 1.0);
    let (picked_us, other_us) = match pick {
        DetourBackend::Dijkstra => (dij.median_us, ch.median_us),
        DetourBackend::Ch => (ch.median_us, dij.median_us),
        DetourBackend::Auto => unreachable!("resolution returns a concrete backend"),
    };
    assert!(
        picked_us <= other_us.mul_add(2.0, 1_000.0),
        "Auto default picked the slowest backend on {}: chose {} ({picked_us:.1}us) \
         over the alternative ({other_us:.1}us)",
        meta.name,
        pick.name()
    );
}

fn push_pair(
    rows: &mut Vec<DetourRow>,
    meta: &PairMeta<'_>,
    dij: &BackendSample,
    ch: &BackendSample,
) {
    assert_default_not_slowest(meta, dij, ch);
    rows.push(DetourRow {
        dataset: meta.name.to_string(),
        nodes: meta.nodes,
        backend: DetourBackend::Dijkstra,
        preprocess_ms: 0.0,
        shortcuts: 0,
        median_query_us: dij.median_us,
        mean_settled: dij.mean_settled,
        speedup: 1.0,
        identical: meta.dij_identical,
    });
    rows.push(DetourRow {
        dataset: meta.name.to_string(),
        nodes: meta.nodes,
        backend: DetourBackend::Ch,
        preprocess_ms: meta.preprocess_ms,
        shortcuts: meta.shortcuts,
        median_query_us: ch.median_us,
        mean_settled: ch.mean_settled,
        speedup: dij.median_us / ch.median_us.max(1e-9),
        identical: ch.batches_identical && meta.ch_identical,
    });
}

/// EcoCharge Offering Tables over `trips` under `config` (fresh
/// information server per run so provider caches cannot leak between
/// configurations).
fn tables_for(env: &ExperimentEnv, config: EcoChargeConfig, trips_n: usize) -> Vec<OfferingTable> {
    let trips = env.trips_for_rep(0, trips_n);
    let server = eis::InfoServer::from_sims(env.sims.clone());
    let ctx =
        ecocharge_core::QueryCtx::new(&env.dataset.graph, &env.fleet, &server, &env.sims, config);
    if config.detour_backend == DetourBackend::Ch {
        ctx.adopt_detour_ch(env.shared_detour_ch(config.threads));
    }
    let mut method = EcoCharge::new();
    let mut tables = Vec::new();
    for trip in &trips {
        method.reset_trip();
        if let Ok(table) = method.offering_table(&ctx, trip, 0.0, trip.depart) {
            tables.push(table);
        }
    }
    tables
}

/// The generated-grid sides at `scale`: the base sides shrink linearly
/// with the scale fraction (relative to the bench default) so smoke and
/// CI runs build small hierarchies, deduplicated after clamping.
fn grid_sides(scale: DatasetScale) -> Vec<usize> {
    let f = (scale.factor() / DatasetScale::bench().factor()).min(1.0);
    let mut sides: Vec<usize> = GRID_BASE_SIDES
        .iter()
        .map(|&base| (((base as f64) * f).round() as usize).clamp(12, base))
        .collect();
    sides.dedup();
    sides
}

/// Run the backend × graph-size sweep: one row pair (Dijkstra baseline,
/// then CH on the identical workload) per dataset in `kinds`, then one
/// pair per generated urban grid.
#[must_use]
pub fn run_detour(harness: &HarnessConfig, kinds: &[DatasetKind]) -> Vec<DetourRow> {
    let mut rows = Vec::new();
    let n_points = (harness.reps * harness.trips_per_rep).max(4);

    for &kind in kinds {
        let env = ExperimentEnv::build(kind, harness.scale, harness.seed);
        let g = &env.dataset.graph;
        let cands: Vec<NodeId> = env.fleet.iter().map(|c| c.node).collect();
        let trips = env.trips_for_rep(0, n_points);
        // The exact (at, rejoin) pair the component computation uses at a
        // trip's first segment: the vehicle queries from its current
        // position and rejoins further along the route.
        let points: Vec<(NodeId, NodeId)> = trips
            .iter()
            .map(|t| {
                let at = t.route.nearest_node_at(0.0);
                let rejoin = t.route.nearest_node_at(t.length_m() / 2.0);
                (at, rejoin)
            })
            .collect();

        let t0 = Instant::now();
        let ch = env.shared_detour_ch(harness.threads);
        let preprocess_ms = t0.elapsed().as_secs_f64() * 1e3;
        let shortcuts = ch.time.num_shortcuts() + ch.energy.num_shortcuts();
        let (dij, chs) = time_backends(g, &ch, &cands, &points);

        // --- Offering-Table identity across backend × thread count. ---
        let threads_hi = harness.threads.max(2);
        let cfg = |backend, threads| EcoChargeConfig {
            threads,
            detour_backend: backend,
            ..EcoChargeConfig::default()
        };
        let trips_n = harness.trips_per_rep.max(1);
        let baseline = tables_for(&env, cfg(DetourBackend::Dijkstra, 1), trips_n);
        let dij_par_ok =
            tables_for(&env, cfg(DetourBackend::Dijkstra, threads_hi), trips_n) == baseline;
        let ch_seq_ok = tables_for(&env, cfg(DetourBackend::Ch, 1), trips_n) == baseline;
        let ch_par_ok = tables_for(&env, cfg(DetourBackend::Ch, threads_hi), trips_n) == baseline;

        push_pair(
            &mut rows,
            &PairMeta {
                name: env.dataset.name(),
                nodes: g.num_nodes(),
                graph: g,
                fanout: cands.len(),
                preprocess_ms,
                shortcuts,
                dij_identical: dij_par_ok,
                ch_identical: ch_seq_ok && ch_par_ok,
            },
            &dij,
            &chs,
        );
    }

    // --- Generated grids: fixed fleet, growing network. ---
    for side in grid_sides(harness.scale) {
        let g = urban_grid(&UrbanGridParams {
            cols: side,
            rows: side,
            seed: harness.seed,
            ..UrbanGridParams::default()
        });
        let fleet = synth_fleet(
            &g,
            &FleetParams {
                count: GRID_FLEET.min(g.num_nodes() / 4).max(4),
                seed: harness.seed,
                ..FleetParams::default()
            },
        );
        let cands: Vec<NodeId> = fleet.iter().map(|c| c.node).collect();
        let mut rng = SplitMix64::new(ec_types::rng::subseed(harness.seed, 0xd7 + side as u64));
        let node = |rng: &mut SplitMix64| {
            NodeId(u32::try_from(rng.below(g.num_nodes() as u64)).expect("node id fits u32"))
        };
        let points: Vec<(NodeId, NodeId)> =
            (0..n_points).map(|_| (node(&mut rng), node(&mut rng))).collect();

        let t0 = Instant::now();
        let ch = DetourCh::build(&g, harness.threads.max(1));
        let preprocess_ms = t0.elapsed().as_secs_f64() * 1e3;
        let shortcuts = ch.time.num_shortcuts() + ch.energy.num_shortcuts();
        let (dij, chs) = time_backends(&g, &ch, &cands, &points);
        push_pair(
            &mut rows,
            &PairMeta {
                name: &format!("urban-grid {side}x{side}"),
                nodes: g.num_nodes(),
                graph: &g,
                fanout: cands.len(),
                preprocess_ms,
                shortcuts,
                dij_identical: true,
                ch_identical: true,
            },
            &dij,
            &chs,
        );
    }
    rows
}

/// Write the sweep as `BENCH_detour.json`.
pub fn write_detour_json(path: &Path, rows: &[DetourRow]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"series\": \"detour\",")?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"dataset\": \"{}\", \"nodes\": {}, \"backend\": \"{}\", \
             \"preprocess_ms\": {:.3}, \"shortcuts\": {}, \"median_query_us\": {:.3}, \
             \"mean_settled\": {:.1}, \"speedup\": {:.4}, \"identical\": {}}}{sep}",
            r.dataset,
            r.nodes,
            r.backend.name(),
            r.preprocess_ms,
            r.shortcuts,
            r.median_query_us,
            r.mean_settled,
            r.speedup,
            r.identical
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            scale: DatasetScale::smoke(),
            reps: 1,
            trips_per_rep: 2,
            seed: 7,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn backends_agree_on_oldenburg_smoke() {
        let rows = run_detour(&tiny(), &[DatasetKind::Oldenburg]);
        // One dataset pair plus at least one generated-grid pair.
        assert!(rows.len() >= 4 && rows.len().is_multiple_of(2), "unexpected rows: {}", rows.len());
        let (dij, ch) = (&rows[0], &rows[1]);
        assert_eq!(dij.backend, DetourBackend::Dijkstra);
        assert_eq!(ch.backend, DetourBackend::Ch);
        // Identity is the contract at every scale; speed is not (a smoke
        // graph is too small for hierarchy to pay off reliably).
        assert!(dij.identical, "parallel Dijkstra tables diverged: {dij:?}");
        assert!(ch.identical, "CH diverged from the Dijkstra baseline: {ch:?}");
        assert!(ch.preprocess_ms > 0.0 && ch.shortcuts > 0);
        assert!(dij.median_query_us > 0.0 && ch.median_query_us > 0.0);
        // CH's cached bucket fills must make its sweeps settle far fewer
        // nodes than three full-graph Dijkstras.
        assert!(
            ch.mean_settled < dij.mean_settled,
            "CH settled {} vs Dijkstra {}",
            ch.mean_settled,
            dij.mean_settled
        );
        // Generated rows hold bit-identity too.
        for r in &rows[2..] {
            assert!(r.identical, "generated-grid row diverged: {r:?}");
            assert!(r.dataset.starts_with("urban-grid"));
        }
    }

    #[test]
    fn grid_sides_scale_down_and_dedup() {
        // Bench scale keeps the base sides; smoke shrinks and dedups.
        assert_eq!(grid_sides(DatasetScale::bench()), vec![40, 80, 240]);
        let smoke = grid_sides(DatasetScale::smoke());
        assert!(!smoke.is_empty() && smoke.iter().all(|&s| (12..=240).contains(&s)));
        let mut sorted = smoke.clone();
        sorted.dedup();
        assert_eq!(smoke, sorted, "sides must be deduplicated");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = run_detour(&tiny(), &[DatasetKind::Oldenburg]);
        let path = std::env::temp_dir().join("BENCH_detour_test.json");
        write_detour_json(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"series\": \"detour\""));
        assert!(text.contains("\"backend\": \"ch\""));
        assert!(text.contains("\"identical\": true"));
        assert!(text.contains("urban-grid"));
        let _ = std::fs::remove_file(&path);
    }
}
