//! The `repro sessions` series — fleet-scale serving throughput.
//!
//! Sweeps the session count × worker-thread grid through one
//! [`SessionService`] per cell and measures what the serving layer
//! promises: throughput scales with threads, per-event latency stays
//! bounded under backpressure, the cross-session forecast ledger shows
//! real sharing — and every cell's Offering Tables are **bit-identical**
//! to the single-threaded run, with the baseline run spot-replayed
//! against a standalone [`EcoCharge`] on a fresh server. Written as
//! `BENCH_sessions.json` (hand-rolled — the vendored serde has no JSON
//! backend) so CI can archive the curve.

use crate::env::ExperimentEnv;
use crate::figures::HarnessConfig;
use ec_types::TripId;
use ecocharge_core::{EcoCharge, EcoChargeConfig, QueryCtx};
use ecocharge_session::{ServiceConfig, SessionService, SessionStats};
use eis::InfoServer;
use std::io::Write;
use std::path::Path;
use trajgen::{DatasetKind, Trip};

/// One cell of the sessions sweep.
#[derive(Debug, Clone)]
pub struct SessionsRow {
    /// Concurrent sessions registered.
    pub sessions: usize,
    /// `ServiceConfig::threads` for this cell.
    pub threads: usize,
    /// Events executed (re-ranks, rollovers, adaptations, retires).
    pub events: u64,
    /// Wall-clock registration time (segmentation + itinerary build), s.
    pub register_s: f64,
    /// Wall-clock serving time (`run_to_completion`), s.
    pub serve_s: f64,
    /// `events / serve_s`.
    pub events_per_s: f64,
    /// Median per-event execution latency, µs.
    pub p50_us: f64,
    /// 99th-percentile per-event execution latency, µs.
    pub p99_us: f64,
    /// Runnable events pushed past their tick by the budget.
    pub deferred: u64,
    /// Tables whose ranking changed (pushes to drivers).
    pub tables_emitted: u64,
    /// Fresh-forecast hits inherited from another session.
    pub shared_hits: u64,
    /// Share of forecast reads answered by another session's work.
    pub shared_hit_rate: f64,
    /// `events_per_s(this) / events_per_s(first thread count)`.
    pub speedup: f64,
    /// Event log and every session's solve record equal the first thread
    /// count's run; for the baseline cell itself, sampled sessions
    /// replayed bit-equal on a standalone solver.
    pub identical: bool,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// `count` distinct-id trips from the environment's pool (wrapping the
/// pool when it is smaller — duplicate routes are fine, duplicate trip
/// ids are not, since sessions are keyed by trip).
fn session_trips(env: &ExperimentEnv, count: usize) -> Vec<Trip> {
    let pool = &env.dataset.trips;
    (0..count)
        .map(|i| {
            let mut trip = pool[i % pool.len()].clone();
            trip.id = TripId(i as u32);
            trip
        })
        .collect()
}

/// Replay `session`'s recorded solves on a standalone solver against a
/// fresh server; true when every table matches bit-for-bit.
fn replay_matches(
    env: &ExperimentEnv,
    config: EcoChargeConfig,
    session: &ecocharge_session::SessionState,
) -> bool {
    let server = InfoServer::from_sims(env.sims.clone());
    let ctx = QueryCtx::new(&env.dataset.graph, &env.fleet, &server, &env.sims, config);
    let resolved = roadnet::resolve_backend(
        config.detour_backend,
        &env.dataset.graph,
        env.fleet.len(),
        true,
        1.0,
    );
    if resolved == ecocharge_core::DetourBackend::Ch {
        ctx.adopt_detour_ch(env.shared_detour_ch(1));
    }
    let mut standalone = EcoCharge::new();
    session.solves.iter().all(|solve| {
        standalone
            .rerank(&ctx, &session.trip, solve.offset_m, solve.time)
            .map(|table| table == solve.table)
            .unwrap_or(false)
    })
}

fn serve_cell(
    env: &ExperimentEnv,
    harness: &HarnessConfig,
    trips: &[Trip],
    threads: usize,
) -> (SessionService, SessionStats, f64, f64) {
    let server = InfoServer::from_sims(env.sims.clone());
    let config =
        EcoChargeConfig { detour_backend: harness.detour_backend, ..EcoChargeConfig::default() };
    let ctx = QueryCtx::new(&env.dataset.graph, &env.fleet, &server, &env.sims, config);
    let resolved = roadnet::resolve_backend(
        harness.detour_backend,
        &env.dataset.graph,
        env.fleet.len(),
        true,
        1.0,
    );
    if resolved == ecocharge_core::DetourBackend::Ch {
        ctx.adopt_detour_ch(env.shared_detour_ch(threads));
    }
    let mut svc = SessionService::new(ServiceConfig { threads, ..ServiceConfig::default() });
    let started = std::time::Instant::now();
    for trip in trips {
        svc.register(&ctx, trip).expect("bench trips admit cleanly");
    }
    let register_s = started.elapsed().as_secs_f64();
    let started = std::time::Instant::now();
    svc.run_to_completion(&ctx).expect("bench serving");
    let serve_s = started.elapsed().as_secs_f64();
    let stats = svc.stats();
    (svc, stats, register_s, serve_s)
}

/// Run the sessions × threads sweep on the Oldenburg world. Within each
/// session count, the first entry of `thread_counts` (conventionally 1)
/// is the identity and speedup baseline.
#[must_use]
pub fn run_sessions(
    harness: &HarnessConfig,
    session_counts: &[usize],
    thread_counts: &[usize],
) -> Vec<SessionsRow> {
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, harness.scale, harness.seed);
    let solver_config =
        EcoChargeConfig { detour_backend: harness.detour_backend, ..EcoChargeConfig::default() };
    let mut rows = Vec::new();
    for &count in session_counts {
        let trips = session_trips(&env, count);
        let mut baseline: Option<(f64, SessionService)> = None;
        for &threads in thread_counts {
            let (svc, stats, register_s, serve_s) = serve_cell(&env, harness, &trips, threads);
            let mut latencies = svc.event_latencies_us().to_vec();
            latencies.sort_by(f64::total_cmp);
            let events_per_s = stats.events_executed as f64 / serve_s.max(1e-9);
            let (speedup, identical) = match &baseline {
                None => {
                    // Spot-replay sampled sessions on a standalone solver.
                    let sessions: Vec<_> = svc.sessions().collect();
                    let sample = [0, sessions.len() / 2, sessions.len().saturating_sub(1)];
                    let ok =
                        sample.iter().all(|&i| replay_matches(&env, solver_config, sessions[i]));
                    (1.0, ok)
                }
                Some((base_eps, base_svc)) => {
                    let same_log = svc.event_log() == base_svc.event_log();
                    let same_solves = svc
                        .sessions()
                        .zip(base_svc.sessions())
                        .all(|(a, b)| a.id == b.id && a.solves == b.solves);
                    (events_per_s / base_eps.max(1e-9), same_log && same_solves)
                }
            };
            rows.push(SessionsRow {
                sessions: count,
                threads,
                events: stats.events_executed,
                register_s,
                serve_s,
                events_per_s,
                p50_us: percentile(&latencies, 0.50),
                p99_us: percentile(&latencies, 0.99),
                deferred: stats.events_deferred,
                tables_emitted: stats.tables_emitted,
                shared_hits: stats.forecast_shared_hits,
                shared_hit_rate: stats.shared_hit_rate(),
                speedup,
                identical,
            });
            if baseline.is_none() {
                baseline = Some((events_per_s, svc));
            }
        }
    }
    rows
}

/// Write the sweep as `BENCH_sessions.json`.
pub fn write_sessions_json(path: &Path, rows: &[SessionsRow]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"series\": \"sessions\",")?;
    writeln!(f, "  \"dataset\": \"Oldenburg\",")?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"sessions\": {}, \"threads\": {}, \"events\": {}, \
             \"register_s\": {:.4}, \"serve_s\": {:.4}, \"events_per_s\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"deferred\": {}, \
             \"tables_emitted\": {}, \"shared_hits\": {}, \"shared_hit_rate\": {:.4}, \
             \"speedup\": {:.4}, \"identical\": {}}}{sep}",
            r.sessions,
            r.threads,
            r.events,
            r.register_s,
            r.serve_s,
            r.events_per_s,
            r.p50_us,
            r.p99_us,
            r.deferred,
            r.tables_emitted,
            r.shared_hits,
            r.shared_hit_rate,
            r.speedup,
            r.identical
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajgen::DatasetScale;

    #[test]
    fn tiny_sweep_is_identical_and_shares() {
        let harness =
            HarnessConfig { scale: DatasetScale::smoke(), seed: 7, ..HarnessConfig::default() };
        let rows = run_sessions(&harness, &[4], &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.identical), "{rows:?}");
        assert!(rows.iter().all(|r| r.events > 0));
        let base = &rows[0];
        assert!((base.speedup - 1.0).abs() < 1e-9);
        assert!(base.shared_hits + base.tables_emitted > 0);
    }

    #[test]
    fn json_writer_emits_every_row() {
        let rows = vec![SessionsRow {
            sessions: 10,
            threads: 4,
            events: 120,
            register_s: 0.5,
            serve_s: 1.5,
            events_per_s: 80.0,
            p50_us: 900.0,
            p99_us: 4_000.0,
            deferred: 3,
            tables_emitted: 40,
            shared_hits: 25,
            shared_hit_rate: 0.4,
            speedup: 2.5,
            identical: true,
        }];
        let dir = std::env::temp_dir().join("ecocharge_sessions_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sessions.json");
        write_sessions_json(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"sessions\": 10"));
        assert!(text.contains("\"identical\": true"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
