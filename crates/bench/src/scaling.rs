//! The `repro scaling` series — `F_t` vs worker threads.
//!
//! Sweeps the [`EcoChargeConfig::threads`] knob over a fixed Oldenburg
//! workload for the exact methods (Brute-Force and EcoCharge) and checks
//! the property the parallel engine promises: every thread count returns
//! **bit-identical Offering Tables** to the single-threaded run, only
//! faster. The series is written as `BENCH_scaling.json` (hand-rolled —
//! the vendored serde has no JSON backend) so CI can archive the curve.

use crate::env::ExperimentEnv;
use crate::figures::HarnessConfig;
use ecocharge_core::{BruteForce, EcoCharge, EcoChargeConfig, OfferingTable, RankingMethod};
use std::io::Write;
use std::path::Path;
use trajgen::DatasetKind;

/// One cell of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Ranking method measured.
    pub method: &'static str,
    /// `EcoChargeConfig::threads` for this cell.
    pub threads: usize,
    /// Mean wall-clock time per Offering Table, ms.
    pub ft_ms: f64,
    /// `ft_ms(first thread count) / ft_ms(this cell)`.
    pub speedup: f64,
    /// Offering Tables produced.
    pub tables: usize,
    /// Whether every table equals the baseline run's table bit-for-bit.
    pub identical: bool,
}

fn method_for(name: &'static str) -> Box<dyn RankingMethod> {
    match name {
        "Brute-Force" => Box::new(BruteForce::new()),
        _ => Box::new(EcoCharge::new()),
    }
}

/// Run the thread sweep. The first entry of `thread_counts`
/// (conventionally 1) is the identity and speedup baseline; each cell
/// gets a freshly built world so caches never leak across thread counts.
#[must_use]
pub fn run_scaling(harness: &HarnessConfig, thread_counts: &[usize]) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for method_name in ["Brute-Force", "EcoCharge"] {
        let mut baseline: Option<(f64, Vec<OfferingTable>)> = None;
        for &threads in thread_counts {
            let env = ExperimentEnv::build(DatasetKind::Oldenburg, harness.scale, harness.seed);
            let config = EcoChargeConfig {
                threads,
                detour_backend: harness.detour_backend,
                ..EcoChargeConfig::default()
            };
            let ctx = env.ctx(config);
            let trips = env.trips_for_rep(0, harness.trips_per_rep * harness.reps);
            let mut method = method_for(method_name);
            let mut tables = Vec::new();
            let started = std::time::Instant::now();
            for trip in &trips {
                method.reset_trip();
                if let Ok(table) = method.offering_table(&ctx, trip, 0.0, trip.depart) {
                    tables.push(table);
                }
            }
            let ft_ms = started.elapsed().as_secs_f64() * 1e3 / tables.len().max(1) as f64;
            let (speedup, identical) = match &baseline {
                None => (1.0, true),
                Some((base_ms, base_tables)) => (base_ms / ft_ms.max(1e-9), *base_tables == tables),
            };
            if baseline.is_none() {
                baseline = Some((ft_ms, tables.clone()));
            }
            rows.push(ScalingRow {
                method: method_name,
                threads,
                ft_ms,
                speedup,
                tables: tables.len(),
                identical,
            });
        }
    }
    rows
}

/// Write the sweep as `BENCH_scaling.json`.
pub fn write_scaling_json(path: &Path, rows: &[ScalingRow]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"series\": \"scaling\",")?;
    writeln!(f, "  \"dataset\": \"Oldenburg\",")?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"method\": \"{}\", \"threads\": {}, \"ft_ms\": {:.6}, \
             \"speedup\": {:.4}, \"tables\": {}, \"identical\": {}}}{sep}",
            r.method, r.threads, r.ft_ms, r.speedup, r.tables, r.identical
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajgen::DatasetScale;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            scale: DatasetScale::smoke(),
            reps: 1,
            trips_per_rep: 2,
            seed: 7,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn sweep_is_identical_across_thread_counts() {
        let rows = run_scaling(&tiny(), &[1, 2]);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.tables > 0, "{r:?}");
            assert!(r.identical, "thread count {} diverged for {}", r.threads, r.method);
            assert!(r.ft_ms > 0.0 && r.speedup > 0.0);
        }
        // Both methods swept both thread counts.
        assert!(rows.iter().filter(|r| r.method == "EcoCharge").count() == 2);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = run_scaling(&tiny(), &[1]);
        let path = std::env::temp_dir().join("BENCH_scaling_test.json");
        write_scaling_json(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"series\": \"scaling\""));
        assert!(text.contains("\"identical\": true"));
        let _ = std::fs::remove_file(&path);
    }
}
