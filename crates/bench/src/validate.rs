//! Self-validation: assert the reproduction's headline claims
//! programmatically.
//!
//! `repro validate` runs a compact version of every series and checks the
//! *shape* assertions EXPERIMENTS.md makes — the reproduction's CI. Each
//! check prints PASS/FAIL; the process exits non-zero when any fails.

use crate::extensions::{run_balance, run_cache, run_regret};
use crate::figures::{run_fig6, run_fig8, run_fig9, HarnessConfig};

/// One validated claim.
#[derive(Debug)]
pub struct Check {
    /// What is being asserted.
    pub claim: &'static str,
    /// Did the measurement satisfy it?
    pub pass: bool,
    /// The measured evidence.
    pub evidence: String,
}

fn check(claim: &'static str, pass: bool, evidence: String) -> Check {
    Check { claim, pass, evidence }
}

/// Run all shape checks at `harness` scale. Returns every check with its
/// outcome (callers decide how to report).
#[must_use]
pub fn run_validation(harness: &HarnessConfig) -> Vec<Check> {
    let mut checks = Vec::new();

    // --- Figure 6 shapes ---
    let fig6 = run_fig6(harness);
    let cell = |ds: &str, m: &str| {
        fig6.iter().find(|r| r.dataset == ds && r.label == m).expect("cell exists").clone()
    };
    let datasets = ["Oldenburg", "California", "T-drive", "Geolife"];
    for ds in datasets {
        let bf = cell(ds, "Brute-Force");
        let qt = cell(ds, "Index-Quadtree");
        let rnd = cell(ds, "Random");
        let eco = cell(ds, "EcoCharge");
        checks.push(check(
            "Brute-Force defines the 100% line",
            (bf.sc_pct - 100.0).abs() < 1e-6,
            format!("{ds}: BF SC {:.3}%", bf.sc_pct),
        ));
        checks.push(check(
            "EcoCharge is near-optimal (SC > 95%)",
            eco.sc_pct > 95.0,
            format!("{ds}: EcoCharge SC {:.2}%", eco.sc_pct),
        ));
        checks.push(check(
            "quality order BF > EcoCharge > Quadtree > Random",
            eco.sc_pct > qt.sc_pct && qt.sc_pct > rnd.sc_pct,
            format!("{ds}: {:.1} > {:.1} > {:.1}", eco.sc_pct, qt.sc_pct, rnd.sc_pct),
        ));
        checks.push(check(
            "Brute-Force is the slowest method by a wide margin",
            bf.ft_ms > 10.0 * qt.ft_ms.max(eco.ft_ms),
            format!("{ds}: BF {:.1} ms vs max(other) {:.2} ms", bf.ft_ms, qt.ft_ms.max(eco.ft_ms)),
        ));
    }
    // BF F_t grows with dataset size.
    let bf_fts: Vec<f64> = datasets.iter().map(|ds| cell(ds, "Brute-Force").ft_ms).collect();
    checks.push(check(
        "Brute-Force F_t grows with dataset size",
        bf_fts.windows(2).all(|w| w[1] > w[0]),
        format!("{bf_fts:.1?} ms across datasets"),
    ));

    // --- Figure 8 trend: SC(Q=5) ≥ SC(Q=15) on average ---
    let fig8 = run_fig8(harness);
    let mean_q = |label: &str| {
        let rows: Vec<f64> = fig8.iter().filter(|r| r.label == label).map(|r| r.sc_pct).collect();
        rows.iter().sum::<f64>() / rows.len().max(1) as f64
    };
    checks.push(check(
        "larger Q trades SC for speed (mean SC(Q=5) ≥ SC(Q=15))",
        mean_q("Q=5km") >= mean_q("Q=15km") - 0.2,
        format!("Q=5: {:.2}% vs Q=15: {:.2}%", mean_q("Q=5km"), mean_q("Q=15km")),
    ));

    // --- Figure 9: AWE dominates every single-objective config ---
    let fig9 = run_fig9(harness);
    for ds in datasets {
        let sc = |label: &str| {
            fig9.iter().find(|r| r.dataset == ds && r.label == label).expect("cell").sc_pct
        };
        checks.push(check(
            "equal weights dominate single-objective configs",
            sc("AWE") > sc("OSC") && sc("AWE") > sc("OA") && sc("AWE") > sc("ODC"),
            format!(
                "{ds}: AWE {:.1} vs OSC {:.1} / OA {:.1} / ODC {:.1}",
                sc("AWE"),
                sc("OSC"),
                sc("OA"),
                sc("ODC")
            ),
        ));
    }

    // --- Extensions ---
    let regret = run_regret(harness);
    checks.push(check(
        "ground-truth regret is non-negative on every dataset",
        regret.iter().all(|r| r.actual_sc_pct <= r.forecast_sc_pct + 1.0),
        regret
            .iter()
            .map(|r| format!("{}: {:.1}", r.dataset, r.forecast_sc_pct - r.actual_sc_pct))
            .collect::<Vec<_>>()
            .join(", "),
    ));

    let cache = run_cache(harness);
    let caching_not_slower = cache.chunks(2).all(|pair| pair[1].ft_ms <= pair[0].ft_ms * 1.15);
    checks.push(check(
        "Dynamic Caching does not slow the ranking down",
        caching_not_slower,
        cache
            .chunks(2)
            .map(|p| format!("{}: {:.2}->{:.2} ms", p[0].dataset, p[0].ft_ms, p[1].ft_ms))
            .collect::<Vec<_>>()
            .join(", "),
    ));

    let balance = run_balance(harness, 24);
    checks.push(check(
        "load balancing reduces recommendation concentration",
        balance[1].max_load <= balance[0].max_load
            && balance[1].distinct_tops >= balance[0].distinct_tops,
        format!(
            "max load {} -> {}, distinct tops {} -> {}",
            balance[0].max_load,
            balance[1].max_load,
            balance[0].distinct_tops,
            balance[1].distinct_tops
        ),
    ));

    checks
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajgen::DatasetScale;

    #[test]
    fn validation_passes_at_smoke_scale() {
        let harness = HarnessConfig {
            scale: DatasetScale::smoke(),
            reps: 1,
            trips_per_rep: 2,
            seed: 42,
            ..HarnessConfig::default()
        };
        let checks = run_validation(&harness);
        let failures: Vec<&Check> = checks.iter().filter(|c| !c.pass).collect();
        // Smoke scale is noisy; the structural checks (BF=100, ordering,
        // AWE dominance) must still hold. Allow at most one trend check to
        // wobble.
        assert!(failures.len() <= 1, "too many failed checks at smoke scale: {failures:#?}");
    }
}
