//! The `repro serve` series — the tiered Offering-Table cache under
//! closed-loop Zipf load.
//!
//! Deterministic virtual clients hammer one sharded serving front
//! (2 shards × 2 front threads, so both cache tiers are live: the L1 is
//! per lane, the L2 is shared across lanes). Each client's trip is drawn
//! from a catalog of route shapes by a Zipf(s) rank distribution — s = 0
//! is uniform (essentially every driver on their own route, no reuse for
//! the cache to find), s = 1.2 concentrates the fleet onto a few popular
//! corridors, which is what urban charging demand actually looks like.
//! Every (skew × session-count) cell is served twice, cache off then
//! cache on, and reports:
//!
//! * sustained throughput (flat-equivalent events/s over the serving
//!   wall clock) for both runs and their ratio;
//! * per-event latency percentiles (p50/p99/p999) of the cache-on run;
//! * per-tier hit rates from the unified [`servecache::CacheMetrics`]
//!   registry;
//! * **identity** — the cache-on run's merged event log and every
//!   session's solve record, bit-compared against the cache-off run.
//!
//! Two gates feed [`serve_gate_failures`] (the `repro` binary exits
//! non-zero): every cell must be bit-identical, and at s = 1.2 the
//! cached front must sustain ≥ [`SPEEDUP_GATE`]× the uncached events/s
//! once the fleet is ≥ [`GATE_MIN_SESSIONS`] sessions (smaller fleets —
//! the CI smoke runs one at 1k — must merely not lose throughput). A
//! separate identity matrix re-serves the smallest high-skew cell across
//! shard × thread counts against an *unsharded, uncached* reference, so
//! the cache is also pinned against the flat serving path, not just
//! against its own topology.
//!
//! Written as `BENCH_serve.json` with the full metrics provenance block:
//! every cache tier's counters (table L1/L2 and the InfoServer's
//! forecast tiers), the cross-session forecast-share ledger, and the
//! summed lazy-pruning counters of the final cache-on run.

use crate::figures::HarnessConfig;
use chargers::{synth_fleet, ChargerFleet, FleetParams};
use ec_types::{SimDuration, SimTime, TripId};
use ecocharge_core::{EcoChargeConfig, PruneStats, QueryCtx};
use ecocharge_session::{
    ServiceConfig, SessionService, ShardConfig, ShardEnv, ShardedService, TableCacheConfig,
};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, RoadGraph, UrbanGridParams};
use servecache::{CacheMetrics, TierSnapshot};
use std::io::Write;
use std::path::Path;
use trajgen::{generate_trips, BrinkhoffParams, Trip};

/// At s = 1.2 with ≥ [`GATE_MIN_SESSIONS`] sessions, the cached front
/// must sustain at least this multiple of the uncached events/s.
pub const SPEEDUP_GATE: f64 = 1.5;

/// The 1.5× gate applies from this fleet size up; smaller high-skew
/// cells (the CI smoke) must only not lose throughput (≥ 1.0×).
pub const GATE_MIN_SESSIONS: usize = 10_000;

/// Skew at and above which the speedup gates judge a row.
pub const GATE_SKEW: f64 = 1.2;

/// Shards in the serving front — two, so the L2 is genuinely shared.
const FRONT_SHARDS: usize = 2;
/// Front threads — two, so the lanes actually run concurrently.
const FRONT_THREADS: usize = 2;
/// Quadtree depth for the urban-grid world (matches the shard series).
const TILE_DEPTH: u32 = 3;
/// Cache-on L1 capacity: deliberately small so the sweep exercises L1
/// eviction and the L2 actually sees traffic at 10k+ sessions.
const L1_ENTRIES: usize = 4_096;

/// One cell of the serve sweep: a (sessions × skew) workload served
/// twice, cache off then cache on.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// World label.
    pub world: String,
    /// Concurrent sessions registered.
    pub sessions: usize,
    /// Zipf skew of the shape distribution (0 = uniform).
    pub skew: f64,
    /// Distinct route shapes the clients actually sampled.
    pub shapes: usize,
    /// Flat-equivalent events executed (hand-off markers discounted).
    pub events: u64,
    /// Cache-off sustained throughput, events/s.
    pub off_events_per_s: f64,
    /// Cache-on sustained throughput, events/s.
    pub on_events_per_s: f64,
    /// `on_events_per_s / off_events_per_s`.
    pub speedup: f64,
    /// Median per-event latency of the cache-on run, µs.
    pub p50_us: f64,
    /// 99th-percentile per-event latency of the cache-on run, µs.
    pub p99_us: f64,
    /// 99.9th-percentile per-event latency of the cache-on run, µs.
    pub p999_us: f64,
    /// Table-cache L1 hit rate (all lanes merged).
    pub l1_hit_rate: f64,
    /// Table-cache L2 (shared tier) hit rate.
    pub l2_hit_rate: f64,
    /// Cache-on event log and every session's solves equal the
    /// cache-off run bit-for-bit.
    pub identical: bool,
}

/// One cell of the identity matrix: the smallest high-skew workload
/// re-served cached at `shards × threads`, against the unsharded
/// uncached reference.
#[derive(Debug, Clone)]
pub struct IdentityCell {
    pub shards: usize,
    pub threads: usize,
    pub identical: bool,
}

/// The metrics provenance block of the final (largest, most skewed)
/// cache-on run — the unified registry view the serving layer exposes.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    /// Every cache tier's counters: `session.l1`, `session.l2`, and the
    /// InfoServer forecast tiers.
    pub tiers: Vec<(String, TierSnapshot)>,
    /// Cross-session forecast-share ledger counters.
    pub forecast_shared_hits: u64,
    pub forecast_self_hits: u64,
    pub forecast_untagged_hits: u64,
    pub forecast_misses: u64,
    /// Lazy filter-refine counters summed over every session's solver.
    pub prune: PruneStats,
}

/// The full result of a serve sweep.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    pub rows: Vec<ServeRow>,
    pub identity: Vec<IdentityCell>,
    pub metrics: ServeMetrics,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A unit-interval draw from a 64-bit state (53 mantissa bits).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Cumulative Zipf(s) weights over `catalog` ranks: rank r has weight
/// `1/(r+1)^s`, so s = 0 is uniform and larger s concentrates mass on
/// the low ranks.
fn zipf_cumulative(catalog: usize, skew: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(catalog);
    let mut total = 0.0;
    for r in 0..catalog {
        total += 1.0 / ((r + 1) as f64).powf(skew);
        cum.push(total);
    }
    cum
}

/// `sessions` deterministic virtual clients: client `i` samples a route
/// shape by Zipf rank (inverse CDF over `cum`) and drives it under its
/// own fresh trip id. Returns the client trips and the count of
/// distinct shapes sampled.
fn zipf_clients(shapes: &[Trip], cum: &[f64], sessions: usize, seed: u64) -> (Vec<Trip>, usize) {
    let total = cum.last().copied().unwrap_or(1.0);
    let mut sampled = vec![false; shapes.len()];
    let mut clients = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let u = unit(splitmix64(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F))) * total;
        let rank = cum.partition_point(|&c| c < u).min(shapes.len() - 1);
        sampled[rank] = true;
        let mut trip = shapes[rank].clone();
        trip.id = TripId(i as u32);
        clients.push(trip);
    }
    (clients, sampled.iter().filter(|&&s| s).count())
}

/// The sweep's world: the small urban grid (solves are cheap enough to
/// drive 50k-session cache-off rows), with a shape catalog big enough
/// that uniform sampling finds essentially no reuse.
struct World {
    name: String,
    graph: RoadGraph,
    fleet: ChargerFleet,
    sims: SimProviders,
    shapes: Vec<Trip>,
}

impl World {
    fn build(seed: u64, catalog: usize) -> Self {
        let graph = urban_grid(&UrbanGridParams::default());
        let fleet = synth_fleet(&graph, &FleetParams { count: 120, seed, ..Default::default() });
        // Short trips bound events/session so the uncached 50k row stays
        // tractable; common departure keeps popular shapes colliding in
        // the same forecast windows, as synchronized commutes do.
        let mut shapes = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: catalog.max(1),
                min_trip_m: 6_000.0,
                max_trip_m: 12_000.0,
                seed,
                ..BrinkhoffParams::default()
            },
        );
        for t in &mut shapes {
            t.depart = SimTime::from_secs(600);
        }
        Self {
            name: "urban-grid 40x32".to_string(),
            graph,
            fleet,
            sims: SimProviders::new(seed),
            shapes,
        }
    }
}

fn service_config(sessions: usize, cached: bool) -> ServiceConfig {
    let table_cache = if cached {
        TableCacheConfig { l1_entries: L1_ENTRIES, ..TableCacheConfig::enabled() }
    } else {
        TableCacheConfig::default()
    };
    ServiceConfig {
        max_sessions: sessions + 1,
        events_per_tick: sessions.max(64),
        // Segment re-ranks + rollovers only: the adaptation stream is
        // the `sessions` series' subject, not this one's.
        adapt_every: SimDuration::ZERO,
        table_cache,
        ..ServiceConfig::default()
    }
}

struct CellRun<'a> {
    front: ShardedService<'a>,
    serve_s: f64,
}

fn serve_cell<'a>(
    world: &'a World,
    env: &'a ShardEnv,
    config: EcoChargeConfig,
    clients: &[Trip],
    shards: usize,
    threads: usize,
    cached: bool,
) -> CellRun<'a> {
    let mut front = ShardedService::new(
        env,
        &world.graph,
        &world.fleet,
        &world.sims,
        config,
        ShardConfig {
            shards,
            tile_depth: TILE_DEPTH,
            threads,
            service: service_config(clients.len(), cached),
        },
    );
    for trip in clients {
        front.register(trip).expect("bench trips admit cleanly");
    }
    let started = std::time::Instant::now();
    front.run_to_completion().expect("bench serving");
    let serve_s = started.elapsed().as_secs_f64();
    CellRun { front, serve_s }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn bit_identical(on: &ShardedService<'_>, off: &ShardedService<'_>) -> bool {
    let a = on.sessions();
    let b = off.sessions();
    on.event_log() == off.event_log()
        && a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(x, y)| x.id == y.id && x.solves == y.solves)
}

fn capture_metrics(run: &CellRun<'_>) -> ServeMetrics {
    let registry: CacheMetrics = run.front.cache_metrics();
    let stats = run.front.stats();
    let mut prune = PruneStats::default();
    for s in run.front.sessions() {
        prune.accumulate(s.solver().prune_stats());
    }
    ServeMetrics {
        tiers: registry.tiers().to_vec(),
        forecast_shared_hits: stats.forecast_shared_hits,
        forecast_self_hits: stats.forecast_self_hits,
        forecast_untagged_hits: stats.forecast_untagged_hits,
        forecast_misses: stats.forecast_misses,
        prune,
    }
}

/// Run the Zipf load-hammering sweep: every skew × session-count cell
/// served cache-off then cache-on through the 2-shard front, plus the
/// identity matrix on the smallest high-skew cell.
#[must_use]
pub fn run_serve(harness: &HarnessConfig, session_counts: &[usize], skews: &[f64]) -> ServeReport {
    let max_sessions = session_counts.iter().copied().max().unwrap_or(0);
    let world = World::build(harness.seed, max_sessions);
    let config =
        EcoChargeConfig { detour_backend: harness.detour_backend, ..EcoChargeConfig::default() };

    let mut report = ServeReport::default();
    for &sessions in session_counts {
        // Catalog = fleet size: one shape per Zipf rank, so s = 0 gives
        // each driver (almost always) their own route.
        let shapes = &world.shapes[..sessions.min(world.shapes.len())];
        for &skew in skews {
            let cum = zipf_cumulative(shapes.len(), skew);
            let (clients, distinct) =
                zipf_clients(shapes, &cum, sessions, harness.seed ^ 0x5EED_CAFE);

            let env_off = ShardEnv::new(&world.sims, FRONT_SHARDS);
            let off =
                serve_cell(&world, &env_off, config, &clients, FRONT_SHARDS, FRONT_THREADS, false);
            let env_on = ShardEnv::new(&world.sims, FRONT_SHARDS);
            let on =
                serve_cell(&world, &env_on, config, &clients, FRONT_SHARDS, FRONT_THREADS, true);

            let stats = on.front.stats();
            let events = stats.events_executed - stats.handoffs;
            let off_eps = events as f64 / off.serve_s.max(1e-9);
            let on_eps = events as f64 / on.serve_s.max(1e-9);
            let mut latencies = on.front.event_latencies_us();
            latencies.sort_by(f64::total_cmp);
            let metrics = on.front.cache_metrics();
            let tier_rate =
                |name: &str| metrics.get(name).map_or(0.0, |t: TierSnapshot| t.hit_rate());
            report.rows.push(ServeRow {
                world: world.name.clone(),
                sessions,
                skew,
                shapes: distinct,
                events,
                off_events_per_s: off_eps,
                on_events_per_s: on_eps,
                speedup: on_eps / off_eps.max(1e-9),
                p50_us: percentile(&latencies, 0.50),
                p99_us: percentile(&latencies, 0.99),
                p999_us: percentile(&latencies, 0.999),
                l1_hit_rate: tier_rate("session.l1"),
                l2_hit_rate: tier_rate("session.l2"),
                identical: bit_identical(&on.front, &off.front),
            });
            report.metrics = capture_metrics(&on);
        }
    }

    // Identity matrix: the smallest, most skewed cell re-served cached
    // across shard × thread counts against the unsharded uncached path.
    let Some(&sessions) = session_counts.iter().min() else { return report };
    let Some(skew) = skews.iter().copied().reduce(f64::max) else { return report };
    let shapes = &world.shapes[..sessions.min(world.shapes.len())];
    let cum = zipf_cumulative(shapes.len(), skew);
    let (clients, _) = zipf_clients(shapes, &cum, sessions, harness.seed ^ 0x5EED_CAFE);

    let server = InfoServer::from_sims(world.sims.clone());
    let ctx = QueryCtx::new(&world.graph, &world.fleet, &server, &world.sims, config);
    let mut flat = SessionService::new(service_config(clients.len(), false));
    for trip in &clients {
        flat.register(&ctx, trip).expect("bench trips admit cleanly");
    }
    flat.run_to_completion(&ctx).expect("bench serving");
    let flat_log = flat.event_log();
    let flat_sessions: Vec<_> = flat.sessions().collect();

    for shards in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let env = ShardEnv::new(&world.sims, shards);
            let run = serve_cell(&world, &env, config, &clients, shards, threads, true);
            let sharded = run.front.sessions();
            let identical = run.front.event_log() == flat_log
                && sharded.len() == flat_sessions.len()
                && sharded
                    .iter()
                    .zip(&flat_sessions)
                    .all(|(a, b)| a.id == b.id && a.solves == b.solves);
            report.identity.push(IdentityCell { shards, threads, identical });
        }
    }
    report
}

/// Every gated claim a finished sweep violates — empty means pass.
#[must_use]
pub fn serve_gate_failures(report: &ServeReport) -> Vec<String> {
    let mut failures = Vec::new();
    for r in &report.rows {
        if !r.identical {
            failures.push(format!(
                "sessions={} skew={}: cached tables diverged from the uncached run",
                r.sessions, r.skew
            ));
        }
        if r.skew >= GATE_SKEW {
            if r.l1_hit_rate + r.l2_hit_rate <= 0.0 {
                failures.push(format!(
                    "sessions={} skew={}: high-skew load never hit either cache tier",
                    r.sessions, r.skew
                ));
            }
            let gate = if r.sessions >= GATE_MIN_SESSIONS { SPEEDUP_GATE } else { 1.0 };
            if r.speedup < gate {
                failures.push(format!(
                    "sessions={} skew={}: cache-on sustains only {:.2}x the cache-off \
                     events/s (gate {gate}x)",
                    r.sessions, r.skew, r.speedup
                ));
            }
        }
    }
    for c in &report.identity {
        if !c.identical {
            failures.push(format!(
                "identity matrix shards={} threads={}: cached tables diverged from the \
                 unsharded uncached run",
                c.shards, c.threads
            ));
        }
    }
    failures
}

/// Write the sweep as `BENCH_serve.json`, including the unified cache
/// metrics registry, the forecast-share ledger and the summed pruning
/// counters of the final cache-on run.
pub fn write_serve_json(path: &Path, report: &ServeReport) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"series\": \"serve\",")?;
    writeln!(f, "  \"world\": \"{}\",", report.rows.first().map_or("", |r| r.world.as_str()))?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in report.rows.iter().enumerate() {
        let sep = if i + 1 < report.rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"sessions\": {}, \"skew\": {:.1}, \"shapes\": {}, \"events\": {}, \
             \"off_events_per_s\": {:.1}, \"on_events_per_s\": {:.1}, \"speedup\": {:.4}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}, \
             \"l1_hit_rate\": {:.4}, \"l2_hit_rate\": {:.4}, \"identical\": {}}}{sep}",
            r.sessions,
            r.skew,
            r.shapes,
            r.events,
            r.off_events_per_s,
            r.on_events_per_s,
            r.speedup,
            r.p50_us,
            r.p99_us,
            r.p999_us,
            r.l1_hit_rate,
            r.l2_hit_rate,
            r.identical
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"identity_matrix\": [")?;
    for (i, c) in report.identity.iter().enumerate() {
        let sep = if i + 1 < report.identity.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"shards\": {}, \"threads\": {}, \"identical\": {}}}{sep}",
            c.shards, c.threads, c.identical
        )?;
    }
    writeln!(f, "  ],")?;
    let m = &report.metrics;
    writeln!(f, "  \"cache_metrics\": {{")?;
    for (i, (name, t)) in m.tiers.iter().enumerate() {
        let sep = if i + 1 < m.tiers.len() { "," } else { "" };
        writeln!(
            f,
            "    \"{name}\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"insertions\": {}, \"entries\": {}, \"bytes\": {}}}{sep}",
            t.hits, t.misses, t.evictions, t.insertions, t.entries, t.bytes
        )?;
    }
    writeln!(f, "  }},")?;
    writeln!(
        f,
        "  \"forecast_share\": {{\"shared_hits\": {}, \"self_hits\": {}, \
         \"untagged_hits\": {}, \"misses\": {}}},",
        m.forecast_shared_hits, m.forecast_self_hits, m.forecast_untagged_hits, m.forecast_misses
    )?;
    writeln!(
        f,
        "  \"prune\": {{\"pool\": {}, \"exact_evals\": {}, \"pruned\": {}, \
         \"streamed_out\": {}}}",
        m.prune.pool, m.prune.exact_evals, m.prune.pruned, m.prune.streamed_out
    )?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampling_is_deterministic_and_skewed() {
        let cum = zipf_cumulative(100, 1.2);
        assert_eq!(cum.len(), 100);
        assert!(cum.windows(2).all(|w| w[1] > w[0]), "cumulative weights must increase");
        // Rank 0 carries more mass than ranks 50..100 combined at s=1.2.
        let head = cum[0];
        let tail = cum[99] - cum[49];
        assert!(head > tail, "skew must concentrate on the head: {head} vs {tail}");

        // Uniform skew spreads the sampled mass wide; heavy skew narrows it.
        let graph = urban_grid(&UrbanGridParams::default());
        let shapes =
            generate_trips(&graph, &BrinkhoffParams { trips: 200, ..BrinkhoffParams::default() });
        let uni = zipf_cumulative(shapes.len(), 0.0);
        let (clients_a, distinct_uni) = zipf_clients(&shapes, &uni, 200, 42);
        let (clients_b, _) = zipf_clients(&shapes, &uni, 200, 42);
        assert_eq!(
            clients_a.iter().map(|t| t.route.nodes().to_vec()).collect::<Vec<_>>(),
            clients_b.iter().map(|t| t.route.nodes().to_vec()).collect::<Vec<_>>(),
            "same seed must sample the same clients"
        );
        let hot = zipf_cumulative(shapes.len(), 1.2);
        let (_, distinct_hot) = zipf_clients(&shapes, &hot, 200, 42);
        assert!(
            distinct_hot < distinct_uni,
            "skew must narrow the sampled catalog: {distinct_hot} vs {distinct_uni}"
        );
        // Client ids are fresh per session even when routes repeat.
        let ids: std::collections::BTreeSet<u32> = clients_a.iter().map(|t| t.id.0).collect();
        assert_eq!(ids.len(), clients_a.len());
    }

    #[test]
    fn tiny_sweep_is_identical_and_caches_under_skew() {
        let harness = HarnessConfig { seed: 7, ..HarnessConfig::default() };
        let report = run_serve(&harness, &[48], &[0.0, 1.2]);
        assert_eq!(report.rows.len(), 2);
        assert!(report.rows.iter().all(|r| r.identical), "{:?}", report.rows);
        assert!(report.rows.iter().all(|r| r.events > 0));
        let hot = &report.rows[1];
        assert!(hot.skew >= 1.2);
        assert!(
            hot.l1_hit_rate + hot.l2_hit_rate > 0.0,
            "high skew must produce cache hits: {hot:?}"
        );
        let uni = &report.rows[0];
        assert!(
            uni.shapes > hot.shapes,
            "uniform sampling must touch more shapes: {} vs {}",
            uni.shapes,
            hot.shapes
        );
        assert_eq!(report.identity.len(), 6);
        assert!(report.identity.iter().all(|c| c.identical), "{:?}", report.identity);
        assert!(
            report.metrics.tiers.iter().any(|(n, _)| n == "session.l1"),
            "provenance block must list the table tiers: {:?}",
            report.metrics.tiers
        );
        assert!(report.metrics.prune.pool > 0, "prune counters must be summed");
        // The tiny fleet is below GATE_MIN_SESSIONS, so only identity
        // and hit-rate findings could fire — and none should.
        let failures = serve_gate_failures(&report);
        assert!(
            failures.iter().all(|f| f.contains("only")),
            "unexpected non-throughput finding: {failures:?}"
        );
    }

    fn row(sessions: usize, skew: f64, speedup: f64, hit: f64) -> ServeRow {
        ServeRow {
            world: "test".into(),
            sessions,
            skew,
            shapes: sessions / 2,
            events: 1000,
            off_events_per_s: 100.0,
            on_events_per_s: 100.0 * speedup,
            speedup,
            p50_us: 50.0,
            p99_us: 400.0,
            p999_us: 900.0,
            l1_hit_rate: hit,
            l2_hit_rate: 0.0,
            identical: true,
        }
    }

    #[test]
    fn gates_catch_divergence_slow_cache_and_dead_cache() {
        // A clean sweep passes: big skewed row fast, uniform row slow is fine.
        let clean = ServeReport {
            rows: vec![row(50_000, 0.0, 0.9, 0.0), row(50_000, 1.2, 2.0, 0.5)],
            identity: vec![IdentityCell { shards: 2, threads: 4, identical: true }],
            metrics: ServeMetrics::default(),
        };
        assert!(serve_gate_failures(&clean).is_empty());

        // Big high-skew row below 1.5x: the throughput gate fires.
        let slow = ServeReport { rows: vec![row(50_000, 1.2, 1.2, 0.5)], ..ServeReport::default() };
        let f = serve_gate_failures(&slow);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("1.20x"), "{f:?}");

        // Small high-skew row may be slow-ish but not a regression.
        let smoke = ServeReport { rows: vec![row(1_000, 1.2, 0.9, 0.5)], ..Default::default() };
        assert_eq!(serve_gate_failures(&smoke).len(), 1);
        let smoke_ok = ServeReport { rows: vec![row(1_000, 1.2, 1.1, 0.5)], ..Default::default() };
        assert!(serve_gate_failures(&smoke_ok).is_empty());

        // Divergence, a dead cache on a skewed row, and a bad identity
        // cell each produce a finding.
        let mut bad_row = row(50_000, 1.2, 2.0, 0.0);
        bad_row.identical = false;
        let bad = ServeReport {
            rows: vec![bad_row],
            identity: vec![IdentityCell { shards: 4, threads: 4, identical: false }],
            metrics: ServeMetrics::default(),
        };
        assert_eq!(serve_gate_failures(&bad).len(), 3);
    }

    #[test]
    fn json_writer_emits_rows_matrix_and_provenance() {
        let report = ServeReport {
            rows: vec![row(10_000, 1.2, 2.0, 0.6)],
            identity: vec![IdentityCell { shards: 2, threads: 4, identical: true }],
            metrics: ServeMetrics {
                tiers: vec![(
                    "session.l1".into(),
                    TierSnapshot {
                        hits: 10,
                        misses: 5,
                        evictions: 1,
                        insertions: 5,
                        entries: 4,
                        bytes: 4096,
                    },
                )],
                forecast_shared_hits: 7,
                forecast_self_hits: 2,
                forecast_untagged_hits: 0,
                forecast_misses: 3,
                prune: PruneStats { pool: 100, exact_evals: 60, pruned: 40, streamed_out: 10 },
            },
        };
        let dir = std::env::temp_dir().join("ecocharge_serve_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json");
        write_serve_json(&path, &report).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"skew\": 1.2"));
        assert!(text.contains("\"identity_matrix\""));
        assert!(text.contains("\"session.l1\""));
        assert!(text.contains("\"forecast_share\""));
        assert!(text.contains("\"pruned\": 40"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
