//! Experiment environments: one fully-built world per dataset preset.

use chargers::{synth_fleet, ChargerFleet, FleetParams};
use ecocharge_core::{DetourBackend, EcoChargeConfig, QueryCtx};
use eis::{InfoServer, SimProviders};
use roadnet::DetourCh;
use std::sync::{Arc, OnceLock};
use trajgen::{Dataset, DatasetKind, DatasetScale, Trip};

/// A materialised world: network, trips, charger fleet, providers and the
/// information server — everything a [`QueryCtx`] borrows.
pub struct ExperimentEnv {
    /// The dataset (network + trips).
    pub dataset: Dataset,
    /// The charger fleet sized per the preset.
    pub fleet: ChargerFleet,
    /// Ground-truth simulators.
    pub sims: SimProviders,
    /// The cached information server over those simulators.
    pub server: InfoServer,
    /// Lazily built Contraction-Hierarchy index, shared by every context
    /// this environment hands out (the build is deterministic, so sharing
    /// cannot change any result — only when the preprocessing is paid).
    detour_ch: OnceLock<Arc<DetourCh>>,
}

impl ExperimentEnv {
    /// Build the world for `kind` at `scale`, deterministic in `seed`.
    #[must_use]
    pub fn build(kind: DatasetKind, scale: DatasetScale, seed: u64) -> Self {
        let dataset = Dataset::build(kind, scale, seed);
        let fleet = synth_fleet(
            &dataset.graph,
            &FleetParams {
                count: kind.charger_count().min(dataset.graph.num_nodes()),
                seed,
                ..Default::default()
            },
        );
        let sims = SimProviders::new(seed);
        let server = InfoServer::from_sims(sims.clone());
        Self { dataset, fleet, sims, server, detour_ch: OnceLock::new() }
    }

    /// The shared CH index over this world's network, built on first use
    /// with `threads` workers (thread-invariant, so the count only
    /// affects build time).
    #[must_use]
    pub fn shared_detour_ch(&self, threads: usize) -> Arc<DetourCh> {
        Arc::clone(
            self.detour_ch
                .get_or_init(|| Arc::new(DetourCh::build(&self.dataset.graph, threads.max(1)))),
        )
    }

    /// A query context over this world with `config`. Contexts that
    /// resolve to the CH backend — statically configured or chosen by
    /// [`DetourBackend::Auto`] — adopt the environment's shared index
    /// instead of each building their own. Because the environment
    /// amortises the build across every context it hands out, `Auto` is
    /// resolved prebuilt-style (preprocessing is a sunk cost).
    #[must_use]
    pub fn ctx(&self, config: EcoChargeConfig) -> QueryCtx<'_> {
        let ctx = QueryCtx::new(&self.dataset.graph, &self.fleet, &self.server, &self.sims, config);
        let resolved = roadnet::resolve_backend(
            config.detour_backend,
            &self.dataset.graph,
            self.fleet.len(),
            true,
            1.0,
        );
        if resolved == DetourBackend::Ch {
            ctx.adopt_detour_ch(self.shared_detour_ch(config.threads));
        }
        ctx
    }

    /// The trip slice for repetition `rep` of size `per_rep` (wraps around
    /// the trip pool so any rep count works).
    #[must_use]
    pub fn trips_for_rep(&self, rep: usize, per_rep: usize) -> Vec<Trip> {
        let pool = &self.dataset.trips;
        (0..per_rep).map(|i| pool[(rep * per_rep + i) % pool.len()].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_world() {
        let env = ExperimentEnv::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 1);
        assert!(!env.fleet.is_empty());
        assert!(!env.dataset.trips.is_empty());
        let ctx = env.ctx(EcoChargeConfig::default());
        assert_eq!(ctx.fleet.len(), env.fleet.len());
    }

    #[test]
    fn rep_slices_differ_then_wrap() {
        let env = ExperimentEnv::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 1);
        let n = env.dataset.trips.len(); // 8 at smoke scale
        let a = env.trips_for_rep(0, 4);
        let b = env.trips_for_rep(1, 4);
        assert_eq!(a.len(), 4);
        assert_ne!(a[0].id, b[0].id);
        // A rep beyond the pool wraps rather than panicking.
        let c = env.trips_for_rep(n, 4);
        assert_eq!(c.len(), 4);
    }
}
