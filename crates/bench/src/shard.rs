//! The `repro shard` series — geographic sharding throughput + identity.
//!
//! Sweeps shard count × front threads over one metro-tier world through
//! [`ShardedService`], against a single unsharded [`SessionService`]
//! reference run. Three claims are measured, and two of them are gated
//! (the `repro` binary exits non-zero via [`shard_gate_failures`]):
//!
//! * **identity** — every cell's merged event log and every session's
//!   solve record are bit-identical to the unsharded run, including the
//!   sessions that crossed shard boundaries mid-flight;
//! * **scaling** — with enough front threads to run the lanes
//!   concurrently, four shards sustain at least 3× the events/s of one
//!   shard on the identical workload (lanes are single-threaded by
//!   design — the shard is the unit of parallelism, see
//!   [`ecocharge_session::ShardConfig`]);
//! * **federation** — the federated shared-hit rate stays within five
//!   points of the unsharded ledger's (partitioning the fleet must not
//!   destroy cross-session forecast sharing).
//!
//! ## How throughput is measured
//!
//! Each cell drives the front through
//! [`ShardedService::tick_timed`], which executes the lanes serially
//! and reports each lane's isolated cost. The row's `events_per_s`
//! divides the flat-equivalent events by the **critical path**
//! (`span_s`): per tick, the lane timings are LPT-scheduled onto
//! `threads` single-core workers — exactly the greedy schedule the
//! parallel front runs — plus the tick's serial coordination tail
//! (hand-off delivery + federation). This prices the parallel schedule
//! from real measurements while staying independent of the benchmark
//! host's core count: wall-clocking the parallel tick on a machine with
//! fewer cores than lanes would only measure time-slicing, and a gate
//! on it would report the host, not the partition. On a host with
//! `threads` free cores the parallel front's wall clock converges to
//! `span_s` (same schedule, same work). The serial wall clock of the
//! whole run is still reported per row as `serve_s`.
//!
//! What the scaling gate therefore judges is the genuine algorithmic
//! content of geographic sharding: does the LPT charger partition keep
//! the per-tick lane loads balanced enough — and the serial
//! coordination tail small enough — that four shards do ≥3× the work
//! of one per unit of critical-path time? A hot shard or a fat serial
//! tail fails it on any machine.
//!
//! Each row also reports the per-shard event breakdown, so a pathological
//! partition (one hot shard serving everything) is visible in the table
//! and in `BENCH_shard.json` rather than hiding inside an aggregate.

use crate::adaptive::MetroTier;
use crate::figures::HarnessConfig;
use chargers::{synth_fleet, ChargerFleet, FleetParams};
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use ecocharge_session::{ServiceConfig, SessionService, ShardConfig, ShardEnv, ShardedService};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, DetourCh, RoadGraph, UrbanGridParams};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use trajgen::{generate_trips, BrinkhoffParams, Trip};

/// Four shards must reach this multiple of one shard's critical-path
/// events/s wherever the front has at least [`GATE_MIN_THREADS`]
/// threads. Near-linear would be 4×; 3× leaves room for hand-off
/// delivery, the federation round, and imbalance between the
/// LPT-balanced shards.
pub const SPEEDUP_GATE: f64 = 3.0;

/// The scaling gate only judges rows whose worker count lets all four
/// lanes run concurrently in the modelled schedule.
pub const GATE_MIN_THREADS: usize = 4;

/// The federated shared-hit rate may drift at most this much (absolute)
/// from the unsharded run's.
pub const HIT_RATE_TOLERANCE: f64 = 0.05;

/// One cell of the shard sweep.
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// World label.
    pub world: String,
    /// Sessions registered.
    pub sessions: usize,
    /// Shard count.
    pub shards: usize,
    /// `ShardConfig::threads` — lanes ticked concurrently.
    pub threads: usize,
    /// Flat-equivalent events executed (hand-off markers discounted).
    pub events: u64,
    /// Cross-shard session hand-offs delivered.
    pub handoffs: u64,
    /// Wall-clock registration time (itinerary planning + admission), s.
    pub register_s: f64,
    /// Wall-clock serving time of the serial timed drive, s (≈ total
    /// single-core work).
    pub serve_s: f64,
    /// Critical-path serving time at `threads` workers, s: per tick the
    /// measured lane costs LPT-scheduled onto the workers, plus the
    /// serial coordination tail (see the module docs).
    pub span_s: f64,
    /// `events / span_s` — sustained throughput at `threads` workers.
    pub events_per_s: f64,
    /// Events executed per shard, shard order (hand-offs included —
    /// this is each lane's actual workload).
    pub per_shard_events: Vec<u64>,
    /// Federated share of forecast reads answered by another session.
    pub shared_hit_rate: f64,
    /// `shared_hit_rate − unsharded shared_hit_rate`.
    pub hit_rate_delta: f64,
    /// `events_per_s(this) / events_per_s(first shard count, same threads)`.
    pub speedup: f64,
    /// Merged event log and every session's solves equal the unsharded
    /// reference bit-for-bit.
    pub identical: bool,
}

/// The sweep's world: a generated metro substrate the series owns
/// outright (the shard plan partitions real geography, so the world is
/// a grid city, not a dataset preset).
struct World {
    name: String,
    graph: RoadGraph,
    fleet: ChargerFleet,
    sims: SimProviders,
    trips: Vec<Trip>,
    tile_depth: u32,
    detour_ch: OnceLock<Arc<DetourCh>>,
}

impl World {
    /// Build the tier's world with `sessions` boundary-crossing trips
    /// (10–18 km — long enough to cross tiles at the tier's depth).
    fn build(metro: MetroTier, seed: u64, sessions: usize) -> Self {
        // Deeper tiles on the metro substrates: a 288 km-wide world at
        // depth 3 would make tiles no 18 km trip ever leaves.
        let (name, side, fleet_n, tile_depth) = match metro {
            MetroTier::Off => ("urban-grid 40x32", (40, 32), 120, 3),
            MetroTier::Small => ("metro 320x300", (320, 300), 10_000, 5),
            MetroTier::Full => ("metro 1024x1024", (1024, 1024), 100_000, 6),
        };
        let graph = urban_grid(&UrbanGridParams {
            cols: side.0,
            rows: side.1,
            seed,
            ..UrbanGridParams::default()
        });
        let fleet = synth_fleet(
            &graph,
            &FleetParams {
                count: fleet_n.min(graph.num_nodes() / 2).max(4),
                seed,
                ..Default::default()
            },
        );
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams {
                trips: sessions.max(1),
                min_trip_m: 10_000.0,
                max_trip_m: 18_000.0,
                seed,
                ..BrinkhoffParams::default()
            },
        );
        Self {
            name: name.to_string(),
            graph,
            fleet,
            sims: SimProviders::new(seed),
            trips,
            tile_depth,
            detour_ch: OnceLock::new(),
        }
    }

    fn shared_detour_ch(&self, threads: usize) -> Arc<DetourCh> {
        Arc::clone(
            self.detour_ch.get_or_init(|| Arc::new(DetourCh::build(&self.graph, threads.max(1)))),
        )
    }

    fn wants_ch(&self, config: EcoChargeConfig) -> bool {
        roadnet::resolve_backend(config.detour_backend, &self.graph, self.fleet.len(), true, 1.0)
            == ecocharge_core::DetourBackend::Ch
    }
}

/// Makespan of greedy LPT scheduling of `lane_s` onto `workers`
/// single-core workers — the per-tick critical path of the parallel
/// front (its executor work-claims greedily, so this is the schedule it
/// actually runs, modulo claim order on equal loads).
fn makespan(lane_s: &[f64], workers: usize) -> f64 {
    let workers = workers.min(lane_s.len()).max(1);
    let mut sorted = lane_s.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut loads = vec![0.0f64; workers];
    for t in sorted {
        let least = (0..workers)
            .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).unwrap_or(std::cmp::Ordering::Equal))
            .expect("workers >= 1");
        loads[least] += t;
    }
    loads.iter().copied().fold(0.0, f64::max)
}

/// The unsharded reference run: identity and hit-rate anchor.
fn serve_flat(world: &World, config: EcoChargeConfig) -> SessionService {
    let server = InfoServer::from_sims(world.sims.clone());
    let ctx = QueryCtx::new(&world.graph, &world.fleet, &server, &world.sims, config);
    if world.wants_ch(config) {
        ctx.adopt_detour_ch(world.shared_detour_ch(1));
    }
    let mut svc = SessionService::new(ServiceConfig::default());
    for trip in &world.trips {
        svc.register(&ctx, trip).expect("bench trips admit cleanly");
    }
    svc.run_to_completion(&ctx).expect("bench serving");
    svc
}

/// Run the shards × threads sweep on the tier's world. Within each
/// thread count, the first entry of `shard_counts` (conventionally 1)
/// is the speedup baseline; identity is always judged against the one
/// unsharded reference run.
#[must_use]
pub fn run_shard(
    harness: &HarnessConfig,
    metro: MetroTier,
    sessions: usize,
    shard_counts: &[usize],
    thread_counts: &[usize],
) -> Vec<ShardRow> {
    let world = World::build(metro, harness.seed, sessions);
    let config =
        EcoChargeConfig { detour_backend: harness.detour_backend, ..EcoChargeConfig::default() };
    let flat = serve_flat(&world, config);
    let flat_log = flat.event_log();
    let flat_sessions: Vec<_> = flat.sessions().collect();
    let flat_rate = flat.stats().shared_hit_rate();

    let mut rows = Vec::new();
    for &threads in thread_counts {
        let mut base_eps: Option<f64> = None;
        for &shards in shard_counts {
            let env = ShardEnv::new(&world.sims, shards);
            let mut front = ShardedService::new(
                &env,
                &world.graph,
                &world.fleet,
                &world.sims,
                config,
                ShardConfig {
                    shards,
                    tile_depth: world.tile_depth,
                    threads,
                    service: ServiceConfig::default(),
                },
            );
            if world.wants_ch(config) {
                front.adopt_detour_ch(&world.shared_detour_ch(threads));
            }
            let started = std::time::Instant::now();
            for trip in &world.trips {
                front.register(trip).expect("bench trips admit cleanly");
            }
            let register_s = started.elapsed().as_secs_f64();
            let started = std::time::Instant::now();
            let mut span_s = 0.0;
            while front.pending_events() > 0 {
                let tick_started = std::time::Instant::now();
                let (_, lane_s) = front.tick_timed().expect("bench serving");
                // Critical path of this tick: the LPT schedule of the
                // lane costs, plus whatever the front spent outside the
                // lanes (hand-off delivery + federation — serial).
                let coordination =
                    (tick_started.elapsed().as_secs_f64() - lane_s.iter().sum::<f64>()).max(0.0);
                span_s += makespan(&lane_s, threads) + coordination;
            }
            let serve_s = started.elapsed().as_secs_f64();

            let stats = front.stats();
            let events = stats.events_executed - stats.handoffs;
            let events_per_s = events as f64 / span_s.max(1e-9);
            let speedup = match base_eps {
                None => 1.0,
                Some(base) => events_per_s / base.max(1e-9),
            };
            if base_eps.is_none() {
                base_eps = Some(events_per_s);
            }
            let sharded = front.sessions();
            let identical = front.event_log() == flat_log
                && sharded.len() == flat_sessions.len()
                && sharded
                    .iter()
                    .zip(&flat_sessions)
                    .all(|(a, b)| a.id == b.id && a.solves == b.solves);
            let shared_hit_rate = stats.shared_hit_rate();
            rows.push(ShardRow {
                world: world.name.clone(),
                sessions: world.trips.len(),
                shards,
                threads,
                events,
                handoffs: stats.handoffs,
                register_s,
                serve_s,
                span_s,
                events_per_s,
                per_shard_events: front
                    .per_shard_stats()
                    .iter()
                    .map(|s| s.events_executed)
                    .collect(),
                shared_hit_rate,
                hit_rate_delta: shared_hit_rate - flat_rate,
                speedup,
                identical,
            });
        }
    }
    rows
}

/// Every gated claim a finished sweep violates, as printable findings —
/// empty means the run passes. The scaling gate fires only where the
/// sweep actually produced the comparable pair (a 1-shard and a 4-shard
/// row at the same ≥[`GATE_MIN_THREADS`] thread count).
#[must_use]
pub fn shard_gate_failures(rows: &[ShardRow]) -> Vec<String> {
    let mut failures = Vec::new();
    for r in rows {
        if !r.identical {
            failures.push(format!(
                "shards={} threads={}: tables diverged from the unsharded run",
                r.shards, r.threads
            ));
        }
        if r.hit_rate_delta.abs() > HIT_RATE_TOLERANCE {
            failures.push(format!(
                "shards={} threads={}: federated shared-hit rate drifted {:+.3} from the \
                 unsharded run (tolerance {HIT_RATE_TOLERANCE})",
                r.shards, r.threads, r.hit_rate_delta
            ));
        }
    }
    let thread_counts: BTreeSet<usize> = rows.iter().map(|r| r.threads).collect();
    for t in thread_counts.into_iter().filter(|&t| t >= GATE_MIN_THREADS) {
        let at = |s: usize| rows.iter().find(|r| r.shards == s && r.threads == t);
        if let (Some(one), Some(four)) = (at(1), at(4)) {
            let ratio = four.events_per_s / one.events_per_s.max(1e-9);
            if ratio < SPEEDUP_GATE {
                failures.push(format!(
                    "threads={t}: 4 shards sustain only {ratio:.2}x the events/s of 1 shard \
                     (gate {SPEEDUP_GATE}x)"
                ));
            }
        }
    }
    failures
}

/// Write the sweep as `BENCH_shard.json`.
pub fn write_shard_json(path: &Path, rows: &[ShardRow]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"series\": \"shard\",")?;
    writeln!(f, "  \"world\": \"{}\",", rows.first().map_or("", |r| r.world.as_str()))?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let per_shard =
            r.per_shard_events.iter().map(ToString::to_string).collect::<Vec<_>>().join(", ");
        writeln!(
            f,
            "    {{\"sessions\": {}, \"shards\": {}, \"threads\": {}, \"events\": {}, \
             \"handoffs\": {}, \"register_s\": {:.4}, \"serve_s\": {:.4}, \
             \"span_s\": {:.4}, \"events_per_s\": {:.1}, \"per_shard_events\": [{per_shard}], \
             \"shared_hit_rate\": {:.4}, \"hit_rate_delta\": {:.4}, \"speedup\": {:.4}, \
             \"identical\": {}}}{sep}",
            r.sessions,
            r.shards,
            r.threads,
            r.events,
            r.handoffs,
            r.register_s,
            r.serve_s,
            r.span_s,
            r.events_per_s,
            r.shared_hit_rate,
            r.hit_rate_delta,
            r.speedup,
            r.identical
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_identical_and_crosses_boundaries() {
        let harness = HarnessConfig { seed: 7, ..HarnessConfig::default() };
        let rows = run_shard(&harness, MetroTier::Off, 5, &[1, 2], &[1, 2]);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.identical), "{rows:?}");
        assert!(rows.iter().all(|r| r.events > 0));
        assert!(
            rows.iter().filter(|r| r.shards == 2).all(|r| r.handoffs > 0),
            "10–18 km trips must cross shard boundaries: {rows:?}"
        );
        assert!(rows.iter().filter(|r| r.shards == 1).all(|r| r.handoffs == 0));
        for r in &rows {
            assert!(r.span_s > 0.0, "critical path must be measured: {r:?}");
            assert!(
                r.span_s <= r.serve_s * 1.05 + 0.01,
                "the critical path cannot exceed the serial wall clock: {r:?}"
            );
        }
        for r in &rows {
            assert_eq!(r.per_shard_events.len(), r.shards);
            assert_eq!(r.per_shard_events.iter().sum::<u64>(), r.events + r.handoffs);
            if r.shards == 1 {
                assert!((r.speedup - 1.0).abs() < 1e-9);
            }
        }
        // No identity or federation finding; the scaling gate has no
        // 4-shard row to judge here.
        assert!(shard_gate_failures(&rows).is_empty(), "{:?}", shard_gate_failures(&rows));
    }

    #[test]
    fn makespan_models_the_greedy_schedule() {
        // Perfect balance at full width; serial pile-up at one worker.
        assert!((makespan(&[1.0, 1.0, 1.0, 1.0], 4) - 1.0).abs() < 1e-12);
        assert!((makespan(&[1.0, 1.0, 1.0, 1.0], 1) - 4.0).abs() < 1e-12);
        // A hot lane dominates regardless of worker count.
        assert!((makespan(&[3.0, 1.0, 1.0, 1.0], 2) - 3.0).abs() < 1e-12);
        // LPT packs heaviest-first: {2,1} and {2,1}, makespan 3.
        assert!((makespan(&[2.0, 2.0, 1.0, 1.0], 2) - 3.0).abs() < 1e-12);
        // More workers than lanes changes nothing; no lanes costs nothing.
        assert!((makespan(&[0.5], 8) - 0.5).abs() < 1e-12);
        assert!(makespan(&[], 4).abs() < 1e-12);
    }

    fn row(shards: usize, threads: usize, eps: f64) -> ShardRow {
        ShardRow {
            world: "test".into(),
            sessions: 10,
            shards,
            threads,
            events: 100,
            handoffs: 0,
            register_s: 0.1,
            serve_s: 1.0,
            span_s: 1.0,
            events_per_s: eps,
            per_shard_events: vec![100; shards],
            shared_hit_rate: 0.4,
            hit_rate_delta: 0.0,
            speedup: 1.0,
            identical: true,
        }
    }

    #[test]
    fn gates_catch_divergence_drift_and_flat_scaling() {
        // A clean sweep passes.
        let clean = vec![row(1, 4, 100.0), row(4, 4, 350.0)];
        assert!(shard_gate_failures(&clean).is_empty());

        // 4 shards at only 2x: the scaling gate fires.
        let slow = vec![row(1, 4, 100.0), row(4, 4, 200.0)];
        let f = shard_gate_failures(&slow);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].contains("4 shards"), "{f:?}");

        // Same ratio at threads=1: below GATE_MIN_THREADS, not judged.
        let serial = vec![row(1, 1, 100.0), row(4, 1, 200.0)];
        assert!(shard_gate_failures(&serial).is_empty());

        // Divergence and hit-rate drift each produce a finding.
        let mut bad = row(4, 4, 350.0);
        bad.identical = false;
        bad.hit_rate_delta = -0.2;
        let f = shard_gate_failures(&[row(1, 4, 100.0), bad]);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn json_writer_emits_every_row() {
        let rows = vec![row(4, 8, 420.0)];
        let dir = std::env::temp_dir().join("ecocharge_shard_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_shard.json");
        write_shard_json(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"shards\": 4"));
        assert!(text.contains("\"per_shard_events\": [100, 100, 100, 100]"));
        assert!(text.contains("\"identical\": true"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
