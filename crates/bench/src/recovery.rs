//! The `repro recovery` series — crash-recovery fidelity at fleet scale.
//!
//! Serves a journaled fleet once (the uninterrupted reference), then
//! simulates crashes at seeded points — clean kills at tick/record
//! boundaries and torn tails mid-record (a crash in the middle of a
//! batch's commit `write`) — recovers each from snapshot + journal tail
//! at 1/4/8 worker threads, resumes to completion, and verifies the
//! recovered Offering Tables are **bit-identical** to the reference
//! (suffix-compared per session, f64s and all). A deterministic chaos
//! soak rides along: injected journal-append failures, worker panics
//! mid-batch and corrupted snapshot files must all be *contained*
//! (quarantine + read-only serving, typed errors, no unwinds) and must
//! leave a journal the recovery path still restores exactly. Written as
//! `BENCH_recovery.json`; `repro recovery` exits non-zero when any cell
//! diverges or any fault escapes containment.

use crate::env::ExperimentEnv;
use crate::figures::HarnessConfig;
use ec_types::{SessionId, SplitMix64, TripId};
use ecocharge_core::{EcoChargeConfig, QueryCtx};
use ecocharge_session::{
    read_journal, recover, JournalConfig, Record, ServiceChaos, ServiceConfig, ServiceHealth,
    SessionService, SinkChaos,
};
use eis::InfoServer;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use trajgen::{DatasetKind, Trip};

/// One simulated crash + recovery.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Concurrent sessions in the fleet.
    pub sessions: usize,
    /// Worker threads used for the recovery replay and resume.
    pub threads: usize,
    /// Journal records that survived the crash.
    pub surviving_records: usize,
    /// True when the crash tore the tail mid-record (vs a clean kill at
    /// a record boundary).
    pub torn: bool,
    /// True when recovery restored from a snapshot (false = full-log
    /// replay).
    pub from_snapshot: bool,
    /// Events re-executed from the journal tail during recovery.
    pub events_replayed: u64,
    /// Wall-clock recovery time (read + restore + verified replay), s.
    pub recover_s: f64,
    /// Wall-clock time to finish the interrupted fleet after recovery, s.
    pub resume_s: f64,
    /// Recovered tables are bit-identical to the uninterrupted run.
    pub identical: bool,
}

/// One chaos-soak scenario.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// The fault was contained: typed error, quarantine where promised,
    /// no panic escaped, reads kept answering.
    pub contained: bool,
    /// Recovering from whatever the fault left on disk reproduced the
    /// reference bit-exactly.
    pub recovered_identical: bool,
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ecocharge-recovery-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn session_trips(env: &ExperimentEnv, count: usize) -> Vec<Trip> {
    let pool = &env.dataset.trips;
    (0..count)
        .map(|i| {
            let mut trip = pool[i % pool.len()].clone();
            trip.id = TripId(i as u32);
            trip
        })
        .collect()
}

fn ctx_for<'a>(
    env: &'a ExperimentEnv,
    harness: &HarnessConfig,
    server: &'a InfoServer,
    threads: usize,
) -> QueryCtx<'a> {
    let config =
        EcoChargeConfig { detour_backend: harness.detour_backend, ..EcoChargeConfig::default() };
    let ctx = QueryCtx::new(&env.dataset.graph, &env.fleet, server, &env.sims, config);
    let resolved = roadnet::resolve_backend(
        harness.detour_backend,
        &env.dataset.graph,
        env.fleet.len(),
        true,
        1.0,
    );
    if resolved == ecocharge_core::DetourBackend::Ch {
        ctx.adopt_detour_ch(env.shared_detour_ch(threads));
    }
    ctx
}

fn service_config(threads: usize, chaos: ServiceChaos) -> ServiceConfig {
    ServiceConfig { events_per_tick: 8, threads, chaos, ..ServiceConfig::default() }
}

/// Per-session `(id, solves)` audit trail.
type Trail = Vec<(u32, Vec<ecocharge_session::SolvedTable>)>;

fn trail(svc: &SessionService) -> Trail {
    svc.sessions().map(|s| (s.id.0, s.solves.clone())).collect()
}

/// Recovered solves must be exactly the tail of the reference record.
fn suffix_identical(reference: &Trail, recovered: &SessionService) -> bool {
    let rec = trail(recovered);
    rec.len() == reference.len()
        && rec.iter().zip(reference).all(|((id_a, solves_a), (id_b, solves_b))| {
            id_a == id_b
                && solves_a.len() <= solves_b.len()
                && solves_a[..] == solves_b[solves_b.len() - solves_a.len()..]
        })
}

/// The journaled reference run, into `dir`.
fn reference_run(
    env: &ExperimentEnv,
    harness: &HarnessConfig,
    trips: &[Trip],
    dir: &Path,
    sink_chaos: Option<SinkChaos>,
    chaos: ServiceChaos,
) -> Result<SessionService, ecocharge_session::SessionError> {
    let server = InfoServer::from_sims(env.sims.clone());
    let ctx = ctx_for(env, harness, &server, 1);
    let journal = JournalConfig {
        snapshot_every_ticks: 4,
        sink_chaos,
        ..JournalConfig::new(dir.to_path_buf())
    };
    let mut svc = SessionService::with_journal(service_config(1, chaos), journal)?;
    for trip in trips {
        // The bench never exceeds the cap or duplicates trips; the only
        // admission failure chaos can provoke is a refused journal append.
        svc.register(&ctx, trip).map_err(|e| match e {
            ecocharge_session::RegisterError::Journal(j) => {
                ecocharge_session::SessionError::Journal(j)
            }
            other => panic!("bench admission refused: {other}"),
        })?;
    }
    svc.run_to_completion(&ctx)?;
    Ok(svc)
}

/// Recover `dir` at `threads`, re-register any trips whose admission the
/// crash cut off, resume to completion, and suffix-compare.
fn recover_and_check(
    env: &ExperimentEnv,
    harness: &HarnessConfig,
    trips: &[Trip],
    reference: &Trail,
    dir: &Path,
    threads: usize,
) -> (bool, bool, u64, f64, f64) {
    let server = InfoServer::from_sims(env.sims.clone());
    let ctx = ctx_for(env, harness, &server, threads);
    let started = std::time::Instant::now();
    let (mut svc, report) = match recover(
        &ctx,
        service_config(threads, ServiceChaos::default()),
        JournalConfig::new(dir.to_path_buf()),
    ) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("recovery failed in {}: {e}", dir.display());
            return (false, false, 0, started.elapsed().as_secs_f64(), 0.0);
        }
    };
    let recover_s = started.elapsed().as_secs_f64();
    for trip in trips {
        if svc.session(SessionId(trip.id.0)).is_none() {
            if let Err(e) = svc.register(&ctx, trip) {
                eprintln!("re-registration failed: {e}");
                return (false, report.snapshot_watermark.is_some(), 0, recover_s, 0.0);
            }
        }
    }
    let started = std::time::Instant::now();
    if let Err(e) = svc.run_to_completion(&ctx) {
        eprintln!("post-recovery serving failed: {e}");
        return (false, report.snapshot_watermark.is_some(), 0, recover_s, 0.0);
    }
    let resume_s = started.elapsed().as_secs_f64();
    (
        suffix_identical(reference, &svc),
        report.snapshot_watermark.is_some(),
        report.events_replayed,
        recover_s,
        resume_s,
    )
}

/// Run the crash-point × thread sweep. `crashes_per_mode` seeded crash
/// points are drawn for each mode (clean boundary kill, torn mid-record
/// tail), all at or after the first committed batch so every crash lands
/// in serving, not admission.
#[must_use]
pub fn run_recovery(
    harness: &HarnessConfig,
    sessions: usize,
    thread_counts: &[usize],
    crashes_per_mode: usize,
) -> Vec<RecoveryRow> {
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, harness.scale, harness.seed);
    let trips = session_trips(&env, sessions);
    let ref_dir = bench_dir("reference");
    let reference = reference_run(&env, harness, &trips, &ref_dir, None, ServiceChaos::default())
        .expect("reference run serves cleanly");
    let ref_trail = trail(&reference);
    drop(reference);

    let full = read_journal(&ref_dir.join("journal.ecj")).expect("reference journal reads");
    assert!(full.tail_defect.is_none(), "reference journal must end cleanly");
    let first_commit = full
        .records
        .iter()
        .position(|r| matches!(r, Record::Commit { .. }))
        .expect("reference run committed at least one batch");
    let n = full.offsets.len();
    let mut ends: Vec<u64> = full.offsets[1..].to_vec();
    ends.push(full.valid_len);

    let mut rng = SplitMix64::new(harness.seed ^ 0xEC0C);
    let mut rows = Vec::new();
    for torn in [false, true] {
        for _ in 0..crashes_per_mode {
            // A record index in the serving region; clean kills cut at
            // its end (a tick boundary), torn kills cut inside it (a
            // crash mid-commit-write).
            let k = first_commit + (rng.next_u64() as usize) % (n - first_commit);
            let (cut, surviving) = if torn {
                let frame = ends[k] - full.offsets[k];
                (full.offsets[k] + 1 + rng.next_u64() % (frame - 1), k)
            } else {
                (ends[k], k + 1)
            };
            for &threads in thread_counts {
                let dir = bench_dir(&format!("crash-{torn}-{k}-{threads}"));
                copy_dir(&ref_dir, &dir);
                let file =
                    fs::OpenOptions::new().write(true).open(dir.join("journal.ecj")).unwrap();
                file.set_len(cut).unwrap();
                drop(file);
                let (identical, from_snapshot, events_replayed, recover_s, resume_s) =
                    recover_and_check(&env, harness, &trips, &ref_trail, &dir, threads);
                rows.push(RecoveryRow {
                    sessions,
                    threads,
                    surviving_records: surviving,
                    torn,
                    from_snapshot,
                    events_replayed,
                    recover_s,
                    resume_s,
                    identical,
                });
                let _ = fs::remove_dir_all(&dir);
            }
        }
    }
    let _ = fs::remove_dir_all(&ref_dir);
    rows
}

/// The deterministic chaos soak: every injected fault must be contained
/// (typed error + quarantine + read-only serving where promised) and
/// must leave a journal recovery still restores bit-exactly.
#[must_use]
pub fn run_recovery_chaos(harness: &HarnessConfig, sessions: usize) -> Vec<ChaosRow> {
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, harness.scale, harness.seed);
    let trips = session_trips(&env, sessions);
    let ref_dir = bench_dir("chaos-reference");
    let reference = reference_run(&env, harness, &trips, &ref_dir, None, ServiceChaos::default())
        .expect("reference run serves cleanly");
    let ref_trail = trail(&reference);
    drop(reference);
    let mut rows = Vec::new();

    // 1. Journal-append failure mid-serving: the sink dies at a fixed
    // record; the service must quarantine (JRN-007) and the durable
    // prefix must recover.
    {
        let dir = bench_dir("chaos-sink");
        let sink = SinkChaos { seed: harness.seed, fail_rate: 0.0, fail_from_record: Some(8) };
        let outcome =
            reference_run(&env, harness, &trips, &dir, Some(sink), ServiceChaos::default());
        let contained = matches!(outcome, Err(ref e) if e.code() == "SES-002");
        let (identical, ..) = recover_and_check(&env, harness, &trips, &ref_trail, &dir, 4);
        rows.push(ChaosRow {
            scenario: "journal append failure",
            contained,
            recovered_identical: identical,
        });
        let _ = fs::remove_dir_all(&dir);
    }

    // 2. Intermittent sink failures: a 30% drop rate — the very first
    // refused append must quarantine; nothing may be half-journaled.
    {
        let dir = bench_dir("chaos-flaky");
        let sink =
            SinkChaos { seed: harness.seed ^ 0xF1A6, fail_rate: 0.3, fail_from_record: None };
        let outcome =
            reference_run(&env, harness, &trips, &dir, Some(sink), ServiceChaos::default());
        let contained = outcome.is_err();
        let (identical, ..) = recover_and_check(&env, harness, &trips, &ref_trail, &dir, 1);
        rows.push(ChaosRow {
            scenario: "intermittent sink failures",
            contained,
            recovered_identical: identical,
        });
        let _ = fs::remove_dir_all(&dir);
    }

    // 3. Worker panic mid-batch: the panic must not unwind out of
    // tick(); the batch is shed, the service quarantined, and the
    // journal (which committed everything *before* the poisoned batch)
    // must recover.
    {
        let dir = bench_dir("chaos-panic");
        let chaos = ServiceChaos { panic_at_event: Some(10) };
        let outcome = reference_run(&env, harness, &trips, &dir, None, chaos);
        let contained = matches!(outcome, Err(ref e) if e.code() == "SES-004");
        let (identical, ..) = recover_and_check(&env, harness, &trips, &ref_trail, &dir, 4);
        rows.push(ChaosRow {
            scenario: "worker panic mid-batch",
            contained,
            recovered_identical: identical,
        });
        let _ = fs::remove_dir_all(&dir);
    }

    // 4. Snapshot corruption: flip a byte in every snapshot of a clean
    // journal dir; recovery must skip them all (JRN-008) and fall back
    // to full-log replay without losing identity.
    {
        let dir = bench_dir("chaos-snapcorrupt");
        copy_dir(&ref_dir, &dir);
        let mut contained = true;
        for entry in fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "ecsnap") {
                let mut bytes = fs::read(&p).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xFF;
                fs::write(&p, bytes).unwrap();
            }
        }
        let server = InfoServer::from_sims(env.sims.clone());
        let ctx = ctx_for(&env, harness, &server, 1);
        let identical = match recover(
            &ctx,
            service_config(1, ServiceChaos::default()),
            JournalConfig::new(dir.clone()),
        ) {
            Ok((svc, report)) => {
                contained = report.snapshot_watermark.is_none()
                    && report.snapshots_skipped.iter().all(|(_, e)| e.code() == "JRN-008");
                suffix_identical(&ref_trail, &svc)
            }
            Err(e) => {
                eprintln!("snapshot-corruption recovery failed: {e}");
                false
            }
        };
        rows.push(ChaosRow {
            scenario: "snapshot corruption",
            contained,
            recovered_identical: identical,
        });
        let _ = fs::remove_dir_all(&dir);
    }

    // 5. Quarantine degradation contract: after a worker panic the
    // service keeps answering reads and refuses mutations typed.
    {
        let dir = bench_dir("chaos-quarantine");
        let server = InfoServer::from_sims(env.sims.clone());
        let ctx = ctx_for(&env, harness, &server, 1);
        let journal = JournalConfig::new(dir.clone());
        let mut svc = SessionService::with_journal(
            service_config(1, ServiceChaos { panic_at_event: Some(0) }),
            journal,
        )
        .unwrap();
        for trip in &trips {
            svc.register(&ctx, trip).unwrap();
        }
        let erred = svc.run_to_completion(&ctx).is_err();
        let quarantined = svc.health() == ServiceHealth::Quarantined { cause: "SES-004" };
        let reads_ok = svc.sessions().count() == trips.len() && svc.stats().sessions_shed > 0;
        let mutations_refused = svc.tick(&ctx).is_err() && svc.register(&ctx, &trips[0]).is_err();
        rows.push(ChaosRow {
            scenario: "quarantine read-only serving",
            contained: erred && quarantined && reads_ok && mutations_refused,
            recovered_identical: true, // no recovery leg in this scenario
        });
        let _ = fs::remove_dir_all(&dir);
    }

    let _ = fs::remove_dir_all(&ref_dir);
    rows
}

/// Write both sweeps as `BENCH_recovery.json`.
pub fn write_recovery_json(
    path: &Path,
    rows: &[RecoveryRow],
    chaos: &[ChaosRow],
) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"series\": \"recovery\",")?;
    writeln!(f, "  \"dataset\": \"Oldenburg\",")?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"sessions\": {}, \"threads\": {}, \"surviving_records\": {}, \
             \"torn\": {}, \"from_snapshot\": {}, \"events_replayed\": {}, \
             \"recover_s\": {:.4}, \"resume_s\": {:.4}, \"identical\": {}}}{sep}",
            r.sessions,
            r.threads,
            r.surviving_records,
            r.torn,
            r.from_snapshot,
            r.events_replayed,
            r.recover_s,
            r.resume_s,
            r.identical
        )?;
    }
    writeln!(f, "  ],")?;
    writeln!(f, "  \"chaos\": [")?;
    for (i, c) in chaos.iter().enumerate() {
        let sep = if i + 1 < chaos.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"scenario\": \"{}\", \"contained\": {}, \"recovered_identical\": {}}}{sep}",
            c.scenario, c.contained, c.recovered_identical
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajgen::DatasetScale;

    #[test]
    fn tiny_recovery_sweep_is_identical() {
        let harness =
            HarnessConfig { scale: DatasetScale::smoke(), seed: 7, ..HarnessConfig::default() };
        let rows = run_recovery(&harness, 4, &[1, 2], 1);
        assert_eq!(rows.len(), 4, "{rows:?}");
        assert!(rows.iter().all(|r| r.identical), "{rows:?}");
        assert!(rows.iter().any(|r| r.torn) && rows.iter().any(|r| !r.torn));
    }

    #[test]
    fn tiny_chaos_soak_is_contained() {
        let harness =
            HarnessConfig { scale: DatasetScale::smoke(), seed: 7, ..HarnessConfig::default() };
        let rows = run_recovery_chaos(&harness, 4);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.contained, "{}: fault escaped containment", r.scenario);
            assert!(r.recovered_identical, "{}: recovery diverged", r.scenario);
        }
    }

    #[test]
    fn json_writer_emits_rows_and_chaos() {
        let rows = vec![RecoveryRow {
            sessions: 4,
            threads: 2,
            surviving_records: 9,
            torn: true,
            from_snapshot: true,
            events_replayed: 12,
            recover_s: 0.1,
            resume_s: 0.2,
            identical: true,
        }];
        let chaos = vec![ChaosRow {
            scenario: "journal append failure",
            contained: true,
            recovered_identical: true,
        }];
        let dir = std::env::temp_dir().join("ecocharge_recovery_json_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_recovery.json");
        write_recovery_json(&path, &rows, &chaos).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"torn\": true"));
        assert!(text.contains("\"scenario\": \"journal append failure\""));
        fs::remove_dir_all(&dir).ok();
    }
}
