//! Plain-text and CSV rendering of experiment tables.

use crate::figures::Row;
use std::io::Write as _;
use std::path::Path;

/// Write rows as CSV (for plotting), one file per figure.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_csv(path: &Path, rows: &[Row]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "dataset,config,sc_pct,sc_std,ft_ms,ft_std,attained_l,attained_a,attained_dc,tables"
    )?;
    for r in rows {
        writeln!(
            f,
            "{},{},{:.4},{:.4},{:.6},{:.6},{:.4},{:.4},{:.4},{}",
            r.dataset,
            r.label,
            r.sc_pct,
            r.sc_std,
            r.ft_ms,
            r.ft_std,
            r.attained.0,
            r.attained.1,
            r.attained.2,
            r.tables
        )?;
    }
    Ok(())
}

/// Print rows grouped by dataset, in the column layout used by
/// EXPERIMENTS.md.
pub fn print_rows(title: &str, rows: &[Row], show_attained: bool) {
    println!("\n=== {title} ===");
    if show_attained {
        println!(
            "{:<12} {:<16} {:>8} {:>7} {:>9} {:>8} {:>7} {:>7} {:>7} {:>7}",
            "dataset", "config", "SC%", "±", "Ft(ms)", "±", "L*", "A*", "1-D*", "tables"
        );
    } else {
        println!(
            "{:<12} {:<16} {:>8} {:>7} {:>9} {:>8} {:>7}",
            "dataset", "method", "SC%", "±", "Ft(ms)", "±", "tables"
        );
    }
    let mut last_ds = "";
    for r in rows {
        if r.dataset != last_ds && !last_ds.is_empty() {
            println!();
        }
        last_ds = r.dataset;
        if show_attained {
            println!(
                "{:<12} {:<16} {:>8.2} {:>7.2} {:>9.3} {:>8.3} {:>7.3} {:>7.3} {:>7.3} {:>7}",
                r.dataset,
                r.label,
                r.sc_pct,
                r.sc_std,
                r.ft_ms,
                r.ft_std,
                r.attained.0,
                r.attained.1,
                r.attained.2,
                r.tables
            );
        } else {
            println!(
                "{:<12} {:<16} {:>8.2} {:>7.2} {:>9.3} {:>8.3} {:>7}",
                r.dataset, r.label, r.sc_pct, r.sc_std, r.ft_ms, r.ft_std, r.tables
            );
        }
    }
}
