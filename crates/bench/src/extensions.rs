//! Beyond-the-paper experiment series (see DESIGN.md §4 and
//! EXPERIMENTS.md "Extensions"):
//!
//! * [`run_regret`] — re-referee the Figure-6 methods under the
//!   ground-truth ([`ScoringBasis::Actual`]) oracle: how much real-world
//!   quality does forecast-driven ranking give up? (The paper's protocol
//!   cannot ask this; our simulators can.)
//! * [`run_cache`] — the Dynamic-Caching ablation the paper describes
//!   qualitatively in §IV-C: caching on vs off, with the EIS upstream
//!   API-call counts that motivate the design.
//! * [`run_modes`] — the three operating modes' end-to-end refresh
//!   latency, combining the measured ranking time with the §IV cost
//!   model.
//! * [`run_balance`] — the §VII future-work item: a burst of vehicles
//!   querying the same region, with and without recommendation-traffic
//!   balancing;
//! * [`run_throughput`] — Mode-2 server throughput under concurrent
//!   client load;
//! * [`run_dayrun`] — the closed-loop fleet day (see the `fleetsim`
//!   crate): policies compared on physically harvested clean energy.

use crate::env::ExperimentEnv;
use crate::figures::HarnessConfig;
use ecocharge_core::{
    evaluate_method, BalancedEcoCharge, EcoCharge, EcoChargeConfig, LoadTracker, Oracle,
    RankingMethod, ScoringBasis, Weights,
};
use eis::Mode;
use trajgen::DatasetKind;

/// One row of the regret table.
#[derive(Debug, Clone)]
pub struct RegretRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// `SC %` under the paper's forecast-basis referee.
    pub forecast_sc_pct: f64,
    /// `SC %` under the ground-truth referee (vs the clairvoyant optimum).
    pub actual_sc_pct: f64,
}

/// Extension: ground-truth regret of forecast-driven ranking.
#[must_use]
pub fn run_regret(harness: &HarnessConfig) -> Vec<RegretRow> {
    DatasetKind::ALL
        .iter()
        .map(|&kind| {
            let env = ExperimentEnv::build(kind, harness.scale, harness.seed);
            let config = EcoChargeConfig {
                threads: harness.threads,
                detour_backend: harness.detour_backend,
                ..EcoChargeConfig::default()
            };
            let ctx = env.ctx(config);
            let trips = env.trips_for_rep(0, harness.trips_per_rep * harness.reps);
            let mut forecast_ref = Oracle::with_basis(Weights::awe(), ScoringBasis::Forecast);
            let mut actual_ref = Oracle::with_basis(Weights::awe(), ScoringBasis::Actual);
            let mut eco = EcoCharge::new();
            let f = evaluate_method(&ctx, &trips, &mut eco, &mut forecast_ref)
                .expect("evaluation runs");
            let mut eco2 = EcoCharge::new();
            let a =
                evaluate_method(&ctx, &trips, &mut eco2, &mut actual_ref).expect("evaluation runs");
            RegretRow {
                dataset: kind.name(),
                forecast_sc_pct: f.mean_sc_pct,
                actual_sc_pct: a.mean_sc_pct,
            }
        })
        .collect()
}

/// One row of the caching-ablation table.
#[derive(Debug, Clone)]
pub struct CacheRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Configuration label.
    pub label: &'static str,
    /// Mean `SC %`.
    pub sc_pct: f64,
    /// Mean `F_t`, ms.
    pub ft_ms: f64,
    /// Upstream provider calls made during the run.
    pub upstream_calls: u64,
    /// EIS cache hits during the run.
    pub cache_hits: u64,
    /// Dynamic-cache adaptations (EcoCharge-side).
    pub adaptations: u64,
}

/// Extension: Dynamic Caching on/off, with API-call accounting.
///
/// Two passes per cell: the first referees quality and cost
/// (`evaluate_method`, whose oracle also talks to the information server),
/// the second re-drives the same trips on a **fresh** environment with no
/// referee at all, so the upstream-call and cache-hit counters reflect the
/// method's own traffic only.
#[must_use]
pub fn run_cache(harness: &HarnessConfig) -> Vec<CacheRow> {
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        for (label, range_km) in [("Q=0 (off)", 0.0), ("Q=5km (on)", 5.0)] {
            let config = EcoChargeConfig {
                range_km,
                threads: harness.threads,
                detour_backend: harness.detour_backend,
                ..EcoChargeConfig::default()
            };

            // Pass 1: refereed quality/cost.
            let env = ExperimentEnv::build(kind, harness.scale, harness.seed);
            let ctx = env.ctx(config);
            let trips = env.trips_for_rep(0, harness.trips_per_rep * harness.reps);
            let mut oracle = Oracle::new(Weights::awe());
            let mut eco = EcoCharge::new();
            let out =
                evaluate_method(&ctx, &trips, &mut eco, &mut oracle).expect("evaluation runs");

            // Pass 2: clean API accounting on an untouched server.
            let env2 = ExperimentEnv::build(kind, harness.scale, harness.seed);
            let ctx2 = env2.ctx(config);
            let mut eco2 = EcoCharge::new();
            for trip in &trips {
                let query = ecocharge_core::CknnQuery::new(&ctx2, trip).expect("valid trip");
                let _ = query.run(&ctx2, trip, &mut eco2);
            }
            let (w, a, t, wind) = env2.server.stats().snapshot();
            let (hits, _) = env2.server.cache_stats();

            rows.push(CacheRow {
                dataset: kind.name(),
                label,
                sc_pct: out.mean_sc_pct,
                ft_ms: out.mean_ft_ms,
                upstream_calls: w + a + t + wind,
                cache_hits: hits,
                adaptations: eco2.cache_stats().0,
            });
        }
    }
    rows
}

/// One row of the mode-latency table.
#[derive(Debug, Clone)]
pub struct ModeRow {
    /// Operating mode.
    pub mode: Mode,
    /// End-to-end refresh latency with cold provider data, ms.
    pub cold_ms: f64,
    /// End-to-end refresh latency with warm provider data, ms.
    pub warm_ms: f64,
}

/// Extension: the §IV mode cost model fed with the measured ranking time.
///
/// Returns the measured mean ranking time and the per-mode latencies.
#[must_use]
pub fn run_modes(harness: &HarnessConfig) -> (f64, Vec<ModeRow>) {
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, harness.scale, harness.seed);
    let config = EcoChargeConfig {
        threads: harness.threads,
        detour_backend: harness.detour_backend,
        ..EcoChargeConfig::default()
    };
    let ctx = env.ctx(config);
    let trips = env.trips_for_rep(0, harness.trips_per_rep);
    let mut oracle = Oracle::new(Weights::awe());
    let mut eco = EcoCharge::new();
    let out = evaluate_method(&ctx, &trips, &mut eco, &mut oracle).expect("evaluation runs");
    let compute_ms = out.mean_ft_ms;
    let rows = Mode::ALL
        .iter()
        .map(|&mode| ModeRow {
            mode,
            cold_ms: mode.costs().refresh_latency_ms(compute_ms, false),
            warm_ms: mode.costs().refresh_latency_ms(compute_ms, true),
        })
        .collect();
    (compute_ms, rows)
}

/// One row of the balance experiment.
#[derive(Debug, Clone)]
pub struct BalanceRow {
    /// Method label.
    pub label: &'static str,
    /// Vehicles served.
    pub vehicles: usize,
    /// Largest number of vehicles steered to one charger.
    pub max_load: u32,
    /// Number of distinct chargers recommended as the top offer.
    pub distinct_tops: usize,
    /// Mean `SC %` of the produced tables (forecast-basis referee).
    pub sc_pct: f64,
}

/// Extension: a burst of `vehicles` concurrent drivers in one city, with
/// and without recommendation-traffic balancing.
#[must_use]
pub fn run_balance(harness: &HarnessConfig, vehicles: usize) -> Vec<BalanceRow> {
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, harness.scale, harness.seed);
    let config = EcoChargeConfig {
        threads: harness.threads,
        detour_backend: harness.detour_backend,
        ..EcoChargeConfig::default()
    };
    let ctx = env.ctx(config);
    let trips = env.trips_for_rep(0, vehicles);
    let mut oracle = Oracle::new(Weights::awe());

    let mut run = |method: &mut dyn RankingMethod,
                   loads: Option<&LoadTracker>,
                   label: &'static str| {
        if let Some(l) = loads {
            l.clear();
        }
        let mut tops = Vec::new();
        let mut sc_pcts = Vec::new();
        for trip in &trips {
            method.reset_trip();
            // Every vehicle asks once, at its own departure point.
            let Ok(table) = method.offering_table(&ctx, trip, 0.0, trip.depart) else {
                continue;
            };
            let node = trip.route.nearest_node_at(0.0);
            let rejoin =
                trip.route.nearest_node_at((ctx.config.segment_km * 1_000.0).min(trip.length_m()));
            if let Some(best) = table.best() {
                tops.push(best.charger);
            }
            let (_, best_mean) = oracle.best_k(&ctx, node, rejoin, trip.depart, ctx.config.k);
            if let Some(mean) =
                oracle.true_sc_of_set(&ctx, &table.charger_ids(), node, rejoin, trip.depart)
            {
                if best_mean > 1e-12 {
                    sc_pcts.push((mean / best_mean * 100.0).min(100.0));
                }
            }
        }
        let mut counts: std::collections::HashMap<_, u32> = std::collections::HashMap::new();
        for t in &tops {
            *counts.entry(*t).or_insert(0) += 1;
        }
        BalanceRow {
            label,
            vehicles: tops.len(),
            max_load: counts.values().copied().max().unwrap_or(0),
            distinct_tops: counts.len(),
            sc_pct: sc_pcts.iter().sum::<f64>() / sc_pcts.len().max(1) as f64,
        }
    };

    let mut plain = EcoCharge::new();
    let plain_row = run(&mut plain, None, "EcoCharge");
    let loads = LoadTracker::new();
    let mut balanced = BalancedEcoCharge::new(loads.clone());
    balanced.auto_claim = true;
    let balanced_row = run(&mut balanced, Some(&loads), "EcoCharge+LB");
    vec![plain_row, balanced_row]
}

/// One row of the Mode-2 throughput experiment.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Concurrent client threads.
    pub clients: usize,
    /// Server worker threads draining the request bus.
    pub workers: usize,
    /// Total requests served.
    pub requests: usize,
    /// Offering Tables per second (server-side).
    pub tables_per_s: f64,
    /// Mean client-observed latency, ms.
    pub mean_latency_ms: f64,
}

/// Extension: Mode-2 server throughput — many vehicle clients hammering
/// a central worker pool (`harness.threads` ranking workers draining one
/// request bus; each worker owns its private method state).
#[must_use]
pub fn run_throughput(
    harness: &HarnessConfig,
    client_counts: &[usize],
    per_client: usize,
) -> Vec<ThroughputRow> {
    use eis::rpc::ServiceBus;
    use std::sync::Arc;

    let workers = harness.threads.max(1);
    client_counts
        .iter()
        .map(|&clients| {
            // Fresh world per cell, shared read-only by the worker pool;
            // each worker gets its own EcoCharge (per-trip caches stay
            // private to one worker).
            let seed = harness.seed;
            let scale = harness.scale;
            let backend = harness.detour_backend;
            let env = Arc::new(ExperimentEnv::build(DatasetKind::Oldenburg, scale, seed));
            let (client, _bus) = ServiceBus::spawn_pool(workers, |_w| {
                let env = Arc::clone(&env);
                let mut method = EcoCharge::new();
                move |(trip_idx, offset_m): (usize, f64)| {
                    let ctx = env.ctx(EcoChargeConfig {
                        detour_backend: backend,
                        ..EcoChargeConfig::default()
                    });
                    let trip = &env.dataset.trips[trip_idx % env.dataset.trips.len()];
                    let now = trip.eta_at_offset(&env.dataset.graph, offset_m);
                    // Interleaved vehicles defeat the per-trip cache;
                    // serve each request as a full solve.
                    method.reset_trip();
                    method.offering_table(&ctx, trip, offset_m, now).map(|t| t.len()).unwrap_or(0)
                }
            });

            let started = std::time::Instant::now();
            let latency_ns = Arc::new(std::sync::atomic::AtomicU64::new(0));
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let client = client.clone();
                    let latency_ns = latency_ns.clone();
                    std::thread::spawn(move || {
                        for r in 0..per_client {
                            let t0 = std::time::Instant::now();
                            let _ = client.call((c * 31 + r, (r % 4) as f64 * 4_000.0));
                            latency_ns.fetch_add(
                                t0.elapsed().as_nanos() as u64,
                                std::sync::atomic::Ordering::Relaxed,
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                let _ = h.join();
            }
            let wall_s = started.elapsed().as_secs_f64();
            let requests = clients * per_client;
            ThroughputRow {
                clients,
                workers,
                requests,
                tables_per_s: requests as f64 / wall_s,
                mean_latency_ms: latency_ns.load(std::sync::atomic::Ordering::Relaxed) as f64
                    / 1.0e6
                    / requests as f64,
            }
        })
        .collect()
}

/// Extension: the closed-loop fleet day (see the `fleetsim` crate) — one
/// simulated Tuesday per policy on the identical world.
#[must_use]
pub fn run_dayrun(harness: &HarnessConfig, vehicles: usize) -> Vec<fleetsim::DayOutcome> {
    use fleetsim::{simulate_day, FleetSimConfig, Policy, ScheduleParams};
    let env = ExperimentEnv::build(DatasetKind::Oldenburg, harness.scale, harness.seed);
    let config = FleetSimConfig {
        schedule: ScheduleParams { vehicles, seed: harness.seed, ..Default::default() },
        ecocharge: EcoChargeConfig {
            threads: harness.threads,
            detour_backend: harness.detour_backend,
            ..EcoChargeConfig::default()
        },
        charger_count: 300,
        seed: harness.seed,
        ..Default::default()
    };
    let mut policies = [Policy::ecocharge(), Policy::Nearest, Policy::random(harness.seed ^ 0xDA7)];
    policies.iter_mut().map(|p| simulate_day(&env.dataset.graph, p, &config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trajgen::DatasetScale;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            scale: DatasetScale::smoke(),
            reps: 1,
            trips_per_rep: 2,
            seed: 7,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn regret_shows_nonnegative_gap() {
        let rows = run_regret(&tiny());
        assert_eq!(rows.len(), 4);
        for r in rows {
            // Under the clairvoyant referee the method cannot look better
            // than under the aligned forecast referee (modulo small
            // sampling noise on tiny runs).
            assert!(r.actual_sc_pct <= r.forecast_sc_pct + 5.0, "{r:?}");
            assert!(r.forecast_sc_pct > 80.0, "{r:?}");
        }
    }

    #[test]
    fn cache_ablation_accounts_calls() {
        let rows = run_cache(&tiny());
        assert_eq!(rows.len(), 8);
        for pair in rows.chunks(2) {
            let (off, on) = (&pair[0], &pair[1]);
            assert_eq!(off.dataset, on.dataset);
            assert_eq!(off.adaptations, 0, "Q=0 must never adapt");
            assert!(on.adaptations > 0, "Q=5 must adapt on multi-segment trips");
        }
    }

    #[test]
    fn mode_table_has_three_rows() {
        let (compute_ms, rows) = run_modes(&tiny());
        assert!(compute_ms > 0.0);
        assert_eq!(rows.len(), 3);
        for r in rows {
            assert!(r.cold_ms >= r.warm_ms);
        }
    }

    #[test]
    fn dayrun_compares_three_policies() {
        let rows = run_dayrun(&tiny(), 10);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].policy, "EcoCharge");
        assert_eq!(rows[1].policy, "Nearest");
        for r in &rows {
            assert_eq!(r.vehicles, 10);
        }
        assert!(
            rows[0].clean_fraction() >= rows[1].clean_fraction(),
            "EcoCharge must not lose to Nearest on solar fraction: {rows:?}"
        );
    }

    #[test]
    fn throughput_serves_all_requests() {
        let rows = run_throughput(&tiny(), &[1, 2], 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.requests, r.clients * 3);
            assert!(r.tables_per_s > 0.0);
            assert!(r.mean_latency_ms > 0.0);
        }
        // More clients cannot reduce the request count served.
        assert!(rows[1].requests > rows[0].requests);
    }

    #[test]
    fn throughput_pool_serves_all_requests() {
        // Multi-worker Mode-2 pool: every request still answered exactly
        // once even with more workers than clients.
        let harness = HarnessConfig { threads: 2, ..tiny() };
        let rows = run_throughput(&harness, &[1, 3], 4);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.workers, 2);
            assert_eq!(r.requests, r.clients * 4);
            assert!(r.tables_per_s > 0.0);
        }
    }

    #[test]
    fn balance_reduces_concentration() {
        let rows = run_balance(&tiny(), 8);
        assert_eq!(rows.len(), 2);
        let (plain, balanced) = (&rows[0], &rows[1]);
        assert!(balanced.max_load <= plain.max_load, "{rows:?}");
        assert!(balanced.distinct_tops >= plain.distinct_tops, "{rows:?}");
    }
}
