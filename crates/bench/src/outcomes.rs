//! `repro outcomes` — realized-outcome benchmark for the closed loop.
//!
//! Every other series in this harness scores the serving stack on its own
//! predictions. This one scores it on what a simulated world *delivered*:
//! each `(policy, fleet, intensity)` cell runs a full closed-loop day
//! through [`ecocharge_outcomes::run_outcomes`] — stochastic background
//! occupancy, FIFO queues, arrival-discovery, observed-full feedback —
//! and records the realized wait, strand rate, queue depth, detour
//! energy, and realized-vs-predicted clean-energy error.
//!
//! Three gate families (all enforced by [`outcomes_gate_failures`]; the
//! `repro` binary exits non-zero when any fires):
//!
//! 1. **determinism** — every cell's ledger digest is bit-identical
//!    across solver thread counts 1/4/8 *and* across session registration
//!    order;
//! 2. **value of information** — at the highest demand intensity, every
//!    Offering-Table policy strictly beats the [`NearestBaseline`] on
//!    both strand rate and mean wait (pooled over fleet sizes);
//! 3. **re-query dominance** — [`ReQueryOnFull`] never strands more
//!    drivers than [`CommitTop1`] on any cell: learning at the curb and
//!    re-ranking must not be worse than stubbornly waiting.
//!
//! Plus a feedback probe on the hottest cell: the same run with the
//! observation feed detached must realize a *different* outcome digest
//! once a full charger has been observed — proof the corrections flow
//! all the way back into the tables the drivers act on.

use crate::HarnessConfig;
use chargers::{synth_fleet, FleetParams};
use ecocharge_outcomes::{
    run_outcomes, CommitTop1, DriverPolicy, HedgeTopK, NearestBaseline, OutcomeConfig,
    ReQueryOnFull,
};
use eis::SimProviders;
use roadnet::{urban_grid, UrbanGridParams};
use std::io::Write as _;
use std::path::Path;

/// Charger-fleet size for the outcome world. Deliberately small relative
/// to the vehicle fleets: contention is the phenomenon under test.
const CHARGERS: usize = 6;

/// Solver thread counts every cell must be bit-identical across.
const THREAD_AXIS: [usize; 3] = [1, 4, 8];

/// One `(policy, vehicles, intensity)` cell of the sweep.
#[derive(Debug, Clone)]
pub struct OutcomesRow {
    /// Driver policy name.
    pub policy: &'static str,
    /// Vehicles following day schedules.
    pub vehicles: usize,
    /// Background demand-intensity multiplier.
    pub intensity: f64,
    /// Whether the observation feedback loop was attached.
    pub feedback: bool,
    /// Charge attempts started.
    pub attempts: u64,
    /// Attempts that ended plugged in.
    pub charges: u64,
    /// Attempts that ended the day uncharged.
    pub strands: u64,
    /// Attempts that spent time in a line.
    pub waits: u64,
    /// Arrivals that refused a hopeless line.
    pub balks: u64,
    /// Drives to a kept alternative after an observed-full charger.
    pub diversions: u64,
    /// En-route re-ranks after an observed-full charger.
    pub re_queries: u64,
    /// Waits abandoned at the patience limit.
    pub timeouts: u64,
    /// Mean wait per attempt, seconds.
    pub mean_wait_s: f64,
    /// Fraction of attempts stranded.
    pub strand_rate: f64,
    /// Mean line length observed at fleet arrivals.
    pub mean_queue_len: f64,
    /// Total out-and-back detour energy, kWh.
    pub detour_kwh: f64,
    /// Mean |realized − predicted| clean energy per table-backed charge.
    pub ec_mae_kwh: f64,
    /// Clean energy actually harvested, kWh.
    pub clean_kwh: f64,
    /// Grid energy topped up, kWh.
    pub grid_kwh: f64,
    /// Bit-exact ledger digest of the reference (1-thread) run.
    pub digest: u64,
    /// Digest identical across [`THREAD_AXIS`] and reversed registration.
    pub identical: bool,
    /// Whether a full charger was ever observed this cell.
    pub observed_full: bool,
}

/// The feedback on/off probe on the hottest cell.
#[derive(Debug, Clone)]
pub struct FeedbackProbe {
    /// Policy the probe ran.
    pub policy: &'static str,
    /// Vehicles in the probe cell.
    pub vehicles: usize,
    /// Demand intensity of the probe cell.
    pub intensity: f64,
    /// Ledger digest with the observation feed attached.
    pub digest_on: u64,
    /// Ledger digest with the feed detached.
    pub digest_off: u64,
    /// Whether the feedback run observed a full charger (the premise).
    pub observed_full: bool,
    /// `digest_on != digest_off` — corrections changed realized outcomes.
    pub diverged: bool,
}

/// Everything `repro outcomes` measured.
#[derive(Debug, Clone)]
pub struct OutcomesReport {
    /// World label.
    pub world: String,
    /// Chargers in the world.
    pub chargers: usize,
    /// The sweep, policy-major.
    pub rows: Vec<OutcomesRow>,
    /// Feedback on/off probe.
    pub feedback: FeedbackProbe,
}

/// The policy roster every cell sweeps, table policies first.
fn policies() -> [&'static dyn DriverPolicy; 4] {
    [&NearestBaseline, &CommitTop1, &HedgeTopK, &ReQueryOnFull]
}

/// Run the realized-outcome sweep: `policies x fleets x intensities`,
/// with a 4-run determinism matrix (threads 1/4/8 + reversed
/// registration) behind every cell.
#[must_use]
pub fn run_outcomes_series(
    harness: &HarnessConfig,
    fleets: &[usize],
    intensities: &[f64],
) -> OutcomesReport {
    let g = urban_grid(&UrbanGridParams { cols: 12, rows: 12, ..Default::default() });
    let fleet =
        synth_fleet(&g, &FleetParams { count: CHARGERS, seed: harness.seed, ..Default::default() });
    let sims = SimProviders::new(harness.seed);

    let mut rows = Vec::new();
    for policy in policies() {
        for &vehicles in fleets {
            for &intensity in intensities {
                let mut cfg = OutcomeConfig {
                    vehicles,
                    intensity,
                    seed: harness.seed,
                    ..OutcomeConfig::default()
                };
                cfg.ecocharge.detour_backend = harness.detour_backend;
                cfg.ecocharge.threads = THREAD_AXIS[0];
                let base = run_outcomes(&g, &fleet, &sims, policy, &cfg);

                let mut identical = true;
                for &threads in &THREAD_AXIS[1..] {
                    let mut c = cfg.clone();
                    c.ecocharge.threads = threads;
                    identical &= run_outcomes(&g, &fleet, &sims, policy, &c).digest == base.digest;
                }
                let reversed = OutcomeConfig { reverse_registration: true, ..cfg.clone() };
                identical &=
                    run_outcomes(&g, &fleet, &sims, policy, &reversed).digest == base.digest;

                let s = base.stats;
                rows.push(OutcomesRow {
                    policy: base.policy,
                    vehicles,
                    intensity,
                    feedback: base.feedback,
                    attempts: s.attempts,
                    charges: s.charges,
                    strands: s.strands,
                    waits: s.waits,
                    balks: s.balks,
                    diversions: s.diversions,
                    re_queries: s.re_queries,
                    timeouts: s.timeouts,
                    mean_wait_s: base.mean_wait_s,
                    strand_rate: base.strand_rate,
                    mean_queue_len: base.mean_queue_len,
                    detour_kwh: base.detour_kwh,
                    ec_mae_kwh: base.ec_mae_kwh,
                    clean_kwh: base.clean_kwh,
                    grid_kwh: base.grid_kwh,
                    digest: base.digest,
                    identical,
                    observed_full: base.first_full_observation.is_some(),
                });
            }
        }
    }

    // Feedback probe: hottest cell (largest fleet, highest intensity),
    // the policy that exercises the loop hardest.
    let vehicles = fleets.iter().copied().max().unwrap_or(16);
    let intensity = intensities.iter().copied().fold(0.0_f64, f64::max);
    let mut cfg =
        OutcomeConfig { vehicles, intensity, seed: harness.seed, ..OutcomeConfig::default() };
    cfg.ecocharge.detour_backend = harness.detour_backend;
    let on = run_outcomes(&g, &fleet, &sims, &ReQueryOnFull, &cfg);
    let off =
        run_outcomes(&g, &fleet, &sims, &ReQueryOnFull, &OutcomeConfig { feedback: false, ..cfg });
    let feedback = FeedbackProbe {
        policy: on.policy,
        vehicles,
        intensity,
        digest_on: on.digest,
        digest_off: off.digest,
        observed_full: on.first_full_observation.is_some(),
        diverged: on.digest != off.digest,
    };

    OutcomesReport { world: "urban-grid-12x12".to_string(), chargers: CHARGERS, rows, feedback }
}

/// Pooled (attempt-weighted) strand rate and mean wait for one policy at
/// one intensity, across fleet sizes.
fn pooled(rows: &[OutcomesRow], policy: &str, intensity: f64) -> Option<(f64, f64)> {
    let cells: Vec<&OutcomesRow> =
        rows.iter().filter(|r| r.policy == policy && r.intensity == intensity).collect();
    let attempts: u64 = cells.iter().map(|r| r.attempts).sum();
    if attempts == 0 {
        return None;
    }
    let strands: u64 = cells.iter().map(|r| r.strands).sum();
    let wait: f64 = cells.iter().map(|r| r.mean_wait_s * r.attempts as f64).sum();
    Some((strands as f64 / attempts as f64, wait / attempts as f64))
}

/// Every gate violation in the report (empty = pass).
#[must_use]
pub fn outcomes_gate_failures(report: &OutcomesReport) -> Vec<String> {
    let mut failures = Vec::new();
    let rows = &report.rows;

    // Gate 1: determinism per cell.
    for r in rows {
        if !r.identical {
            failures.push(format!(
                "cell ({}, {} vehicles, intensity {}) diverged across threads or \
                 registration order",
                r.policy, r.vehicles, r.intensity
            ));
        }
    }

    // Gate 2: at the highest intensity, table policies strictly beat
    // Nearest on strand rate AND mean wait (pooled over fleet sizes).
    let max_intensity = rows.iter().map(|r| r.intensity).fold(f64::NEG_INFINITY, f64::max);
    if let Some((near_strand, near_wait)) = pooled(rows, "Nearest", max_intensity) {
        for policy in ["CommitTop1", "HedgeTopK", "ReQueryOnFull"] {
            match pooled(rows, policy, max_intensity) {
                Some((strand, wait)) => {
                    if strand >= near_strand {
                        failures.push(format!(
                            "{policy} strand rate {strand:.4} does not beat Nearest \
                             {near_strand:.4} at intensity {max_intensity}"
                        ));
                    }
                    if wait >= near_wait {
                        failures.push(format!(
                            "{policy} mean wait {wait:.1}s does not beat Nearest \
                             {near_wait:.1}s at intensity {max_intensity}"
                        ));
                    }
                }
                None => failures.push(format!("{policy} recorded no attempts")),
            }
        }
    } else if !rows.is_empty() {
        failures.push("Nearest baseline recorded no attempts".to_string());
    }

    // Gate 3: ReQueryOnFull never strands more than CommitTop1, any cell.
    for rq in rows.iter().filter(|r| r.policy == "ReQueryOnFull") {
        if let Some(c1) = rows.iter().find(|r| {
            r.policy == "CommitTop1" && r.vehicles == rq.vehicles && r.intensity == rq.intensity
        }) {
            if rq.strands > c1.strands {
                failures.push(format!(
                    "ReQueryOnFull strands {} > CommitTop1 {} at ({} vehicles, intensity {})",
                    rq.strands, c1.strands, rq.vehicles, rq.intensity
                ));
            }
        }
    }

    // Feedback probe: corrections must demonstrably reach realized
    // outcomes on the hottest cell.
    let fb = &report.feedback;
    if !fb.observed_full {
        failures.push(format!(
            "feedback probe ({} vehicles, intensity {}) never observed a full charger",
            fb.vehicles, fb.intensity
        ));
    } else if !fb.diverged {
        failures.push(format!(
            "feedback on/off digests identical ({:016x}) despite a full-charger observation",
            fb.digest_on
        ));
    }

    failures
}

/// Write the report as `BENCH_outcomes.json`.
pub fn write_outcomes_json(path: &Path, report: &OutcomesReport) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"series\": \"outcomes\",")?;
    writeln!(f, "  \"world\": \"{}\",", report.world)?;
    writeln!(f, "  \"chargers\": {},", report.chargers)?;
    writeln!(f, "  \"thread_axis\": [1, 4, 8],")?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in report.rows.iter().enumerate() {
        let comma = if i + 1 == report.rows.len() { "" } else { "," };
        writeln!(
            f,
            "    {{\"policy\": \"{}\", \"vehicles\": {}, \"intensity\": {}, \
             \"feedback\": {}, \"attempts\": {}, \"charges\": {}, \"strands\": {}, \
             \"waits\": {}, \"balks\": {}, \"diversions\": {}, \"re_queries\": {}, \
             \"timeouts\": {}, \"mean_wait_s\": {:.3}, \"strand_rate\": {:.6}, \
             \"mean_queue_len\": {:.4}, \"detour_kwh\": {:.4}, \"ec_mae_kwh\": {:.4}, \
             \"clean_kwh\": {:.4}, \"grid_kwh\": {:.4}, \"digest\": \"{:016x}\", \
             \"identical\": {}, \"observed_full\": {}}}{}",
            r.policy,
            r.vehicles,
            r.intensity,
            r.feedback,
            r.attempts,
            r.charges,
            r.strands,
            r.waits,
            r.balks,
            r.diversions,
            r.re_queries,
            r.timeouts,
            r.mean_wait_s,
            r.strand_rate,
            r.mean_queue_len,
            r.detour_kwh,
            r.ec_mae_kwh,
            r.clean_kwh,
            r.grid_kwh,
            r.digest,
            r.identical,
            r.observed_full,
            comma
        )?;
    }
    writeln!(f, "  ],")?;
    let fb = &report.feedback;
    writeln!(
        f,
        "  \"feedback_probe\": {{\"policy\": \"{}\", \"vehicles\": {}, \"intensity\": {}, \
         \"digest_on\": \"{:016x}\", \"digest_off\": \"{:016x}\", \"observed_full\": {}, \
         \"diverged\": {}}},",
        fb.policy,
        fb.vehicles,
        fb.intensity,
        fb.digest_on,
        fb.digest_off,
        fb.observed_full,
        fb.diverged
    )?;
    let failures = outcomes_gate_failures(report);
    writeln!(f, "  \"gates_passed\": {},", failures.is_empty())?;
    writeln!(f, "  \"gate_failures\": [")?;
    for (i, msg) in failures.iter().enumerate() {
        let comma = if i + 1 == failures.len() { "" } else { "," };
        writeln!(f, "    \"{}\"{}", msg.replace('"', "'"), comma)?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(policy: &'static str, vehicles: usize, intensity: f64) -> OutcomesRow {
        OutcomesRow {
            policy,
            vehicles,
            intensity,
            feedback: policy != "Nearest",
            attempts: 20,
            charges: 18,
            strands: 2,
            waits: 5,
            balks: 1,
            diversions: 2,
            re_queries: 1,
            timeouts: 1,
            mean_wait_s: 100.0,
            strand_rate: 0.1,
            mean_queue_len: 0.5,
            detour_kwh: 4.0,
            ec_mae_kwh: 0.5,
            clean_kwh: 30.0,
            grid_kwh: 12.0,
            digest: 0xABCD,
            identical: true,
            observed_full: true,
        }
    }

    fn probe() -> FeedbackProbe {
        FeedbackProbe {
            policy: "ReQueryOnFull",
            vehicles: 16,
            intensity: 3.0,
            digest_on: 1,
            digest_off: 2,
            observed_full: true,
            diverged: true,
        }
    }

    /// A synthetic report where every gate passes.
    fn passing_report() -> OutcomesReport {
        let mut near = row("Nearest", 16, 3.0);
        near.strands = 8;
        near.strand_rate = 0.4;
        near.mean_wait_s = 400.0;
        let rows = vec![
            near,
            row("CommitTop1", 16, 3.0),
            row("HedgeTopK", 16, 3.0),
            row("ReQueryOnFull", 16, 3.0),
        ];
        OutcomesReport { world: "t".into(), chargers: 6, rows, feedback: probe() }
    }

    #[test]
    fn passing_report_has_no_failures() {
        assert!(outcomes_gate_failures(&passing_report()).is_empty());
    }

    #[test]
    fn divergent_cell_fails_the_determinism_gate() {
        let mut r = passing_report();
        r.rows[1].identical = false;
        let f = outcomes_gate_failures(&r);
        assert!(f.iter().any(|m| m.contains("diverged across threads")), "{f:?}");
    }

    #[test]
    fn table_policy_losing_to_nearest_fails() {
        let mut r = passing_report();
        r.rows[3].strands = 9; // worse than Nearest's 8 of 20
        r.rows[3].strand_rate = 0.45;
        let f = outcomes_gate_failures(&r);
        assert!(f.iter().any(|m| m.contains("ReQueryOnFull strand rate")), "{f:?}");
        // Losing on strands also violates the re-query dominance gate.
        assert!(f.iter().any(|m| m.contains("> CommitTop1")), "{f:?}");
    }

    #[test]
    fn equal_wait_is_not_strictly_better() {
        let mut r = passing_report();
        r.rows[2].mean_wait_s = 400.0; // ties Nearest
        let f = outcomes_gate_failures(&r);
        assert!(f.iter().any(|m| m.contains("HedgeTopK mean wait")), "{f:?}");
    }

    #[test]
    fn requery_dominance_is_checked_per_cell() {
        let mut r = passing_report();
        // Add a low-intensity pair where re-query strands more.
        let mut c1 = row("CommitTop1", 16, 0.5);
        c1.strands = 1;
        let mut rq = row("ReQueryOnFull", 16, 0.5);
        rq.strands = 2;
        r.rows.push(c1);
        r.rows.push(rq);
        let f = outcomes_gate_failures(&r);
        assert!(f.iter().any(|m| m.contains("intensity 0.5")), "{f:?}");
    }

    #[test]
    fn undiverged_feedback_probe_fails() {
        let mut r = passing_report();
        r.feedback.diverged = false;
        let f = outcomes_gate_failures(&r);
        assert!(f.iter().any(|m| m.contains("digests identical")), "{f:?}");
        r.feedback.observed_full = false;
        let f = outcomes_gate_failures(&r);
        assert!(f.iter().any(|m| m.contains("never observed a full charger")), "{f:?}");
    }

    #[test]
    fn json_writer_round_trips_the_shape() {
        let path = std::env::temp_dir().join("bench_outcomes_test.json");
        write_outcomes_json(&path, &passing_report()).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("\"series\": \"outcomes\""));
        assert!(text.contains("\"policy\": \"Nearest\""));
        assert!(text.contains("\"feedback_probe\""));
        assert!(text.contains("\"gates_passed\": true"));
        std::fs::remove_file(&path).ok();
    }

    /// A real (tiny) sweep: one fleet size, one intensity, all four
    /// policies, with the full determinism matrix behind each cell.
    #[test]
    fn tiny_sweep_is_deterministic_and_accounts_attempts() {
        let harness = HarnessConfig { seed: 7, ..HarnessConfig::default() };
        let report = run_outcomes_series(&harness, &[6], &[2.0]);
        assert_eq!(report.rows.len(), 4);
        for r in &report.rows {
            assert!(r.identical, "{} diverged", r.policy);
            assert!(r.attempts > 0, "{} made no attempts", r.policy);
            assert_eq!(r.charges + r.strands, r.attempts, "{} lost an attempt", r.policy);
        }
    }
}
