//! The `repro prune` series — bound-driven lazy filter–refine (DESIGN.md
//! §4g) swept over **fleet size × search radius × pruning on/off**.
//!
//! Every cell ranks the identical trip workload twice on the same world:
//! once with `pruning: false` (the eager path evaluates the exact
//! availability of every reachable candidate) and once with
//! `pruning: true` (candidates whose optimistic envelope score cannot
//! reach the top-`k` are never exactly evaluated). Rows report the exact
//! evaluation counts from [`ecocharge_core::PruneStats`], the fraction
//! avoided, the per-query median wall clock, and — the load-bearing
//! column — whether the pruned Offering Tables are **bit-identical** to
//! the unpruned ones. On the largest fleet the pruned run is additionally
//! replayed across detour backend × thread count against the same
//! baseline, the same promise `repro detour` makes for backends alone.
//!
//! Written as `BENCH_prune.json` (hand-rolled — the vendored serde has no
//! JSON backend) so CI can archive the sweep.

use crate::figures::HarnessConfig;
use chargers::{synth_fleet, ChargerFleet, FleetParams};
use ecocharge_core::{
    DetourBackend, EcoCharge, EcoChargeConfig, OfferingTable, PruneStats, PruningMode, QueryCtx,
    RankingMethod,
};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, DetourCh, RoadGraph, UrbanGridParams};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use trajgen::{generate_trips, BrinkhoffParams, DatasetScale, Trip};

/// Fleet sizes at the default bench scale; `--scale` shrinks them
/// proportionally (floor 20) so smoke runs stay fast. The largest is
/// where the ≥30 %-avoided acceptance target is measured.
const FLEET_BASE: [usize; 3] = [100, 250, 500];

/// Search radii `R`, km. The paper's default is 50; the tighter radii
/// exercise the ordered candidate stream's distance cut-off.
const RADII_KM: [f64; 3] = [15.0, 30.0, 50.0];

/// Node columns/rows of the generated grid at the default bench scale.
const GRID_BASE_SIDE: usize = 64;

/// One cell of the sweep: one fleet size under one radius, with the
/// unpruned and pruned runs folded into a single row.
#[derive(Debug, Clone)]
pub struct PruneRow {
    /// Chargers in the fleet.
    pub fleet: usize,
    /// Search radius `R`, km.
    pub radius_km: f64,
    /// Offering Tables produced per configuration (cold + adapted).
    pub queries: usize,
    /// Candidates that entered the pool across all cold solves (identical
    /// for both configurations — pruning must not change the pool).
    pub pool: u64,
    /// Exact availability evaluations on the eager path.
    pub exact_unpruned: u64,
    /// Exact availability evaluations (cold + shadow materialisations)
    /// on the lazy path.
    pub exact_pruned: u64,
    /// `100 · (1 − exact_pruned / exact_unpruned)`.
    pub avoided_pct: f64,
    /// Median wall-clock per Offering Table, eager path, µs.
    pub median_unpruned_us: f64,
    /// Median wall-clock per Offering Table, lazy path, µs.
    pub median_pruned_us: f64,
    /// `median_unpruned_us / median_pruned_us`.
    pub speedup: f64,
    /// Whether every pruned Offering Table equals its unpruned twin
    /// bit-for-bit (on the largest fleet: across backend × thread count).
    pub identical: bool,
}

fn median_us(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// The world one sweep column runs against: a generated urban grid with a
/// synthetic fleet and the trip workload every configuration replays.
struct PruneWorld<'a> {
    graph: &'a RoadGraph,
    fleet: ChargerFleet,
    sims: SimProviders,
    trips: &'a [Trip],
    detour_ch: &'a OnceLock<Arc<DetourCh>>,
    threads: usize,
}

/// One configuration's full replay: every trip from cold, a second table
/// 3 km along (the Dynamic-Caching adaptation path — where shadow
/// materialisation earns its keep), repeated `reps` times on a fresh
/// information server so provider caches cannot leak between reps.
struct RunOutcome {
    tables: Vec<OfferingTable>,
    stats: PruneStats,
    times_us: Vec<f64>,
}

impl PruneWorld<'_> {
    fn run(&self, config: EcoChargeConfig, reps: usize) -> RunOutcome {
        let mut out =
            RunOutcome { tables: Vec::new(), stats: PruneStats::default(), times_us: Vec::new() };
        for rep in 0..reps.max(1) {
            let server = InfoServer::from_sims(self.sims.clone());
            let ctx = QueryCtx::new(self.graph, &self.fleet, &server, &self.sims, config);
            let resolved = roadnet::resolve_backend(
                config.detour_backend,
                self.graph,
                self.fleet.len(),
                true,
                1.0,
            );
            if resolved == DetourBackend::Ch {
                let ch = self
                    .detour_ch
                    .get_or_init(|| Arc::new(DetourCh::build(self.graph, self.threads.max(1))));
                ctx.adopt_detour_ch(Arc::clone(ch));
            }
            let mut method = EcoCharge::new();
            for trip in self.trips {
                method.reset_trip();
                for offset_m in [0.0f64, 3_000.0] {
                    let offset_m = offset_m.min(trip.length_m());
                    let now = trip.eta_at_offset(self.graph, offset_m);
                    let t0 = Instant::now();
                    let table = method.offering_table(&ctx, trip, offset_m, now).expect("table");
                    out.times_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    if rep == 0 {
                        out.tables.push(table);
                    }
                }
            }
            if rep == 0 {
                out.stats = method.prune_stats();
            }
        }
        out
    }
}

/// Fleet sizes at `scale`, shrunk from the bench defaults and capped at
/// what the grid can host (stations never share a node).
fn fleet_sizes(scale: DatasetScale, num_nodes: usize) -> Vec<usize> {
    let f = (scale.factor() / DatasetScale::bench().factor()).min(1.0);
    let mut sizes: Vec<usize> = FLEET_BASE
        .iter()
        .map(|&base| (((base as f64) * f).round() as usize).clamp(20, base).min(num_nodes / 2))
        .collect();
    sizes.dedup();
    sizes
}

/// Grid side at `scale` (`nodes = side²`), shrunk like the fleet.
fn grid_side(scale: DatasetScale) -> usize {
    let f = (scale.factor() / DatasetScale::bench().factor()).min(1.0);
    (((GRID_BASE_SIDE as f64) * f).round() as usize).clamp(16, GRID_BASE_SIDE)
}

/// Run the fleet-size × radius × pruning sweep on a generated urban grid.
#[must_use]
pub fn run_prune(harness: &HarnessConfig) -> Vec<PruneRow> {
    let side = grid_side(harness.scale);
    let graph = urban_grid(&UrbanGridParams {
        cols: side,
        rows: side,
        seed: harness.seed,
        ..UrbanGridParams::default()
    });
    let trips = generate_trips(
        &graph,
        &BrinkhoffParams {
            trips: harness.trips_per_rep.max(2),
            min_trip_m: 10_000.0,
            max_trip_m: 20_000.0,
            seed: harness.seed,
            ..BrinkhoffParams::default()
        },
    );
    let sims = SimProviders::new(harness.seed);
    let detour_ch = OnceLock::new();

    let sizes = fleet_sizes(harness.scale, graph.num_nodes());
    let largest = *sizes.last().expect("at least one fleet size");
    let mut rows = Vec::new();
    for &count in &sizes {
        let fleet =
            synth_fleet(&graph, &FleetParams { count, seed: harness.seed, ..Default::default() });
        let world = PruneWorld {
            graph: &graph,
            fleet,
            sims: sims.clone(),
            trips: &trips,
            detour_ch: &detour_ch,
            threads: harness.threads,
        };
        for &radius_km in &RADII_KM {
            let cfg = |pruning, threads, backend| EcoChargeConfig {
                pruning,
                threads,
                detour_backend: backend,
                radius_km,
                ..EcoChargeConfig::default()
            };
            let mut eager = world
                .run(cfg(PruningMode::Off, harness.threads, DetourBackend::Dijkstra), harness.reps);
            let mut lazy = world
                .run(cfg(PruningMode::On, harness.threads, DetourBackend::Dijkstra), harness.reps);
            let mut identical = lazy.tables == eager.tables;
            if count == largest {
                // Acceptance: bit-identity across backend × thread count
                // on the largest fleet (single replay each — the tables,
                // not the timings, are the evidence).
                let threads_hi = harness.threads.max(2);
                for (threads, backend) in [
                    (1, DetourBackend::Dijkstra),
                    (1, DetourBackend::Ch),
                    (threads_hi, DetourBackend::Ch),
                ] {
                    identical &=
                        world.run(cfg(PruningMode::On, threads, backend), 1).tables == eager.tables;
                }
            }
            let median_unpruned_us = median_us(&mut eager.times_us);
            let median_pruned_us = median_us(&mut lazy.times_us);
            rows.push(PruneRow {
                fleet: count,
                radius_km,
                queries: eager.tables.len(),
                pool: eager.stats.pool,
                exact_unpruned: eager.stats.exact_evals,
                exact_pruned: lazy.stats.exact_evals,
                avoided_pct: 100.0
                    * (1.0 - lazy.stats.exact_evals as f64 / eager.stats.exact_evals.max(1) as f64),
                median_unpruned_us,
                median_pruned_us,
                speedup: median_unpruned_us / median_pruned_us.max(1e-9),
                identical,
            });
        }
    }
    rows
}

/// Write the sweep as `BENCH_prune.json`.
pub fn write_prune_json(path: &Path, rows: &[PruneRow]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"series\": \"prune\",")?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"fleet\": {}, \"radius_km\": {:.1}, \"queries\": {}, \"pool\": {}, \
             \"exact_unpruned\": {}, \"exact_pruned\": {}, \"avoided_pct\": {:.2}, \
             \"median_unpruned_us\": {:.3}, \"median_pruned_us\": {:.3}, \"speedup\": {:.4}, \
             \"identical\": {}}}{sep}",
            r.fleet,
            r.radius_km,
            r.queries,
            r.pool,
            r.exact_unpruned,
            r.exact_pruned,
            r.avoided_pct,
            r.median_unpruned_us,
            r.median_pruned_us,
            r.speedup,
            r.identical
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            scale: DatasetScale::smoke(),
            reps: 1,
            trips_per_rep: 2,
            seed: 7,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn pruned_rows_identical_and_cheaper_smoke() {
        let rows = run_prune(&tiny());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.identical, "pruned tables diverged: {r:?}");
            assert!(r.queries > 0 && r.pool > 0);
            assert_eq!(
                r.exact_unpruned, r.pool,
                "the eager path evaluates the whole pool exactly once"
            );
            assert!(
                r.exact_pruned <= r.exact_unpruned,
                "lazy path must never evaluate more: {r:?}"
            );
        }
        // Somewhere in the sweep the bound must actually bite.
        assert!(
            rows.iter().any(|r| r.exact_pruned < r.exact_unpruned),
            "no row avoided any exact evaluation: {rows:?}"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = run_prune(&tiny());
        let path = std::env::temp_dir().join("BENCH_prune_test.json");
        write_prune_json(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"series\": \"prune\""));
        assert!(text.contains("\"identical\": true"));
        let _ = std::fs::remove_file(&path);
    }
}
