//! The `repro adaptive` series — does `Auto` ever lose to the best
//! static choice?
//!
//! The adaptive layer (DESIGN.md §4j) makes two cost-model decisions per
//! query context: which detour engine answers the derouting sweeps
//! ([`DetourBackend::Auto`]) and whether the lazy filter–refine engine is
//! worth its envelope overhead ([`PruningMode::Auto`]). Both decisions
//! were introduced to fix regressions where a globally static choice was
//! the *wrong* choice on part of the input spectrum — CH on city-scale
//! graphs, pruning on small candidate pools. This series is the
//! regression net for the fix itself:
//!
//! * every world produces one row per decision dimension (`backend`,
//!   `pruning`), timing both static options and `Auto` on the identical
//!   workload;
//! * a row passes (`auto_ok`) when `Auto` is at most [`TOLERANCE`] ×
//!   the *best* static option — the adaptive path may never reintroduce
//!   the regression it exists to fix, on either end of the spectrum;
//! * every row also replays the full Offering-Table identity contract:
//!   `Auto` vs. both static choices, and `Auto` across thread counts,
//!   bit-for-bit.
//!
//! The world list deliberately spans the whole decision spectrum: the
//! four paper datasets (city-scale, fleets 600–1200), a sparse-fleet
//! grid small enough that pruning must stay off, and metro-class
//! substrates (up to 1M+ nodes / 100k chargers, [`MetroTier`]) where the
//! hierarchy and the pruner must both engage. Written as
//! `BENCH_adaptive.json` so CI can archive the sweep and fail the build
//! when `Auto` loses a row.

use crate::figures::HarnessConfig;
use chargers::{synth_fleet, ChargerFleet, FleetParams};
use ecocharge_core::{
    DetourBackend, EcoCharge, EcoChargeConfig, OfferingTable, PruneCostModel, PruningMode,
    QueryCtx, RankingMethod,
};
use eis::{InfoServer, SimProviders};
use roadnet::{urban_grid, DetourCh, RoadGraph, UrbanGridParams};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use trajgen::{generate_trips, BrinkhoffParams, Dataset, DatasetKind, DatasetScale, Trip};

/// `Auto` must come within this factor of the best static option on
/// every row. The regression class this gate exists to catch is the
/// model sending a world to the decisively wrong engine — the motivating
/// failures ranged from 5× to 600×. Near-tied rows are a different
/// regime: sub-millisecond medians on a shared machine vary by ±20 %
/// run-to-run even between *identical* configurations, and on such rows
/// either pick is fine. 1.5 cleanly separates the two: far below any
/// real mis-prediction, comfortably above timer noise on a near-tie.
pub const TOLERANCE: f64 = 1.5;

/// How much metro-class substrate the sweep includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetroTier {
    /// No metro worlds (unit tests; debug builds).
    Off,
    /// The CI tier: ~96k nodes, 10k chargers.
    Small,
    /// The full tier: adds a 1M+-node grid with a 100k-charger fleet.
    Full,
}

impl MetroTier {
    /// Parse a CLI label (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Some(Self::Off),
            "small" => Some(Self::Small),
            "full" => Some(Self::Full),
            _ => None,
        }
    }
}

/// One decision dimension on one world: both static options and `Auto`
/// on the identical workload.
#[derive(Debug, Clone)]
pub struct AdaptiveRow {
    /// World label (dataset name or generated-grid descriptor).
    pub world: String,
    /// Network size, nodes.
    pub nodes: usize,
    /// Network size, edges.
    pub edges: usize,
    /// Charger-fleet size (the candidate pool's upper bound).
    pub fleet: usize,
    /// Which decision this row measures: `"backend"` or `"pruning"`.
    pub dim: &'static str,
    /// First static option's label.
    pub static_a: &'static str,
    /// First static option's median solve time, µs.
    pub static_a_us: f64,
    /// Second static option's label.
    pub static_b: &'static str,
    /// Second static option's median solve time, µs.
    pub static_b_us: f64,
    /// `Auto`'s median solve time, µs.
    pub auto_us: f64,
    /// What `Auto` resolved to on this world — for the backend
    /// dimension, at the representative (median start-of-trip)
    /// candidate-pool fan-out the per-batch resolution actually sees.
    pub auto_choice: &'static str,
    /// `auto_us ≤ min(static) × TOLERANCE`.
    pub auto_ok: bool,
    /// Offering Tables bit-identical across all options and across
    /// `Auto` thread counts (and non-empty).
    pub identical: bool,
}

/// A materialised world the sweep owns outright (unlike
/// [`crate::env::ExperimentEnv`], the graph here may be a generated
/// metro substrate with no dataset preset behind it).
struct World {
    name: String,
    graph: RoadGraph,
    fleet: ChargerFleet,
    sims: SimProviders,
    trips: Vec<Trip>,
    /// Shared CH index — built once per world, on first use by an
    /// option that resolves to the hierarchy. The build is a sunk cost
    /// here (every option that wants CH reuses it), so `Auto` resolves
    /// prebuilt-style, exactly like the experiment environments.
    detour_ch: OnceLock<Arc<DetourCh>>,
}

impl World {
    fn from_dataset(kind: DatasetKind, scale: DatasetScale, seed: u64, trips_n: usize) -> Self {
        let dataset = Dataset::build(kind, scale, seed);
        let fleet = synth_fleet(
            &dataset.graph,
            &FleetParams {
                count: kind.charger_count().min(dataset.graph.num_nodes()),
                seed,
                ..Default::default()
            },
        );
        let name = dataset.name().to_string();
        let Dataset { graph, mut trips, .. } = dataset;
        trips.truncate(trips_n.max(1));
        Self {
            name,
            graph,
            fleet,
            sims: SimProviders::new(seed),
            trips,
            detour_ch: OnceLock::new(),
        }
    }

    fn from_grid(
        name: &str,
        side: (usize, usize),
        fleet_n: usize,
        seed: u64,
        trips_n: usize,
    ) -> Self {
        let graph = urban_grid(&UrbanGridParams {
            cols: side.0,
            rows: side.1,
            seed,
            ..UrbanGridParams::default()
        });
        let fleet = synth_fleet(
            &graph,
            &FleetParams {
                count: fleet_n.min(graph.num_nodes() / 2).max(4),
                seed,
                ..Default::default()
            },
        );
        let trips = generate_trips(
            &graph,
            &BrinkhoffParams { trips: trips_n.max(1), seed, ..BrinkhoffParams::default() },
        );
        Self {
            name: name.to_string(),
            graph,
            fleet,
            sims: SimProviders::new(seed),
            trips,
            detour_ch: OnceLock::new(),
        }
    }

    fn shared_detour_ch(&self, threads: usize) -> Arc<DetourCh> {
        Arc::clone(
            self.detour_ch.get_or_init(|| Arc::new(DetourCh::build(&self.graph, threads.max(1)))),
        )
    }
}

/// One option's timed run: full EcoCharge solves over the world's trips.
struct OptionRun {
    median_us: f64,
    tables: Vec<OfferingTable>,
}

fn median_us(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Run every configuration of one dimension over the world's trips:
/// per option a fresh information server (provider caches must not leak
/// between options) and a warm pass (server caches, backend resolution,
/// scratch allocations, CH bucket fills), then three timed passes of
/// full solves. The shared CH index is adopted by every option that
/// could touch the hierarchy, so no option pays the build inside its
/// timed region.
///
/// Two noise defenses, both load-bearing at the µs scale this gate
/// judges:
///
/// * Options are **interleaved pass-by-pass** (A, B, Auto, A, B, …),
///   so slow clock drift — thermal throttling, a neighbour stealing the
///   core — lands on every option equally instead of biasing whichever
///   ran last.
/// * Trips differ in intrinsic cost, so the per-solve sample
///   distribution is multimodal and a plain median across it jitters by
///   whole modes. Each trip instead keeps its *minimum* across the
///   passes (the standard noise-floor estimator), and the row reports
///   the median across trips.
fn run_options(world: &World, configs: &[EcoChargeConfig]) -> Vec<OptionRun> {
    let servers: Vec<InfoServer> =
        configs.iter().map(|_| InfoServer::from_sims(world.sims.clone())).collect();
    let ctxs: Vec<QueryCtx<'_>> = configs
        .iter()
        .zip(&servers)
        .map(|(config, server)| {
            let ctx = QueryCtx::new(&world.graph, &world.fleet, server, &world.sims, *config);
            if config.detour_backend != DetourBackend::Dijkstra {
                ctx.adopt_detour_ch(world.shared_detour_ch(config.threads));
            }
            ctx
        })
        .collect();
    let mut methods: Vec<EcoCharge> = configs.iter().map(|_| EcoCharge::new()).collect();
    for (ctx, method) in ctxs.iter().zip(&mut methods) {
        for trip in &world.trips {
            method.reset_trip();
            let _ = method.offering_table(ctx, trip, 0.0, trip.depart);
        }
    }

    let mut per_trip = vec![vec![f64::INFINITY; world.trips.len()]; configs.len()];
    let mut tables = vec![Vec::new(); configs.len()];
    for _pass in 0..3 {
        for (opt, (ctx, method)) in ctxs.iter().zip(&mut methods).enumerate() {
            tables[opt].clear();
            for (i, trip) in world.trips.iter().enumerate() {
                method.reset_trip();
                let t0 = Instant::now();
                let table = method.offering_table(ctx, trip, 0.0, trip.depart);
                per_trip[opt][i] = per_trip[opt][i].min(t0.elapsed().as_secs_f64() * 1e6);
                if let Ok(t) = table {
                    tables[opt].push(t);
                }
            }
        }
    }
    per_trip
        .iter_mut()
        .zip(tables)
        .map(|(times, tables)| OptionRun { median_us: median_us(times), tables })
        .collect()
}

/// Measure one decision dimension on one world. `configure` maps an
/// option index — 0 = static A, 1 = static B, 2 = `Auto` — onto a
/// configuration; the thread-identity cross-check reruns option 2 at a
/// higher thread count.
#[allow(clippy::too_many_arguments)]
fn measure_dim(
    world: &World,
    harness: &HarnessConfig,
    dim: &'static str,
    labels: (&'static str, &'static str),
    auto_choice: &'static str,
    configure: impl Fn(usize, usize) -> EcoChargeConfig,
) -> AdaptiveRow {
    let threads = harness.threads.max(1);
    let threads_hi = threads.max(4);
    let configs = [
        configure(0, threads),
        configure(1, threads),
        configure(2, threads),
        configure(2, threads_hi),
    ];
    let [a, b, auto, auto_hi] = <[OptionRun; 4]>::try_from(run_options(world, &configs))
        .unwrap_or_else(|_| unreachable!("one run per config"));

    let best_static = a.median_us.min(b.median_us);
    let identical = !auto.tables.is_empty()
        && auto.tables == a.tables
        && auto.tables == b.tables
        && auto.tables == auto_hi.tables;
    AdaptiveRow {
        world: world.name.clone(),
        nodes: world.graph.num_nodes(),
        edges: world.graph.num_edges(),
        fleet: world.fleet.len(),
        dim,
        static_a: labels.0,
        static_a_us: a.median_us,
        static_b: labels.1,
        static_b_us: b.median_us,
        auto_us: auto.median_us,
        auto_choice,
        auto_ok: auto.median_us <= best_static * TOLERANCE,
        identical,
    }
}

/// The median start-of-trip candidate-pool size — the fan-out the
/// per-batch backend resolution actually sees (the fleet size is only
/// its upper bound; the radius filter can cut it by an order of
/// magnitude on city graphs).
fn representative_fanout(world: &World, radius_km: f64) -> usize {
    let radius_m = radius_km * 1_000.0;
    let mut sizes: Vec<usize> = world
        .trips
        .iter()
        .map(|t| {
            let pos = t.position_at_offset(&world.graph, 0.0);
            world.fleet.nearest_iter(&pos).take_while(|(_, d)| *d <= radius_m).count()
        })
        .collect();
    sizes.sort_unstable();
    sizes.get(sizes.len() / 2).copied().unwrap_or(world.fleet.len())
}

fn measure_world(world: &World, harness: &HarnessConfig, rows: &mut Vec<AdaptiveRow>) {
    let base = EcoChargeConfig::default();

    // --- Backend dimension: pruning stays Auto, the engine varies. ---
    let pool = representative_fanout(world, base.radius_km);
    let backend_choice = roadnet::resolve_backend(
        DetourBackend::Auto,
        &world.graph,
        pool,
        true,
        roadnet::BackendCostModel::settle_fraction(pool, world.fleet.len()),
    );
    rows.push(measure_dim(
        world,
        harness,
        "backend",
        (DetourBackend::Dijkstra.name(), DetourBackend::Ch.name()),
        backend_choice.name(),
        |opt, threads| EcoChargeConfig {
            threads,
            detour_backend: match opt {
                0 => DetourBackend::Dijkstra,
                1 => DetourBackend::Ch,
                _ => DetourBackend::Auto,
            },
            pruning: PruningMode::Auto,
            ..base
        },
    ));

    // --- Pruning dimension: the engine stays Auto, the pruner varies. ---
    let pruning_choice = if world.fleet.len() >= PruneCostModel::calibrated().pool_threshold(base.k)
    {
        PruningMode::On.name()
    } else {
        PruningMode::Off.name()
    };
    rows.push(measure_dim(
        world,
        harness,
        "pruning",
        (PruningMode::Off.name(), PruningMode::On.name()),
        pruning_choice,
        |opt, threads| EcoChargeConfig {
            threads,
            detour_backend: DetourBackend::Auto,
            pruning: match opt {
                0 => PruningMode::Off,
                1 => PruningMode::On,
                _ => PruningMode::Auto,
            },
            ..base
        },
    ));
}

/// Run the adaptive sweep: both decision dimensions on every world.
///
/// Worlds: each dataset in `kinds` at the harness scale, a sparse-fleet
/// grid (64 chargers — below any sane pruning threshold), and the
/// metro tiers selected by `metro`.
#[must_use]
pub fn run_adaptive(
    harness: &HarnessConfig,
    kinds: &[DatasetKind],
    metro: MetroTier,
) -> Vec<AdaptiveRow> {
    // Pay both one-shot micro-calibrations before any timed region.
    let _ = PruneCostModel::calibrated();
    let _ = roadnet::BackendCostModel::calibrated();

    let trips_n = harness.trips_per_rep.clamp(2, 8);
    let mut rows = Vec::new();
    for &kind in kinds {
        let world = World::from_dataset(kind, harness.scale, harness.seed, trips_n);
        measure_world(&world, harness, &mut rows);
    }

    let world = World::from_grid("sparse-fleet 48x48", (48, 48), 64, harness.seed, trips_n);
    measure_world(&world, harness, &mut rows);

    if metro != MetroTier::Off {
        let world = World::from_grid("metro 320x300", (320, 300), 10_000, harness.seed, trips_n);
        measure_world(&world, harness, &mut rows);
    }
    if metro == MetroTier::Full {
        let world =
            World::from_grid("metro 1024x1024", (1024, 1024), 100_000, harness.seed, trips_n);
        measure_world(&world, harness, &mut rows);
    }
    rows
}

/// Write the sweep as `BENCH_adaptive.json`.
pub fn write_adaptive_json(path: &Path, rows: &[AdaptiveRow]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    writeln!(f, "  \"series\": \"adaptive\",")?;
    writeln!(f, "  \"tolerance\": {TOLERANCE},")?;
    writeln!(f, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"world\": \"{}\", \"nodes\": {}, \"edges\": {}, \"fleet\": {}, \
             \"dim\": \"{}\", \"{}_us\": {:.3}, \"{}_us\": {:.3}, \"auto_us\": {:.3}, \
             \"auto_choice\": \"{}\", \"auto_ok\": {}, \"identical\": {}}}{sep}",
            r.world,
            r.nodes,
            r.edges,
            r.fleet,
            r.dim,
            r.static_a,
            r.static_a_us,
            r.static_b,
            r.static_b_us,
            r.auto_us,
            r.auto_choice,
            r.auto_ok,
            r.identical
        )?;
    }
    writeln!(f, "  ]")?;
    writeln!(f, "}}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            scale: DatasetScale::smoke(),
            reps: 1,
            trips_per_rep: 2,
            seed: 7,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn sweep_covers_both_dimensions_and_stays_identical() {
        let rows = run_adaptive(&tiny(), &[DatasetKind::Oldenburg], MetroTier::Off);
        // Oldenburg + the sparse-fleet grid, two dims each.
        assert_eq!(rows.len(), 4, "unexpected rows: {rows:#?}");
        for r in &rows {
            // Identity is the contract at every scale. `auto_ok` is a
            // *release*-grade timing gate (the repro binary enforces it);
            // a debug unit test only checks the plumbing produced times.
            assert!(r.identical, "tables diverged across options: {r:?}");
            assert!(r.auto_us > 0.0 && r.static_a_us > 0.0 && r.static_b_us > 0.0);
            assert!(["backend", "pruning"].contains(&r.dim));
        }
        // The sparse-fleet world sits below any in-band pruning
        // threshold: Auto must keep the pruner off there.
        let sparse_prune = rows
            .iter()
            .find(|r| r.world.starts_with("sparse-fleet") && r.dim == "pruning")
            .expect("sparse-fleet pruning row");
        assert_eq!(sparse_prune.auto_choice, "off", "{sparse_prune:?}");
        // The paper fleets sit above it.
        let paper_prune = rows
            .iter()
            .find(|r| r.world == "Oldenburg" && r.dim == "pruning")
            .expect("Oldenburg pruning row");
        assert_eq!(paper_prune.auto_choice, "on", "{paper_prune:?}");
    }

    #[test]
    fn metro_tier_parses() {
        assert_eq!(MetroTier::parse("off"), Some(MetroTier::Off));
        assert_eq!(MetroTier::parse("Small"), Some(MetroTier::Small));
        assert_eq!(MetroTier::parse("FULL"), Some(MetroTier::Full));
        assert_eq!(MetroTier::parse("metro"), None);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = run_adaptive(&tiny(), &[], MetroTier::Off);
        let path = std::env::temp_dir().join("BENCH_adaptive_test.json");
        write_adaptive_json(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.trim_end().ends_with('}'));
        assert!(text.contains("\"series\": \"adaptive\""));
        assert!(text.contains("\"dim\": \"backend\"") && text.contains("\"dim\": \"pruning\""));
        assert!(text.contains("\"auto_choice\""));
        let _ = std::fs::remove_file(&path);
    }
}
