//! The four experiment series of §V, one runner per figure.

use crate::env::ExperimentEnv;
use ecocharge_core::{
    evaluate_method, BruteForce, DetourBackend, EcoCharge, EcoChargeConfig, IndexQuadtree, Oracle,
    RandomPick, RankingMethod, Weights,
};
use trajgen::{DatasetKind, DatasetScale};

/// Harness knobs shared by all figures.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Trajectory scale relative to the paper's cardinality.
    pub scale: DatasetScale,
    /// Repetitions (the paper uses ~10; each rep draws a fresh trip
    /// sample).
    pub reps: usize,
    /// Trips measured per repetition.
    pub trips_per_rep: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker-thread budget for the run. It flows into every
    /// [`EcoChargeConfig::threads`] knob (per-candidate parallelism inside
    /// one solve) and, when a figure's config leaves per-candidate
    /// parallelism off, into the per-repetition fan-out of [`measure`].
    /// Results are bit-identical at any value — see DESIGN.md, "Parallel
    /// execution model".
    pub threads: usize,
    /// Detour search backend for every ranking in the run. Like
    /// `threads`, a pure performance knob: the backends return
    /// bit-identical Offering Tables (DESIGN.md §4f; `repro detour`
    /// re-asserts it on every sweep).
    pub detour_backend: DetourBackend,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: DatasetScale::bench(),
            reps: 3,
            trips_per_rep: 4,
            seed: 42,
            threads: 1,
            detour_backend: DetourBackend::Auto,
        }
    }
}

/// One output row of an experiment table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub dataset: &'static str,
    /// Method or configuration label.
    pub label: String,
    /// Mean `SC` as % of Brute-Force.
    pub sc_pct: f64,
    /// Std-dev of the `SC` percentage across repetitions.
    pub sc_std: f64,
    /// Mean `F_t`, ms.
    pub ft_ms: f64,
    /// Std-dev of `F_t` across repetitions.
    pub ft_std: f64,
    /// Mean attained objective values `(L̄, Ā, 1−D̄)` — used by Fig. 9.
    pub attained: (f64, f64, f64),
    /// Total Offering Tables measured.
    pub tables: usize,
}

fn agg(rep_outs: &[ecocharge_core::EvalOutcome], dataset: &'static str, label: String) -> Row {
    let n = rep_outs.len().max(1) as f64;
    let mean = |f: fn(&ecocharge_core::EvalOutcome) -> f64| rep_outs.iter().map(f).sum::<f64>() / n;
    let std = |f: fn(&ecocharge_core::EvalOutcome) -> f64, m: f64| {
        (rep_outs.iter().map(|o| (f(o) - m) * (f(o) - m)).sum::<f64>() / n).sqrt()
    };
    let sc = mean(|o| o.mean_sc_pct);
    let ft = mean(|o| o.mean_ft_ms);
    Row {
        dataset,
        label,
        sc_pct: sc,
        sc_std: std(|o| o.mean_sc_pct, sc),
        ft_ms: ft,
        ft_std: std(|o| o.mean_ft_ms, ft),
        attained: (mean(|o| o.attained.0), mean(|o| o.attained.1), mean(|o| o.attained.2)),
        tables: rep_outs.iter().map(|o| o.tables).sum(),
    }
}

/// Run one method over `reps` trip samples in one environment.
///
/// Repetitions are mutually independent: each draws its own trip slice,
/// method instance, oracle **and information server**. The server
/// isolation is what makes the schedule invisible — a cached provider
/// value can depend on the exact query instant that produced it, so a
/// cache shared across reps would leak one rep's entries into another's
/// lookups and make the aggregate depend on rep ordering. With private
/// caches, whatever share of the thread budget the per-candidate engine
/// inside one solve is not using (`harness.threads / config.threads`)
/// fans the reps out in parallel, each writing its own pre-indexed
/// result slot, and the aggregated row is bit-identical to the
/// sequential schedule (timing fields aside, which are measurements,
/// not rankings).
fn measure<F>(
    env: &ExperimentEnv,
    config: EcoChargeConfig,
    harness: &HarnessConfig,
    oracle_weights: Weights,
    make_method: F,
    label: String,
) -> Row
where
    F: Fn(usize) -> Box<dyn RankingMethod> + Sync,
{
    let rep_workers = (harness.threads / config.threads.max(1)).clamp(1, harness.reps.max(1));
    let reps: Vec<usize> = (0..harness.reps).collect();
    let outs: Vec<ecocharge_core::EvalOutcome> = ec_exec::parallel_map(
        rep_workers,
        &reps,
        |_| (),
        |(), _, &rep| {
            let trips = env.trips_for_rep(rep, harness.trips_per_rep);
            let server = eis::InfoServer::from_sims(env.sims.clone());
            let ctx = ecocharge_core::QueryCtx::new(
                &env.dataset.graph,
                &env.fleet,
                &server,
                &env.sims,
                config,
            );
            let resolved = roadnet::resolve_backend(
                config.detour_backend,
                &env.dataset.graph,
                env.fleet.len(),
                true,
                1.0,
            );
            if resolved == DetourBackend::Ch {
                ctx.adopt_detour_ch(env.shared_detour_ch(config.threads));
            }
            let mut method = make_method(rep);
            let mut oracle = Oracle::new(oracle_weights);
            evaluate_method(&ctx, &trips, method.as_mut(), &mut oracle)
                .expect("evaluation must not fail on generated datasets")
        },
    );
    agg(&outs, env.dataset.name(), label)
}

/// **Figure 6** — Performance Evaluation: `SC %` and `F_t` for all four
/// methods over all four datasets, default configuration (`R` = 50 km,
/// `Q` = 5 km, equal weights).
#[must_use]
pub fn run_fig6(harness: &HarnessConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let env = ExperimentEnv::build(kind, harness.scale, harness.seed);
        let config = EcoChargeConfig {
            threads: harness.threads,
            detour_backend: harness.detour_backend,
            ..EcoChargeConfig::default()
        };
        let seed = harness.seed;
        rows.push(measure(
            &env,
            config,
            harness,
            Weights::awe(),
            |_| Box::new(BruteForce::new()),
            "Brute-Force".into(),
        ));
        rows.push(measure(
            &env,
            config,
            harness,
            Weights::awe(),
            |_| Box::new(IndexQuadtree::new()),
            "Index-Quadtree".into(),
        ));
        rows.push(measure(
            &env,
            config,
            harness,
            Weights::awe(),
            move |rep| Box::new(RandomPick::new(seed ^ rep as u64)),
            "Random".into(),
        ));
        rows.push(measure(
            &env,
            config,
            harness,
            Weights::awe(),
            |_| Box::new(EcoCharge::new()),
            "EcoCharge".into(),
        ));
    }
    rows
}

/// **Figure 7** — R-opt: EcoCharge with radius `R` ∈ {25, 50, 75} km.
#[must_use]
pub fn run_fig7(harness: &HarnessConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let env = ExperimentEnv::build(kind, harness.scale, harness.seed);
        for radius_km in [25.0, 50.0, 75.0] {
            let config = EcoChargeConfig {
                radius_km,
                threads: harness.threads,
                detour_backend: harness.detour_backend,
                ..EcoChargeConfig::default()
            };
            rows.push(measure(
                &env,
                config,
                harness,
                Weights::awe(),
                |_| Box::new(EcoCharge::new()),
                format!("R={radius_km:.0}km"),
            ));
        }
    }
    rows
}

/// **Figure 8** — Q-opt: EcoCharge with range distance `Q` ∈ {5, 10, 15}
/// km.
#[must_use]
pub fn run_fig8(harness: &HarnessConfig) -> Vec<Row> {
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let env = ExperimentEnv::build(kind, harness.scale, harness.seed);
        for range_km in [5.0, 10.0, 15.0] {
            let config = EcoChargeConfig {
                range_km,
                threads: harness.threads,
                detour_backend: harness.detour_backend,
                ..EcoChargeConfig::default()
            };
            rows.push(measure(
                &env,
                config,
                harness,
                Weights::awe(),
                |_| Box::new(EcoCharge::new()),
                format!("Q={range_km:.0}km"),
            ));
        }
    }
    rows
}

/// **Figure 9** — Ablation of the weight parameters: EcoCharge ranking
/// with AWE / OSC / OA / ODC, always refereed by the equal-weight oracle.
#[must_use]
pub fn run_fig9(harness: &HarnessConfig) -> Vec<Row> {
    let configs: [(&str, Weights); 4] = [
        ("AWE", Weights::awe()),
        ("OSC", Weights::osc()),
        ("OA", Weights::oa()),
        ("ODC", Weights::odc()),
    ];
    let mut rows = Vec::new();
    for kind in DatasetKind::ALL {
        let env = ExperimentEnv::build(kind, harness.scale, harness.seed);
        for (label, weights) in configs {
            let config = EcoChargeConfig {
                weights,
                threads: harness.threads,
                detour_backend: harness.detour_backend,
                ..EcoChargeConfig::default()
            };
            rows.push(measure(
                &env,
                config,
                harness,
                Weights::awe(), // referee stays equal-weight
                |_| Box::new(EcoCharge::new()),
                label.to_string(),
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            scale: DatasetScale::smoke(),
            reps: 1,
            trips_per_rep: 1,
            seed: 7,
            ..HarnessConfig::default()
        }
    }

    #[test]
    fn fig6_produces_sixteen_rows() {
        let rows = run_fig6(&tiny());
        assert_eq!(rows.len(), 16);
        // Brute-Force defines 100% on every dataset.
        for row in rows.iter().filter(|r| r.label == "Brute-Force") {
            assert!((row.sc_pct - 100.0).abs() < 1e-6, "{}: {}", row.dataset, row.sc_pct);
        }
        // Every method measured at least one table.
        assert!(rows.iter().all(|r| r.tables > 0));
    }

    #[test]
    fn rep_fanout_is_bit_identical() {
        // config.threads = 1 leaves the whole harness budget to the
        // per-repetition fan-out; the aggregated quality fields must not
        // notice the schedule.
        let env = ExperimentEnv::build(DatasetKind::Oldenburg, DatasetScale::smoke(), 7);
        let config = EcoChargeConfig::default();
        let seq = HarnessConfig {
            scale: DatasetScale::smoke(),
            reps: 3,
            trips_per_rep: 2,
            seed: 7,
            ..HarnessConfig::default()
        };
        let par = HarnessConfig { threads: 4, ..seq };
        let a =
            measure(&env, config, &seq, Weights::awe(), |_| Box::new(EcoCharge::new()), "s".into());
        let b =
            measure(&env, config, &par, Weights::awe(), |_| Box::new(EcoCharge::new()), "p".into());
        assert_eq!(a.sc_pct, b.sc_pct);
        assert_eq!(a.sc_std, b.sc_std);
        assert_eq!(a.attained, b.attained);
        assert_eq!(a.tables, b.tables);
    }

    #[test]
    fn fig7_rows_per_radius() {
        // Restrict to runtime budget: only check row structure on the
        // smallest dataset by filtering afterwards.
        let rows = run_fig7(&tiny());
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().any(|r| r.label == "R=25km"));
    }

    #[test]
    fn fig9_ablation_shapes_on_one_dataset() {
        let rows = run_fig9(&tiny());
        assert_eq!(rows.len(), 16);
        let get = |ds: &str, label: &str| {
            rows.iter().find(|r| r.dataset == ds && r.label == label).unwrap().clone()
        };
        for ds in ["Oldenburg", "California", "T-drive", "Geolife"] {
            let awe = get(ds, "AWE");
            let osc = get(ds, "OSC");
            // Chasing only L must attain at least as much L as AWE
            // (within noise of a single tiny rep).
            assert!(
                osc.attained.0 >= awe.attained.0 - 0.1,
                "{ds}: OSC L {} vs AWE L {}",
                osc.attained.0,
                awe.attained.0
            );
        }
    }
}
