//! # `ecocharge-bench` — the evaluation harness
//!
//! Regenerates every figure of the paper's §V on the synthetic-substitute
//! datasets (DESIGN.md §3–4). The `repro` binary drives the four
//! experiment series; the Criterion benches micro-measure the substrate
//! operations each figure exercises.
//!
//! Absolute milliseconds differ from the paper (a Rust library on
//! different hardware vs. a Python prototype on a VMware node); the
//! *shapes* — method ordering, parameter trends, ablation ranking — are
//! the reproduction target. EXPERIMENTS.md records paper-vs-measured for
//! every series.

pub mod adaptive;
pub mod detour;
pub mod env;
pub mod extensions;
pub mod figures;
pub mod outcomes;
pub mod prune;
pub mod recovery;
pub mod scaling;
pub mod serve;
pub mod sessions;
pub mod shard;
pub mod table;
pub mod validate;

pub use adaptive::{run_adaptive, write_adaptive_json, AdaptiveRow, MetroTier};
pub use detour::{run_detour, write_detour_json, DetourRow};
pub use env::ExperimentEnv;
pub use extensions::{run_balance, run_cache, run_dayrun, run_modes, run_regret, run_throughput};
pub use figures::{run_fig6, run_fig7, run_fig8, run_fig9, HarnessConfig, Row};
pub use outcomes::{
    outcomes_gate_failures, run_outcomes_series, write_outcomes_json, FeedbackProbe,
    OutcomesReport, OutcomesRow,
};
pub use prune::{run_prune, write_prune_json, PruneRow};
pub use recovery::{run_recovery, run_recovery_chaos, write_recovery_json, ChaosRow, RecoveryRow};
pub use scaling::{run_scaling, write_scaling_json, ScalingRow};
pub use serve::{
    run_serve, serve_gate_failures, write_serve_json, IdentityCell, ServeReport, ServeRow,
};
pub use sessions::{run_sessions, write_sessions_json, SessionsRow};
pub use shard::{run_shard, shard_gate_failures, write_shard_json, ShardRow};
pub use table::{print_rows, write_csv};
pub use validate::{run_validation, Check};
