//! `inspect` — side-by-side diagnostic of one query point: EcoCharge's
//! forecast-based picks vs the oracle's ground-truth optimum, with the
//! per-component values that produced each rank. A debugging lens for the
//! evaluation, not part of the reproduction figures.
//!
//! ```text
//! cargo run -p ecocharge-bench --bin inspect --release -- tdrive 0
//! ```

use ecocharge_bench::ExperimentEnv;
use ecocharge_core::{CknnQuery, EcoCharge, EcoChargeConfig, Oracle, RankingMethod, Weights};
use trajgen::{DatasetKind, DatasetScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = match args.first().map(String::as_str) {
        Some("oldenburg") | None => DatasetKind::Oldenburg,
        Some("california") => DatasetKind::California,
        Some("tdrive") => DatasetKind::TDrive,
        Some("geolife") => DatasetKind::Geolife,
        Some(other) => {
            eprintln!("unknown dataset {other}");
            std::process::exit(2);
        }
    };
    let trip_idx: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);

    let env = ExperimentEnv::build(kind, DatasetScale::bench(), 42);
    let ctx = env.ctx(EcoChargeConfig::default());
    let trip = &env.dataset.trips[trip_idx];
    let query = CknnQuery::new(&ctx, trip).unwrap();
    let mut eco = EcoCharge::new();
    let mut oracle = Oracle::new(Weights::awe());

    println!(
        "{} trip {trip_idx}: {:.1} km, {} segments, fleet {}",
        env.dataset.name(),
        trip.length_m() / 1_000.0,
        query.len(),
        env.fleet.len()
    );

    for sp in query.split_points() {
        let table = match eco.offering_table(&ctx, trip, sp.offset_m, sp.eta) {
            Ok(t) => t,
            Err(e) => {
                println!("segment {}: {e}", sp.segment);
                continue;
            }
        };
        let set = table.charger_ids();
        let (best, best_mean) = oracle.best_k(&ctx, sp.node, sp.rejoin_node, sp.eta, ctx.config.k);
        let mean =
            oracle.true_sc_of_set(&ctx, &set, sp.node, sp.rejoin_node, sp.eta).unwrap_or(0.0);
        println!(
            "\nsegment {} ({}): SC {:.1}% [{}]",
            sp.segment,
            if table.adapted { "adapted" } else { "full" },
            mean / best_mean * 100.0,
            sp.eta
        );
        println!("  EcoCharge picks (forecast SC | true l,a,d):");
        let truth = oracle.true_components(&ctx, sp.node, sp.rejoin_node, sp.eta, &set);
        for (e, t) in table.entries.iter().zip(&truth) {
            match t {
                Some(t) => println!(
                    "    {} sc{} | true l={:.3} a={:.3} d={:.3} -> {:.3}",
                    e.charger,
                    e.sc,
                    t.l,
                    t.a,
                    t.d,
                    Weights::awe().point_score(t.l, t.a, t.d)
                ),
                None => println!("    {} unreachable?!", e.charger),
            }
        }
        println!("  Oracle best-k (true l,a,d):");
        let btruth = oracle.true_components(&ctx, sp.node, sp.rejoin_node, sp.eta, &best);
        for (c, t) in best.iter().zip(btruth.iter().flatten()) {
            println!(
                "    {} true l={:.3} a={:.3} d={:.3} -> {:.3}{}",
                c,
                t.l,
                t.a,
                t.d,
                Weights::awe().point_score(t.l, t.a, t.d),
                if set.contains(c) { "  (picked)" } else { "" }
            );
        }
    }
}
