//! `repro` — regenerate the paper's evaluation figures.
//!
//! ```text
//! cargo run -p ecocharge-bench --bin repro --release -- all
//! cargo run -p ecocharge-bench --bin repro --release -- fig6 --reps 5 --trips 8
//! cargo run -p ecocharge-bench --bin repro --release -- fig9 --scale 0.1 --seed 7
//! ```
//!
//! Flags: `--reps N` repetitions, `--trips N` trips per repetition,
//! `--scale F` fraction of the paper's trajectory cardinality, `--seed N`.

use ecocharge_bench::{
    outcomes_gate_failures, print_rows, run_adaptive, run_balance, run_cache, run_dayrun,
    run_detour, run_fig6, run_fig7, run_fig8, run_fig9, run_modes, run_outcomes_series, run_prune,
    run_recovery, run_recovery_chaos, run_regret, run_scaling, run_serve, run_sessions, run_shard,
    run_throughput, run_validation, serve_gate_failures, shard_gate_failures, write_adaptive_json,
    write_csv, write_detour_json, write_outcomes_json, write_prune_json, write_recovery_json,
    write_scaling_json, write_serve_json, write_sessions_json, write_shard_json, HarnessConfig,
    MetroTier,
};
use ecocharge_core::DetourBackend;
use std::path::PathBuf;
use trajgen::{DatasetKind, DatasetScale};

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig6|fig7|fig8|fig9|all|regret|cache|modes|balance|ext|scaling|detour|prune|adaptive|sessions|shard|serve|recovery|outcomes> \
        [--reps N] [--trips N] [--scale F] [--seed N] [--threads N] [--sessions N] \
        [--detour-backend dijkstra|ch|auto] [--metro off|small|full] [--csv DIR]\n\
  fig6..fig9  the paper's evaluation figures\n\
  all         all four paper figures\n\
  regret      extension: forecast-vs-ground-truth referee\n\
  cache       extension: Dynamic Caching on/off + API-call economy\n\
  modes       extension: Mode 1/2/3 end-to-end refresh latency\n\
  balance     extension: recommendation-traffic balancing burst\n\
  throughput  extension: Mode-2 server throughput under client load\n\
  dayrun      extension: closed-loop fleet day (clean vs grid energy)\n\
  scaling     F_t vs threads (1,2,4,8) with bit-identity check; writes BENCH_scaling.json\n\
  detour      Dijkstra vs CH backend x graph-size sweep (all datasets + generated\n\
              urban grids) with bit-identity check; writes BENCH_detour.json\n\
              (exits non-zero when any backend diverges)\n\
  prune       lazy filter-refine: fleet x radius x pruning on/off sweep counting\n\
              exact-EC evaluations avoided, with bit-identity check; writes\n\
              BENCH_prune.json (exits non-zero when any pruned table diverges or\n\
              the largest fleet avoids no evaluations)\n\
  adaptive    cost-model-driven selection: Auto vs both static choices per decision\n\
              dimension (detour backend, pruning) on every world — paper datasets,\n\
              a sparse-fleet grid and metro-class substrates (--metro full adds a\n\
              1M+-node grid with 100k chargers); writes BENCH_adaptive.json (exits\n\
              non-zero when Auto loses to the best static choice on any row, or any\n\
              table diverges)\n\
  sessions    fleet-scale serving: sessions (10,100,1000) x service threads (1,4,8)\n\
              through the multi-tenant SessionService, measuring throughput, p50/p99\n\
              event latency and the cross-session forecast-sharing hit rate, with a\n\
              bit-identity check per cell; writes BENCH_sessions.json (exits non-zero\n\
              when any cell diverges or the largest sweep shares no forecasts)\n\
  shard       geographic sharding: shards (1,2,4,8) x front threads (1,4,8) over a\n\
              metro-tier grid city (--sessions trips, default 1000) through the\n\
              sharded front, measuring cross-shard hand-offs, the per-shard\n\
              breakdown and the federated shared-hit rate, with a bit-identity\n\
              check against the unsharded run per cell. events/s is critical-path\n\
              throughput: per-tick lane costs are measured in isolation and\n\
              LPT-scheduled onto the row's worker count, so the number is\n\
              independent of this host's core count (span(s) is that critical\n\
              path; serve(s) the serial wall clock); writes BENCH_shard.json\n\
              (exits non-zero when any cell diverges, 4 shards sustain < 3x the\n\
              critical-path events/s of 1 shard at >= 4 threads, or the federated\n\
              hit rate drifts more than 5 points)\n\
  serve       tiered Offering-Table cache under closed-loop Zipf load: deterministic\n\
              virtual clients (skew 0/0.8/1.2 x 1k/10k/50k sessions, or --sessions N\n\
              for a single fleet size) hammer a 2-shard front cache-off then\n\
              cache-on, measuring sustained events/s, p50/p99/p999 latency and\n\
              per-tier hit rates, with a bit-identity check per cell plus an\n\
              identity matrix across shard x thread counts on the smallest\n\
              high-skew cell; writes BENCH_serve.json (exits non-zero when any\n\
              cell diverges, a high-skew cell never hits the cache, or cache-on\n\
              falls below the throughput gate: 1.5x at >=10k sessions, 1.0x below)\n\
  recovery    crash-recovery fidelity: seeded crashes (clean kills at record/tick\n\
              boundaries, torn tails mid-record) x recovery threads (1,4,8) over a\n\
              journaled fleet, asserting the recovered Offering Tables are\n\
              bit-identical to the uninterrupted run, plus a deterministic chaos\n\
              soak (journal-append failures, worker panics, snapshot corruption);\n\
              writes BENCH_recovery.json (exits non-zero on any divergence or any\n\
              fault that escapes containment)\n\
  outcomes    closed-loop realized outcomes: driver policies (Nearest, CommitTop1,\n\
              HedgeTopK, ReQueryOnFull) x fleet sizes x demand intensities through\n\
              the stochastic-occupancy simulator, measuring realized wait, strand\n\
              rate, queue depth, detour energy and realized-vs-predicted EC error,\n\
              with a per-cell determinism matrix (solver threads 1/4/8 + reversed\n\
              registration must be bit-identical) and a feedback on/off probe;\n\
              --sessions N runs a single fleet of N vehicles (CI smoke); writes\n\
              BENCH_outcomes.json (exits non-zero when any cell diverges, a table\n\
              policy fails to beat Nearest on strand rate AND mean wait at the\n\
              highest intensity, ReQueryOnFull strands more than CommitTop1 on any\n\
              cell, or observed-full feedback fails to alter realized outcomes)\n\
  validate    self-check: assert every headline shape claim (exits non-zero on failure)\n\
  ext         all four extensions\n\
  --threads N worker threads for ranking / rep fan-out (default 1)\n\
  --detour-backend B  detour engine for every ranking in the run (default auto:\n\
              the calibrated cost model picks per graph); bit-identical results\n\
              either way, only the speed changes"
    );
    std::process::exit(2);
}

fn print_regret(harness: &HarnessConfig) {
    let rows = run_regret(harness);
    println!("\n=== Extension: forecast-driven regret ===");
    println!("{:<12} {:>14} {:>14} {:>9}", "dataset", "SC% (paper)", "SC% (truth)", "regret");
    for r in rows {
        println!(
            "{:<12} {:>14.2} {:>14.2} {:>9.2}",
            r.dataset,
            r.forecast_sc_pct,
            r.actual_sc_pct,
            r.forecast_sc_pct - r.actual_sc_pct
        );
    }
}

fn print_cache(harness: &HarnessConfig) {
    let rows = run_cache(harness);
    println!("\n=== Extension: Dynamic Caching ablation ===");
    println!(
        "{:<12} {:<12} {:>8} {:>9} {:>10} {:>10} {:>8}",
        "dataset", "config", "SC%", "Ft(ms)", "api calls", "hits", "adapts"
    );
    for r in rows {
        println!(
            "{:<12} {:<12} {:>8.2} {:>9.3} {:>10} {:>10} {:>8}",
            r.dataset, r.label, r.sc_pct, r.ft_ms, r.upstream_calls, r.cache_hits, r.adaptations
        );
    }
}

fn print_modes(harness: &HarnessConfig) {
    let (compute_ms, rows) = run_modes(harness);
    println!("\n=== Extension: operating-mode latency (ranking {compute_ms:.3} ms) ===");
    println!("{:<12} {:>12} {:>12}", "mode", "cold (ms)", "warm (ms)");
    for r in rows {
        println!("{:<12} {:>12.2} {:>12.2}", format!("{:?}", r.mode), r.cold_ms, r.warm_ms);
    }
}

fn print_throughput(harness: &HarnessConfig) {
    let rows = run_throughput(harness, &[1, 2, 4, 8], 16);
    println!("\n=== Extension: Mode-2 server throughput (full solves, Oldenburg) ===");
    println!(
        "{:<9} {:>8} {:>10} {:>14} {:>16}",
        "clients", "workers", "requests", "tables/sec", "mean latency ms"
    );
    for r in rows {
        println!(
            "{:<9} {:>8} {:>10} {:>14.0} {:>16.3}",
            r.clients, r.workers, r.requests, r.tables_per_s, r.mean_latency_ms
        );
    }
}

fn print_dayrun(harness: &HarnessConfig) {
    let rows = run_dayrun(harness, 40);
    println!("\n=== Extension: closed-loop fleet day (40 vehicles, Oldenburg Tuesday) ===");
    println!(
        "{:<11} {:>7} {:>10} {:>10} {:>11} {:>10} {:>11} {:>8}",
        "policy", "stops", "conflicts", "clean kWh", "grid kWh", "clean %", "detour kWh", "skipped"
    );
    for r in rows {
        println!(
            "{:<11} {:>7} {:>10} {:>10.1} {:>11.1} {:>9.1}% {:>11.1} {:>8}",
            r.policy,
            r.charge_stops,
            r.conflicts,
            r.clean_kwh,
            r.grid_kwh,
            r.clean_fraction() * 100.0,
            r.detour_kwh,
            r.skipped
        );
    }
}

fn print_balance(harness: &HarnessConfig) {
    let rows = run_balance(harness, 40);
    println!("\n=== Extension: recommendation-traffic balancing (40 vehicles) ===");
    println!(
        "{:<14} {:>9} {:>9} {:>14} {:>8}",
        "method", "vehicles", "max load", "distinct tops", "SC%"
    );
    for r in rows {
        println!(
            "{:<14} {:>9} {:>9} {:>14} {:>8.2}",
            r.label, r.vehicles, r.max_load, r.distinct_tops, r.sc_pct
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let which = args[0].as_str();
    let mut harness = HarnessConfig::default();
    let mut csv_dir: Option<PathBuf> = None;
    let mut metro = MetroTier::Small;
    let mut sessions_override: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let val = args.get(i + 1).unwrap_or_else(|| usage());
        match flag {
            "--reps" => harness.reps = val.parse().unwrap_or_else(|_| usage()),
            "--trips" => harness.trips_per_rep = val.parse().unwrap_or_else(|_| usage()),
            "--scale" => {
                harness.scale = DatasetScale::fraction(val.parse().unwrap_or_else(|_| usage()));
            }
            "--seed" => harness.seed = val.parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                harness.threads = val.parse().unwrap_or_else(|_| usage());
                if harness.threads == 0 {
                    usage();
                }
            }
            "--detour-backend" => {
                harness.detour_backend = DetourBackend::parse(val).unwrap_or_else(|| usage());
            }
            "--metro" => metro = MetroTier::parse(val).unwrap_or_else(|| usage()),
            "--sessions" => {
                let n: usize = val.parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                sessions_override = Some(n);
            }
            "--csv" => csv_dir = Some(PathBuf::from(val)),
            _ => usage(),
        }
        i += 2;
    }
    let emit = |name: &str, rows: &[ecocharge_bench::Row]| {
        if let Some(dir) = &csv_dir {
            let path = dir.join(format!("{name}.csv"));
            match write_csv(&path, rows) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("csv write failed for {name}: {e}"),
            }
        }
    };

    let started = std::time::Instant::now();
    match which {
        "fig6" => {
            let rows = run_fig6(&harness);
            print_rows("Figure 6: Performance Evaluation", &rows, false);
            emit("fig6", &rows);
        }
        "fig7" => {
            let rows = run_fig7(&harness);
            print_rows("Figure 7: R-opt Evaluation", &rows, false);
            emit("fig7", &rows);
        }
        "fig8" => {
            let rows = run_fig8(&harness);
            print_rows("Figure 8: Q-opt Evaluation", &rows, false);
            emit("fig8", &rows);
        }
        "fig9" => {
            let rows = run_fig9(&harness);
            print_rows("Figure 9: Weight Ablation", &rows, true);
            emit("fig9", &rows);
        }
        "all" => {
            let rows = run_fig6(&harness);
            print_rows("Figure 6: Performance Evaluation", &rows, false);
            emit("fig6", &rows);
            let rows = run_fig7(&harness);
            print_rows("Figure 7: R-opt Evaluation", &rows, false);
            emit("fig7", &rows);
            let rows = run_fig8(&harness);
            print_rows("Figure 8: Q-opt Evaluation", &rows, false);
            emit("fig8", &rows);
            let rows = run_fig9(&harness);
            print_rows("Figure 9: Weight Ablation", &rows, true);
            emit("fig9", &rows);
        }
        "scaling" => {
            let rows = run_scaling(&harness, &[1, 2, 4, 8]);
            println!("\n=== Scaling: F_t vs worker threads (Oldenburg) ===");
            println!(
                "{:<12} {:>8} {:>10} {:>9} {:>8} {:>10}",
                "method", "threads", "Ft(ms)", "speedup", "tables", "identical"
            );
            for r in &rows {
                println!(
                    "{:<12} {:>8} {:>10.3} {:>8.2}x {:>8} {:>10}",
                    r.method, r.threads, r.ft_ms, r.speedup, r.tables, r.identical
                );
            }
            let path =
                csv_dir.clone().unwrap_or_else(|| PathBuf::from(".")).join("BENCH_scaling.json");
            match write_scaling_json(&path, &rows) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("scaling json write failed: {e}"),
            }
            if rows.iter().any(|r| !r.identical) {
                eprintln!("ERROR: a parallel run diverged from the single-threaded tables");
                std::process::exit(1);
            }
        }
        "detour" => {
            let rows = run_detour(&harness, &DatasetKind::ALL);
            println!(
                "\n=== Detour backends: three-sweep D-component batch, \
                 datasets + generated grids ==="
            );
            println!(
                "{:<19} {:>8} {:>9} {:>12} {:>10} {:>13} {:>13} {:>9} {:>10}",
                "graph",
                "nodes",
                "backend",
                "prep(ms)",
                "shortcuts",
                "query(us)",
                "settled/qry",
                "speedup",
                "identical"
            );
            for r in &rows {
                println!(
                    "{:<19} {:>8} {:>9} {:>12.1} {:>10} {:>13.1} {:>13.0} {:>8.2}x {:>10}",
                    r.dataset,
                    r.nodes,
                    r.backend.name(),
                    r.preprocess_ms,
                    r.shortcuts,
                    r.median_query_us,
                    r.mean_settled,
                    r.speedup,
                    r.identical
                );
            }
            let path =
                csv_dir.clone().unwrap_or_else(|| PathBuf::from(".")).join("BENCH_detour.json");
            match write_detour_json(&path, &rows) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("detour json write failed: {e}"),
            }
            if rows.iter().any(|r| !r.identical) {
                eprintln!("ERROR: a backend diverged from the Dijkstra single-threaded tables");
                std::process::exit(1);
            }
        }
        "prune" => {
            let rows = run_prune(&harness);
            println!("\n=== Lazy filter-refine: exact evaluations avoided (urban grid) ===");
            println!(
                "{:<7} {:>9} {:>8} {:>8} {:>12} {:>10} {:>9} {:>12} {:>12} {:>8} {:>10}",
                "fleet",
                "R(km)",
                "queries",
                "pool",
                "exact eager",
                "exact lazy",
                "avoided",
                "eager(us)",
                "lazy(us)",
                "speedup",
                "identical"
            );
            for r in &rows {
                println!(
                    "{:<7} {:>9.0} {:>8} {:>8} {:>12} {:>10} {:>8.1}% {:>12.1} {:>12.1} {:>7.2}x {:>10}",
                    r.fleet,
                    r.radius_km,
                    r.queries,
                    r.pool,
                    r.exact_unpruned,
                    r.exact_pruned,
                    r.avoided_pct,
                    r.median_unpruned_us,
                    r.median_pruned_us,
                    r.speedup,
                    r.identical
                );
            }
            let path =
                csv_dir.clone().unwrap_or_else(|| PathBuf::from(".")).join("BENCH_prune.json");
            match write_prune_json(&path, &rows) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("prune json write failed: {e}"),
            }
            if rows.iter().any(|r| !r.identical) {
                eprintln!("ERROR: a pruned run diverged from the unpruned tables");
                std::process::exit(1);
            }
            let largest = rows.iter().map(|r| r.fleet).max().unwrap_or(0);
            if !rows
                .iter()
                .filter(|r| r.fleet == largest)
                .any(|r| r.exact_pruned < r.exact_unpruned)
            {
                eprintln!("ERROR: pruning avoided no exact evaluations on the largest fleet");
                std::process::exit(1);
            }
        }
        "adaptive" => {
            let rows = run_adaptive(&harness, &DatasetKind::ALL, metro);
            println!(
                "\n=== Adaptive selection: Auto vs static per decision dimension \
                 (tolerance {:.2}x best static) ===",
                ecocharge_bench::adaptive::TOLERANCE
            );
            println!(
                "{:<19} {:>9} {:>9} {:>7} {:<8} {:>13} {:>13} {:>11} {:>7} {:>8} {:>10}",
                "world",
                "nodes",
                "edges",
                "fleet",
                "dim",
                "staticA(us)",
                "staticB(us)",
                "auto(us)",
                "pick",
                "auto_ok",
                "identical"
            );
            for r in &rows {
                println!(
                    "{:<19} {:>9} {:>9} {:>7} {:<8} {:>13.1} {:>13.1} {:>11.1} {:>7} {:>8} {:>10}",
                    r.world,
                    r.nodes,
                    r.edges,
                    r.fleet,
                    r.dim,
                    r.static_a_us,
                    r.static_b_us,
                    r.auto_us,
                    r.auto_choice,
                    r.auto_ok,
                    r.identical
                );
            }
            let path =
                csv_dir.clone().unwrap_or_else(|| PathBuf::from(".")).join("BENCH_adaptive.json");
            match write_adaptive_json(&path, &rows) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("adaptive json write failed: {e}"),
            }
            if rows.iter().any(|r| !r.identical) {
                eprintln!("ERROR: an adaptive run diverged from the static tables");
                std::process::exit(1);
            }
            if rows.iter().any(|r| !r.auto_ok) {
                eprintln!("ERROR: Auto lost to the best static choice on a row");
                std::process::exit(1);
            }
        }
        "sessions" => {
            let rows = run_sessions(&harness, &[10, 100, 1000], &[1, 4, 8]);
            println!("\n=== Sessions: fleet-scale serving (Oldenburg) ===");
            println!(
                "{:<9} {:>8} {:>8} {:>11} {:>10} {:>10} {:>9} {:>9} {:>8} {:>9} {:>8} {:>10}",
                "sessions",
                "threads",
                "events",
                "events/s",
                "p50(us)",
                "p99(us)",
                "deferred",
                "shared",
                "share%",
                "speedup",
                "tables",
                "identical"
            );
            for r in &rows {
                println!(
                    "{:<9} {:>8} {:>8} {:>11.0} {:>10.1} {:>10.1} {:>9} {:>9} {:>7.1}% {:>8.2}x {:>8} {:>10}",
                    r.sessions,
                    r.threads,
                    r.events,
                    r.events_per_s,
                    r.p50_us,
                    r.p99_us,
                    r.deferred,
                    r.shared_hits,
                    r.shared_hit_rate * 100.0,
                    r.speedup,
                    r.tables_emitted,
                    r.identical
                );
            }
            let path =
                csv_dir.clone().unwrap_or_else(|| PathBuf::from(".")).join("BENCH_sessions.json");
            match write_sessions_json(&path, &rows) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("sessions json write failed: {e}"),
            }
            if rows.iter().any(|r| !r.identical) {
                eprintln!("ERROR: a session-service run diverged from the single-threaded tables");
                std::process::exit(1);
            }
            let largest = rows.iter().map(|r| r.sessions).max().unwrap_or(0);
            if !rows.iter().filter(|r| r.sessions == largest).any(|r| r.shared_hits > 0) {
                eprintln!("ERROR: the largest sweep shared no forecasts across sessions");
                std::process::exit(1);
            }
        }
        "shard" => {
            let rows = run_shard(
                &harness,
                metro,
                sessions_override.unwrap_or(1000),
                &[1, 2, 4, 8],
                &[1, 4, 8],
            );
            println!(
                "\n=== Sharding: geographic partition x front threads ({}) ===",
                rows.first().map_or("?", |r| r.world.as_str())
            );
            println!(
                "{:<7} {:>8} {:>9} {:>9} {:>9} {:>8} {:>11} {:>9} {:>8} {:>8} {:>10} {:<24}",
                "shards",
                "threads",
                "events",
                "handoffs",
                "serve(s)",
                "span(s)",
                "events/s",
                "speedup",
                "share%",
                "drift",
                "identical",
                "per-shard events"
            );
            for r in &rows {
                let per_shard = r
                    .per_shard_events
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("/");
                println!(
                    "{:<7} {:>8} {:>9} {:>9} {:>9.2} {:>8.2} {:>11.0} {:>8.2}x {:>7.1}% {:>+8.3} {:>10} {:<24}",
                    r.shards,
                    r.threads,
                    r.events,
                    r.handoffs,
                    r.serve_s,
                    r.span_s,
                    r.events_per_s,
                    r.speedup,
                    r.shared_hit_rate * 100.0,
                    r.hit_rate_delta,
                    r.identical,
                    per_shard
                );
            }
            let path =
                csv_dir.clone().unwrap_or_else(|| PathBuf::from(".")).join("BENCH_shard.json");
            match write_shard_json(&path, &rows) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("shard json write failed: {e}"),
            }
            let failures = shard_gate_failures(&rows);
            if !failures.is_empty() {
                for f in &failures {
                    eprintln!("ERROR: {f}");
                }
                std::process::exit(1);
            }
        }
        "serve" => {
            let session_counts: Vec<usize> =
                sessions_override.map_or_else(|| vec![1000, 10_000, 50_000], |n| vec![n]);
            let report = run_serve(&harness, &session_counts, &[0.0, 0.8, 1.2]);
            println!(
                "\n=== Serve: tiered table cache under Zipf load ({}, {} shards) ===",
                report.rows.first().map_or("?", |r| r.world.as_str()),
                2
            );
            println!(
                "{:<9} {:>6} {:>8} {:>9} {:>11} {:>11} {:>8} {:>9} {:>9} {:>9} {:>7} {:>7} {:>10}",
                "sessions",
                "skew",
                "shapes",
                "events",
                "off ev/s",
                "on ev/s",
                "speedup",
                "p50(us)",
                "p99(us)",
                "p999(us)",
                "L1%",
                "L2%",
                "identical"
            );
            for r in &report.rows {
                println!(
                    "{:<9} {:>6.1} {:>8} {:>9} {:>11.0} {:>11.0} {:>7.2}x {:>9.1} {:>9.1} {:>9.1} {:>6.1}% {:>6.1}% {:>10}",
                    r.sessions,
                    r.skew,
                    r.shapes,
                    r.events,
                    r.off_events_per_s,
                    r.on_events_per_s,
                    r.speedup,
                    r.p50_us,
                    r.p99_us,
                    r.p999_us,
                    r.l1_hit_rate * 100.0,
                    r.l2_hit_rate * 100.0,
                    r.identical
                );
            }
            println!("\nidentity matrix (smallest high-skew cell, cached, vs flat uncached):");
            for c in &report.identity {
                println!("  shards={} threads={} identical={}", c.shards, c.threads, c.identical);
            }
            let path =
                csv_dir.clone().unwrap_or_else(|| PathBuf::from(".")).join("BENCH_serve.json");
            match write_serve_json(&path, &report) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("serve json write failed: {e}"),
            }
            let failures = serve_gate_failures(&report);
            if !failures.is_empty() {
                for f in &failures {
                    eprintln!("ERROR: {f}");
                }
                std::process::exit(1);
            }
        }
        "recovery" => {
            let rows = run_recovery(&harness, 100, &[1, 4, 8], 3);
            println!("\n=== Recovery: crash-point x thread sweep (Oldenburg, journaled) ===");
            println!(
                "{:<9} {:>8} {:>9} {:>6} {:>9} {:>9} {:>11} {:>10} {:>10}",
                "sessions",
                "threads",
                "records",
                "torn",
                "snapshot",
                "replayed",
                "recover(s)",
                "resume(s)",
                "identical"
            );
            for r in &rows {
                println!(
                    "{:<9} {:>8} {:>9} {:>6} {:>9} {:>9} {:>11.3} {:>10.3} {:>10}",
                    r.sessions,
                    r.threads,
                    r.surviving_records,
                    r.torn,
                    r.from_snapshot,
                    r.events_replayed,
                    r.recover_s,
                    r.resume_s,
                    r.identical
                );
            }
            let chaos = run_recovery_chaos(&harness, 100);
            println!("\n=== Recovery: deterministic chaos soak ===");
            println!("{:<32} {:>10} {:>20}", "scenario", "contained", "recovered identical");
            for c in &chaos {
                println!("{:<32} {:>10} {:>20}", c.scenario, c.contained, c.recovered_identical);
            }
            let path =
                csv_dir.clone().unwrap_or_else(|| PathBuf::from(".")).join("BENCH_recovery.json");
            match write_recovery_json(&path, &rows, &chaos) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("recovery json write failed: {e}"),
            }
            if rows.iter().any(|r| !r.identical) {
                eprintln!("ERROR: a recovered run diverged from the uninterrupted tables");
                std::process::exit(1);
            }
            if chaos.iter().any(|c| !c.contained || !c.recovered_identical) {
                eprintln!("ERROR: an injected fault escaped containment or corrupted recovery");
                std::process::exit(1);
            }
        }
        "outcomes" => {
            let fleets: Vec<usize> = sessions_override.map_or_else(|| vec![16, 32], |n| vec![n]);
            let intensities = [0.5, 1.5, 3.0];
            let report = run_outcomes_series(&harness, &fleets, &intensities);
            println!(
                "\n=== Outcomes: closed-loop realized outcomes ({}, {} chargers) ===",
                report.world, report.chargers
            );
            println!(
                "{:<14} {:>8} {:>9} {:>8} {:>7} {:>7} {:>9} {:>8} {:>9} {:>10} {:>9} {:>10}",
                "policy",
                "vehicles",
                "intensity",
                "attempts",
                "strand",
                "wait(s)",
                "queue",
                "divert",
                "requery",
                "detour kWh",
                "EC MAE",
                "identical"
            );
            for r in &report.rows {
                println!(
                    "{:<14} {:>8} {:>9.1} {:>8} {:>6.1}% {:>7.0} {:>9.2} {:>8} {:>9} {:>10.1} {:>9.2} {:>10}",
                    r.policy,
                    r.vehicles,
                    r.intensity,
                    r.attempts,
                    r.strand_rate * 100.0,
                    r.mean_wait_s,
                    r.mean_queue_len,
                    r.diversions,
                    r.re_queries,
                    r.detour_kwh,
                    r.ec_mae_kwh,
                    r.identical
                );
            }
            let fb = &report.feedback;
            println!(
                "\nfeedback probe ({}, {} vehicles, intensity {}): observed_full={} diverged={}",
                fb.policy, fb.vehicles, fb.intensity, fb.observed_full, fb.diverged
            );
            let path =
                csv_dir.clone().unwrap_or_else(|| PathBuf::from(".")).join("BENCH_outcomes.json");
            match write_outcomes_json(&path, &report) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("outcomes json write failed: {e}"),
            }
            let failures = outcomes_gate_failures(&report);
            if !failures.is_empty() {
                for f in &failures {
                    eprintln!("ERROR: {f}");
                }
                std::process::exit(1);
            }
        }
        "regret" => print_regret(&harness),
        "cache" => print_cache(&harness),
        "modes" => print_modes(&harness),
        "balance" => print_balance(&harness),
        "throughput" => print_throughput(&harness),
        "dayrun" => print_dayrun(&harness),
        "validate" => {
            let checks = run_validation(&harness);
            println!("\n=== Reproduction self-validation ===");
            let mut failed = 0;
            for c in &checks {
                println!("[{}] {} — {}", if c.pass { "PASS" } else { "FAIL" }, c.claim, c.evidence);
                if !c.pass {
                    failed += 1;
                }
            }
            println!("\n{} checks, {} failed", checks.len(), failed);
            if failed > 0 {
                std::process::exit(1);
            }
        }
        "ext" => {
            print_regret(&harness);
            print_cache(&harness);
            print_modes(&harness);
            print_balance(&harness);
            print_throughput(&harness);
            print_dayrun(&harness);
        }
        _ => usage(),
    }
    eprintln!("\n[{}] completed in {:.1}s", which, started.elapsed().as_secs_f64());
}
