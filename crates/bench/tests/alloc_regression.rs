//! Allocation-count regression pin for the scheduler's batch path.
//!
//! `EventScheduler::pop_batch_into` promises that a *warmed* tick loop —
//! steady-state serving popping a batch every tick into the same
//! caller-owned buffer — performs **zero allocations**: the batch buffer
//! is reused, and the deferral-lookahead scratch lives on the scheduler
//! across ticks. This test wires a counting global allocator around the
//! system one and pins that promise, so a future "just collect into a
//! Vec" regression on the per-tick hot path fails loudly instead of
//! showing up as a few percent of serve time at metro scale.
//!
//! This file holds exactly one `#[test]` on purpose: the counter is
//! process-global, and a sibling test allocating on another harness
//! thread would bleed into the measurement. The measured loop still runs
//! several times and takes the *minimum* count, so incidental harness
//! allocations cannot produce a flaky failure — a real regression
//! allocates on every pass and survives the minimum.

use ec_types::{DayOfWeek, SessionId, SimDuration, SimTime};
use ecocharge_session::{Event, EventKind, EventScheduler};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The system allocator with an allocation counter bolted on. Only
/// allocation *events* are counted (alloc/realloc/alloc_zeroed) — frees
/// are irrelevant to the zero-allocation claim.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const SESSIONS: usize = 64;
const ROUNDS: usize = 32;
const BUDGET: usize = 48; // below SESSIONS: every batch hits the budget cut + lookahead

fn refill(scheduler: &mut EventScheduler) {
    let t0 = SimTime::at(0, DayOfWeek::Tue, 7, 0);
    for round in 0..ROUNDS {
        let time = t0 + SimDuration::from_mins(round as u64);
        for s in 0..SESSIONS {
            scheduler.push(Event {
                time,
                session: SessionId(s as u32),
                kind: EventKind::Rerank,
                offset_m: (round * SESSIONS + s) as f64,
            });
        }
    }
}

fn drain(scheduler: &mut EventScheduler, batch: &mut Vec<Event>) -> (usize, u64) {
    let mut popped = 0;
    let mut deferred = 0;
    while !scheduler.is_empty() {
        deferred += scheduler.pop_batch_into(BUDGET, |_| false, batch);
        popped += batch.len();
    }
    (popped, deferred)
}

#[test]
fn pop_batch_steady_state_does_not_allocate() {
    let mut scheduler = EventScheduler::new();
    let mut batch: Vec<Event> = Vec::new();

    // Warm-up: one full refill + drain grows the heap, the caller's
    // batch buffer and the scheduler's lookahead scratch to their
    // steady-state capacities (none of them shrink on pop).
    refill(&mut scheduler);
    let (popped, deferred) = drain(&mut scheduler, &mut batch);
    assert_eq!(popped, SESSIONS * ROUNDS, "warm-up must drain every event");
    assert!(deferred > 0, "a sub-session budget must exercise the deferral lookahead");

    // Steady state: identical load through the warmed structures, the
    // minimum across passes pinned at zero allocations.
    let mut min_allocs = u64::MAX;
    for _ in 0..5 {
        refill(&mut scheduler);
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        let (popped, _) = drain(&mut scheduler, &mut batch);
        let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
        assert_eq!(popped, SESSIONS * ROUNDS);
        min_allocs = min_allocs.min(during);
    }
    assert_eq!(
        min_allocs, 0,
        "a warmed pop_batch_into tick loop must not allocate (scheduler.rs's documented \
         zero-allocation contract)"
    );
}
