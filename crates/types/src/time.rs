//! The simulation clock.
//!
//! All estimated components are functions of *when*: solar output follows
//! the diurnal cycle, charger busyness follows weekly "popular times"
//! histograms, and traffic follows rush hours. [`SimTime`] counts seconds
//! from the start of a simulated week (Monday 00:00) and wraps modulo one
//! week for timetable lookups while retaining the absolute value so that
//! forecast horizons (ETA minus now) remain meaningful.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Seconds in one minute/hour/day/week.
pub const MINUTE_S: u64 = 60;
/// Seconds in one hour.
pub const HOUR_S: u64 = 3_600;
/// Seconds in one day.
pub const DAY_S: u64 = 86_400;
/// Seconds in one week.
pub const WEEK_S: u64 = 7 * DAY_S;

/// Day of week, Monday-first (matching the busy-timetable layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DayOfWeek {
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
    /// Sunday.
    Sun,
}

impl DayOfWeek {
    /// All days, Monday first.
    pub const ALL: [DayOfWeek; 7] =
        [Self::Mon, Self::Tue, Self::Wed, Self::Thu, Self::Fri, Self::Sat, Self::Sun];

    /// Day index, Monday = 0.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Is this a weekend day?
    #[must_use]
    pub const fn is_weekend(self) -> bool {
        matches!(self, Self::Sat | Self::Sun)
    }

    /// Day from index 0..7 (Monday = 0).
    ///
    /// # Panics
    /// Panics when `i >= 7`.
    #[must_use]
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }
}

/// An absolute simulation instant: seconds since Monday 00:00 of week 0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span between two [`SimTime`]s, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation: Monday 00:00, week 0.
    pub const ZERO: SimTime = SimTime(0);

    /// From raw seconds since simulation start.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s)
    }

    /// Convenience constructor: week number, day, hour, minute.
    ///
    /// # Panics
    /// Panics when `hour >= 24` or `minute >= 60`.
    #[must_use]
    pub fn at(week: u64, day: DayOfWeek, hour: u64, minute: u64) -> Self {
        assert!(hour < 24, "hour out of range: {hour}");
        assert!(minute < 60, "minute out of range: {minute}");
        SimTime(week * WEEK_S + day.index() as u64 * DAY_S + hour * HOUR_S + minute * MINUTE_S)
    }

    /// Raw seconds since simulation start.
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Seconds into the current week (`0..WEEK_S`).
    #[must_use]
    pub const fn week_secs(self) -> u64 {
        self.0 % WEEK_S
    }

    /// Day of week at this instant.
    #[must_use]
    pub fn day(self) -> DayOfWeek {
        DayOfWeek::from_index((self.week_secs() / DAY_S) as usize)
    }

    /// Hour of day `0..24`.
    #[must_use]
    pub const fn hour(self) -> u64 {
        (self.0 % DAY_S) / HOUR_S
    }

    /// Fractional hour of day `0.0..24.0` — what the solar geometry uses.
    #[must_use]
    pub fn hour_f64(self) -> f64 {
        (self.0 % DAY_S) as f64 / HOUR_S as f64
    }

    /// Minute within the hour `0..60`.
    #[must_use]
    pub const fn minute(self) -> u64 {
        (self.0 % HOUR_S) / MINUTE_S
    }

    /// Index of the 15-minute slot within the week (`0..672`) — the
    /// resolution of the CDGS-style solar production series.
    #[must_use]
    pub const fn quarter_of_week(self) -> usize {
        (self.week_secs() / (15 * MINUTE_S)) as usize
    }

    /// Index of the hour within the week (`0..168`) — the resolution of
    /// the busy timetables.
    #[must_use]
    pub const fn hour_of_week(self) -> usize {
        (self.week_secs() / HOUR_S) as usize
    }

    /// Day of the simulation (0-based, not wrapped) — used as a seasonal /
    /// per-day seed for the weather realisation.
    #[must_use]
    pub const fn day_number(self) -> u64 {
        self.0 / DAY_S
    }

    /// Saturating subtraction of two instants.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From raw seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s)
    }

    /// From whole minutes.
    #[must_use]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * MINUTE_S)
    }

    /// From whole hours.
    #[must_use]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * HOUR_S)
    }

    /// Raw seconds.
    #[must_use]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Duration in fractional hours.
    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR_S as f64
    }

    /// From fractional seconds (rounded to the nearest whole second).
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be finite and non-negative: {s}");
        SimDuration(s.round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{} {:?} {:02}:{:02}", self.0 / WEEK_S, self.day(), self.hour(), self.minute())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= HOUR_S {
            write!(f, "{}h{:02}m", s / HOUR_S, (s % HOUR_S) / MINUTE_S)
        } else if s >= MINUTE_S {
            write!(f, "{}m{:02}s", s / MINUTE_S, s % MINUTE_S)
        } else {
            write!(f, "{s}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_composes_fields() {
        let t = SimTime::at(0, DayOfWeek::Tue, 10, 15);
        assert_eq!(t.day(), DayOfWeek::Tue);
        assert_eq!(t.hour(), 10);
        assert_eq!(t.minute(), 15);
    }

    #[test]
    fn week_wrap_preserves_day_and_hour() {
        let t = SimTime::at(3, DayOfWeek::Sun, 23, 59);
        assert_eq!(t.day(), DayOfWeek::Sun);
        assert_eq!(t.hour(), 23);
        assert_eq!(t.day_number(), 3 * 7 + 6);
    }

    #[test]
    fn quarter_slot_resolution() {
        assert_eq!(SimTime::at(0, DayOfWeek::Mon, 0, 0).quarter_of_week(), 0);
        assert_eq!(SimTime::at(0, DayOfWeek::Mon, 0, 15).quarter_of_week(), 1);
        assert_eq!(SimTime::at(0, DayOfWeek::Mon, 1, 0).quarter_of_week(), 4);
        assert_eq!(SimTime::at(0, DayOfWeek::Sun, 23, 45).quarter_of_week(), 671);
    }

    #[test]
    fn hour_of_week_range() {
        assert_eq!(SimTime::at(0, DayOfWeek::Mon, 0, 30).hour_of_week(), 0);
        assert_eq!(SimTime::at(0, DayOfWeek::Sun, 23, 30).hour_of_week(), 167);
        assert_eq!(SimTime::at(5, DayOfWeek::Wed, 12, 0).hour_of_week(), 2 * 24 + 12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::at(0, DayOfWeek::Mon, 10, 0);
        let eta = t + SimDuration::from_mins(90);
        assert_eq!(eta.hour(), 11);
        assert_eq!(eta.minute(), 30);
        assert_eq!((eta - t).as_secs(), 90 * 60);
        assert_eq!(eta.saturating_since(t).as_hours_f64(), 1.5);
        // saturating in the other direction
        assert_eq!((t - eta).as_secs(), 0);
    }

    #[test]
    fn weekend_detection() {
        assert!(DayOfWeek::Sat.is_weekend());
        assert!(DayOfWeek::Sun.is_weekend());
        assert!(!DayOfWeek::Wed.is_weekend());
    }

    #[test]
    fn hour_f64_is_fractional() {
        let t = SimTime::at(0, DayOfWeek::Mon, 6, 45);
        assert!((t.hour_f64() - 6.75).abs() < 1e-9);
    }

    #[test]
    fn duration_display() {
        assert_eq!(SimDuration::from_secs(45).to_string(), "45s");
        assert_eq!(SimDuration::from_mins(5).to_string(), "5m00s");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2h00m");
    }

    #[test]
    #[should_panic(expected = "hour")]
    fn at_rejects_bad_hour() {
        let _ = SimTime::at(0, DayOfWeek::Mon, 24, 0);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(1.6).as_secs(), 2);
    }
}
