//! The workspace-wide error type.
//!
//! EcoCharge is a library first: fallible operations return
//! `Result<_, EcError>` rather than panicking, so that an embedding
//! application (the paper's Mode 1/3 edge clients) can degrade gracefully —
//! e.g. fall back to a stale Offering Table when a provider times out.

use std::fmt;

/// Errors surfaced by the EcoCharge crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcError {
    /// A graph/trip references a node that does not exist.
    UnknownNode(u32),
    /// A query references a charger that does not exist.
    UnknownCharger(u32),
    /// No path exists between the requested endpoints.
    Unreachable {
        /// Source node index.
        from: u32,
        /// Target node index.
        to: u32,
    },
    /// A trip had fewer than two points / zero length.
    DegenerateTrip(String),
    /// A configuration value was out of its valid domain.
    InvalidConfig(String),
    /// A data provider (weather / traffic / availability) failed or timed
    /// out; carries the provider name. The name is `&'static str` so the
    /// error path of a hot retry loop never allocates.
    ProviderUnavailable(&'static str),
    /// The requested data is outside the covered region or horizon.
    OutOfCoverage(String),
    /// The charger set relevant to a query was empty (e.g. radius too
    /// small); the caller may retry with a larger radius.
    NoCandidates,
    /// Envelope pruning was forced on (`PruningMode::On`) while the
    /// information server runs degraded (stale serving, resilience
    /// fallbacks, or a non-model availability feed) — the availability
    /// envelopes would be unsound there, so the combination is refused
    /// instead of silently bypassed; carries the guard that tripped.
    PruningUnsound(&'static str),
}

impl EcError {
    /// The stable, machine-matchable error code of this variant.
    ///
    /// Codes are part of the public contract: monitoring, the session
    /// journal and the chaos harness count and match on them, so a
    /// variant's code never changes once released (new variants append
    /// new codes). The human-readable `Display` text, by contrast, may
    /// be reworded freely.
    #[must_use]
    pub const fn code(&self) -> &'static str {
        match self {
            Self::UnknownNode(_) => "EC-001",
            Self::UnknownCharger(_) => "EC-002",
            Self::Unreachable { .. } => "EC-003",
            Self::DegenerateTrip(_) => "EC-004",
            Self::InvalidConfig(_) => "EC-005",
            Self::ProviderUnavailable(_) => "EC-006",
            Self::OutOfCoverage(_) => "EC-007",
            Self::NoCandidates => "EC-008",
            Self::PruningUnsound(_) => "EC-009",
        }
    }
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode(id) => write!(f, "unknown road-network node v{id}"),
            Self::UnknownCharger(id) => write!(f, "unknown charger b{id}"),
            Self::Unreachable { from, to } => {
                write!(f, "no route from v{from} to v{to}")
            }
            Self::DegenerateTrip(why) => write!(f, "degenerate trip: {why}"),
            Self::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            Self::ProviderUnavailable(name) => write!(f, "provider unavailable: {name}"),
            Self::OutOfCoverage(what) => write!(f, "out of coverage: {what}"),
            Self::NoCandidates => write!(f, "no candidate chargers within radius"),
            Self::PruningUnsound(guard) => {
                write!(f, "pruning forced on against a degraded server ({guard})")
            }
        }
    }
}

impl std::error::Error for EcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(EcError::UnknownNode(3).to_string(), "unknown road-network node v3");
        assert_eq!(EcError::Unreachable { from: 1, to: 2 }.to_string(), "no route from v1 to v2");
        assert!(EcError::ProviderUnavailable("weather").to_string().contains("weather"));
        assert_eq!(EcError::NoCandidates.to_string(), "no candidate chargers within radius");
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            EcError::UnknownNode(0),
            EcError::UnknownCharger(0),
            EcError::Unreachable { from: 0, to: 1 },
            EcError::DegenerateTrip(String::new()),
            EcError::InvalidConfig(String::new()),
            EcError::ProviderUnavailable("x"),
            EcError::OutOfCoverage(String::new()),
            EcError::NoCandidates,
            EcError::PruningUnsound("stale serving"),
        ];
        let codes: Vec<&str> = all.iter().map(EcError::code).collect();
        assert_eq!(codes[0], "EC-001");
        assert_eq!(codes[7], "EC-008");
        assert_eq!(codes[8], "EC-009");
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "codes must be distinct");
        // Payload never changes the code.
        assert_eq!(EcError::UnknownNode(7).code(), EcError::UnknownNode(9).code());
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_e: E) {}
        assert_err(EcError::NoCandidates);
    }
}
