//! The workspace-wide error type.
//!
//! EcoCharge is a library first: fallible operations return
//! `Result<_, EcError>` rather than panicking, so that an embedding
//! application (the paper's Mode 1/3 edge clients) can degrade gracefully —
//! e.g. fall back to a stale Offering Table when a provider times out.

use std::fmt;

/// Errors surfaced by the EcoCharge crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcError {
    /// A graph/trip references a node that does not exist.
    UnknownNode(u32),
    /// A query references a charger that does not exist.
    UnknownCharger(u32),
    /// No path exists between the requested endpoints.
    Unreachable {
        /// Source node index.
        from: u32,
        /// Target node index.
        to: u32,
    },
    /// A trip had fewer than two points / zero length.
    DegenerateTrip(String),
    /// A configuration value was out of its valid domain.
    InvalidConfig(String),
    /// A data provider (weather / traffic / availability) failed or timed
    /// out; carries the provider name. The name is `&'static str` so the
    /// error path of a hot retry loop never allocates.
    ProviderUnavailable(&'static str),
    /// The requested data is outside the covered region or horizon.
    OutOfCoverage(String),
    /// The charger set relevant to a query was empty (e.g. radius too
    /// small); the caller may retry with a larger radius.
    NoCandidates,
}

impl fmt::Display for EcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode(id) => write!(f, "unknown road-network node v{id}"),
            Self::UnknownCharger(id) => write!(f, "unknown charger b{id}"),
            Self::Unreachable { from, to } => {
                write!(f, "no route from v{from} to v{to}")
            }
            Self::DegenerateTrip(why) => write!(f, "degenerate trip: {why}"),
            Self::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            Self::ProviderUnavailable(name) => write!(f, "provider unavailable: {name}"),
            Self::OutOfCoverage(what) => write!(f, "out of coverage: {what}"),
            Self::NoCandidates => write!(f, "no candidate chargers within radius"),
        }
    }
}

impl std::error::Error for EcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(EcError::UnknownNode(3).to_string(), "unknown road-network node v3");
        assert_eq!(EcError::Unreachable { from: 1, to: 2 }.to_string(), "no route from v1 to v2");
        assert!(EcError::ProviderUnavailable("weather").to_string().contains("weather"));
        assert_eq!(EcError::NoCandidates.to_string(), "no candidate chargers within radius");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_e: E) {}
        assert_err(EcError::NoCandidates);
    }
}
