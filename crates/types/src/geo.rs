//! WGS-84 geographic points and the distance primitives used across the
//! spatial layers.
//!
//! Two distance flavours are provided:
//!
//! * [`GeoPoint::haversine_m`] — great-circle distance, exact enough at any
//!   extent; used when precision matters (e.g. validating generators);
//! * [`GeoPoint::fast_dist_m`] — equirectangular approximation, ~5× cheaper;
//!   used in the hot kNN paths where the evaluation regions are at most a
//!   few hundred km across and the error is far below model noise.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 coordinate: longitude (x) and latitude (y), both in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Longitude in degrees, east positive.
    pub lon: f64,
    /// Latitude in degrees, north positive.
    pub lat: f64,
}

impl GeoPoint {
    /// Create a point from longitude/latitude degrees.
    ///
    /// # Panics
    /// Panics when the coordinate is outside the valid WGS-84 domain.
    #[must_use]
    pub fn new(lon: f64, lat: f64) -> Self {
        assert!((-180.0..=180.0).contains(&lon), "longitude out of range: {lon}");
        assert!((-90.0..=90.0).contains(&lat), "latitude out of range: {lat}");
        Self { lon, lat }
    }

    /// Great-circle (haversine) distance to `other`, in metres.
    #[must_use]
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lat2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = lat2 - lat1;
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Equirectangular-approximation distance to `other`, in metres.
    ///
    /// Error is < 0.5 % for separations under ~500 km at mid latitudes —
    /// well inside the noise of the estimated components.
    #[must_use]
    pub fn fast_dist_m(&self, other: &GeoPoint) -> f64 {
        let mean_lat = 0.5 * (self.lat + other.lat).to_radians();
        let dx = (other.lon - self.lon).to_radians() * mean_lat.cos();
        let dy = (other.lat - self.lat).to_radians();
        EARTH_RADIUS_M * (dx * dx + dy * dy).sqrt()
    }

    /// Squared equirectangular distance in (scaled) radians — a monotone
    /// proxy for [`fast_dist_m`](Self::fast_dist_m) usable as a kNN priority
    /// without the `sqrt`.
    #[must_use]
    pub fn fast_dist2(&self, other: &GeoPoint) -> f64 {
        let mean_lat = 0.5 * (self.lat + other.lat).to_radians();
        let dx = (other.lon - self.lon).to_radians() * mean_lat.cos();
        let dy = (other.lat - self.lat).to_radians();
        dx * dx + dy * dy
    }

    /// Point linearly interpolated between `self` (t=0) and `other` (t=1).
    ///
    /// Adequate for the short path segments (≤ 5 km) EcoCharge works with.
    #[must_use]
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        GeoPoint {
            lon: self.lon + (other.lon - self.lon) * t,
            lat: self.lat + (other.lat - self.lat) * t,
        }
    }

    /// Translate by metres east (`dx_m`) and north (`dy_m`).
    #[must_use]
    pub fn offset_m(&self, dx_m: f64, dy_m: f64) -> GeoPoint {
        let dlat = (dy_m / EARTH_RADIUS_M).to_degrees();
        let dlon = (dx_m / (EARTH_RADIUS_M * self.lat.to_radians().cos())).to_degrees();
        GeoPoint { lon: self.lon + dlon, lat: self.lat + dlat }
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.5}, {:.5})", self.lon, self.lat)
    }
}

/// An axis-aligned geographic bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// South-west corner.
    pub min: GeoPoint,
    /// North-east corner.
    pub max: GeoPoint,
}

impl BoundingBox {
    /// Build a box from two corners (normalised so `min` ≤ `max`).
    #[must_use]
    pub fn new(a: GeoPoint, b: GeoPoint) -> Self {
        Self {
            min: GeoPoint { lon: a.lon.min(b.lon), lat: a.lat.min(b.lat) },
            max: GeoPoint { lon: a.lon.max(b.lon), lat: a.lat.max(b.lat) },
        }
    }

    /// Smallest box containing every point in `pts`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn of_points<I: IntoIterator<Item = GeoPoint>>(pts: I) -> Option<Self> {
        let mut it = pts.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox { min: first, max: first };
        for p in it {
            bb.expand(p);
        }
        Some(bb)
    }

    /// Grow the box to include `p`.
    pub fn expand(&mut self, p: GeoPoint) {
        self.min.lon = self.min.lon.min(p.lon);
        self.min.lat = self.min.lat.min(p.lat);
        self.max.lon = self.max.lon.max(p.lon);
        self.max.lat = self.max.lat.max(p.lat);
    }

    /// Does the box contain `p` (inclusive on all edges)?
    #[must_use]
    pub fn contains(&self, p: &GeoPoint) -> bool {
        self.min.lon <= p.lon
            && p.lon <= self.max.lon
            && self.min.lat <= p.lat
            && p.lat <= self.max.lat
    }

    /// Do two boxes intersect (inclusive)?
    #[must_use]
    pub fn intersects(&self, other: &BoundingBox) -> bool {
        self.min.lon <= other.max.lon
            && other.min.lon <= self.max.lon
            && self.min.lat <= other.max.lat
            && other.min.lat <= self.max.lat
    }

    /// Geometric centre of the box.
    #[must_use]
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lon: 0.5 * (self.min.lon + self.max.lon),
            lat: 0.5 * (self.min.lat + self.max.lat),
        }
    }

    /// Width (east-west extent) in metres, measured at the centre latitude.
    #[must_use]
    pub fn width_m(&self) -> f64 {
        let c = self.center().lat;
        GeoPoint { lon: self.min.lon, lat: c }.fast_dist_m(&GeoPoint { lon: self.max.lon, lat: c })
    }

    /// Height (north-south extent) in metres.
    #[must_use]
    pub fn height_m(&self) -> f64 {
        let c = self.center().lon;
        GeoPoint { lon: c, lat: self.min.lat }.fast_dist_m(&GeoPoint { lon: c, lat: self.max.lat })
    }

    /// Minimum distance (metres, equirectangular) from `p` to the box;
    /// zero when `p` is inside. Used by the quadtree's best-first search.
    #[must_use]
    pub fn min_dist_m(&self, p: &GeoPoint) -> f64 {
        let lon = p.lon.clamp(self.min.lon, self.max.lon);
        let lat = p.lat.clamp(self.min.lat, self.max.lat);
        p.fast_dist_m(&GeoPoint { lon, lat })
    }

    /// Split into four equal quadrants: `[sw, se, nw, ne]`.
    #[must_use]
    pub fn quadrants(&self) -> [BoundingBox; 4] {
        let c = self.center();
        [
            BoundingBox { min: self.min, max: c },
            BoundingBox {
                min: GeoPoint { lon: c.lon, lat: self.min.lat },
                max: GeoPoint { lon: self.max.lon, lat: c.lat },
            },
            BoundingBox {
                min: GeoPoint { lon: self.min.lon, lat: c.lat },
                max: GeoPoint { lon: c.lon, lat: self.max.lat },
            },
            BoundingBox { min: c, max: self.max },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn berlin() -> GeoPoint {
        GeoPoint::new(13.405, 52.52)
    }
    fn munich() -> GeoPoint {
        GeoPoint::new(11.582, 48.135)
    }

    #[test]
    fn haversine_known_distance() {
        // Berlin–Munich is ~504 km.
        let d = berlin().haversine_m(&munich());
        assert!((d - 504_000.0).abs() < 5_000.0, "got {d}");
    }

    #[test]
    fn fast_dist_close_to_haversine_at_city_scale() {
        let a = GeoPoint::new(8.20, 53.14); // Oldenburg-ish
        let b = a.offset_m(12_000.0, -7_000.0);
        let h = a.haversine_m(&b);
        let f = a.fast_dist_m(&b);
        assert!((h - f).abs() / h < 0.005, "haversine {h} vs fast {f}");
    }

    #[test]
    fn fast_dist2_is_monotone_with_fast_dist() {
        let a = GeoPoint::new(0.0, 45.0);
        let near = a.offset_m(1_000.0, 0.0);
        let far = a.offset_m(5_000.0, 0.0);
        assert!(a.fast_dist2(&near) < a.fast_dist2(&far));
        assert!(a.fast_dist_m(&near) < a.fast_dist_m(&far));
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let (a, b) = (berlin(), munich());
        assert_eq!(a.haversine_m(&a), 0.0);
        assert!((a.haversine_m(&b) - b.haversine_m(&a)).abs() < 1e-6);
    }

    #[test]
    fn offset_roundtrip() {
        let a = GeoPoint::new(8.2, 53.1);
        let b = a.offset_m(3_000.0, 4_000.0);
        // 3-4-5 triangle: distance should be ~5 km.
        let d = a.haversine_m(&b);
        assert!((d - 5_000.0).abs() < 20.0, "got {d}");
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn rejects_invalid_latitude() {
        let _ = GeoPoint::new(0.0, 91.0);
    }

    #[test]
    fn bbox_contains_and_center() {
        let bb = BoundingBox::new(GeoPoint::new(1.0, 1.0), GeoPoint::new(3.0, 2.0));
        assert!(bb.contains(&GeoPoint::new(2.0, 1.5)));
        assert!(!bb.contains(&GeoPoint::new(0.5, 1.5)));
        assert_eq!(bb.center(), GeoPoint { lon: 2.0, lat: 1.5 });
    }

    #[test]
    fn bbox_of_points() {
        let pts = [GeoPoint::new(1.0, 5.0), GeoPoint::new(-2.0, 3.0), GeoPoint::new(4.0, 4.0)];
        let bb = BoundingBox::of_points(pts).unwrap();
        assert_eq!(bb.min, GeoPoint { lon: -2.0, lat: 3.0 });
        assert_eq!(bb.max, GeoPoint { lon: 4.0, lat: 5.0 });
        assert!(BoundingBox::of_points(std::iter::empty()).is_none());
    }

    #[test]
    fn bbox_min_dist_zero_inside() {
        let bb = BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0));
        assert_eq!(bb.min_dist_m(&GeoPoint::new(0.5, 0.5)), 0.0);
        assert!(bb.min_dist_m(&GeoPoint::new(2.0, 0.5)) > 0.0);
    }

    #[test]
    fn quadrants_tile_the_box() {
        let bb = BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(4.0, 4.0));
        let qs = bb.quadrants();
        let c = bb.center();
        for q in &qs {
            assert!(bb.contains(&q.min) && bb.contains(&q.max));
        }
        // every quadrant touches the centre
        for q in &qs {
            assert!(q.contains(&c) || q.min == c || q.max == c);
        }
    }

    #[test]
    fn bbox_intersects() {
        let a = BoundingBox::new(GeoPoint::new(0.0, 0.0), GeoPoint::new(2.0, 2.0));
        let b = BoundingBox::new(GeoPoint::new(1.0, 1.0), GeoPoint::new(3.0, 3.0));
        let c = BoundingBox::new(GeoPoint::new(5.0, 5.0), GeoPoint::new(6.0, 6.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn extent_of_oldenburg_box() {
        // 45 km x 35 km box like the Oldenburg dataset's region.
        let sw = GeoPoint::new(8.0, 53.0);
        let ne = sw.offset_m(45_000.0, 35_000.0);
        let bb = BoundingBox::new(sw, ne);
        assert!((bb.width_m() - 45_000.0).abs() < 300.0);
        assert!((bb.height_m() - 35_000.0).abs() < 300.0);
    }
}
