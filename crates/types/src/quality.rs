//! Provenance of estimated components under degraded operation.
//!
//! The CkNN-EC contract is that a query *always* returns a ranked table
//! when any answer is defensible — but a defensible answer computed from a
//! 40-minute-old forecast is not the same thing as one computed from a
//! fresh feed. [`ComponentQuality`] records, per estimated component, how
//! the underlying data was obtained; [`Provenance`] bundles the three
//! component qualities of one table row so the driver-facing layer can
//! show *why* an interval is as wide as it is.

use crate::interval::Interval;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the data behind one estimated component was obtained.
///
/// Ordered by degradation: `Fresh < Corrected{..} < Stale{..} <
/// Fallback`, with staler entries ordering above fresher ones.
/// [`ComponentQuality::worst`] combines the qualities of multiple feeds
/// contributing to one component (e.g. sun + wind into `L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComponentQuality {
    /// Served from a live upstream call or an unexpired cache entry.
    Fresh,
    /// A fresh model value adjusted by a real-world observation (e.g. a
    /// driver arrived and saw the true plug occupancy); `age` is how old
    /// the observation was when the forecast was served. Not *degraded* —
    /// the correction carries strictly more information than the bare
    /// forecast — but no longer the pure model output either, so pruning
    /// envelopes and table caches must not treat it as `Fresh`.
    Corrected {
        /// Time since the observation behind the correction was made.
        age: SimDuration,
    },
    /// Served from the last-known-good tier past its TTL; `age` is how
    /// long past issue the value was when served. Its interval has been
    /// widened as a function of `age`.
    Stale {
        /// Time since the served value was issued by the upstream.
        age: SimDuration,
    },
    /// No usable data at all — the component is the configured fallback
    /// interval (typically the whole domain, `[0,1]`).
    Fallback,
}

impl ComponentQuality {
    /// True only for [`ComponentQuality::Fresh`].
    #[must_use]
    pub const fn is_fresh(self) -> bool {
        matches!(self, Self::Fresh)
    }

    /// True only for [`ComponentQuality::Corrected`].
    #[must_use]
    pub const fn is_corrected(self) -> bool {
        matches!(self, Self::Corrected { .. })
    }

    /// True for a degraded source (stale or fallback). An
    /// observation-corrected value is *not* degraded: the driver-facing
    /// honesty banner is about missing data, and a correction has more
    /// data behind it than the model alone.
    #[must_use]
    pub const fn is_degraded(self) -> bool {
        matches!(self, Self::Stale { .. } | Self::Fallback)
    }

    /// The worse of two qualities — what a component inherits when it is
    /// computed from several feeds.
    #[must_use]
    pub fn worst(self, other: Self) -> Self {
        self.max(other)
    }
}

impl fmt::Display for ComponentQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fresh => f.write_str("fresh"),
            Self::Corrected { age } => write!(f, "corr+{}m", age.as_secs() / 60),
            Self::Stale { age } => write!(f, "stale+{}m", age.as_secs() / 60),
            Self::Fallback => f.write_str("fallback"),
        }
    }
}

/// An interval together with the quality of the data that produced it —
/// what a degraded-capable information server returns instead of a bare
/// [`Interval`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourcedInterval {
    /// The forecast interval (already widened if served stale).
    pub value: Interval,
    /// How the value was obtained.
    pub quality: ComponentQuality,
}

impl SourcedInterval {
    /// A fresh reading.
    #[must_use]
    pub const fn fresh(value: Interval) -> Self {
        Self { value, quality: ComponentQuality::Fresh }
    }

    /// A stale reading of the given age.
    #[must_use]
    pub const fn stale(value: Interval, age: SimDuration) -> Self {
        Self { value, quality: ComponentQuality::Stale { age } }
    }

    /// A model value corrected by an observation of the given age.
    #[must_use]
    pub const fn corrected(value: Interval, age: SimDuration) -> Self {
        Self { value, quality: ComponentQuality::Corrected { age } }
    }

    /// A configured fallback value.
    #[must_use]
    pub const fn fallback(value: Interval) -> Self {
        Self { value, quality: ComponentQuality::Fallback }
    }
}

/// Per-component provenance of one Offering-Table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Provenance {
    /// Quality of the sustainable-charging-level component `L` (worst of
    /// the sun and wind feeds that fed it).
    pub l: ComponentQuality,
    /// Quality of the availability component `A`.
    pub a: ComponentQuality,
    /// Quality of the derouting component `D` (the traffic feed).
    pub d: ComponentQuality,
}

impl Provenance {
    /// Provenance of a row computed entirely from fresh data.
    pub const FRESH: Provenance = Provenance {
        l: ComponentQuality::Fresh,
        a: ComponentQuality::Fresh,
        d: ComponentQuality::Fresh,
    };

    /// True when every component came from a fresh source.
    #[must_use]
    pub const fn is_fully_fresh(&self) -> bool {
        self.l.is_fresh() && self.a.is_fresh() && self.d.is_fresh()
    }

    /// The worst quality across the three components — the row-level
    /// badge a UI would show.
    #[must_use]
    pub fn worst(&self) -> ComponentQuality {
        self.l.worst(self.a).worst(self.d)
    }
}

impl Default for Provenance {
    fn default() -> Self {
        Self::FRESH
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fully_fresh() {
            f.write_str("fresh")
        } else {
            write!(f, "L:{} A:{} D:{}", self.l, self.a, self.d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_orders_by_degradation() {
        let fresh = ComponentQuality::Fresh;
        let corr = ComponentQuality::Corrected { age: SimDuration::from_mins(2) };
        let young = ComponentQuality::Stale { age: SimDuration::from_mins(5) };
        let old = ComponentQuality::Stale { age: SimDuration::from_mins(50) };
        let fb = ComponentQuality::Fallback;
        assert!(fresh < corr && corr < young && young < old && old < fb);
        assert_eq!(fresh.worst(old), old);
        assert_eq!(old.worst(fb), fb);
        assert_eq!(fresh.worst(fresh), fresh);
        assert_eq!(fresh.worst(corr), corr, "a correction shows in the row badge");
        assert_eq!(corr.worst(young), young, "staleness dominates a correction");
    }

    #[test]
    fn degradation_predicates() {
        assert!(ComponentQuality::Fresh.is_fresh());
        assert!(ComponentQuality::Fallback.is_degraded());
        assert!(ComponentQuality::Stale { age: SimDuration::ZERO }.is_degraded());
        let corr = ComponentQuality::Corrected { age: SimDuration::from_mins(3) };
        assert!(corr.is_corrected());
        assert!(!corr.is_fresh(), "corrected is not the pure model output");
        assert!(!corr.is_degraded(), "corrected carries more data, not less");
    }

    #[test]
    fn provenance_rolls_up_worst_component() {
        let p = Provenance {
            l: ComponentQuality::Fresh,
            a: ComponentQuality::Stale { age: SimDuration::from_mins(10) },
            d: ComponentQuality::Fresh,
        };
        assert!(!p.is_fully_fresh());
        assert_eq!(p.worst(), ComponentQuality::Stale { age: SimDuration::from_mins(10) });
        assert!(Provenance::FRESH.is_fully_fresh());
        assert_eq!(Provenance::default(), Provenance::FRESH);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ComponentQuality::Fresh.to_string(), "fresh");
        assert_eq!(
            ComponentQuality::Stale { age: SimDuration::from_mins(25) }.to_string(),
            "stale+25m"
        );
        assert_eq!(Provenance::FRESH.to_string(), "fresh");
        let p = Provenance { d: ComponentQuality::Fallback, ..Provenance::FRESH };
        assert_eq!(p.to_string(), "L:fresh A:fresh D:fallback");
        let corr = ComponentQuality::Corrected { age: SimDuration::from_mins(7) };
        assert_eq!(corr.to_string(), "corr+7m");
    }

    #[test]
    fn sourced_interval_constructors_tag_quality() {
        let v = Interval::new(0.2, 0.4);
        assert_eq!(SourcedInterval::fresh(v).quality, ComponentQuality::Fresh);
        assert_eq!(
            SourcedInterval::stale(v, SimDuration::from_mins(3)).quality,
            ComponentQuality::Stale { age: SimDuration::from_mins(3) }
        );
        assert_eq!(SourcedInterval::fallback(v).quality, ComponentQuality::Fallback);
    }
}
