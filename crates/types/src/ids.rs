//! Typed identifiers.
//!
//! Every entity class in the system gets its own index newtype so that the
//! compiler rejects, say, indexing the charger fleet with a road-network
//! node id. All ids are dense `u32` indexes into their owning arena — the
//! representation the CSR graph and the charger fleet use internally.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw dense index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense `usize` index.
            ///
            /// # Panics
            /// Panics if `i` does not fit in `u32`.
            #[must_use]
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("id index exceeds u32 range"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// A road-network vertex.
    NodeId,
    "v"
);
define_id!(
    /// A directed road-network edge.
    EdgeId,
    "e"
);
define_id!(
    /// An EV charging station `b ∈ B`.
    ChargerId,
    "b"
);
define_id!(
    /// A moving electric vehicle `m ∈ M`.
    VehicleId,
    "m"
);
define_id!(
    /// A scheduled trip `P`.
    TripId,
    "P"
);
define_id!(
    /// A path segment `p_i` within a scheduled trip.
    SegmentId,
    "p"
);
define_id!(
    /// A continuous-query session in the fleet serving layer. Sessions
    /// are keyed by the trip they serve (one live session per trip), so
    /// the id is stable across registration orders — the property the
    /// deterministic event scheduler's total order relies on.
    SessionId,
    "S"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = ChargerId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, ChargerId(42));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(NodeId(3).to_string(), "v3");
        assert_eq!(ChargerId(7).to_string(), "b7");
        assert_eq!(SegmentId(1).to_string(), "p1");
        assert_eq!(TripId(0).to_string(), "P0");
        assert_eq!(VehicleId(5).to_string(), "m5");
        assert_eq!(EdgeId(9).to_string(), "e9");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
    }

    #[test]
    #[should_panic(expected = "u32")]
    fn from_index_rejects_overflow() {
        let _ = NodeId::from_index(usize::MAX);
    }
}
