//! Deterministic seed derivation.
//!
//! Workload generation must be reproducible: the same dataset preset and
//! master seed must yield bit-identical networks, trajectories, charger
//! fleets and weather realisations across runs and platforms. [`SplitMix64`]
//! is the standard 64-bit mixer used to (a) derive independent sub-seeds
//! for each subsystem from one master seed and (b) hash entity ids into
//! per-entity stochastic parameters (e.g. a charger's popularity phase)
//! without any shared mutable RNG state.

/// A SplitMix64 generator (Steele, Lea & Flood 2014). Passes BigCrush when
/// used as a stream; here it mostly serves as a seed-deriver and stateless
/// hash.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream from `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via Lemire's unbiased multiply-shift.
    ///
    /// # Panics
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // 128-bit multiply rejection sampling.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let l = m as u64;
            if l >= n {
                return (m >> 64) as u64;
            }
            // low part < n: possible bias zone, re-check threshold
            let t = n.wrapping_neg() % n;
            if l >= t {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Stateless mix of two 64-bit values — used to derive a per-entity seed
/// from `(subsystem_seed, entity_id)` pairs.
#[must_use]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut s = SplitMix64::new(a ^ b.rotate_left(32).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    s.next_u64()
}

/// Derive the `n`-th sub-seed of a master seed (e.g. seed 0 → network,
/// 1 → trajectories, 2 → chargers, 3 → weather …).
#[must_use]
pub fn subseed(master: u64, n: u64) -> u64 {
    mix(master, 0xA076_1D64_78BD_642F ^ n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SplitMix64::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = r.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1_000 {
            let v = r.range_f64(-3.0, 4.5);
            assert!((-3.0..4.5).contains(&v));
        }
    }

    #[test]
    fn subseeds_are_distinct() {
        let s0 = subseed(99, 0);
        let s1 = subseed(99, 1);
        let s2 = subseed(100, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }

    #[test]
    fn mix_is_stateless_deterministic() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(2, 1));
    }
}
