//! Closed-interval arithmetic for *Estimated Components*.
//!
//! The paper expresses every estimated quantity — sustainable charging level
//! `L`, availability `A`, derouting cost `D` — as an interval `[min, max]`
//! of a lower and an upper estimate (§III-B). The Sustainability Score is
//! then computed once with all lower bounds and once with all upper bounds
//! (Eq. 4–5), and the final ranking intersects the two result sets (Eq. 6).
//!
//! [`Interval`] implements the small algebra those formulas need: addition,
//! scaling, complement against a normalising maximum, intersection,
//! containment, and the *possible*/*necessary* order relations used by the
//! filtering phase to prune chargers that cannot make the top-k under any
//! realisation of the estimates.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A closed interval `[lo, hi]` over `f64` with `lo <= hi`.
///
/// Invariants: both endpoints are finite and `lo <= hi`. Constructors
/// normalise flipped endpoints rather than panic, because estimate sources
/// (e.g. a min/max pair read from two independent forecast members) may
/// legitimately arrive unordered.
///
/// ```
/// use ec_types::Interval;
///
/// // The derouting component of Eq. 4–5: cost interval, complemented.
/// let d = Interval::new(0.2, 0.5);
/// let score_term = d.complement(); // (1 − D), endpoints swap
/// assert_eq!((score_term.lo(), score_term.hi()), (0.5, 0.8));
///
/// // Eq. 6's result-set intersection builds on interval overlap:
/// assert!(d.overlaps(&Interval::new(0.4, 0.9)));
/// assert_eq!(d.intersect(&Interval::new(0.6, 0.9)), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawInterval", into = "RawInterval")]
pub struct Interval {
    lo: f64,
    hi: f64,
}

/// Wire-format twin of [`Interval`], used as a `serde` validation shim.
///
/// Deserialisation goes through `TryFrom<RawInterval>`, so an interval
/// read from untrusted input cannot bypass the constructor invariants
/// (finite endpoints, `lo <= hi`). Unlike [`Interval::new`], the
/// conversion *rejects* flipped endpoints instead of swapping them:
/// serialised data was produced from a valid interval, so a flipped
/// pair indicates corruption, not an unordered estimate source.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RawInterval {
    /// Lower endpoint as it appears on the wire.
    pub lo: f64,
    /// Upper endpoint as it appears on the wire.
    pub hi: f64,
}

impl TryFrom<RawInterval> for Interval {
    type Error = String;

    fn try_from(raw: RawInterval) -> Result<Self, Self::Error> {
        if !raw.lo.is_finite() || !raw.hi.is_finite() {
            return Err(format!("interval endpoints must be finite: [{}, {}]", raw.lo, raw.hi));
        }
        if raw.lo > raw.hi {
            return Err(format!("interval endpoints out of order: [{}, {}]", raw.lo, raw.hi));
        }
        Ok(Self { lo: raw.lo, hi: raw.hi })
    }
}

impl From<Interval> for RawInterval {
    fn from(iv: Interval) -> Self {
        Self { lo: iv.lo, hi: iv.hi }
    }
}

impl Interval {
    /// Create an interval from two endpoints, swapping them if flipped.
    ///
    /// # Panics
    /// Panics if either endpoint is NaN or infinite — estimates must be
    /// finite numbers.
    #[must_use]
    pub fn new(a: f64, b: f64) -> Self {
        assert!(a.is_finite() && b.is_finite(), "interval endpoints must be finite: [{a}, {b}]");
        if a <= b {
            Self { lo: a, hi: b }
        } else {
            Self { lo: b, hi: a }
        }
    }

    /// A degenerate (zero-width) interval `[v, v]` — an exact value.
    #[must_use]
    pub fn point(v: f64) -> Self {
        Self::new(v, v)
    }

    /// The zero interval `[0, 0]`.
    #[must_use]
    pub const fn zero() -> Self {
        Self { lo: 0.0, hi: 0.0 }
    }

    /// Build an interval as `center ± half_width` (width clamped to ≥ 0).
    #[must_use]
    pub fn around(center: f64, half_width: f64) -> Self {
        let hw = half_width.abs();
        Self::new(center - hw, center + hw)
    }

    /// Lower estimate.
    #[must_use]
    pub const fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper estimate.
    #[must_use]
    pub const fn hi(&self) -> f64 {
        self.hi
    }

    /// Midpoint `(lo + hi) / 2` — the point estimate.
    #[must_use]
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Width `hi - lo` — the total uncertainty.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// True when the interval is a single point (within `f64` equality).
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Does this interval contain the value `v`?
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Does this interval fully contain `other`?
    #[must_use]
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Intersection of two intervals, or `None` when they are disjoint.
    #[must_use]
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// True when the intervals share at least one point.
    #[must_use]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Smallest interval containing both operands (interval hull).
    #[must_use]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Clamp both endpoints into `[min, max]`.
    #[must_use]
    pub fn clamp(&self, min: f64, max: f64) -> Interval {
        debug_assert!(min <= max);
        Interval::new(self.lo.clamp(min, max), self.hi.clamp(min, max))
    }

    /// Normalise by a positive maximum: `[lo/max, hi/max]`, clamped to `[0,1]`.
    ///
    /// The paper normalises `L` and `D` "by dividing them with the
    /// environment's maximum" (§III-B); this is that operation.
    #[must_use]
    pub fn normalized(&self, max: f64) -> Interval {
        assert!(max > 0.0, "normalisation maximum must be positive, got {max}");
        Interval::new(self.lo / max, self.hi / max).clamp(0.0, 1.0)
    }

    /// The complement `1 - x` of a `[0,1]`-normalised interval.
    ///
    /// Used for the derouting term `(1 - D)` in Eq. 4–5: a *small* derouting
    /// cost should contribute a *large* score. Note the endpoints swap.
    #[must_use]
    pub fn complement(&self) -> Interval {
        Interval::new(1.0 - self.hi, 1.0 - self.lo)
    }

    /// `true` when `self` is *necessarily greater* than `other`: every
    /// realisation of `self` beats every realisation of `other`
    /// (`self.lo > other.hi`). A charger necessarily dominated by `k`
    /// others can be pruned in the filtering phase.
    #[must_use]
    pub fn necessarily_gt(&self, other: &Interval) -> bool {
        self.lo > other.hi
    }

    /// `true` when `self` is *possibly greater* than `other`: some
    /// realisation of `self` beats some realisation of `other`
    /// (`self.hi > other.lo`).
    #[must_use]
    pub fn possibly_gt(&self, other: &Interval) -> bool {
        self.hi > other.lo
    }

    /// Total order on midpoints, tie-broken by upper bound — the sort key
    /// the Offering Table uses for "highest to lowest rank" (Eq. 6).
    #[must_use]
    pub fn rank_cmp(&self, other: &Interval) -> std::cmp::Ordering {
        self.mid()
            .partial_cmp(&other.mid())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.hi.partial_cmp(&other.hi).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Linear interpolation between the endpoints: `t=0 → lo`, `t=1 → hi`.
    #[must_use]
    pub fn lerp(&self, t: f64) -> f64 {
        self.lo + (self.hi - self.lo) * t
    }
}

impl Default for Interval {
    fn default() -> Self {
        Self::zero()
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.4}, {:.4}]", self.lo, self.hi)
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval { lo: self.lo + rhs.lo, hi: self.hi + rhs.hi }
    }
}

impl AddAssign for Interval {
    fn add_assign(&mut self, rhs: Interval) {
        self.lo += rhs.lo;
        self.hi += rhs.hi;
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        // Interval subtraction: [a,b] - [c,d] = [a-d, b-c].
        Interval { lo: self.lo - rhs.hi, hi: self.hi - rhs.lo }
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval { lo: -self.hi, hi: -self.lo }
    }
}

impl Mul<f64> for Interval {
    type Output = Interval;
    fn mul(self, k: f64) -> Interval {
        if k >= 0.0 {
            Interval { lo: self.lo * k, hi: self.hi * k }
        } else {
            Interval { lo: self.hi * k, hi: self.lo * k }
        }
    }
}

impl Mul<Interval> for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let c = [self.lo * rhs.lo, self.lo * rhs.hi, self.hi * rhs.lo, self.hi * rhs.hi];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval { lo, hi }
    }
}

impl From<f64> for Interval {
    fn from(v: f64) -> Self {
        Interval::point(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_orders_endpoints() {
        let i = Interval::new(3.0, 1.0);
        assert_eq!(i.lo(), 1.0);
        assert_eq!(i.hi(), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn new_rejects_nan() {
        let _ = Interval::new(f64::NAN, 1.0);
    }

    #[test]
    fn point_has_zero_width() {
        let p = Interval::point(2.5);
        assert!(p.is_point());
        assert_eq!(p.width(), 0.0);
        assert_eq!(p.mid(), 2.5);
    }

    #[test]
    fn around_builds_symmetric_interval() {
        let i = Interval::around(10.0, 2.0);
        assert_eq!(i.lo(), 8.0);
        assert_eq!(i.hi(), 12.0);
        // negative half-width is treated as its absolute value
        let j = Interval::around(10.0, -2.0);
        assert_eq!(j, i);
    }

    #[test]
    fn intersect_overlapping() {
        let a = Interval::new(0.0, 5.0);
        let b = Interval::new(3.0, 8.0);
        assert_eq!(a.intersect(&b), Some(Interval::new(3.0, 5.0)));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        assert_eq!(a.intersect(&b), None);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn intersect_touching_is_point() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        let i = a.intersect(&b).unwrap();
        assert!(i.is_point());
        assert_eq!(i.lo(), 1.0);
    }

    #[test]
    fn hull_covers_both() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(4.0, 5.0);
        let h = a.hull(&b);
        assert!(h.contains_interval(&a) && h.contains_interval(&b));
        assert_eq!(h, Interval::new(0.0, 5.0));
    }

    #[test]
    fn complement_swaps_endpoints() {
        let d = Interval::new(0.2, 0.6);
        let c = d.complement();
        assert!((c.lo() - 0.4).abs() < 1e-12);
        assert!((c.hi() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn normalized_clamps_to_unit() {
        let i = Interval::new(-1.0, 20.0).normalized(10.0);
        assert_eq!(i, Interval::new(0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn normalized_rejects_zero_max() {
        let _ = Interval::new(0.0, 1.0).normalized(0.0);
    }

    #[test]
    fn arithmetic_add_sub() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(10.0, 20.0);
        assert_eq!(a + b, Interval::new(11.0, 22.0));
        assert_eq!(b - a, Interval::new(8.0, 19.0));
    }

    #[test]
    fn scale_by_negative_flips() {
        let a = Interval::new(1.0, 2.0);
        assert_eq!(a * -1.0, Interval::new(-2.0, -1.0));
        assert_eq!(-a, Interval::new(-2.0, -1.0));
    }

    #[test]
    fn interval_product_covers_all_corners() {
        let a = Interval::new(-1.0, 2.0);
        let b = Interval::new(-3.0, 4.0);
        let p = a * b;
        assert_eq!(p, Interval::new(-6.0, 8.0));
    }

    #[test]
    fn dominance_relations() {
        let lo = Interval::new(0.0, 0.4);
        let hi = Interval::new(0.5, 0.9);
        let mid = Interval::new(0.3, 0.7);
        assert!(hi.necessarily_gt(&lo));
        assert!(!mid.necessarily_gt(&lo));
        assert!(mid.possibly_gt(&lo));
        assert!(!lo.possibly_gt(&hi) || lo.hi() > hi.lo());
    }

    #[test]
    fn rank_cmp_orders_by_midpoint() {
        let a = Interval::new(0.0, 1.0); // mid 0.5
        let b = Interval::new(0.4, 0.8); // mid 0.6
        assert_eq!(a.rank_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(b.rank_cmp(&a), std::cmp::Ordering::Greater);
    }

    #[test]
    fn rank_cmp_ties_break_on_hi() {
        let a = Interval::new(0.2, 0.8); // mid 0.5
        let b = Interval::new(0.4, 0.6); // mid 0.5
        assert_eq!(a.rank_cmp(&b), std::cmp::Ordering::Greater);
    }

    #[test]
    fn lerp_hits_endpoints() {
        let i = Interval::new(2.0, 6.0);
        assert_eq!(i.lerp(0.0), 2.0);
        assert_eq!(i.lerp(1.0), 6.0);
        assert_eq!(i.lerp(0.5), 4.0);
    }

    #[test]
    fn clamp_restricts_range() {
        let i = Interval::new(-2.0, 9.0).clamp(0.0, 1.0);
        assert_eq!(i, Interval::new(0.0, 1.0));
    }

    #[test]
    fn raw_interval_try_from_enforces_invariants() {
        assert_eq!(
            Interval::try_from(RawInterval { lo: 1.0, hi: 2.0 }),
            Ok(Interval::new(1.0, 2.0))
        );
        assert!(Interval::try_from(RawInterval { lo: 2.0, hi: 1.0 })
            .unwrap_err()
            .contains("out of order"));
        assert!(Interval::try_from(RawInterval { lo: f64::NAN, hi: 1.0 })
            .unwrap_err()
            .contains("finite"));
        assert!(Interval::try_from(RawInterval { lo: 0.0, hi: f64::INFINITY })
            .unwrap_err()
            .contains("finite"));
    }

    #[test]
    fn raw_interval_roundtrips_valid_intervals() {
        let iv = Interval::new(-0.5, 3.25);
        let raw = RawInterval::from(iv);
        assert_eq!((raw.lo, raw.hi), (-0.5, 3.25));
        assert_eq!(Interval::try_from(raw), Ok(iv));
    }
}
