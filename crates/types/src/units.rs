//! Physical-unit newtypes.
//!
//! The scoring pipeline mixes energies (kWh), powers (kW), distances
//! (metres), times (seconds) and emissions (grams CO₂). These thin wrappers
//! exist for the API boundaries where a bare `f64` would invite unit bugs
//! (e.g. feeding a charger's kW rate where kWh over the ETA window is
//! expected). Internally, hot loops unwrap to `f64`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

macro_rules! define_unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub f64);

        impl $name {
            /// The wrapped magnitude.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Construct, asserting finiteness and non-negativity.
            ///
            /// # Panics
            /// Panics on NaN, infinity, or negative magnitude — all the
            /// quantities these units model are physically non-negative.
            #[must_use]
            pub fn new(v: f64) -> Self {
                assert!(
                    v.is_finite() && v >= 0.0,
                    concat!(stringify!($name), " must be finite and non-negative, got {}"),
                    v
                );
                Self(v)
            }

            /// Pointwise maximum.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Pointwise minimum.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name((self.0 - rhs.0).max(0.0))
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, k: f64) -> $name {
                $name(self.0 * k)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.3} ", $suffix), self.0)
            }
        }
    };
}

define_unit!(
    /// Energy in kilowatt-hours.
    KilowattHours,
    "kWh"
);
define_unit!(
    /// Power in kilowatts.
    Kilowatts,
    "kW"
);
define_unit!(
    /// Distance in metres.
    Meters,
    "m"
);
define_unit!(
    /// Time in seconds.
    Seconds,
    "s"
);
define_unit!(
    /// CO₂ emissions in grams.
    Co2Grams,
    "gCO2"
);

impl Kilowatts {
    /// Energy delivered at this constant power over `hours`.
    #[must_use]
    pub fn over_hours(self, hours: f64) -> KilowattHours {
        KilowattHours((self.0 * hours).max(0.0))
    }
}

impl Meters {
    /// Kilometres as a plain `f64`.
    #[must_use]
    pub fn km(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Construct from kilometres.
    #[must_use]
    pub fn from_km(km: f64) -> Self {
        Meters::new(km * 1_000.0)
    }
}

impl KilowattHours {
    /// Approximate grid-average CO₂ for this energy (g/kWh factor).
    ///
    /// Used only by the derouting term: driving a detour burns battery
    /// energy which (paper §II-A) maps to CO₂ at the network's emission
    /// factor.
    #[must_use]
    pub fn to_co2(self, grams_per_kwh: f64) -> Co2Grams {
        Co2Grams((self.0 * grams_per_kwh).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Kilowatts(11.0).over_hours(0.5);
        assert!((e.value() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn meters_km_conversion() {
        assert_eq!(Meters::from_km(3.5).value(), 3_500.0);
        assert_eq!(Meters(1_500.0).km(), 1.5);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let d = KilowattHours(1.0) - KilowattHours(5.0);
        assert_eq!(d.value(), 0.0);
    }

    #[test]
    fn co2_factor() {
        let g = KilowattHours(2.0).to_co2(400.0);
        assert_eq!(g.value(), 800.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn new_rejects_negative() {
        let _ = Meters::new(-1.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Kilowatts(11.0).to_string(), "11.000 kW");
        assert_eq!(Co2Grams(12.5).to_string(), "12.500 gCO2");
    }

    #[test]
    fn min_max() {
        assert_eq!(Seconds(3.0).max(Seconds(5.0)), Seconds(5.0));
        assert_eq!(Seconds(3.0).min(Seconds(5.0)), Seconds(3.0));
    }
}
