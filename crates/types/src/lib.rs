//! # `ec-types` — shared primitives for the EcoCharge workspace
//!
//! This crate holds the vocabulary types every other EcoCharge crate speaks:
//!
//! * [`Interval`] — closed `[min, max]` ranges used to express the paper's
//!   *Estimated Components* (fuzzy values with a lower and upper estimate);
//! * [`GeoPoint`] / [`BoundingBox`] — WGS-84 coordinates with the distance
//!   helpers the spatial layers need;
//! * typed identifiers ([`NodeId`], [`EdgeId`], [`ChargerId`], …) so that a
//!   charger id can never be confused with a graph node id;
//! * [`SimTime`] — the simulation clock (seconds since the start of a
//!   simulated week) that the weather, availability and traffic models key
//!   their timetables on;
//! * small physical-unit newtypes ([`KilowattHours`], [`Kilowatts`]) used at
//!   API boundaries where mixing units would be a real bug;
//! * [`EcError`] — the workspace-wide error type;
//! * [`ComponentQuality`] / [`Provenance`] / [`SourcedInterval`] — the
//!   degraded-mode vocabulary: how each estimated component's data was
//!   obtained (fresh, stale-and-widened, or fallback);
//! * [`SplitMix64`] — a tiny deterministic PRNG used to derive reproducible
//!   sub-seeds for workload generation without pulling `rand` into this
//!   dependency-free base crate.

pub mod error;
pub mod geo;
pub mod ids;
pub mod interval;
pub mod quality;
pub mod rng;
pub mod time;
pub mod units;

pub use error::EcError;
pub use geo::{BoundingBox, GeoPoint, EARTH_RADIUS_M};
pub use ids::{ChargerId, EdgeId, NodeId, SegmentId, SessionId, TripId, VehicleId};
pub use interval::{Interval, RawInterval};
pub use quality::{ComponentQuality, Provenance, SourcedInterval};
pub use rng::SplitMix64;
pub use time::{DayOfWeek, SimDuration, SimTime};
pub use units::{Co2Grams, KilowattHours, Kilowatts, Meters, Seconds};
