//! Property tests for the base types: interval algebra, geographic
//! distance, the simulation clock, and seed derivation.

use ec_types::{DayOfWeek, GeoPoint, Interval, SimDuration, SimTime, SplitMix64};
use proptest::prelude::*;

fn finite() -> impl Strategy<Value = f64> {
    -1.0e6..1.0e6
}

proptest! {
    // ---- Interval algebra ----

    #[test]
    fn interval_constructor_orders(a in finite(), b in finite()) {
        let i = Interval::new(a, b);
        prop_assert!(i.lo() <= i.hi());
        prop_assert!(i.contains(i.mid()));
        prop_assert!(i.width() >= 0.0);
    }

    #[test]
    fn interval_add_is_commutative_and_contains_sums(
        a in finite(), b in finite(), c in finite(), d in finite(),
        ta in 0.0..1.0f64, tb in 0.0..1.0f64,
    ) {
        let x = Interval::new(a, b);
        let y = Interval::new(c, d);
        prop_assert_eq!(x + y, y + x);
        // Fundamental containment: the sum of any two members is a member.
        let s = x.lerp(ta) + y.lerp(tb);
        prop_assert!((x + y).contains(s), "{} + {} ∌ {}", x, y, s);
    }

    #[test]
    fn interval_mul_contains_products(
        a in -100.0..100.0f64, b in -100.0..100.0f64,
        c in -100.0..100.0f64, d in -100.0..100.0f64,
        ta in 0.0..1.0f64, tb in 0.0..1.0f64,
    ) {
        let x = Interval::new(a, b);
        let y = Interval::new(c, d);
        let p = x.lerp(ta) * y.lerp(tb);
        prop_assert!((x * y).contains(p - 1e-9) || (x * y).contains(p + 1e-9) || (x * y).contains(p));
    }

    #[test]
    fn interval_sub_contains_differences(
        a in finite(), b in finite(), c in finite(), d in finite(),
        ta in 0.0..1.0f64, tb in 0.0..1.0f64,
    ) {
        let x = Interval::new(a, b);
        let y = Interval::new(c, d);
        let diff = x.lerp(ta) - y.lerp(tb);
        prop_assert!((x - y).contains(diff));
    }

    #[test]
    fn intersect_is_commutative_and_contained(a in finite(), b in finite(), c in finite(), d in finite()) {
        let x = Interval::new(a, b);
        let y = Interval::new(c, d);
        let i1 = x.intersect(&y);
        let i2 = y.intersect(&x);
        prop_assert_eq!(i1, i2);
        if let Some(i) = i1 {
            prop_assert!(x.contains_interval(&i));
            prop_assert!(y.contains_interval(&i));
        } else {
            prop_assert!(!x.overlaps(&y));
        }
    }

    #[test]
    fn hull_contains_both_and_is_minimal(a in finite(), b in finite(), c in finite(), d in finite()) {
        let x = Interval::new(a, b);
        let y = Interval::new(c, d);
        let h = x.hull(&y);
        prop_assert!(h.contains_interval(&x) && h.contains_interval(&y));
        prop_assert!(h.lo() == x.lo().min(y.lo()) && h.hi() == x.hi().max(y.hi()));
    }

    #[test]
    fn complement_is_involutive_on_unit(a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let x = Interval::new(a, b);
        let cc = x.complement().complement();
        prop_assert!((cc.lo() - x.lo()).abs() < 1e-12);
        prop_assert!((cc.hi() - x.hi()).abs() < 1e-12);
    }

    #[test]
    fn dominance_is_asymmetric(a in finite(), b in finite(), c in finite(), d in finite()) {
        let x = Interval::new(a, b);
        let y = Interval::new(c, d);
        if x.necessarily_gt(&y) {
            prop_assert!(!y.necessarily_gt(&x));
            prop_assert!(x.possibly_gt(&y));
        }
    }

    #[test]
    fn normalized_lands_in_unit(a in 0.0..1.0e5f64, b in 0.0..1.0e5f64, max in 1e-3..1.0e5f64) {
        let n = Interval::new(a, b).normalized(max);
        prop_assert!(n.lo() >= 0.0 && n.hi() <= 1.0);
    }

    // ---- Geography ----

    #[test]
    fn haversine_triangle_inequality(
        lon1 in -10.0..10.0f64, lat1 in 40.0..60.0f64,
        lon2 in -10.0..10.0f64, lat2 in 40.0..60.0f64,
        lon3 in -10.0..10.0f64, lat3 in 40.0..60.0f64,
    ) {
        let a = GeoPoint::new(lon1, lat1);
        let b = GeoPoint::new(lon2, lat2);
        let c = GeoPoint::new(lon3, lat3);
        prop_assert!(a.haversine_m(&c) <= a.haversine_m(&b) + b.haversine_m(&c) + 1e-6);
    }

    #[test]
    fn offset_distance_roundtrip(dx in -20_000.0..20_000.0f64, dy in -20_000.0..20_000.0f64) {
        let origin = GeoPoint::new(8.2, 53.1);
        let p = origin.offset_m(dx, dy);
        let expect = (dx * dx + dy * dy).sqrt();
        let got = origin.fast_dist_m(&p);
        prop_assert!((got - expect).abs() < expect.max(1.0) * 0.01, "expect {expect} got {got}");
    }

    #[test]
    fn fast_dist_close_to_haversine(
        lon in 5.0..15.0f64, lat in 45.0..55.0f64,
        dx in -50_000.0..50_000.0f64, dy in -50_000.0..50_000.0f64,
    ) {
        let a = GeoPoint::new(lon, lat);
        let b = a.offset_m(dx, dy);
        let h = a.haversine_m(&b);
        let f = a.fast_dist_m(&b);
        prop_assert!((h - f).abs() <= h.max(1.0) * 0.01);
    }

    // ---- Clock ----

    #[test]
    fn sim_time_field_roundtrip(week in 0u64..52, day in 0usize..7, hour in 0u64..24, min in 0u64..60) {
        let d = DayOfWeek::from_index(day);
        let t = SimTime::at(week, d, hour, min);
        prop_assert_eq!(t.day(), d);
        prop_assert_eq!(t.hour(), hour);
        prop_assert_eq!(t.minute(), min);
        prop_assert!(t.quarter_of_week() < 672);
        prop_assert!(t.hour_of_week() < 168);
    }

    #[test]
    fn duration_arithmetic_is_consistent(s1 in 0u64..1_000_000, s2 in 0u64..1_000_000) {
        let t = SimTime::from_secs(s1);
        let d = SimDuration::from_secs(s2);
        prop_assert_eq!(((t + d) - t).as_secs(), s2);
        prop_assert_eq!((t + d).saturating_since(t).as_secs(), s2);
        prop_assert_eq!(t.saturating_since(t + d).as_secs(), 0);
    }

    // ---- Seeds ----

    #[test]
    fn splitmix_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..8 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_never_escapes_range(seed in any::<u64>(), n in 1u64..10_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.below(n) < n);
        }
    }
}
