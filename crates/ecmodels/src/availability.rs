//! Charger availability from busy timetables.
//!
//! "Each EV charger's availability is estimated using some third-party
//! service (e.g., Google Maps POI busy timetables) … an interval is
//! produced A_min to A_max" (§III-B, Fig. 2). [`AvailabilityModel`]
//! synthesises weekly popular-times histograms per charger from a site
//! [`SiteArchetype`] (a downtown garage peaks at lunch, a workplace lot at
//! 9-17, a highway plaza on weekend afternoons) plus per-charger phase and
//! amplitude jitter, and serves interval forecasts at arbitrary ETAs.
//!
//! Convention: this module reports **availability** (1 = surely free,
//! 0 = surely occupied), i.e. `1 − busyness`; the paper's Fig. 2 shows the
//! busyness view.

use ec_types::{Interval, SimTime, SplitMix64};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Per-charger phase jitter bound, hours: every realisation samples its
/// phase shift from `[-PHASE_JITTER_H, PHASE_JITTER_H]`.
pub const PHASE_JITTER_H: f64 = 1.5;

/// Per-charger amplitude range applied to the archetype curve.
pub const AMPLITUDE_RANGE: (f64, f64) = (0.7, 1.1);

/// Per-charger busyness floor range.
pub const FLOOR_RANGE: (f64, f64) = (0.0, 0.12);

/// Half-range of the per-30-minute busyness noise draw.
pub const BUSY_NOISE_HALF: f64 = 0.1;

/// What kind of place a charger sits at — determines its weekly busy curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteArchetype {
    /// City-core public garage: lunch and after-work peaks, busy weekends.
    Downtown,
    /// Shopping mall: builds through the day, weekend-heavy.
    Mall,
    /// Residential street chargers: evening/overnight peak.
    Suburban,
    /// Motorway service plaza: travel-hour peaks, strong weekends.
    Highway,
    /// Office car park: 9–17 weekday plateau, dead weekends.
    Workplace,
}

impl SiteArchetype {
    /// All archetypes.
    pub const ALL: [SiteArchetype; 5] =
        [Self::Downtown, Self::Mall, Self::Suburban, Self::Highway, Self::Workplace];

    /// Baseline busyness in `[0,1]` for `hour` (0–23) on a weekday or
    /// weekend day.
    #[must_use]
    pub fn base_busy(self, hour: f64, weekend: bool) -> f64 {
        // Each archetype is a mixture of smooth bumps.
        let bump = |center: f64, width: f64, height: f64| -> f64 {
            let d = (hour - center) / width;
            height * (-0.5 * d * d).exp()
        };
        let v = match self {
            Self::Downtown => {
                if weekend {
                    bump(12.0, 3.0, 0.55) + bump(17.0, 2.5, 0.45) + 0.10
                } else {
                    bump(12.5, 1.8, 0.55) + bump(18.0, 2.0, 0.60) + 0.15
                }
            }
            Self::Mall => {
                if weekend {
                    bump(14.0, 3.5, 0.85) + 0.10
                } else {
                    bump(17.5, 3.0, 0.55) + 0.08
                }
            }
            Self::Suburban => {
                let overnight = bump(22.0, 3.0, 0.55) + bump(2.0, 3.0, 0.50);
                if weekend {
                    overnight + bump(11.0, 3.0, 0.20) + 0.08
                } else {
                    overnight + 0.05
                }
            }
            Self::Highway => {
                if weekend {
                    bump(11.0, 2.5, 0.70) + bump(16.5, 2.5, 0.75) + 0.08
                } else {
                    bump(8.0, 1.5, 0.45) + bump(17.5, 2.0, 0.50) + 0.10
                }
            }
            Self::Workplace => {
                if weekend {
                    0.04
                } else {
                    bump(10.0, 2.2, 0.70) + bump(14.5, 2.5, 0.60) + 0.05
                }
            }
        };
        v.clamp(0.0, 1.0)
    }
}

/// Deterministic availability service for a whole simulation.
#[derive(Debug, Clone)]
pub struct AvailabilityModel {
    seed: u64,
}

impl AvailabilityModel {
    /// An availability realisation keyed by `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Per-charger curve parameters derived from the charger's stable
    /// identity hash: `(phase_shift_h, amplitude, floor)`.
    fn charger_params(&self, charger_seed: u64) -> (f64, f64, f64) {
        let mut rng = SplitMix64::new(ec_types::rng::mix(self.seed, charger_seed));
        let phase = rng.range_f64(-PHASE_JITTER_H, PHASE_JITTER_H);
        let amplitude = rng.range_f64(AMPLITUDE_RANGE.0, AMPLITUDE_RANGE.1);
        let floor = rng.range_f64(FLOOR_RANGE.0, FLOOR_RANGE.1);
        (phase, amplitude, floor)
    }

    /// **Ground truth**: busyness of the charger at `t`, in `[0,1]` —
    /// the weekly timetable plus day-specific stochastic deviation (a
    /// timetable is an average; any given Tuesday differs).
    #[must_use]
    pub fn busy_fraction(&self, charger_seed: u64, arch: SiteArchetype, t: SimTime) -> f64 {
        let (phase, amplitude, floor) = self.charger_params(charger_seed);
        let base = arch.base_busy((t.hour_f64() - phase).rem_euclid(24.0), t.day().is_weekend());
        let mut noise_rng = SplitMix64::new(ec_types::rng::mix(
            self.seed ^ 0xBAD5EED,
            charger_seed ^ (t.as_secs() / 1_800), // new draw each 30 min
        ));
        let noise = (noise_rng.next_f64() - 0.5) * (2.0 * BUSY_NOISE_HALF);
        (floor + amplitude * base + noise).clamp(0.0, 1.0)
    }

    /// **Ground truth** availability: `1 − busy`.
    #[must_use]
    pub fn actual_availability(&self, charger_seed: u64, arch: SiteArchetype, t: SimTime) -> f64 {
        1.0 - self.busy_fraction(charger_seed, arch, t)
    }

    /// **Forecast API**: interval estimate, issued at `now`, of the
    /// charger's availability at `eta` — `[A_min, A_max]` of the paper.
    #[must_use]
    pub fn forecast_availability(
        &self,
        charger_seed: u64,
        arch: SiteArchetype,
        now: SimTime,
        eta: SimTime,
    ) -> Interval {
        let truth = self.actual_availability(charger_seed, arch, eta);
        let horizon_h = eta.saturating_since(now).as_hours_f64();
        let mut rng = SplitMix64::new(ec_types::rng::mix(
            self.seed ^ 0xA11A,
            charger_seed ^ (eta.as_secs() / 3_600),
        ));
        let skew = rng.range_f64(-1.0, 1.0);
        crate::forecast_interval(truth, horizon_h, skew)
    }
}

/// Step of the phase-scan grid used by [`busy_bounds_at`], hours.
const PHASE_SCAN_STEP_H: f64 = 1.0 / 64.0;

/// Safety pad added to the scanned base-curve extrema: every archetype
/// curve is a sum of Gaussian bumps whose hourly slope magnitudes total
/// well under `0.4`, so a `1/64 h` grid misses at most `0.4 · step / 2 ≈
/// 0.004` of true extremum. `0.01` over-covers that comfortably.
const PHASE_SCAN_PAD: f64 = 0.01;

fn busy_bounds_compute(arch: SiteArchetype, weekend: bool, hour: f64) -> (f64, f64) {
    // Range of the archetype base curve over every admissible phase shift.
    let steps = (2.0 * PHASE_JITTER_H / PHASE_SCAN_STEP_H).round() as usize;
    let (mut base_lo, mut base_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in 0..=steps {
        let phase = -PHASE_JITTER_H + i as f64 * PHASE_SCAN_STEP_H;
        let b = arch.base_busy((hour - phase).rem_euclid(24.0), weekend);
        base_lo = base_lo.min(b);
        base_hi = base_hi.max(b);
    }
    base_lo = (base_lo - PHASE_SCAN_PAD).max(0.0);
    base_hi = (base_hi + PHASE_SCAN_PAD).min(1.0);
    // Worst-case realisation: floor, amplitude and noise each at the edge
    // of their public jitter range (base is non-negative, so the extreme
    // amplitudes pair with the extreme base values).
    let lo = (FLOOR_RANGE.0 + AMPLITUDE_RANGE.0 * base_lo - BUSY_NOISE_HALF).clamp(0.0, 1.0);
    let hi = (FLOOR_RANGE.1 + AMPLITUDE_RANGE.1 * base_hi + BUSY_NOISE_HALF).clamp(0.0, 1.0);
    (lo, hi)
}

fn arch_index(arch: SiteArchetype) -> usize {
    match arch {
        SiteArchetype::Downtown => 0,
        SiteArchetype::Mall => 1,
        SiteArchetype::Suburban => 2,
        SiteArchetype::Highway => 3,
        SiteArchetype::Workplace => 4,
    }
}

/// Bounds `(lo, hi)` guaranteed to contain
/// [`AvailabilityModel::busy_fraction`] at instant `t` for **every** model
/// seed and charger realisation: the phase, amplitude, floor and noise
/// draws each range over their public jitter bounds ([`PHASE_JITTER_H`],
/// [`AMPLITUDE_RANGE`], [`FLOOR_RANGE`], [`BUSY_NOISE_HALF`]). Pure model
/// structure — no seed is consulted, so a pruning layer may use these
/// bounds without peeking at any realisation.
///
/// Mid-hour instants (the availability cache bucket representative) are
/// answered from a 5 archetypes × 2 day kinds × 24 hours memo table built
/// once per process; any other instant is computed directly.
#[must_use]
pub fn busy_bounds_at(arch: SiteArchetype, t: SimTime) -> (f64, f64) {
    let weekend = t.day().is_weekend();
    if t.as_secs() % 3_600 == 1_800 {
        static TABLE: OnceLock<[[(f64, f64); 24]; 10]> = OnceLock::new();
        let table = TABLE.get_or_init(|| {
            std::array::from_fn(|row| {
                let arch = SiteArchetype::ALL[row / 2];
                let weekend = row % 2 == 1;
                std::array::from_fn(|h| busy_bounds_compute(arch, weekend, h as f64 + 0.5))
            })
        });
        let hour = (t.as_secs() % 86_400) / 3_600;
        table[arch_index(arch) * 2 + usize::from(weekend)][hour as usize]
    } else {
        busy_bounds_compute(arch, weekend, t.hour_f64())
    }
}

/// Bounds `(lo, hi)` on [`AvailabilityModel::actual_availability`] at `t`
/// over every realisation: the complement of [`busy_bounds_at`].
#[must_use]
pub fn availability_truth_bounds(arch: SiteArchetype, t: SimTime) -> (f64, f64) {
    let (b_lo, b_hi) = busy_bounds_at(arch, t);
    (1.0 - b_hi, 1.0 - b_lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::{DayOfWeek, SimDuration};

    #[test]
    fn workplace_dead_on_weekends() {
        let wk = SiteArchetype::Workplace;
        assert!(wk.base_busy(11.0, true) < 0.1);
        assert!(wk.base_busy(11.0, false) > 0.5);
    }

    #[test]
    fn mall_peaks_weekend_afternoon() {
        let m = SiteArchetype::Mall;
        assert!(m.base_busy(14.0, true) > m.base_busy(14.0, false));
        assert!(m.base_busy(14.0, true) > m.base_busy(4.0, true));
    }

    #[test]
    fn suburban_peaks_overnight() {
        let s = SiteArchetype::Suburban;
        assert!(s.base_busy(22.0, false) > s.base_busy(13.0, false));
    }

    #[test]
    fn base_busy_always_unit_range() {
        for arch in SiteArchetype::ALL {
            for h in 0..24 {
                for weekend in [false, true] {
                    let v = arch.base_busy(f64::from(h), weekend);
                    assert!((0.0..=1.0).contains(&v), "{arch:?} h{h} -> {v}");
                }
            }
        }
    }

    #[test]
    fn busy_fraction_deterministic_per_charger() {
        let m = AvailabilityModel::new(5);
        let t = SimTime::at(0, DayOfWeek::Thu, 12, 15);
        assert_eq!(
            m.busy_fraction(7, SiteArchetype::Downtown, t),
            m.busy_fraction(7, SiteArchetype::Downtown, t)
        );
        // Different chargers of the same archetype differ (phase jitter).
        let spread = (0..20)
            .map(|c| m.busy_fraction(c, SiteArchetype::Downtown, t))
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)));
        assert!(spread.1 - spread.0 > 0.05, "chargers are clones: {spread:?}");
    }

    #[test]
    fn availability_is_complement_of_busy() {
        let m = AvailabilityModel::new(5);
        let t = SimTime::at(0, DayOfWeek::Thu, 18, 0);
        let b = m.busy_fraction(3, SiteArchetype::Highway, t);
        let a = m.actual_availability(3, SiteArchetype::Highway, t);
        assert!((a + b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forecast_contains_truth_mostly_and_widens() {
        let m = AvailabilityModel::new(8);
        let now = SimTime::at(0, DayOfWeek::Mon, 9, 0);
        let mut contained = 0;
        for c in 0..50u64 {
            let eta = now + SimDuration::from_mins(30);
            let f = m.forecast_availability(c, SiteArchetype::Downtown, now, eta);
            let truth = m.actual_availability(c, SiteArchetype::Downtown, eta);
            if f.contains(truth) {
                contained += 1;
            }
            let far = m.forecast_availability(
                c,
                SiteArchetype::Downtown,
                now,
                now + SimDuration::from_hours(48),
            );
            assert!(far.width() >= f.width() - 1e-9);
        }
        assert!(contained >= 40, "{contained}/50 contained");
    }

    #[test]
    fn busy_bounds_contain_every_realisation() {
        // The envelope's whole value is soundness: whatever the seed,
        // charger or noise draw, the truth must land inside the bounds.
        for seed in [1u64, 9, 77] {
            let m = AvailabilityModel::new(seed);
            for day_h in [(DayOfWeek::Tue, 9), (DayOfWeek::Sat, 14), (DayOfWeek::Mon, 2)] {
                let t = SimTime::at(0, day_h.0, day_h.1, 30); // mid-hour bucket
                for arch in SiteArchetype::ALL {
                    let (lo, hi) = busy_bounds_at(arch, t);
                    assert!(lo <= hi && (0.0..=1.0).contains(&lo) && hi <= 1.0);
                    for c in 0..60u64 {
                        let b = m.busy_fraction(c, arch, t);
                        assert!(
                            (lo..=hi).contains(&b),
                            "{arch:?} {day_h:?} charger {c}: busy {b} outside [{lo}, {hi}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn busy_bounds_memo_matches_direct_computation() {
        let t = SimTime::at(0, DayOfWeek::Wed, 11, 30);
        for arch in SiteArchetype::ALL {
            let memo = busy_bounds_at(arch, t);
            let direct = super::busy_bounds_compute(arch, false, t.hour_f64());
            assert_eq!(memo, direct);
        }
    }

    #[test]
    fn forecast_envelope_contains_every_forecast() {
        for seed in [3u64, 41] {
            let m = AvailabilityModel::new(seed);
            let now = SimTime::at(0, DayOfWeek::Fri, 8, 0);
            for hours in [1u64, 5, 12] {
                let eta = SimTime::at(0, DayOfWeek::Fri, 8, 30) + SimDuration::from_hours(hours);
                let horizon_h = eta.saturating_since(now).as_hours_f64();
                for arch in SiteArchetype::ALL {
                    let (t_lo, t_hi) = availability_truth_bounds(arch, eta);
                    let env = crate::forecast_envelope(t_lo, t_hi, horizon_h);
                    for c in 0..40u64 {
                        let f = m.forecast_availability(c, arch, now, eta);
                        assert!(
                            env.lo() <= f.lo() && f.hi() <= env.hi(),
                            "{arch:?} +{hours}h charger {c}: forecast {f} escapes envelope {env}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forecast_in_unit_range() {
        let m = AvailabilityModel::new(8);
        let now = SimTime::at(0, DayOfWeek::Sat, 13, 0);
        for c in 0..30u64 {
            for arch in SiteArchetype::ALL {
                let f = m.forecast_availability(c, arch, now, now + SimDuration::from_hours(2));
                assert!(f.lo() >= 0.0 && f.hi() <= 1.0);
            }
        }
    }
}
