//! The traffic / congestion simulator.
//!
//! The derouting cost `D` "accurately considers real-time traffic
//! information (e.g., congestion) at a given time and location retrieved
//! from a cloud GIS service (e.g., Google Maps, Waze, HERE Maps), thus D
//! consists of a lower and upper estimation" (§III-B). [`TrafficModel`]
//! plays that GIS service: congestion *multiplies* free-flow travel time
//! (and, more mildly, energy — stop-and-go costs regeneration losses),
//! following weekday rush-hour profiles per road class, with stochastic
//! incident noise and horizon-widening forecasts.

use ec_types::{Interval, SimTime, SplitMix64};
use roadclass_shim::RoadClassLike;

/// Minimal trait so this crate does not depend on `roadnet`: anything that
/// can say how congestible it is works as a road class.
pub mod roadclass_shim {
    /// Abstraction over road classes for congestion purposes.
    pub trait RoadClassLike: Copy {
        /// Peak-hour congestion multiplier this class can reach (≥ 1).
        fn peak_multiplier(self) -> f64;
    }

    /// A bare congestibility level when no real road class is at hand.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Congestibility(pub f64);

    impl RoadClassLike for Congestibility {
        fn peak_multiplier(self) -> f64 {
            self.0.max(1.0)
        }
    }
}

/// Deterministic traffic service for a whole simulation.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    seed: u64,
}

impl TrafficModel {
    /// A traffic realisation keyed by `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Baseline rush-hour shape in `[0,1]` (0 = free flow, 1 = worst
    /// peak), before class scaling.
    #[must_use]
    pub fn rush_shape(hour: f64, weekend: bool) -> f64 {
        let bump = |center: f64, width: f64, height: f64| -> f64 {
            let d = (hour - center) / width;
            height * (-0.5 * d * d).exp()
        };
        let v = if weekend {
            bump(12.0, 3.5, 0.35) + bump(17.0, 3.0, 0.30)
        } else {
            bump(8.0, 1.2, 0.95) + bump(17.5, 1.8, 1.0) + bump(12.5, 2.5, 0.25)
        };
        v.clamp(0.0, 1.0)
    }

    /// **Ground truth**: the congestion multiplier on travel time for a
    /// road of class `class` at `t` — 1.0 at free flow, up to the class's
    /// peak multiplier at the worst rush hour, plus incident noise.
    #[must_use]
    pub fn time_factor<C: RoadClassLike>(&self, class: C, t: SimTime) -> f64 {
        let shape = Self::rush_shape(t.hour_f64(), t.day().is_weekend());
        let peak = class.peak_multiplier();
        let mut rng = SplitMix64::new(ec_types::rng::mix(
            self.seed ^ 0x7EAF_F1C0,
            t.as_secs() / 900, // fresh incident draw each 15 min
        ));
        // Rare incidents add up to +40 % on top of the profile.
        let incident = if rng.next_f64() < 0.05 { rng.range_f64(0.1, 0.4) } else { 0.0 };
        (1.0 + (peak - 1.0) * shape) * (1.0 + incident)
    }

    /// **Ground truth**: the multiplier on *energy* — congestion wastes
    /// less energy than time (EVs recuperate), so the energy surcharge is
    /// a damped version of the time surcharge.
    #[must_use]
    pub fn energy_factor<C: RoadClassLike>(&self, class: C, t: SimTime) -> f64 {
        1.0 + 0.35 * (self.time_factor(class, t) - 1.0)
    }

    /// **Forecast API**: interval estimate, issued at `now`, of the time
    /// factor at `eta`. Returned as a multiplier interval with lower bound
    /// ≥ 1.
    #[must_use]
    pub fn forecast_time_factor<C: RoadClassLike>(
        &self,
        class: C,
        now: SimTime,
        eta: SimTime,
    ) -> Interval {
        let truth = self.time_factor(class, eta);
        let horizon_h = eta.saturating_since(now).as_hours_f64();
        // Relative half-width mirrors the [0,1] quantities' growth curve.
        let rel = crate::horizon_half_width(horizon_h);
        let mut rng =
            SplitMix64::new(ec_types::rng::mix(self.seed ^ 0x7AFF_1C57, eta.as_secs() / 3_600));
        let skew = rng.range_f64(-0.5, 0.5);
        let center = truth * (1.0 + skew * rel);
        Interval::around(center, truth * rel).clamp(1.0, f64::MAX / 2.0)
    }

    /// **Forecast API** for the energy factor (damped like
    /// [`energy_factor`](Self::energy_factor)).
    #[must_use]
    pub fn forecast_energy_factor<C: RoadClassLike>(
        &self,
        class: C,
        now: SimTime,
        eta: SimTime,
    ) -> Interval {
        let t = self.forecast_time_factor(class, now, eta);
        Interval::new(1.0 + 0.35 * (t.lo() - 1.0), 1.0 + 0.35 * (t.hi() - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::roadclass_shim::Congestibility;
    use super::*;
    use ec_types::{DayOfWeek, SimDuration};

    const ARTERIAL: Congestibility = Congestibility(2.2);
    const BACKSTREET: Congestibility = Congestibility(1.3);

    #[test]
    fn rush_shape_peaks_weekday_evening() {
        assert!(TrafficModel::rush_shape(17.5, false) > 0.9);
        assert!(TrafficModel::rush_shape(3.0, false) < 0.05);
        assert!(TrafficModel::rush_shape(17.5, false) > TrafficModel::rush_shape(17.5, true));
    }

    #[test]
    fn time_factor_at_least_one() {
        let m = TrafficModel::new(3);
        for hour in 0..24 {
            let t = SimTime::at(0, DayOfWeek::Tue, hour, 0);
            assert!(m.time_factor(ARTERIAL, t) >= 1.0);
        }
    }

    #[test]
    fn arterial_congests_more_than_backstreet() {
        let m = TrafficModel::new(3);
        let rush = SimTime::at(0, DayOfWeek::Tue, 17, 30);
        assert!(m.time_factor(ARTERIAL, rush) > m.time_factor(BACKSTREET, rush));
    }

    #[test]
    fn rush_worse_than_night() {
        let m = TrafficModel::new(3);
        let rush = SimTime::at(0, DayOfWeek::Tue, 17, 30);
        let night = SimTime::at(0, DayOfWeek::Tue, 3, 30);
        assert!(m.time_factor(ARTERIAL, rush) > m.time_factor(ARTERIAL, night));
    }

    #[test]
    fn energy_factor_damped() {
        let m = TrafficModel::new(3);
        let rush = SimTime::at(0, DayOfWeek::Tue, 17, 30);
        let tf = m.time_factor(ARTERIAL, rush);
        let ef = m.energy_factor(ARTERIAL, rush);
        assert!(ef >= 1.0 && ef < tf, "energy {ef} vs time {tf}");
    }

    #[test]
    fn forecast_contains_truth_for_unskewed_cases() {
        let m = TrafficModel::new(6);
        let now = SimTime::at(0, DayOfWeek::Wed, 9, 0);
        let mut contained = 0;
        for dh in 0..24u64 {
            let eta = now + SimDuration::from_hours(dh);
            let truth = m.time_factor(ARTERIAL, eta);
            if m.forecast_time_factor(ARTERIAL, now, eta).contains(truth) {
                contained += 1;
            }
        }
        assert!(contained >= 18, "{contained}/24 contained");
    }

    #[test]
    fn forecast_lower_bound_at_least_one() {
        let m = TrafficModel::new(6);
        let now = SimTime::at(0, DayOfWeek::Wed, 2, 0);
        let f = m.forecast_time_factor(BACKSTREET, now, now + SimDuration::from_hours(1));
        assert!(f.lo() >= 1.0);
    }

    #[test]
    fn forecast_widens_with_horizon() {
        let m = TrafficModel::new(6);
        let now = SimTime::at(0, DayOfWeek::Wed, 9, 0);
        // Compare the same ETA hour one day apart so the truth magnitude
        // matches and only the horizon differs.
        let near = m.forecast_time_factor(ARTERIAL, now, now + SimDuration::from_hours(2));
        let far = m.forecast_time_factor(ARTERIAL, now, now + SimDuration::from_hours(2 + 48));
        // Widths scale with truth; compare relative widths.
        let rel_near = near.width() / near.mid();
        let rel_far = far.width() / far.mid();
        assert!(rel_far >= rel_near - 1e-9, "near {rel_near} far {rel_far}");
    }

    #[test]
    fn deterministic() {
        let a = TrafficModel::new(1);
        let b = TrafficModel::new(1);
        let t = SimTime::at(0, DayOfWeek::Fri, 8, 15);
        assert_eq!(a.time_factor(ARTERIAL, t), b.time_factor(ARTERIAL, t));
    }
}
