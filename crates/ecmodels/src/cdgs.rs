//! CDGS-style solar production series.
//!
//! The paper's charger dataset carries "solar generation in a 15-minute
//! time-interval" from the *California Distributed Generation Statistics*
//! program (§V-A). [`ProductionSeries`] is that record shape: one kW sample
//! per 15-minute slot of a week, synthesised from the [`WeatherSim`]
//! ground truth for a station's location and panel rating. The charger
//! crate attaches one series per station; the sustainable-charging-level
//! computation integrates it over the charging window.

use crate::weather::WeatherSim;
use ec_types::{GeoPoint, Kilowatts, SimTime};
use serde::{Deserialize, Serialize};

/// Number of 15-minute slots in one week.
pub const QUARTERS_PER_WEEK: usize = 7 * 24 * 4;

/// One station-week of 15-minute solar production samples, kW.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductionSeries {
    /// kW produced in each 15-minute slot (`QUARTERS_PER_WEEK` entries).
    samples_kw: Vec<f32>,
    /// Panel nameplate rating.
    rating_kw: f32,
}

impl ProductionSeries {
    /// Record a station-week by sampling the weather ground truth at the
    /// station's location for week `week`.
    #[must_use]
    pub fn record(weather: &WeatherSim, loc: &GeoPoint, rating: Kilowatts, week: u64) -> Self {
        let samples_kw = (0..QUARTERS_PER_WEEK)
            .map(|q| {
                let t = SimTime::from_secs(week * 7 * 86_400 + q as u64 * 900);
                (weather.actual_sun_fraction(loc, t) * rating.value()) as f32
            })
            .collect();
        Self { samples_kw, rating_kw: rating.value() as f32 }
    }

    /// The panel's nameplate rating.
    #[must_use]
    pub fn rating(&self) -> Kilowatts {
        Kilowatts(f64::from(self.rating_kw))
    }

    /// Production at the 15-minute slot containing `t` (week-wrapped).
    #[must_use]
    pub fn at(&self, t: SimTime) -> Kilowatts {
        Kilowatts(f64::from(self.samples_kw[t.quarter_of_week()]))
    }

    /// Energy produced over `[from, to)`, integrating the 15-minute
    /// samples (partial slots pro-rated). `from` and `to` may span week
    /// boundaries; the series wraps.
    ///
    /// # Panics
    /// Panics when `to < from`.
    #[must_use]
    pub fn energy_kwh(&self, from: SimTime, to: SimTime) -> ec_types::KilowattHours {
        assert!(to >= from, "energy window must run forward");
        let mut total = 0.0f64;
        let mut at = from.as_secs();
        let end = to.as_secs();
        while at < end {
            let slot_end = (at / 900 + 1) * 900;
            let span_s = slot_end.min(end) - at;
            let q = SimTime::from_secs(at).quarter_of_week();
            total += f64::from(self.samples_kw[q]) * span_s as f64 / 3_600.0;
            at += span_s;
        }
        ec_types::KilowattHours(total)
    }

    /// Peak sample of the week.
    #[must_use]
    pub fn peak(&self) -> Kilowatts {
        Kilowatts(f64::from(self.samples_kw.iter().copied().fold(0.0f32, f32::max)))
    }

    /// Mean production over daylight-capable slots (whole week), kW.
    #[must_use]
    pub fn mean(&self) -> Kilowatts {
        let sum: f64 = self.samples_kw.iter().map(|&s| f64::from(s)).sum();
        Kilowatts(sum / self.samples_kw.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::{DayOfWeek, SimDuration};

    fn series() -> ProductionSeries {
        let w = WeatherSim::new(2);
        ProductionSeries::record(&w, &GeoPoint::new(8.2, 53.14), Kilowatts(20.0), 0)
    }

    #[test]
    fn has_full_week_of_samples() {
        let s = series();
        assert_eq!(QUARTERS_PER_WEEK, 672);
        assert!(s.peak().value() > 0.0, "a week of samples must see some sun");
        assert!(s.peak().value() <= 20.0 + 1e-6, "production cannot exceed rating");
    }

    #[test]
    fn night_slots_are_zero() {
        let s = series();
        let night = SimTime::at(0, DayOfWeek::Tue, 1, 30);
        assert_eq!(s.at(night).value(), 0.0);
    }

    #[test]
    fn energy_integration_matches_constant_slots() {
        let s = series();
        // Integrate exactly one slot: energy = kW * 0.25 h.
        let t0 = SimTime::at(0, DayOfWeek::Wed, 12, 0);
        let t1 = t0 + SimDuration::from_mins(15);
        let e = s.energy_kwh(t0, t1);
        let expect = s.at(t0).value() * 0.25;
        assert!((e.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn energy_pro_rates_partial_slots() {
        let s = series();
        let t0 = SimTime::at(0, DayOfWeek::Wed, 12, 5);
        let t1 = t0 + SimDuration::from_mins(5);
        let e = s.energy_kwh(t0, t1);
        let expect = s.at(t0).value() * (5.0 / 60.0);
        assert!((e.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn energy_additive_over_adjacent_windows() {
        let s = series();
        let t0 = SimTime::at(0, DayOfWeek::Wed, 10, 0);
        let t1 = t0 + SimDuration::from_mins(40);
        let t2 = t1 + SimDuration::from_mins(50);
        let whole = s.energy_kwh(t0, t2).value();
        let parts = s.energy_kwh(t0, t1).value() + s.energy_kwh(t1, t2).value();
        assert!((whole - parts).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_zero_energy() {
        let s = series();
        let t = SimTime::at(0, DayOfWeek::Wed, 12, 0);
        assert_eq!(s.energy_kwh(t, t).value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backwards_window_panics() {
        let s = series();
        let t = SimTime::at(0, DayOfWeek::Wed, 12, 0);
        let _ = s.energy_kwh(t + SimDuration::from_mins(10), t);
    }

    #[test]
    fn mean_below_peak() {
        let s = series();
        assert!(s.mean().value() < s.peak().value());
    }

    #[test]
    fn different_weeks_differ() {
        let w = WeatherSim::new(2);
        let loc = GeoPoint::new(8.2, 53.14);
        let a = ProductionSeries::record(&w, &loc, Kilowatts(20.0), 0);
        let b = ProductionSeries::record(&w, &loc, Kilowatts(20.0), 1);
        assert_ne!(a, b, "weather should vary week to week");
    }
}
