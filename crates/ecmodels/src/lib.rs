//! # `ec-models` — the Estimated Component models
//!
//! An *Estimated Component (EC)* is "a function that can have a fuzzy value
//! based on some estimates" (abstract). The paper uses three, each backed
//! by an external service it cannot control; this crate replaces those
//! services with deterministic simulators that expose both the **actual**
//! value (ground truth, what the Brute-Force oracle scores against) and a
//! **forecast interval** whose width grows with the forecast horizon — the
//! behaviour the paper attributes to GFS/ECMWF ("accuracy of 95-96 % for up
//! to 12 hours and 85-95 % for three days", §III-B):
//!
//! | paper source | module |
//! |--------------|--------|
//! | OpenWeather solar forecast | [`weather`] |
//! | Google-Maps popular-times busy timetables (Fig. 2) | [`availability`] |
//! | Google/Waze/HERE live traffic | [`traffic`] |
//! | CDGS 15-minute solar production records | [`cdgs`] |
//! | (§VII future work) utility rate cards & grid CO₂ | [`tariff`] |
//! | wind-farm capacity factors (§I names wind turbines as RES) | [`wind`] |
//!
//! All models are pure functions of `(seed, location, time)` — no hidden
//! state — so every experiment is reproducible bit-for-bit.

pub mod availability;
pub mod cdgs;
pub mod tariff;
pub mod traffic;
pub mod weather;
pub mod wind;

pub use availability::{
    availability_truth_bounds, busy_bounds_at, AvailabilityModel, SiteArchetype,
};
pub use cdgs::{ProductionSeries, QUARTERS_PER_WEEK};
pub use tariff::{TariffBand, TariffModel};
pub use traffic::TrafficModel;
pub use weather::WeatherSim;
pub use wind::WindSim;

use ec_types::Interval;

/// Half-width of a zero-horizon forecast (a now-cast): ±3 %.
pub const BASE_HALF_WIDTH: f64 = 0.03;

/// How fast forecast half-width grows per hour of horizon.
pub const HALF_WIDTH_GROWTH_PER_H: f64 = 0.0028;

/// Ceiling on forecast half-width, however far out.
pub const HALF_WIDTH_CAP: f64 = 0.25;

/// Half-width of a forecast interval for a quantity in `[0,1]`, as a
/// function of the forecast horizon in hours.
///
/// Calibrated to the paper's stated forecast accuracies: ±3 % now-casts,
/// ≈ ±6 % at 12 h (95-96 % accurate), ≈ ±15 % at 72 h (85-95 %), capped at
/// ±25 % beyond that.
#[must_use]
pub fn horizon_half_width(horizon_hours: f64) -> f64 {
    (BASE_HALF_WIDTH + HALF_WIDTH_GROWTH_PER_H * horizon_hours.max(0.0)).min(HALF_WIDTH_CAP)
}

/// The age at which reusing an estimate has cost `extra_half_width` of
/// honest extra uncertainty — the inverse of the horizon-growth model
/// (uncapped region). This is what bounds how long a cached solution may
/// keep serving its `L`/`A` forecasts: past this horizon the components
/// are staler than the accuracy budget allows and a full solve is owed.
#[must_use]
pub fn forecast_validity_horizon(extra_half_width: f64) -> ec_types::SimDuration {
    let hours = extra_half_width.max(0.0) / HALF_WIDTH_GROWTH_PER_H;
    ec_types::SimDuration::from_secs_f64(hours * 3_600.0)
}

/// Envelope of every [`forecast_interval`] whose truth lies in
/// `[truth_lo, truth_hi]`, whatever the skew draw: the centre can shift
/// off the truth by at most half the half-width, so both endpoints stay
/// within `1.5 × half-width` of the truth bounds (before the unit clamp,
/// which only shrinks the envelope from outside).
#[must_use]
pub fn forecast_envelope(truth_lo: f64, truth_hi: f64, horizon_hours: f64) -> Interval {
    let hw = horizon_half_width(horizon_hours);
    Interval::new((truth_lo - 1.5 * hw).max(0.0), (truth_hi + 1.5 * hw).min(1.0))
}

/// Build a `[0,1]`-clamped forecast interval around a truth value.
///
/// `skew ∈ [-1, 1]` shifts the interval centre off the truth by up to half
/// the half-width — forecasts are not centred oracles.
#[must_use]
pub fn forecast_interval(truth: f64, horizon_hours: f64, skew: f64) -> Interval {
    let hw = horizon_half_width(horizon_hours);
    let center = truth + skew.clamp(-1.0, 1.0) * hw * 0.5;
    Interval::around(center, hw).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_width_grows_with_horizon() {
        assert!(horizon_half_width(0.0) < horizon_half_width(12.0));
        assert!(horizon_half_width(12.0) < horizon_half_width(72.0));
    }

    #[test]
    fn half_width_matches_paper_accuracy_bands() {
        // ≈95 % accurate at 12 h → half-width in the 5–8 % band.
        let w12 = horizon_half_width(12.0);
        assert!((0.05..=0.08).contains(&w12), "12 h half-width {w12}");
        // ≈85–95 % at 72 h → half-width in the 10–25 % band.
        let w72 = horizon_half_width(72.0);
        assert!((0.10..=0.25).contains(&w72), "72 h half-width {w72}");
    }

    #[test]
    fn half_width_caps() {
        assert_eq!(horizon_half_width(10_000.0), 0.25);
        // Negative horizons (clock skew) behave like zero.
        assert_eq!(horizon_half_width(-5.0), horizon_half_width(0.0));
    }

    #[test]
    fn forecast_interval_contains_truth_when_unskewed() {
        for truth in [0.0, 0.3, 0.9, 1.0] {
            let i = forecast_interval(truth, 6.0, 0.0);
            assert!(i.contains(truth), "{i} should contain {truth}");
        }
    }

    #[test]
    fn forecast_interval_stays_in_unit_range() {
        for truth in [0.0, 0.05, 0.5, 0.98] {
            for h in [0.0, 12.0, 100.0] {
                for skew in [-1.0, 0.0, 1.0] {
                    let i = forecast_interval(truth, h, skew);
                    assert!(i.lo() >= 0.0 && i.hi() <= 1.0);
                }
            }
        }
    }

    #[test]
    fn validity_horizon_inverts_growth() {
        // Spending half an hour of staleness costs exactly
        // 0.5 h × growth-per-hour of extra half-width, and vice versa.
        let h = forecast_validity_horizon(HALF_WIDTH_GROWTH_PER_H * 0.5);
        assert_eq!(h, ec_types::SimDuration::from_mins(30));
        assert_eq!(forecast_validity_horizon(-1.0), ec_types::SimDuration::ZERO);
    }

    #[test]
    fn skew_shifts_centre() {
        let up = forecast_interval(0.5, 12.0, 1.0);
        let down = forecast_interval(0.5, 12.0, -1.0);
        assert!(up.mid() > down.mid());
    }
}
