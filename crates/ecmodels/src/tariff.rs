//! Time-of-use electricity tariffs and grid carbon intensity.
//!
//! The paper's future work (§VII) plans to "extend our solution by
//! integrating EcoCharge with smart grid technologies and taking
//! advantage of off-peak electricity rates and grid stabilization
//! services". This module supplies the substrate: a deterministic
//! time-of-use tariff (the published rate card every utility exposes) and
//! a grid carbon-intensity curve (low at solar noon, peaking in the
//! evening ramp — the classic duck curve), with forecast intervals for
//! the stochastic intensity.

use ec_types::{Interval, SimTime, SplitMix64};
use serde::{Deserialize, Serialize};

/// Time-of-use price bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TariffBand {
    /// Overnight valley (22:00–06:00).
    OffPeak,
    /// Daytime shoulder.
    Shoulder,
    /// Weekday evening peak (17:00–20:00).
    Peak,
}

/// A published time-of-use rate card plus a stochastic grid-carbon model.
#[derive(Debug, Clone)]
pub struct TariffModel {
    /// €/kWh in the off-peak band.
    pub offpeak_eur: f64,
    /// €/kWh in the shoulder band.
    pub shoulder_eur: f64,
    /// €/kWh in the peak band.
    pub peak_eur: f64,
    seed: u64,
}

impl TariffModel {
    /// A central-European household rate card.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { offpeak_eur: 0.18, shoulder_eur: 0.28, peak_eur: 0.42, seed }
    }

    /// The band in force at `t`.
    #[must_use]
    pub fn band(t: SimTime) -> TariffBand {
        let h = t.hour();
        if !(6..22).contains(&h) {
            TariffBand::OffPeak
        } else if (17..20).contains(&h) && !t.day().is_weekend() {
            TariffBand::Peak
        } else {
            TariffBand::Shoulder
        }
    }

    /// Grid import price at `t`, €/kWh. Tariffs are published — this is
    /// exact, not an estimated component.
    #[must_use]
    pub fn price_eur_per_kwh(&self, t: SimTime) -> f64 {
        match Self::band(t) {
            TariffBand::OffPeak => self.offpeak_eur,
            TariffBand::Shoulder => self.shoulder_eur,
            TariffBand::Peak => self.peak_eur,
        }
    }

    /// **Ground truth** grid carbon intensity at `t`, gCO₂/kWh: the duck
    /// curve — a ~480 g base, a midday solar valley, an evening ramp
    /// peak, plus day-to-day variation in renewables share.
    #[must_use]
    pub fn actual_carbon_intensity(&self, t: SimTime) -> f64 {
        let h = t.hour_f64();
        let bump = |center: f64, width: f64, height: f64| -> f64 {
            let d = (h - center) / width;
            height * (-0.5 * d * d).exp()
        };
        // Day-to-day renewables variation: ±80 g.
        let mut rng = SplitMix64::new(ec_types::rng::mix(self.seed, t.day_number()));
        let daily = (rng.next_f64() - 0.5) * 160.0;
        (480.0 - bump(13.0, 3.0, 220.0) + bump(19.0, 2.0, 130.0) + daily).clamp(80.0, 800.0)
    }

    /// **Forecast**: interval estimate issued at `now` of the carbon
    /// intensity at `eta` (gCO₂/kWh), widening with horizon like every
    /// other estimated component.
    #[must_use]
    pub fn forecast_carbon_intensity(&self, now: SimTime, eta: SimTime) -> Interval {
        let truth = self.actual_carbon_intensity(eta);
        let horizon_h = eta.saturating_since(now).as_hours_f64();
        let rel = crate::horizon_half_width(horizon_h);
        let mut rng =
            SplitMix64::new(ec_types::rng::mix(self.seed ^ 0x7A81FF, eta.as_secs() / 3_600));
        let skew = rng.range_f64(-0.5, 0.5);
        Interval::around(truth * (1.0 + skew * rel), truth * rel).clamp(0.0, 1_000.0)
    }

    /// Cost of importing `kwh` from the grid at `t`, euros.
    #[must_use]
    pub fn import_cost_eur(&self, kwh: f64, t: SimTime) -> f64 {
        kwh.max(0.0) * self.price_eur_per_kwh(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::{DayOfWeek, SimDuration};

    fn t(day: DayOfWeek, hour: u64) -> SimTime {
        SimTime::at(0, day, hour, 0)
    }

    #[test]
    fn bands_follow_the_clock() {
        assert_eq!(TariffModel::band(t(DayOfWeek::Tue, 3)), TariffBand::OffPeak);
        assert_eq!(TariffModel::band(t(DayOfWeek::Tue, 23)), TariffBand::OffPeak);
        assert_eq!(TariffModel::band(t(DayOfWeek::Tue, 10)), TariffBand::Shoulder);
        assert_eq!(TariffModel::band(t(DayOfWeek::Tue, 18)), TariffBand::Peak);
        // No weekday-evening peak on Saturdays.
        assert_eq!(TariffModel::band(t(DayOfWeek::Sat, 18)), TariffBand::Shoulder);
    }

    #[test]
    fn prices_ordered_offpeak_lowest() {
        let m = TariffModel::new(1);
        assert!(
            m.price_eur_per_kwh(t(DayOfWeek::Tue, 3)) < m.price_eur_per_kwh(t(DayOfWeek::Tue, 10))
        );
        assert!(
            m.price_eur_per_kwh(t(DayOfWeek::Tue, 10)) < m.price_eur_per_kwh(t(DayOfWeek::Tue, 18))
        );
    }

    #[test]
    fn duck_curve_shape() {
        let m = TariffModel::new(1);
        let noon = m.actual_carbon_intensity(t(DayOfWeek::Wed, 13));
        let evening = m.actual_carbon_intensity(t(DayOfWeek::Wed, 19));
        let night = m.actual_carbon_intensity(t(DayOfWeek::Wed, 2));
        assert!(noon < night, "solar valley: noon {noon} vs night {night}");
        assert!(evening > noon, "evening ramp: {evening} vs {noon}");
        for h in 0..24 {
            let v = m.actual_carbon_intensity(t(DayOfWeek::Wed, h));
            assert!((80.0..=800.0).contains(&v));
        }
    }

    #[test]
    fn carbon_forecast_widens_and_contains_mostly() {
        let m = TariffModel::new(4);
        let now = t(DayOfWeek::Thu, 8);
        let near = m.forecast_carbon_intensity(now, now + SimDuration::from_mins(30));
        let far = m.forecast_carbon_intensity(now, now + SimDuration::from_hours(48));
        assert!(far.width() / far.mid() >= near.width() / near.mid() - 1e-9);
        let mut contained = 0;
        for dh in 0..24 {
            let eta = now + SimDuration::from_hours(dh);
            if m.forecast_carbon_intensity(now, eta).contains(m.actual_carbon_intensity(eta)) {
                contained += 1;
            }
        }
        assert!(contained >= 18, "{contained}/24");
    }

    #[test]
    fn import_cost_scales() {
        let m = TariffModel::new(1);
        let at = t(DayOfWeek::Tue, 3);
        assert!((m.import_cost_eur(10.0, at) - 1.8).abs() < 1e-9);
        assert_eq!(m.import_cost_eur(-5.0, at), 0.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = TariffModel::new(7);
        let b = TariffModel::new(7);
        let c = TariffModel::new(8);
        let at = t(DayOfWeek::Fri, 12);
        assert_eq!(a.actual_carbon_intensity(at), b.actual_carbon_intensity(at));
        assert_ne!(a.actual_carbon_intensity(at), c.actual_carbon_intensity(at));
    }
}
