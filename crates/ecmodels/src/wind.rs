//! The wind-power simulator.
//!
//! The paper's RES integration names "photovoltaic panels, wind turbines"
//! (§I) and allows clean energy "virtually net-metered/net-billed from a
//! remote renewable energy production farm" (§II-A). [`WindSim`] models
//! that second source: a capacity factor in `[0,1]` driven by synoptic
//! weather systems (multi-day autocorrelated regimes), a mild nocturnal
//! bias (winds strengthen at night at hub height — conveniently
//! complementary to solar), and the same horizon-widening forecast
//! contract as every other estimated component.

use ec_types::{GeoPoint, Interval, SimTime, SplitMix64};

/// Edge length of a wind-weather cell, degrees (synoptic systems are
/// larger than cloud fields).
const CELL_DEG: f64 = 2.0;

/// Deterministic wind service for a whole simulation.
#[derive(Debug, Clone)]
pub struct WindSim {
    seed: u64,
}

impl WindSim {
    /// A wind realisation keyed by `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Regime strength for a cell-day in `[0,1]`: synoptic systems last
    /// days, so consecutive days are blended.
    fn day_regime(&self, cx: i64, cy: i64, day: u64) -> f64 {
        let draw = |d: u64| {
            let mut rng = SplitMix64::new(ec_types::rng::mix(
                self.seed ^ 0x817D,
                (cx as u64).rotate_left(11) ^ (cy as u64).rotate_left(23) ^ d,
            ));
            rng.next_f64()
        };
        // Three-day smoothing: today weighs double.
        (draw(day) * 2.0 + draw(day.saturating_sub(1)) + draw(day + 1)) / 4.0
    }

    /// **Ground truth**: the capacity factor (fraction of nameplate
    /// rating produced) at `loc`, time `t`.
    #[must_use]
    pub fn actual_capacity_factor(&self, loc: &GeoPoint, t: SimTime) -> f64 {
        let cx = (loc.lon / CELL_DEG).floor() as i64;
        let cy = (loc.lat / CELL_DEG).floor() as i64;
        let regime = self.day_regime(cx, cy, t.day_number());
        // Nocturnal bias: ±15 % swing peaking at 03:00.
        let h = t.hour_f64();
        let diurnal = 1.0 + 0.15 * (std::f64::consts::TAU * (h - 3.0) / 24.0).cos();
        // Within-day gust noise per 30 min bucket.
        let mut rng = SplitMix64::new(ec_types::rng::mix(
            self.seed ^ 0x6057,
            (cx as u64) ^ (cy as u64).rotate_left(7) ^ (t.as_secs() / 1_800),
        ));
        let gust = 1.0 + (rng.next_f64() - 0.5) * 0.3;
        (regime * diurnal * gust).clamp(0.0, 1.0)
    }

    /// **Forecast API**: interval estimate, issued at `now`, of the
    /// capacity factor at `eta` — wind forecasts degrade with horizon
    /// like the solar ones.
    #[must_use]
    pub fn forecast_capacity_factor(&self, loc: &GeoPoint, now: SimTime, eta: SimTime) -> Interval {
        let truth = self.actual_capacity_factor(loc, eta);
        let horizon_h = eta.saturating_since(now).as_hours_f64();
        let cx = (loc.lon / CELL_DEG).floor() as i64;
        let cy = (loc.lat / CELL_DEG).floor() as i64;
        let mut rng = SplitMix64::new(ec_types::rng::mix(
            self.seed ^ 0xF0557,
            (cx as u64) ^ (cy as u64).rotate_left(13) ^ (eta.as_secs() / 3_600),
        ));
        let skew = rng.range_f64(-1.0, 1.0);
        crate::forecast_interval(truth, horizon_h, skew)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::{DayOfWeek, SimDuration};

    fn coast() -> GeoPoint {
        GeoPoint::new(8.1, 53.5)
    }

    #[test]
    fn capacity_factor_in_unit_range_all_day() {
        let w = WindSim::new(1);
        for hour in 0..24 {
            let t = SimTime::at(0, DayOfWeek::Tue, hour, 0);
            let f = w.actual_capacity_factor(&coast(), t);
            assert!((0.0..=1.0).contains(&f), "h{hour}: {f}");
        }
    }

    #[test]
    fn wind_blows_at_night_too() {
        // Unlike solar, the night capacity factor is not structurally
        // zero: averaged over many nights it must be well above zero.
        let w = WindSim::new(2);
        let mean: f64 = (0..60)
            .map(|d| w.actual_capacity_factor(&coast(), SimTime::from_secs(d * 86_400 + 2 * 3_600)))
            .sum::<f64>()
            / 60.0;
        assert!(mean > 0.2, "night wind mean {mean}");
    }

    #[test]
    fn synoptic_regimes_are_multi_day_autocorrelated() {
        let w = WindSim::new(3);
        let noon = |d: u64| {
            w.actual_capacity_factor(&coast(), SimTime::from_secs(d * 86_400 + 12 * 3_600))
        };
        // Adjacent days share regime mass more than days a week apart:
        // measure lag-1 vs lag-7 absolute differences over a long window.
        let days: Vec<f64> = (0..120).map(noon).collect();
        let mean_abs = |lag: usize| {
            days.windows(lag + 1).map(|w| (w[lag] - w[0]).abs()).sum::<f64>()
                / (days.len() - lag) as f64
        };
        assert!(
            mean_abs(1) < mean_abs(7),
            "lag-1 diff {} should be below lag-7 diff {}",
            mean_abs(1),
            mean_abs(7)
        );
    }

    #[test]
    fn forecast_contract_holds() {
        let w = WindSim::new(4);
        let now = SimTime::at(0, DayOfWeek::Thu, 9, 0);
        let mut contained = 0;
        for dh in 0..24u64 {
            let eta = now + SimDuration::from_hours(dh);
            let f = w.forecast_capacity_factor(&coast(), now, eta);
            assert!(f.lo() >= 0.0 && f.hi() <= 1.0);
            if f.contains(w.actual_capacity_factor(&coast(), eta)) {
                contained += 1;
            }
        }
        assert!(contained >= 18, "{contained}/24 contained");
        let near = w.forecast_capacity_factor(&coast(), now, now + SimDuration::from_mins(30));
        let far = w.forecast_capacity_factor(&coast(), now, now + SimDuration::from_hours(60));
        assert!(far.width() >= near.width() - 1e-9);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let t = SimTime::at(0, DayOfWeek::Fri, 15, 0);
        assert_eq!(
            WindSim::new(7).actual_capacity_factor(&coast(), t),
            WindSim::new(7).actual_capacity_factor(&coast(), t)
        );
        assert_ne!(
            WindSim::new(7).actual_capacity_factor(&coast(), t),
            WindSim::new(8).actual_capacity_factor(&coast(), t)
        );
    }
}
