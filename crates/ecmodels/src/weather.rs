//! The weather / solar-production simulator.
//!
//! The *Sustainable Charging Level* `L` "considers the weather forecast
//! (e.g., sunny, cloudy) at a given time and location retrieved by a cloud
//! service" (§III-B). [`WeatherSim`] plays that cloud service:
//!
//! * a **clear-sky geometry** term — a sinusoidal daylight arc whose day
//!   length follows latitude and season;
//! * a **cloud process** — a deterministic per-day, per-weather-cell
//!   realisation (nearby chargers share a sky) with smooth intra-day
//!   variation;
//! * a **forecast API** — the actual sun fraction perturbed into an
//!   interval whose width grows with the forecast horizon, per
//!   [`crate::horizon_half_width`].
//!
//! "Sun fraction" is the fraction of the location's panel *rating*
//! currently produced, in `[0,1]`; the charger model multiplies it by the
//! panel's kW rating.

use ec_types::{GeoPoint, Interval, SimTime, SplitMix64};

/// Edge length of a weather cell, degrees. ~0.5° ≈ 40 km: one sky per
/// town, different skies across a region.
const CELL_DEG: f64 = 0.5;

/// Deterministic weather service for a whole simulation.
///
/// ```
/// use ec_models::WeatherSim;
/// use ec_types::{DayOfWeek, GeoPoint, SimDuration, SimTime};
///
/// let weather = WeatherSim::new(7);
/// let charger = GeoPoint::new(8.2, 53.1);
/// let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
/// let eta = now + SimDuration::from_mins(45);
///
/// // The forecast is an interval in [0, clear-sky]; the realised value
/// // is a point the simulator also knows.
/// let forecast = weather.forecast_sun_fraction(&charger, now, eta);
/// let truth = weather.actual_sun_fraction(&charger, eta);
/// assert!(forecast.lo() >= 0.0 && forecast.hi() <= 1.0);
/// assert!((0.0..=1.0).contains(&truth));
/// ```
#[derive(Debug, Clone)]
pub struct WeatherSim {
    seed: u64,
}

impl WeatherSim {
    /// A weather realisation keyed by `seed`.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Clear-sky production fraction at `loc`, hour `t` — zero at night,
    /// peaking at solar noon, with season- and latitude-dependent day
    /// length.
    #[must_use]
    pub fn clear_sky_fraction(&self, loc: &GeoPoint, t: SimTime) -> f64 {
        let day = t.day_number() as f64;
        // Day length: 12 h ± seasonal amplitude that grows with |latitude|.
        // (Solstice day length at 53°N is ~17 h; at 35°N ~14.4 h.)
        let amplitude = 0.095 * loc.lat.abs().min(65.0); // hours of half-swing
        let season = (std::f64::consts::TAU * (day - 80.0) / 365.0).sin();
        let daylight = (12.0 + amplitude * season * loc.lat.signum()).clamp(4.0, 20.0);
        let rise = 13.0 - daylight / 2.0; // solar noon at 13:00 local
        let set = rise + daylight;
        let h = t.hour_f64();
        if h <= rise || h >= set {
            return 0.0;
        }
        (std::f64::consts::PI * (h - rise) / daylight).sin().max(0.0)
    }

    /// The cloud attenuation in `[0,1]` (1 = clear, 0.1 = heavy overcast)
    /// for the weather cell containing `loc` at `t`. Smoothly interpolates
    /// between hourly states so production curves are not staircases.
    #[must_use]
    pub fn cloud_clearness(&self, loc: &GeoPoint, t: SimTime) -> f64 {
        let cx = (loc.lon / CELL_DEG).floor() as i64;
        let cy = (loc.lat / CELL_DEG).floor() as i64;
        let hour_abs = t.as_secs() / 3_600;
        let frac = (t.as_secs() % 3_600) as f64 / 3_600.0;
        let a = self.hour_state(cx, cy, hour_abs);
        let b = self.hour_state(cx, cy, hour_abs + 1);
        a + (b - a) * frac
    }

    /// Clearness state for one cell-hour: a per-day regime (sunny /
    /// mixed / overcast) plus within-day noise.
    fn hour_state(&self, cx: i64, cy: i64, hour_abs: u64) -> f64 {
        let day = hour_abs / 24;
        let mut day_rng = SplitMix64::new(ec_types::rng::mix(
            self.seed,
            (cx as u64).wrapping_mul(0x9E37).wrapping_add(cy as u64) ^ day,
        ));
        // Daily regime: 45 % sunny-ish, 35 % mixed, 20 % overcast.
        let regime = day_rng.next_f64();
        let (base, spread) = if regime < 0.45 {
            (0.9, 0.1)
        } else if regime < 0.8 {
            (0.55, 0.3)
        } else {
            (0.2, 0.15)
        };
        let mut hour_rng = SplitMix64::new(ec_types::rng::mix(
            self.seed ^ 0xC0FFEE,
            (cx as u64) ^ (cy as u64).rotate_left(17) ^ hour_abs,
        ));
        (base + (hour_rng.next_f64() - 0.5) * 2.0 * spread).clamp(0.05, 1.0)
    }

    /// **Ground truth**: actual production fraction (clear-sky × clouds)
    /// at `loc`, time `t`.
    #[must_use]
    pub fn actual_sun_fraction(&self, loc: &GeoPoint, t: SimTime) -> f64 {
        self.clear_sky_fraction(loc, t) * self.cloud_clearness(loc, t)
    }

    /// **Forecast API**: the interval estimate, issued at `now`, of the sun
    /// fraction at `loc` when the vehicle arrives at `eta`.
    ///
    /// The interval is centred near (not exactly on) the truth, with a
    /// deterministic per-(cell, hour) skew, and widens with the horizon.
    /// Night hours forecast as exactly zero.
    #[must_use]
    pub fn forecast_sun_fraction(&self, loc: &GeoPoint, now: SimTime, eta: SimTime) -> Interval {
        let clear = self.clear_sky_fraction(loc, eta);
        if clear <= 0.0 {
            return Interval::zero();
        }
        let truth = self.actual_sun_fraction(loc, eta);
        let horizon_h = eta.saturating_since(now).as_hours_f64();
        let cx = (loc.lon / CELL_DEG).floor() as i64;
        let cy = (loc.lat / CELL_DEG).floor() as i64;
        let mut rng = SplitMix64::new(ec_types::rng::mix(
            self.seed ^ 0xF0CA57,
            (cx as u64).rotate_left(7) ^ (cy as u64) ^ (eta.as_secs() / 3_600),
        ));
        let skew = rng.range_f64(-1.0, 1.0);
        // The forecast cannot promise more than clear sky allows.
        crate::forecast_interval(truth, horizon_h, skew).clamp(0.0, clear.min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::{DayOfWeek, SimDuration};

    fn oldenburg() -> GeoPoint {
        GeoPoint::new(8.2, 53.14)
    }

    #[test]
    fn night_is_dark() {
        let w = WeatherSim::new(1);
        let t = SimTime::at(0, DayOfWeek::Tue, 2, 0);
        assert_eq!(w.clear_sky_fraction(&oldenburg(), t), 0.0);
        assert_eq!(w.actual_sun_fraction(&oldenburg(), t), 0.0);
    }

    #[test]
    fn noon_beats_morning() {
        let w = WeatherSim::new(1);
        let noon = SimTime::at(0, DayOfWeek::Tue, 13, 0);
        let morning = SimTime::at(0, DayOfWeek::Tue, 8, 0);
        assert!(
            w.clear_sky_fraction(&oldenburg(), noon) > w.clear_sky_fraction(&oldenburg(), morning)
        );
    }

    #[test]
    fn clear_sky_peak_is_near_one() {
        let w = WeatherSim::new(1);
        let noon = SimTime::at(0, DayOfWeek::Tue, 13, 0);
        let f = w.clear_sky_fraction(&oldenburg(), noon);
        assert!(f > 0.95, "noon clear-sky fraction {f}");
    }

    #[test]
    fn summer_days_longer_in_north() {
        let w = WeatherSim::new(1);
        // Day 172 (~June 21) at 20:30: light in Oldenburg summer.
        let summer_evening = SimTime::from_secs(172 * 86_400 + 20 * 3_600 + 1_800);
        // Day 355 (~Dec 21) at 20:30: certainly dark.
        let winter_evening = SimTime::from_secs(355 * 86_400 + 20 * 3_600 + 1_800);
        assert!(w.clear_sky_fraction(&oldenburg(), summer_evening) > 0.0);
        assert_eq!(w.clear_sky_fraction(&oldenburg(), winter_evening), 0.0);
    }

    #[test]
    fn clouds_bounded_and_deterministic() {
        let w = WeatherSim::new(9);
        let t = SimTime::at(0, DayOfWeek::Wed, 11, 20);
        let c1 = w.cloud_clearness(&oldenburg(), t);
        let c2 = w.cloud_clearness(&oldenburg(), t);
        assert_eq!(c1, c2);
        assert!((0.05..=1.0).contains(&c1));
    }

    #[test]
    fn nearby_points_share_weather_cell() {
        let w = WeatherSim::new(9);
        let t = SimTime::at(0, DayOfWeek::Wed, 11, 0);
        let a = oldenburg();
        let b = a.offset_m(500.0, 300.0);
        assert_eq!(w.cloud_clearness(&a, t), w.cloud_clearness(&b, t));
    }

    #[test]
    fn distant_points_can_differ() {
        let w = WeatherSim::new(9);
        let t = SimTime::at(0, DayOfWeek::Wed, 11, 0);
        let a = oldenburg();
        // Scan far points until we find a different sky (regimes repeat,
        // so a single pair could coincide).
        let found = (1..20).any(|k| {
            let b = GeoPoint::new(8.2 + f64::from(k), 53.14);
            (w.cloud_clearness(&a, t) - w.cloud_clearness(&b, t)).abs() > 1e-6
        });
        assert!(found, "all far cells share identical weather — cell hashing broken");
    }

    #[test]
    fn forecast_widens_with_horizon() {
        let w = WeatherSim::new(4);
        let now = SimTime::at(0, DayOfWeek::Fri, 9, 0);
        let near = w.forecast_sun_fraction(&oldenburg(), now, now + SimDuration::from_mins(30));
        let far = w.forecast_sun_fraction(
            &oldenburg(),
            now,
            now + SimDuration::from_hours(48) + SimDuration::from_mins(30),
        );
        // Same time-of-day two days out: wider or clamped by clear-sky.
        assert!(far.width() >= near.width() - 1e-9);
    }

    #[test]
    fn forecast_zero_at_night() {
        let w = WeatherSim::new(4);
        let now = SimTime::at(0, DayOfWeek::Fri, 22, 0);
        let f = w.forecast_sun_fraction(&oldenburg(), now, now + SimDuration::from_mins(60));
        assert_eq!(f, Interval::zero());
    }

    #[test]
    fn forecast_bounded_by_clear_sky() {
        let w = WeatherSim::new(4);
        let now = SimTime::at(0, DayOfWeek::Fri, 7, 0);
        for dh in 0..12 {
            let eta = now + SimDuration::from_hours(dh);
            let f = w.forecast_sun_fraction(&oldenburg(), now, eta);
            let clear = w.clear_sky_fraction(&oldenburg(), eta);
            assert!(f.hi() <= clear + 1e-9, "forecast {f} exceeds clear sky {clear}");
        }
    }

    #[test]
    fn forecast_usually_contains_truth_short_horizon() {
        let w = WeatherSim::new(12);
        let mut contained = 0;
        let mut total = 0;
        for day in 0..20u64 {
            for hour in [9u64, 12, 15] {
                let eta = SimTime::from_secs(day * 86_400 + hour * 3_600);
                let now = eta - SimDuration::from_hours(1);
                let truth = w.actual_sun_fraction(&oldenburg(), eta);
                let f = w.forecast_sun_fraction(&oldenburg(), now, eta);
                total += 1;
                if f.contains(truth) {
                    contained += 1;
                }
            }
        }
        // Skewed intervals may miss occasionally; most must contain truth.
        assert!(contained * 10 >= total * 8, "{contained}/{total} contained");
    }
}
