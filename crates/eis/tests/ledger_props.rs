//! Property tests for the federation primitive: `Ledger::merge` must be
//! a join-semilattice operation — commutative, associative, idempotent —
//! so that sharded serving can federate forecast ledgers at tick
//! boundaries by pure pairwise joins, in any order, without a global
//! lock changing the result.

use eis::resilience::FeedKind;
use eis::share::{ForecastShare, Ledger, SessionScope};
use proptest::prelude::*;

/// One synthetic observation: `(feed index, cell, session tag, computed)`
/// — `tag` 0 means an anonymous read, `n > 0` means session `n - 1`.
type Obs = (u8, u64, u32, bool);

/// Replay a script of observations into a fresh share and export it under
/// `source`. Observations go through the real `observe` path (scopes and
/// all), so the exported ledgers have realistic owner/counter shapes.
fn build(obs: &[Obs], source: u32) -> Ledger {
    let share = ForecastShare::default();
    for &(feed, cell, tag, computed) in obs {
        let feed = FeedKind::ALL[feed as usize % FeedKind::ALL.len()];
        // Keep the cell space small so scripts actually collide.
        let cell = cell % 8;
        if tag == 0 {
            share.observe(feed, cell, computed);
        } else {
            let _s = SessionScope::enter(tag - 1);
            share.observe(feed, cell, computed);
        }
    }
    share.export(source)
}

fn obs_strategy() -> impl Strategy<Value = Vec<Obs>> {
    prop::collection::vec((any::<u8>(), any::<u64>(), 0u32..5, any::<bool>()), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn merge_is_commutative(a in obs_strategy(), b in obs_strategy()) {
        let (la, lb) = (build(&a, 0), build(&b, 1));
        let mut ab = la.clone();
        ab.merge(&lb);
        let mut ba = lb.clone();
        ba.merge(&la);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in obs_strategy(),
        b in obs_strategy(),
        c in obs_strategy(),
    ) {
        let (la, lb, lc) = (build(&a, 0), build(&b, 1), build(&c, 2));
        // (a ⊔ b) ⊔ c
        let mut left = la.clone();
        left.merge(&lb);
        left.merge(&lc);
        // a ⊔ (b ⊔ c)
        let mut bc = lb.clone();
        bc.merge(&lc);
        let mut right = la.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_idempotent(a in obs_strategy(), b in obs_strategy()) {
        let (la, lb) = (build(&a, 0), build(&b, 1));
        let mut once = la.clone();
        once.merge(&lb);
        let mut twice = once.clone();
        twice.merge(&lb);
        twice.merge(&lb);
        prop_assert_eq!(once, twice);
    }

    /// Totals federate without loss: distinct sources' counters add up,
    /// and re-merging never double-counts.
    #[test]
    fn totals_sum_distinct_sources(a in obs_strategy(), b in obs_strategy()) {
        let (la, lb) = (build(&a, 0), build(&b, 1));
        let mut merged = la.clone();
        merged.merge(&lb);
        merged.merge(&lb); // idempotent — must not inflate totals
        let (ta, tb, tm) = (la.totals(), lb.totals(), merged.totals());
        prop_assert_eq!(tm.misses, ta.misses + tb.misses);
        prop_assert_eq!(tm.shared_hits, ta.shared_hits + tb.shared_hits);
        prop_assert_eq!(tm.self_hits, ta.self_hits + tb.self_hits);
        prop_assert_eq!(tm.untagged_hits, ta.untagged_hits + tb.untagged_hits);
    }
}
