//! # `eis` — the EcoCharge Information Server
//!
//! "Leveraging external APIs, our EcoCharge Information Server (EIS)
//! acquires real-time weather forecast data, detailed road network
//! information, and a comprehensive list of all available EV charging
//! stations … Our framework mitigates the need for redundant API call
//! requests by intelligently employing a smart caching mechanism" (§IV).
//!
//! This crate is that layer:
//!
//! * [`provider`] — trait-typed data feeds (weather / availability /
//!   traffic) with simulator-backed implementations and a failure-
//!   injection wrapper for resilience tests;
//! * [`cache`] — the sim-clock TTL cache (now the bounded
//!   `servecache::TtlCache`, re-exported for compatibility);
//! * [`server`] — [`InfoServer`], the consolidated feed with per-provider
//!   call counters that the evaluation reads back, a last-known-good tier
//!   that serves outages with staleness-widened intervals, and provenance
//!   tags on every forecast;
//! * [`resilience`] — deterministic bounded retry and per-feed circuit
//!   breakers, embeddable in the server or standalone via
//!   [`ResilientProvider`];
//! * [`chaos`] — seeded chaos-grade fault injection (random failure
//!   rates, burst outage windows, per-feed targeting, accounted latency);
//! * [`mode`] — the three operating modes (§IV: in-vehicle, central
//!   server, edge device) and their request-cost model, including the
//!   fault-overhead accounting of degraded refreshes;
//! * [`observe`] — the arrival-discovery occupancy feed: the closed-loop
//!   outcome simulator records what drivers actually see at chargers, and
//!   servers built `with_observations` blend those observations into
//!   subsequent availability forecasts (tagged `Corrected`);
//! * [`rpc`] — a minimal crossbeam-channel request/response bus used to
//!   run an [`InfoServer`] behind a thread boundary in Mode 2;
//! * [`share`] — the cross-session forecast-reuse ledger the fleet
//!   serving layer attaches to measure how much `L`/`A`/`D` work
//!   co-located sessions inherit from each other through the caches.

pub mod cache;
pub mod chaos;
pub mod mode;
pub mod observe;
pub mod provider;
pub mod resilience;
pub mod rpc;
pub mod server;
pub mod share;

pub use cache::{TtlBudget, TtlCache};
pub use chaos::{ChaosConfig, ChaosProvider, OutageWindow};
pub use mode::{Mode, ModeCosts};
pub use observe::{ObservationFeed, ObservationStats, OccupancyObservation, OBSERVATION_TTL};
pub use provider::{
    AvailabilityProvider, FlakyProvider, SimProviders, TrafficProvider, WeatherProvider,
};
pub use resilience::{
    BreakerPolicy, BreakerState, FeedGuard, FeedKind, GuardSnapshot, ResiliencePolicy,
    ResilientProvider, RetryPolicy,
};
pub use server::{
    eta_bucket, forecast_window, staleness_half_width, widen_factor, widen_unit, ForecastCells,
    InfoServer, ServerStats, FORECAST_TTL,
};
pub use share::{ForecastShare, Ledger, SessionScope, ShareSnapshot};
