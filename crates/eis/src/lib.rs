//! # `eis` — the EcoCharge Information Server
//!
//! "Leveraging external APIs, our EcoCharge Information Server (EIS)
//! acquires real-time weather forecast data, detailed road network
//! information, and a comprehensive list of all available EV charging
//! stations … Our framework mitigates the need for redundant API call
//! requests by intelligently employing a smart caching mechanism" (§IV).
//!
//! This crate is that layer:
//!
//! * [`provider`] — trait-typed data feeds (weather / availability /
//!   traffic) with simulator-backed implementations and a failure-
//!   injection wrapper for resilience tests;
//! * [`cache`] — a sim-clock TTL cache with hit/miss accounting;
//! * [`server`] — [`InfoServer`], the consolidated feed with per-provider
//!   call counters that the evaluation reads back;
//! * [`mode`] — the three operating modes (§IV: in-vehicle, central
//!   server, edge device) and their request-cost model;
//! * [`rpc`] — a minimal crossbeam-channel request/response bus used to
//!   run an [`InfoServer`] behind a thread boundary in Mode 2.

pub mod cache;
pub mod mode;
pub mod provider;
pub mod rpc;
pub mod server;

pub use cache::TtlCache;
pub use mode::{Mode, ModeCosts};
pub use provider::{
    AvailabilityProvider, FlakyProvider, SimProviders, TrafficProvider, WeatherProvider,
};
pub use server::{InfoServer, ServerStats};
