//! A TTL cache keyed on the simulation clock.
//!
//! The paper's *Dynamic Caching* stores "solutions (i.e., Offering Tables)
//! and API responses in a table" and notes that "a solution will naturally
//! be invalidated after a certain time point (t) as L, A, D objectives
//! will naturally be invalid after t" (§IV-C). [`TtlCache`] is the API-
//! response half of that design: entries expire at a simulation instant,
//! not a wall-clock one, so cached forecasts age at simulated speed and
//! experiments stay reproducible.

use ec_types::{SimDuration, SimTime};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

/// A concurrent map whose entries expire at a [`SimTime`].
///
/// ```
/// use ec_types::{DayOfWeek, SimDuration, SimTime};
/// use eis::TtlCache;
///
/// let cache: TtlCache<&str, u32> = TtlCache::new();
/// let now = SimTime::at(0, DayOfWeek::Mon, 9, 0);
/// cache.put("sun", 42, now, SimDuration::from_mins(15));
/// assert_eq!(cache.get(&"sun", now + SimDuration::from_mins(10)), Some(42));
/// assert_eq!(cache.get(&"sun", now + SimDuration::from_mins(20)), None); // expired
/// ```
#[derive(Debug)]
pub struct TtlCache<K, V> {
    map: RwLock<HashMap<K, (V, SimTime)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// When attached ([`TtlCache::enable_fresh_log`]), the key of every
    /// *locally computed* insert is logged so a federation layer can
    /// drain just the cells new since its last round
    /// ([`TtlCache::drain_fresh`]). Installed cells are never logged —
    /// they already made the rounds.
    fresh_log: RwLock<Option<Vec<K>>>,
}

impl<K, V> Default for TtlCache<K, V> {
    fn default() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fresh_log: RwLock::new(None),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> TtlCache<K, V> {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current live value for `key` at sim-instant `now`, if any.
    pub fn get(&self, key: &K, now: SimTime) -> Option<V> {
        let hit = {
            let map = self.map.read();
            map.get(key).and_then(|(v, exp)| (now < *exp).then(|| v.clone()))
        };
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Insert `value` valid until `now + ttl`.
    pub fn put(&self, key: K, value: V, now: SimTime, ttl: SimDuration) {
        self.map.write().insert(key.clone(), (value, now + ttl));
        self.log_fresh(key);
    }

    /// Start logging locally computed inserts for federation export.
    /// Idempotent; a cache without the log pays nothing on its write
    /// path.
    pub fn enable_fresh_log(&self) {
        let mut log = self.fresh_log.write();
        if log.is_none() {
            *log = Some(Vec::new());
        }
    }

    fn log_fresh(&self, key: K) {
        if let Some(log) = self.fresh_log.write().as_mut() {
            log.push(key);
        }
    }

    /// Drain the cells computed here since the last drain: every logged
    /// key still present in the map, with its value and absolute expiry.
    /// Empty when the log was never enabled. Keys evicted or expired
    /// away between computation and drain are silently skipped — a peer
    /// would evict them too.
    #[must_use]
    pub fn drain_fresh(&self) -> Vec<(K, V, SimTime)> {
        let keys = match self.fresh_log.write().as_mut() {
            Some(log) if !log.is_empty() => std::mem::take(log),
            _ => return Vec::new(),
        };
        let map = self.map.read();
        keys.into_iter()
            .filter_map(|k| map.get(&k).map(|(v, exp)| (k.clone(), v.clone(), *exp)))
            .collect()
    }

    /// Install federated cells verbatim (value + absolute expiry).
    /// A key already present keeps its local entry — for the pure
    /// forecast caches both copies are byte-identical anyway, and
    /// keeping the local one makes installation idempotent. Installed
    /// cells are *not* logged as fresh, so they never ping-pong back out
    /// through [`TtlCache::drain_fresh`].
    pub fn install(&self, cells: &[(K, V, SimTime)]) {
        if cells.is_empty() {
            return;
        }
        let mut map = self.map.write();
        for (k, v, exp) in cells {
            map.entry(k.clone()).or_insert_with(|| (v.clone(), *exp));
        }
    }

    /// Last stored value for `key` regardless of expiry, with a staleness
    /// flag — the degraded-mode read used when the upstream provider is
    /// down ("better a 40-minute-old forecast than no Offering Table").
    pub fn get_allow_stale(&self, key: &K, now: SimTime) -> Option<(V, bool)> {
        let map = self.map.read();
        map.get(key).map(|(v, exp)| (v.clone(), now >= *exp))
    }

    /// Fetch-through: return the live value, or compute, store and return
    /// it. Exactly one caller computes per (key, expiry window), even
    /// under concurrency: after the read-probe misses, the key is
    /// re-checked under the write lock, so a racing filler's value is
    /// observed instead of recomputed. This keeps upstream API-call
    /// accounting exact — N concurrent misses on one key are 1 miss +
    /// (N − 1) hits and a single producer run. The producer runs while
    /// the write lock is held, so it must not call back into this cache.
    /// Producer errors are not cached (the miss still counts).
    pub fn get_or_insert_with<E>(
        &self,
        key: K,
        now: SimTime,
        ttl: SimDuration,
        produce: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        let live = |entry: Option<&(V, SimTime)>| {
            entry.and_then(|(v, exp)| (now < *exp).then(|| v.clone()))
        };
        // Fast path: live value under the shared read lock.
        if let Some(v) = live(self.map.read().get(&key)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        // Slow path: a concurrent filler may have inserted while we
        // waited for the write lock — re-check before computing.
        let mut map = self.map.write();
        if let Some(v) = live(map.get(&key)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = produce()?;
        map.insert(key.clone(), (v.clone(), now + ttl));
        drop(map); // never hold the map and the fresh log together
        self.log_fresh(key);
        Ok(v)
    }

    /// Drop every entry that has expired by `now`; returns how many were
    /// evicted.
    pub fn evict_expired(&self, now: SimTime) -> usize {
        let mut map = self.map.write();
        let before = map.len();
        map.retain(|_, (_, exp)| now < *exp);
        before - map.len()
    }

    /// Number of stored entries (live or not-yet-evicted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// `(hits, misses)` counters since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Clear all entries and counters.
    pub fn clear(&self) {
        self.map.write().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_types::DayOfWeek;

    fn t(min: u64) -> SimTime {
        SimTime::at(0, DayOfWeek::Mon, 10, 0) + SimDuration::from_mins(min)
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let c: TtlCache<u32, String> = TtlCache::new();
        c.put(1, "a".into(), t(0), SimDuration::from_mins(10));
        assert_eq!(c.get(&1, t(5)), Some("a".into()));
        assert_eq!(c.get(&1, t(10)), None); // expiry is exclusive
        assert_eq!(c.get(&1, t(15)), None);
    }

    #[test]
    fn get_or_insert_computes_once_within_ttl() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v: Result<u64, ()> =
                c.get_or_insert_with(7, t(0), SimDuration::from_mins(5), || {
                    calls += 1;
                    Ok(42)
                });
            assert_eq!(v, Ok(42));
        }
        assert_eq!(calls, 1);
        // After expiry the producer runs again.
        let _: Result<u64, ()> = c.get_or_insert_with(7, t(6), SimDuration::from_mins(5), || {
            calls += 1;
            Ok(43)
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn concurrent_misses_compute_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let c: TtlCache<u32, u64> = TtlCache::new();
        let calls = AtomicU64::new(0);
        let workers = 8;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let v: Result<u64, ()> =
                        c.get_or_insert_with(7, t(0), SimDuration::from_mins(5), || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window: keep the write lock
                            // busy while the other threads pile up.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(42)
                        });
                    assert_eq!(v, Ok(42));
                });
            }
        });
        // The call-economy invariant the parallel engine relies on: one
        // upstream call, one miss, everyone else a hit.
        assert_eq!(calls.load(Ordering::Relaxed), 1, "double-computed on concurrent miss");
        assert_eq!(c.stats(), (workers - 1, 1));
    }

    #[test]
    fn producer_errors_are_not_cached() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        let r: Result<u64, &str> =
            c.get_or_insert_with(1, t(0), SimDuration::from_mins(5), || Err("boom"));
        assert_eq!(r, Err("boom"));
        let r: Result<u64, &str> =
            c.get_or_insert_with(1, t(0), SimDuration::from_mins(5), || Ok(9));
        assert_eq!(r, Ok(9));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 1, t(0), SimDuration::from_mins(10));
        let _ = c.get(&1, t(1)); // hit
        let _ = c.get(&2, t(1)); // miss
        let _ = c.get(&1, t(11)); // expired -> miss
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn evict_expired_removes_dead_entries() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 1, t(0), SimDuration::from_mins(5));
        c.put(2, 2, t(0), SimDuration::from_mins(50));
        assert_eq!(c.evict_expired(t(10)), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&2, t(10)), Some(2));
    }

    #[test]
    fn clear_resets_everything() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 1, t(0), SimDuration::from_mins(5));
        let _ = c.get(&1, t(0));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    fn get_allow_stale_flags_expiry() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        assert_eq!(c.get_allow_stale(&1, t(0)), None);
        c.put(1, 9, t(0), SimDuration::from_mins(5));
        assert_eq!(c.get_allow_stale(&1, t(3)), Some((9, false)));
        assert_eq!(c.get_allow_stale(&1, t(30)), Some((9, true)));
        // Eviction removes even stale values.
        c.evict_expired(t(30));
        assert_eq!(c.get_allow_stale(&1, t(30)), None);
    }

    #[test]
    fn poisoned_lock_is_recovered_not_propagated() {
        // A producer that panics while `get_or_insert_with` holds the
        // write lock poisons the underlying std lock. The serving loop
        // must survive that: the vendored `parking_lot` shim recovers
        // poisoned guards, so every later cache call keeps working
        // instead of cascading panics through the scheduler.
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 11, t(0), SimDuration::from_mins(30));
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<u64, ()> =
                c.get_or_insert_with(2, t(0), SimDuration::from_mins(5), || {
                    panic!("injected producer panic while holding the write lock")
                });
        }));
        assert!(panicked.is_err(), "the injected panic must surface to its own caller");
        // …but the cache is still fully usable afterwards.
        assert_eq!(c.get(&1, t(1)), Some(11), "read path survives poisoning");
        c.put(3, 33, t(1), SimDuration::from_mins(5));
        assert_eq!(c.get(&3, t(2)), Some(33), "write path survives poisoning");
        let r: Result<u64, ()> =
            c.get_or_insert_with(2, t(1), SimDuration::from_mins(5), || Ok(22));
        assert_eq!(r, Ok(22), "fetch-through survives poisoning");
        assert!(c.evict_expired(t(2)) == 0);
    }

    #[test]
    fn overwrite_extends_lifetime() {
        let c: TtlCache<u32, u64> = TtlCache::new();
        c.put(1, 1, t(0), SimDuration::from_mins(5));
        c.put(1, 2, t(4), SimDuration::from_mins(5));
        assert_eq!(c.get(&1, t(8)), Some(2));
    }
}
