//! TTL caching — re-exported from the [`servecache`] substrate.
//!
//! The sim-clock [`TtlCache`] used to live here; it moved to
//! `servecache::ttl` when the serving stack's caches were unified behind
//! one crate (DESIGN.md §4l), gaining entry/byte budgets
//! ([`TtlBudget`]) and the shared [`servecache::CacheMetrics`]
//! accounting on the way. This module stays as the compatibility path —
//! `eis::TtlCache` and `eis::cache::TtlCache` keep resolving — so the
//! move is invisible to callers.

pub use servecache::{TtlBudget, TtlCache};
