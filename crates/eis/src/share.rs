//! Cross-session forecast sharing: the attribution ledger.
//!
//! The [`crate::InfoServer`] already memoizes every forecast by
//! `(feed key, forecast window)` — and for model-backed providers the
//! value is a *pure function* of that key (see
//! [`crate::forecast_window`]), so two trips whose ETAs land in the same
//! `(feed, window, ETA bucket)` cell physically reuse each other's
//! `L`/`A`/`D` work through those caches already. What the fleet serving
//! layer needs on top is *attribution*: of all cache hits, how many
//! crossed a session boundary — i.e. how much work did session `s`
//! inherit from some *other* session instead of from its own earlier
//! segments?
//!
//! [`ForecastShare`] is that ledger. The serving layer tags the executing
//! session on the current thread with a [`SessionScope`] guard; the
//! server reports every fresh-tier read outcome via
//! [`ForecastShare::observe`]. The ledger remembers, per cache cell, the
//! session that paid for the miss, and classifies each later hit as
//! *shared* (first computed by a different session), *self* (the same
//! session re-reading its own work), or *untagged* (no session scope on
//! either side — e.g. standalone solves).
//!
//! The ledger is observational only: it never changes what the caches
//! return, so enabling it cannot perturb a single Offering Table. That is
//! the same discipline every perf feature in this workspace follows
//! (threads, CH backend, pruning — all bit-identity preserving).

use crate::resilience::FeedKind;
use parking_lot::RwLock;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// The session whose event is executing on this thread, if any.
    static CURRENT_SESSION: Cell<Option<u32>> = const { Cell::new(None) };
}

/// RAII guard tagging forecast reads on the current thread with a session
/// id (the raw `ec_types::SessionId` index). Nesting restores the outer
/// tag on drop.
///
/// The tag is thread-local: it covers the synchronous solve the serving
/// layer runs for one event. If that solve fans out further work to inner
/// worker threads (`EcoChargeConfig::threads > 1`), those reads appear
/// *untagged* — the serving layer therefore runs inner solves
/// single-threaded and parallelises across sessions instead.
#[derive(Debug)]
pub struct SessionScope {
    prev: Option<u32>,
}

impl SessionScope {
    /// Tag this thread's forecast reads with `session` until drop.
    #[must_use]
    pub fn enter(session: u32) -> Self {
        let prev = CURRENT_SESSION.with(|c| c.replace(Some(session)));
        Self { prev }
    }
}

impl Drop for SessionScope {
    fn drop(&mut self) {
        let prev = self.prev;
        CURRENT_SESSION.with(|c| c.set(prev));
    }
}

/// The session currently tagged on this thread, if any.
#[must_use]
pub fn current_session() -> Option<u32> {
    CURRENT_SESSION.with(Cell::get)
}

/// Collapse a typed fresh-cache key + forecast window into the ledger's
/// cell identity. The ledger only needs equality, not the original key,
/// so a 64-bit hash keeps it feed-agnostic without making the server's
/// generic read path allocate. (Hash collisions could at worst
/// misattribute a hit between two cells — they cannot affect values.)
#[must_use]
pub fn ledger_cell<K: Hash>(key: &K, window_secs: u64) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    window_secs.hash(&mut h);
    h.finish()
}

/// Counter snapshot of a [`ForecastShare`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShareSnapshot {
    /// Fresh-cache hits whose cell was first computed by a *different*
    /// session — the work the sharing layer saved.
    pub shared_hits: u64,
    /// Fresh-cache hits on a cell the same session computed earlier
    /// (ordinary per-trip cache locality).
    pub self_hits: u64,
    /// Hits with no session attribution on either side.
    pub untagged_hits: u64,
    /// Fresh-tier misses (the read paid for the upstream computation).
    pub misses: u64,
}

impl ShareSnapshot {
    /// All fresh-tier reads observed. Saturating, like the counters
    /// themselves: four pinned counters must not overflow the total.
    #[must_use]
    pub fn total_reads(&self) -> u64 {
        self.shared_hits
            .saturating_add(self.self_hits)
            .saturating_add(self.untagged_hits)
            .saturating_add(self.misses)
    }

    /// Fraction of reads answered by *another* session's work.
    #[must_use]
    pub fn shared_hit_rate(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            0.0
        } else {
            self.shared_hits as f64 / total as f64
        }
    }
}

/// Cross-session reuse ledger (see the module docs). Cheap enough to
/// leave attached: one `RwLock<HashMap>` write per miss, one read per
/// hit.
#[derive(Debug, Default)]
pub struct ForecastShare {
    /// Cell → the session that paid for its upstream computation
    /// (`None` = computed outside any session scope).
    owners: RwLock<HashMap<(FeedKind, u64), Option<u32>>>,
    shared_hits: AtomicU64,
    self_hits: AtomicU64,
    untagged_hits: AtomicU64,
    misses: AtomicU64,
}

/// Saturating counter bump: a ledger attached to a long soak must never
/// wrap (a wrapped counter silently corrupts every derived rate) and
/// must never panic — it just pins at `u64::MAX`.
fn saturating_inc(counter: &AtomicU64) {
    // `fetch_update` retries on contention; the closure is pure.
    let _ =
        counter.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(1)));
}

impl ForecastShare {
    /// Record one fresh-tier read of `cell` ([`ledger_cell`]) on `feed`.
    /// `computed` is true when the read missed and ran the upstream
    /// producer.
    pub fn observe(&self, feed: FeedKind, cell: u64, computed: bool) {
        let tag = current_session();
        if computed {
            saturating_inc(&self.misses);
            self.owners.write().insert((feed, cell), tag);
            return;
        }
        let owner = self.owners.read().get(&(feed, cell)).copied();
        match owner {
            // Both sides attributed to the same session: plain locality.
            Some(o) if o.is_some() && o == tag => {
                saturating_inc(&self.self_hits);
            }
            // Known owner differing from the reader (either side may be
            // an anonymous scope): the cell's work crossed a session
            // boundary.
            Some(_) if tag.is_some() => {
                saturating_inc(&self.shared_hits);
            }
            // Untagged reader, or a hit on a cell cached before the
            // ledger attached.
            _ => {
                saturating_inc(&self.untagged_hits);
            }
        }
    }

    /// The recorded owner of `cell` on `feed`: `Some(None)` = computed
    /// outside any session scope, `None` = never computed here.
    #[must_use]
    pub fn owner_of(&self, feed: FeedKind, cell: u64) -> Option<Option<u32>> {
        self.owners.read().get(&(feed, cell)).copied()
    }

    /// Adopt a peer ledger's ownership claim for a federated cell, so a
    /// later local hit on the installed cell is attributed *shared*
    /// exactly as it would be on the computing shard. A cell this ledger
    /// already claims keeps its local owner (installation keeps the
    /// local cache entry too — the claims describe the same pure value).
    /// Pure bookkeeping: no counter moves.
    pub fn adopt_owner(&self, feed: FeedKind, cell: u64, owner: Option<u32>) {
        self.owners.write().entry((feed, cell)).or_insert(owner);
    }

    /// Current counters.
    #[must_use]
    pub fn snapshot(&self) -> ShareSnapshot {
        ShareSnapshot {
            shared_hits: self.shared_hits.load(Ordering::Relaxed),
            self_hits: self.self_hits.load(Ordering::Relaxed),
            untagged_hits: self.untagged_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Export this ledger's current state as a mergeable [`Ledger`],
    /// attributing the counters to `source` (the exporting shard's id).
    #[must_use]
    pub fn export(&self, source: u32) -> Ledger {
        let owners = self.owners.read().iter().map(|(&k, &v)| (k, v)).collect();
        let mut counts = BTreeMap::new();
        counts.insert(source, self.snapshot());
        Ledger { owners, counts }
    }

    /// Overwrite the counters from a snapshot — the crash-recovery path
    /// re-seeding a fresh server's ledger with the journaled totals.
    /// Cell ownership is *not* restorable (it is observational wall-clock
    /// state); post-recovery hits on pre-crash cells therefore count as
    /// untagged, which under-reports sharing but never mis-reports it.
    pub fn restore(&self, snap: ShareSnapshot) {
        self.shared_hits.store(snap.shared_hits, Ordering::Relaxed);
        self.self_hits.store(snap.self_hits, Ordering::Relaxed);
        self.untagged_hits.store(snap.untagged_hits, Ordering::Relaxed);
        self.misses.store(snap.misses, Ordering::Relaxed);
    }
}

/// Canonical join of two ownership claims for the same cell.
///
/// Concurrent shards can both pay for the same `(feed, window, ETA
/// bucket)` cell before federation; the merged ledger must credit exactly
/// one owner, and must credit the *same* one regardless of merge order.
/// The canonical order is: a tagged owner beats an anonymous one, and
/// among tagged owners the smaller session id wins. This is a pure
/// min-join, so it is commutative, associative and idempotent by
/// construction.
fn join_owner(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

/// Pointwise maximum of two counter snapshots — the G-counter join for
/// one source's counters (each source's counters only ever grow, so the
/// later of two exports dominates the earlier pointwise).
fn join_counts(a: &ShareSnapshot, b: &ShareSnapshot) -> ShareSnapshot {
    ShareSnapshot {
        shared_hits: a.shared_hits.max(b.shared_hits),
        self_hits: a.self_hits.max(b.self_hits),
        untagged_hits: a.untagged_hits.max(b.untagged_hits),
        misses: a.misses.max(b.misses),
    }
}

/// A mergeable, order-independent image of one or more [`ForecastShare`]
/// ledgers — the federation primitive for sharded serving.
///
/// Two components, each a join-semilattice, so [`Ledger::merge`] is
/// **commutative, associative and idempotent** (proptested in
/// `tests/ledger_props.rs`):
///
/// * `owners` — cell → owning session, joined pointwise by
///   [`join_owner`]'s canonical order;
/// * `counts` — per-*source* counter snapshots (a G-counter: each
///   exporting shard owns its own slot, merge is pointwise max per slot),
///   totalled across sources by [`Ledger::totals`].
///
/// Because merge order cannot change the result, shards can federate at
/// tick boundaries by pure pairwise joins — no global lock, no
/// coordination protocol.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ledger {
    owners: BTreeMap<(FeedKind, u64), Option<u32>>,
    counts: BTreeMap<u32, ShareSnapshot>,
}

impl Ledger {
    /// Join `other` into `self`.
    pub fn merge(&mut self, other: &Ledger) {
        for (&cell, &owner) in &other.owners {
            self.owners
                .entry(cell)
                .and_modify(|mine| *mine = join_owner(*mine, owner))
                .or_insert(owner);
        }
        for (&source, counts) in &other.counts {
            self.counts
                .entry(source)
                .and_modify(|mine| *mine = join_counts(mine, counts))
                .or_insert(*counts);
        }
    }

    /// Counter totals across every contributing source (saturating — a
    /// federation of pinned ledgers must not wrap).
    #[must_use]
    pub fn totals(&self) -> ShareSnapshot {
        self.counts.values().fold(ShareSnapshot::default(), |acc, s| ShareSnapshot {
            shared_hits: acc.shared_hits.saturating_add(s.shared_hits),
            self_hits: acc.self_hits.saturating_add(s.self_hits),
            untagged_hits: acc.untagged_hits.saturating_add(s.untagged_hits),
            misses: acc.misses.saturating_add(s.misses),
        })
    }

    /// Number of distinct ledger cells with a recorded owner.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.owners.len()
    }

    /// Number of sources that have contributed counters.
    #[must_use]
    pub fn num_sources(&self) -> usize {
        self.counts.len()
    }

    /// The recorded owner of `cell` on `feed`, if any claim was exported
    /// (`Some(None)` = computed outside any session scope).
    #[must_use]
    pub fn owner(&self, feed: FeedKind, cell: u64) -> Option<Option<u32>> {
        self.owners.get(&(feed, cell)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_nests_and_restores() {
        assert_eq!(current_session(), None);
        {
            let _outer = SessionScope::enter(7);
            assert_eq!(current_session(), Some(7));
            {
                let _inner = SessionScope::enter(9);
                assert_eq!(current_session(), Some(9));
            }
            assert_eq!(current_session(), Some(7));
        }
        assert_eq!(current_session(), None);
    }

    #[test]
    fn classifies_miss_self_and_shared() {
        let ledger = ForecastShare::default();
        let cell = ledger_cell(&(3u32, 1_800u64), 900);
        {
            let _s = SessionScope::enter(1);
            ledger.observe(FeedKind::Availability, cell, true); // session 1 pays
            ledger.observe(FeedKind::Availability, cell, false); // …re-reads its own
        }
        {
            let _s = SessionScope::enter(2);
            ledger.observe(FeedKind::Availability, cell, false); // session 2 inherits
        }
        ledger.observe(FeedKind::Availability, cell, false); // anonymous read
        let snap = ledger.snapshot();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.self_hits, 1);
        assert_eq!(snap.shared_hits, 1);
        assert_eq!(snap.untagged_hits, 1);
        assert_eq!(snap.total_reads(), 4);
        assert!((snap.shared_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn feeds_do_not_alias() {
        let ledger = ForecastShare::default();
        let cell = ledger_cell(&1u32, 900);
        let _a = SessionScope::enter(1);
        ledger.observe(FeedKind::Weather, cell, true);
        // Same cell value on a different feed is a distinct ledger entry:
        // this read has no recorded owner, so it cannot count as shared.
        ledger.observe(FeedKind::Traffic, cell, false);
        let snap = ledger.snapshot();
        assert_eq!(snap.shared_hits, 0);
        assert_eq!(snap.untagged_hits, 1);
    }

    #[test]
    fn distinct_windows_are_distinct_cells() {
        assert_ne!(ledger_cell(&(1u32, 1_800u64), 900), ledger_cell(&(1u32, 1_800u64), 1_800));
    }

    #[test]
    fn counters_saturate_at_u64_max_instead_of_wrapping() {
        let ledger = ForecastShare::default();
        // Park every counter one tick below the ceiling — the state a
        // multi-year soak would eventually reach.
        ledger.restore(ShareSnapshot {
            shared_hits: u64::MAX - 1,
            self_hits: u64::MAX - 1,
            untagged_hits: u64::MAX - 1,
            misses: u64::MAX - 1,
        });
        let cell = ledger_cell(&(1u32, 900u64), 900);
        // Two observations per class: the first lands exactly on MAX,
        // the second must pin there (no wrap to 0, no panic).
        for _ in 0..2 {
            ledger.observe(FeedKind::Weather, cell, true); // miss
            ledger.observe(FeedKind::Weather, cell, false); // untagged hit
            let _s = SessionScope::enter(1);
            ledger.observe(FeedKind::Weather, cell, false); // shared (owner None ≠ tag)
        }
        {
            let _s = SessionScope::enter(9);
            let own = ledger_cell(&(2u32, 900u64), 900);
            for _ in 0..2 {
                ledger.observe(FeedKind::Wind, own, true);
                ledger.observe(FeedKind::Wind, own, false); // self hit
            }
        }
        let snap = ledger.snapshot();
        assert_eq!(snap.misses, u64::MAX);
        assert_eq!(snap.untagged_hits, u64::MAX);
        assert_eq!(snap.shared_hits, u64::MAX);
        assert_eq!(snap.self_hits, u64::MAX);
        // The derived rate stays a sane fraction — no wrapped-counter
        // garbage like shared_hits > total.
        assert!(snap.shared_hit_rate() <= 1.0);
    }

    #[test]
    fn restore_reseeds_counters_exactly() {
        let ledger = ForecastShare::default();
        let snap = ShareSnapshot { shared_hits: 5, self_hits: 4, untagged_hits: 3, misses: 2 };
        ledger.restore(snap);
        assert_eq!(ledger.snapshot(), snap);
    }

    #[test]
    fn export_carries_owners_and_counters() {
        let share = ForecastShare::default();
        let cell = ledger_cell(&(1u32, 900u64), 900);
        {
            let _s = SessionScope::enter(4);
            share.observe(FeedKind::Wind, cell, true);
        }
        let exported = share.export(7);
        assert_eq!(exported.num_cells(), 1);
        assert_eq!(exported.owner(FeedKind::Wind, cell), Some(Some(4)));
        assert_eq!(exported.num_sources(), 1);
        assert_eq!(exported.totals().misses, 1);
    }

    #[test]
    fn merge_joins_owners_canonically_and_counts_per_source() {
        let cell = ledger_cell(&(9u32, 900u64), 900);
        // Shard 0: session 5 pays for the cell. Shard 1: session 2 pays
        // for the same cell concurrently.
        let (a, b) = (ForecastShare::default(), ForecastShare::default());
        {
            let _s = SessionScope::enter(5);
            a.observe(FeedKind::Traffic, cell, true);
        }
        {
            let _s = SessionScope::enter(2);
            b.observe(FeedKind::Traffic, cell, true);
        }
        let (ea, eb) = (a.export(0), b.export(1));
        let mut ab = ea.clone();
        ab.merge(&eb);
        let mut ba = eb.clone();
        ba.merge(&ea);
        // Merge order is invisible; the smaller session id wins the claim.
        assert_eq!(ab, ba);
        assert_eq!(ab.owner(FeedKind::Traffic, cell), Some(Some(2)));
        // Counters federate per source: both shards' misses survive.
        assert_eq!(ab.totals().misses, 2);
        assert_eq!(ab.num_sources(), 2);
        // Re-merging the same export is a no-op (idempotent), unlike
        // naive counter addition which would double-count.
        let again = ab.clone();
        ab.merge(&eb);
        assert_eq!(ab, again);
    }

    #[test]
    fn tagged_owner_beats_anonymous_on_merge() {
        let cell = ledger_cell(&(3u32, 900u64), 900);
        let (a, b) = (ForecastShare::default(), ForecastShare::default());
        a.observe(FeedKind::Weather, cell, true); // anonymous miss
        {
            let _s = SessionScope::enter(11);
            b.observe(FeedKind::Weather, cell, true);
        }
        let mut m = a.export(0);
        m.merge(&b.export(1));
        assert_eq!(m.owner(FeedKind::Weather, cell), Some(Some(11)));
    }
}
