//! The consolidated information server.
//!
//! [`InfoServer`] fronts the three provider feeds with TTL caches keyed on
//! coarse buckets (weather cell × forecast hour, charger × forecast hour,
//! road class × forecast hour), mirroring how the paper's EIS
//! "consolidate\[s\] the required data and distribute\[s\] to individual
//! clients as per request" while "mitigat\[ing\] the need for redundant API
//! call requests" (§IV). Per-provider upstream-call counters let the
//! evaluation show how much the caches save.
//!
//! ## Degraded operation
//!
//! Every forecast answers with a [`SourcedInterval`] — an interval plus
//! the provenance of the data behind it. Three tiers back each feed:
//!
//! 1. **fresh cache** — the TTL cache above; a hit (or a successful
//!    upstream fetch) is [`ComponentQuality::Fresh`];
//! 2. **retry + circuit breaker** (optional, [`InfoServer::with_resilience`])
//!    — upstream attempts run through a per-feed [`crate::FeedGuard`], so
//!    transient failures are retried with seeded backoff and a persistently
//!    failing feed is shed without being hammered;
//! 3. **last-known-good** (when stale serving is enabled) — every
//!    successful fetch is also written to a long-TTL tier; when the
//!    upstream is exhausted or shed, the last value is served with its
//!    interval *widened as a function of staleness* (the same shape
//!    forecast uncertainty grows with horizon, [`staleness_half_width`])
//!    and tagged [`ComponentQuality::Stale`].
//!
//! Only when every tier comes up empty does a forecast return
//! [`EcError::ProviderUnavailable`] — and the ranking layer above may then
//! still substitute a configured fallback interval (see `ec-core`).

use crate::cache::{TtlBudget, TtlCache};
use crate::observe::ObservationFeed;
use crate::provider::{AvailabilityProvider, TrafficProvider, WeatherProvider, WindProvider};
use crate::resilience::{BreakerState, FeedKind, GuardSet, GuardSnapshot, ResiliencePolicy};
use crate::share::{ForecastShare, ShareSnapshot};
use chargers::Charger;
use ec_models::horizon_half_width;
use ec_types::{EcError, GeoPoint, Interval, SimDuration, SimTime, SourcedInterval};
use roadnet::RoadClass;
use servecache::CacheMetrics;
use std::cell::Cell;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Weather cache cell edge, degrees (matches the simulator's weather-cell
/// granularity so caching cannot change answers).
const WEATHER_CELL_DEG: f64 = 0.5;

/// How long a cached forecast stays valid, sim-time. Public because the
/// fleet serving layer schedules its forecast-window rollover events on
/// exactly this grid (see [`forecast_window`]).
pub const FORECAST_TTL: SimDuration = SimDuration::from_mins(15);

/// Quantise a query instant to the start of its forecast window (the
/// [`FORECAST_TTL`] grid). The window start is part of the fresh-cache
/// key, and the model-backed [`crate::SimProviders`] quantises its
/// forecast issue times to the same grid — so for model-backed servers a
/// forecast is a pure function of `(feed key, window)`: a hit, a fresh
/// fetch, and a later re-fetch with any `now` inside the same window all
/// return byte-identical intervals. Without this, the issue time of a
/// cached entry would depend on which query happened to populate it, and
/// cache *history* (hence query order, hence pruning) could change
/// values. Wrapped third-party providers still see the true query
/// instant; the lazy pruning engine refuses to run against them
/// ([`InfoServer::availability_model_backed`]).
#[must_use]
pub fn forecast_window(now: SimTime) -> SimTime {
    SimTime::from_secs((now.as_secs() / FORECAST_TTL.as_secs()) * FORECAST_TTL.as_secs())
}

/// How long the last-known-good tier remembers a value past its fetch.
/// Beyond this a forecast is considered too old to widen honestly.
const LKG_TTL: SimDuration = SimDuration::from_hours(6);

/// Capacity budget per fresh forecast cache. The key space is (spatial
/// bucket × forecast window), so residency is naturally bounded between
/// expiry sweeps — but nothing *forced* a bound before this budget, and
/// a server that never calls [`InfoServer::evict_expired`] would grow
/// forever. 256k entries per feed is far above any metro-scale working
/// set (a 1M-node grid serves from tens of thousands of buckets) while
/// capping worst-case residency at ~5 MB per feed.
const FRESH_BUDGET: TtlBudget = TtlBudget::entries(1 << 18);

/// Capacity budget per last-known-good cache — one entry per spatial
/// bucket (no window component), so a quarter of the fresh budget is
/// already generous.
const LKG_BUDGET: TtlBudget = TtlBudget::entries(1 << 16);

/// Quantise an ETA to its cache bucket's representative instant (the
/// middle of the hour). Together with [`forecast_window`], the *inputs*
/// to every upstream call are derived from the cache key alone, never
/// from the exact query — so a cache hit and a fresh fetch return
/// byte-identical forecasts, and cache state can never change a ranking
/// (only its cost). Hourly L/A/traffic granularity matches the sources
/// being modelled (popular-times histograms and weather feeds are
/// hourly).
///
/// Public because bound-based pruning must reproduce the exact instant a
/// forecast will be evaluated at in order to build a sound envelope
/// around it (see `ecocharge-core`'s lazy filter–refine engine).
#[must_use]
pub fn eta_bucket(eta: SimTime) -> SimTime {
    SimTime::from_secs((eta.as_secs() / 3_600) * 3_600 + 1_800)
}

/// Edge length of a wind cell, degrees (synoptic scale, matching the wind
/// simulator).
const WIND_CELL_DEG: f64 = 2.0;

/// The representative point of the wind cell containing `loc`.
fn wind_cell_center(loc: &GeoPoint) -> (i64, i64, GeoPoint) {
    let cx = (loc.lon / WIND_CELL_DEG).floor() as i64;
    let cy = (loc.lat / WIND_CELL_DEG).floor() as i64;
    let center = GeoPoint::new(
        ((cx as f64 + 0.5) * WIND_CELL_DEG).clamp(-179.9, 179.9),
        ((cy as f64 + 0.5) * WIND_CELL_DEG).clamp(-89.9, 89.9),
    );
    (cx, cy, center)
}

/// The representative point of the weather cell containing `loc`.
fn cell_center(loc: &GeoPoint) -> (i64, i64, GeoPoint) {
    let cx = (loc.lon / WEATHER_CELL_DEG).floor() as i64;
    let cy = (loc.lat / WEATHER_CELL_DEG).floor() as i64;
    let center = GeoPoint::new(
        ((cx as f64 + 0.5) * WEATHER_CELL_DEG).clamp(-179.9, 179.9),
        ((cy as f64 + 0.5) * WEATHER_CELL_DEG).clamp(-89.9, 89.9),
    );
    (cx, cy, center)
}

/// Extra interval half-width honestly owed to serving a forecast `age`
/// past its issue time — the horizon-uncertainty growth of `ec-models`
/// applied to staleness: a value served `age` late is as uncertain as one
/// forecast `age` further out. Zero at zero age, monotone, capped by the
/// same ceiling the forecast models use.
#[must_use]
pub fn staleness_half_width(age: SimDuration) -> f64 {
    horizon_half_width(age.as_hours_f64()) - horizon_half_width(0.0)
}

/// Widen a unit-domain interval (sun fraction, wind capacity factor,
/// availability) by absolute half-width `w`, clamped to `[0,1]`. The
/// result always contains the input: the input already lives in `[0,1]`,
/// so clamping cannot cut into it.
#[must_use]
pub fn widen_unit(v: Interval, w: f64) -> Interval {
    Interval::new(
        (v.lo() - w).clamp(0.0, 1.0).min(v.lo()),
        (v.hi() + w).clamp(0.0, 1.0).max(v.hi()),
    )
}

/// Widen a multiplicative-factor interval (traffic time/energy factors,
/// `lo ≥ 1.0`) relatively — by `w` of its midpoint — with the free-flow
/// floor of 1.0. The `min`/`max` guards keep containment even for inputs
/// that violate the floor.
#[must_use]
pub fn widen_factor(v: Interval, w: f64) -> Interval {
    let d = w * v.mid();
    Interval::new((v.lo() - d).max(1.0).min(v.lo()), (v.hi() + d).max(v.hi()))
}

/// Upstream API-call counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Calls that reached the weather provider.
    pub weather_calls: AtomicU64,
    /// Calls that reached the availability provider.
    pub availability_calls: AtomicU64,
    /// Calls that reached the traffic provider.
    pub traffic_calls: AtomicU64,
    /// Calls that reached the wind provider.
    pub wind_calls: AtomicU64,
    /// Forecasts answered from the last-known-good tier (widened).
    pub stale_served: AtomicU64,
}

impl ServerStats {
    /// Snapshot `(weather, availability, traffic, wind)` upstream call
    /// counts.
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.weather_calls.load(Ordering::Relaxed),
            self.availability_calls.load(Ordering::Relaxed),
            self.traffic_calls.load(Ordering::Relaxed),
            self.wind_calls.load(Ordering::Relaxed),
        )
    }

    /// Forecasts served stale-and-widened so far.
    #[must_use]
    pub fn stale_served(&self) -> u64 {
        self.stale_served.load(Ordering::Relaxed)
    }
}

/// A federation bundle: the fresh-tier forecast cells one server
/// computed since its last export, with values, absolute expiries, and
/// the share ledger's ownership claims for those cells. Produced by
/// [`InfoServer::export_fresh_cells`], consumed by
/// [`InfoServer::install_fresh_cells`] on peer servers.
///
/// Installing a bundle cannot change what any forecast returns: for
/// model-backed providers a fresh-tier value is a pure function of
/// `(feed key, forecast window)` ([`forecast_window`]), so the installed
/// bytes are exactly what the peer would have computed itself. What
/// changes is the *cost* — the peer's read becomes a cache hit instead
/// of an upstream call — and, through the adopted ownership claims, the
/// attribution: the hit counts as *shared* with the session that paid
/// for the cell on the exporting server.
/// One exported fresh-tier cell: `((feed key, window), value, computed_at)`.
type ExportedCell<K> = ((K, u64), Interval, SimTime);

#[derive(Debug, Default, Clone)]
pub struct ForecastCells {
    sun: Vec<ExportedCell<(i64, i64, u64)>>,
    wind: Vec<ExportedCell<(i64, i64, u64)>>,
    avail: Vec<ExportedCell<(u32, u64)>>,
    traffic: Vec<ExportedCell<(u8, u64, bool)>>,
    owners: Vec<(FeedKind, u64, Option<u32>)>,
}

impl ForecastCells {
    /// True when nothing was computed since the last export.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sun.is_empty()
            && self.wind.is_empty()
            && self.avail.is_empty()
            && self.traffic.is_empty()
    }

    /// Cells carried, all feeds.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.sun.len() + self.wind.len() + self.avail.len() + self.traffic.len()
    }
}

/// The EcoCharge Information Server: cached, counted provider access with
/// optional retry/circuit-breaker and stale-with-widened-uncertainty
/// tiers (see the module docs).
pub struct InfoServer {
    weather: Arc<dyn WeatherProvider>,
    availability: Arc<dyn AvailabilityProvider>,
    traffic: Arc<dyn TrafficProvider>,
    wind: Option<Arc<dyn WindProvider>>,
    // Fresh tier: keyed `(bucket key, forecast-window start)` so entries
    // from adjacent windows coexist and a value can be re-derived exactly
    // for any past window (see [`forecast_window`]).
    sun_cache: TtlCache<((i64, i64, u64), u64), Interval>,
    wind_cache: TtlCache<((i64, i64, u64), u64), Interval>,
    avail_cache: TtlCache<((u32, u64), u64), Interval>,
    traffic_cache: TtlCache<((u8, u64, bool), u64), Interval>,
    // Last-known-good tier: value + when it was fetched, kept long past
    // the fresh TTL so an outage can be bridged with widened intervals.
    sun_lkg: TtlCache<(i64, i64, u64), (Interval, SimTime)>,
    wind_lkg: TtlCache<(i64, i64, u64), (Interval, SimTime)>,
    avail_lkg: TtlCache<(u32, u64), (Interval, SimTime)>,
    traffic_lkg: TtlCache<(u8, u64, bool), (Interval, SimTime)>,
    stats: ServerStats,
    serve_stale: bool,
    guards: Option<GuardSet>,
    /// True when the availability feed is the in-tree simulation model —
    /// the only case in which the archetype-level truth bounds of
    /// `ec-models` are guaranteed to contain every served forecast.
    avail_model_backed: bool,
    /// Cross-session reuse ledger, attached lazily by the fleet serving
    /// layer ([`InfoServer::forecast_share`]); observational only.
    share: OnceLock<Arc<ForecastShare>>,
    /// Arrival-discovery occupancy observations blended into every
    /// availability forecast post-fetch (see [`crate::observe`]). When
    /// attached, [`InfoServer::availability_model_backed`] reports
    /// `false`: corrected forecasts are no longer pure functions of
    /// `(feed key, window)`, so the purity-gated fast paths must stand
    /// down.
    observations: Option<Arc<ObservationFeed>>,
}

impl InfoServer {
    /// Wire a server over the three provider feeds.
    #[must_use]
    pub fn new(
        weather: Arc<dyn WeatherProvider>,
        availability: Arc<dyn AvailabilityProvider>,
        traffic: Arc<dyn TrafficProvider>,
    ) -> Self {
        Self {
            weather,
            availability,
            traffic,
            wind: None,
            sun_cache: TtlCache::bounded(FRESH_BUDGET),
            wind_cache: TtlCache::bounded(FRESH_BUDGET),
            avail_cache: TtlCache::bounded(FRESH_BUDGET),
            traffic_cache: TtlCache::bounded(FRESH_BUDGET),
            sun_lkg: TtlCache::bounded(LKG_BUDGET),
            wind_lkg: TtlCache::bounded(LKG_BUDGET),
            avail_lkg: TtlCache::bounded(LKG_BUDGET),
            traffic_lkg: TtlCache::bounded(LKG_BUDGET),
            stats: ServerStats::default(),
            serve_stale: false,
            guards: None,
            avail_model_backed: false,
            share: OnceLock::new(),
            observations: None,
        }
    }

    /// The cross-session reuse ledger, attaching one on first call.
    /// Reads executed under a [`crate::share::SessionScope`] are
    /// attributed to their session from then on; the ledger never changes
    /// what any forecast returns. (Stale last-known-good serves are not
    /// ledgered — only the fresh tier, where cross-session reuse lives.)
    #[must_use]
    pub fn forecast_share(&self) -> Arc<ForecastShare> {
        Arc::clone(self.share.get_or_init(|| Arc::new(ForecastShare::default())))
    }

    /// Counter snapshot of the attached ledger, if any.
    #[must_use]
    pub fn forecast_share_stats(&self) -> Option<ShareSnapshot> {
        self.share.get().map(|s| s.snapshot())
    }

    /// Enable degraded-mode reads: when an upstream provider fails, serve
    /// the last-known-good value for the bucket (if any) with its interval
    /// widened by [`staleness_half_width`] and tagged
    /// [`ec_types::ComponentQuality::Stale`]. The client still sees a
    /// typed error when no last-known-good value exists.
    #[must_use]
    pub fn with_stale_serving(mut self) -> Self {
        self.serve_stale = true;
        self
    }

    /// Put every upstream call behind a per-feed [`crate::FeedGuard`]
    /// (bounded retry + circuit breaker). `seed` drives the deterministic
    /// backoff jitter.
    #[must_use]
    pub fn with_resilience(mut self, policy: ResiliencePolicy, seed: u64) -> Self {
        self.guards = Some(GuardSet::new(policy, seed));
        self
    }

    /// Whether degraded-mode (stale) reads are enabled.
    #[must_use]
    pub const fn serves_stale(&self) -> bool {
        self.serve_stale
    }

    /// Whether upstream calls run through retry + circuit breakers.
    #[must_use]
    pub const fn resilience_enabled(&self) -> bool {
        self.guards.is_some()
    }

    /// Current breaker state for `feed`, when resilience is enabled.
    #[must_use]
    pub fn breaker_state(&self, feed: FeedKind) -> Option<BreakerState> {
        self.guards.as_ref().map(|g| g.guard(feed).breaker_state())
    }

    /// Guard counters for `feed`, when resilience is enabled.
    #[must_use]
    pub fn guard_stats(&self, feed: FeedKind) -> Option<GuardSnapshot> {
        self.guards.as_ref().map(|g| g.guard(feed).stats())
    }

    /// Total backoff a real deployment would have slept across all feeds,
    /// milliseconds (zero without resilience). Feed this into
    /// [`crate::ModeCosts::degraded_refresh_latency_ms`] to price faults.
    #[must_use]
    pub fn virtual_backoff_ms(&self) -> f64 {
        self.guards.as_ref().map_or(0.0, GuardSet::virtual_backoff_ms)
    }

    /// Convenience: a server over one [`crate::SimProviders`] bundle
    /// (all four feeds, including wind).
    #[must_use]
    pub fn from_sims(sims: crate::provider::SimProviders) -> Self {
        let shared = Arc::new(sims);
        let mut s = Self::new(shared.clone(), shared.clone(), shared.clone()).with_wind(shared);
        s.avail_model_backed = true;
        s
    }

    /// Whether every availability forecast is the pure in-tree simulation
    /// model. Clients that bound availability with the `ec-models`
    /// archetype envelopes (the lazy filter–refine engine) or cache
    /// offering tables across solves must check this: an externally wired
    /// provider makes those bounds meaningless, and an attached
    /// observation feed ([`InfoServer::with_observations`]) makes
    /// forecasts depend on what drivers have seen, not just on
    /// `(feed key, window)`.
    #[must_use]
    pub const fn availability_model_backed(&self) -> bool {
        self.avail_model_backed && self.observations.is_none()
    }

    /// Blend real-world occupancy observations into every availability
    /// forecast (see [`crate::observe`]). Corrections are applied after
    /// the three-tier read — the caches only ever hold pure model values
    /// — and tag the result [`ec_types::ComponentQuality::Corrected`].
    /// Attaching a feed turns [`InfoServer::availability_model_backed`]
    /// off, which stands down lazy pruning, offering-table caching, and
    /// parallel serving.
    #[must_use]
    pub fn with_observations(mut self, feed: Arc<ObservationFeed>) -> Self {
        self.observations = Some(feed);
        self
    }

    /// The attached observation feed, if any.
    #[must_use]
    pub fn observation_feed(&self) -> Option<&Arc<ObservationFeed>> {
        self.observations.as_ref()
    }

    /// Attach a wind feed (stations with zero wind capacity never ask).
    #[must_use]
    pub fn with_wind(mut self, wind: Arc<dyn WindProvider>) -> Self {
        self.wind = Some(wind);
        self
    }

    /// Run one upstream attempt set through the feed's guard when
    /// resilience is enabled, or directly otherwise.
    fn upstream(
        &self,
        feed: FeedKind,
        now: SimTime,
        mut attempt: impl FnMut() -> Result<Interval, EcError>,
    ) -> Result<Interval, EcError> {
        match &self.guards {
            Some(g) => g.guard(feed).call(now, attempt),
            None => attempt(),
        }
    }

    /// The shared three-tier read path: fresh cache → guarded upstream →
    /// last-known-good with staleness widening. `unit` selects the
    /// widening rule (absolute-clamped for `[0,1]` quantities, relative
    /// with a 1.0 floor for traffic factors).
    ///
    /// The fresh-cache key carries the forecast window, and the upstream
    /// call is issued at the true `now` — wrapped providers (fault
    /// injection, external feeds) see the real query instant. Value
    /// purity per window (the contract lazy pruning needs, see
    /// [`forecast_window`]) is the *model-backed provider's* job:
    /// `SimProviders` quantises its forecast issue times internally, and
    /// the lazy engine refuses to run against anything else
    /// ([`InfoServer::availability_model_backed`]).
    #[allow(clippy::too_many_arguments)]
    fn fetch<K: Eq + Hash + Clone>(
        &self,
        feed: FeedKind,
        cache: &TtlCache<(K, u64), Interval>,
        lkg: &TtlCache<K, (Interval, SimTime)>,
        key: K,
        now: SimTime,
        unit: bool,
        fetch: impl Fn() -> Result<Interval, EcError>,
    ) -> Result<SourcedInterval, EcError> {
        let window = forecast_window(now);
        let computed = Cell::new(false);
        let fresh =
            cache.get_or_insert_with((key.clone(), window.as_secs()), now, FORECAST_TTL, || {
                computed.set(true);
                let v = self.upstream(feed, now, &fetch)?;
                lkg.put(key.clone(), (v, now), now, LKG_TTL);
                Ok(v)
            });
        if fresh.is_ok() {
            if let Some(share) = self.share.get() {
                share.observe(
                    feed,
                    crate::share::ledger_cell(&key, window.as_secs()),
                    computed.get(),
                );
            }
        }
        match fresh {
            Ok(v) => Ok(SourcedInterval::fresh(v)),
            Err(e) if self.serve_stale => match lkg.get_allow_stale(&key, now) {
                Some(((v, issued), _)) => {
                    self.stats.stale_served.fetch_add(1, Ordering::Relaxed);
                    let age = now.saturating_since(issued);
                    let w = staleness_half_width(age);
                    let widened = if unit { widen_unit(v, w) } else { widen_factor(v, w) };
                    Ok(SourcedInterval::stale(widened, age))
                }
                None => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// Cached wind capacity-factor forecast for the wind cell containing
    /// `loc` at the hour of `eta`.
    ///
    /// # Errors
    /// [`EcError::ProviderUnavailable`] when no wind feed is attached or
    /// every tier (upstream, retry, last-known-good) is exhausted.
    pub fn wind_forecast(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<SourcedInterval, EcError> {
        let Some(provider) = &self.wind else {
            return Err(EcError::ProviderUnavailable("wind"));
        };
        let (cx, cy, center) = wind_cell_center(loc);
        let bucket = eta_bucket(eta);
        let key = (cx, cy, bucket.as_secs());
        self.fetch(FeedKind::Wind, &self.wind_cache, &self.wind_lkg, key, now, true, || {
            self.stats.wind_calls.fetch_add(1, Ordering::Relaxed);
            provider.forecast_wind(&center, now, bucket)
        })
    }

    /// Cached sun-fraction forecast for the weather cell containing `loc`
    /// at the hour of `eta`.
    ///
    /// # Errors
    /// [`EcError::ProviderUnavailable`] when every tier is exhausted.
    pub fn sun_forecast(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<SourcedInterval, EcError> {
        let (cx, cy, center) = cell_center(loc);
        let bucket = eta_bucket(eta);
        let key = (cx, cy, bucket.as_secs());
        self.fetch(FeedKind::Weather, &self.sun_cache, &self.sun_lkg, key, now, true, || {
            self.stats.weather_calls.fetch_add(1, Ordering::Relaxed);
            self.weather.forecast_sun(&center, now, bucket)
        })
    }

    /// Cached availability forecast for `charger` at `eta`.
    ///
    /// # Errors
    /// [`EcError::ProviderUnavailable`] when every tier is exhausted.
    pub fn availability_forecast(
        &self,
        charger: &Charger,
        now: SimTime,
        eta: SimTime,
    ) -> Result<SourcedInterval, EcError> {
        let bucket = eta_bucket(eta);
        let key = (charger.id.0, bucket.as_secs());
        let base = self.fetch(
            FeedKind::Availability,
            &self.avail_cache,
            &self.avail_lkg,
            key,
            now,
            true,
            || {
                self.stats.availability_calls.fetch_add(1, Ordering::Relaxed);
                self.availability.forecast_availability(charger, now, bucket)
            },
        )?;
        Ok(match &self.observations {
            Some(feed) => feed.correct(charger.id, base, now),
            None => base,
        })
    }

    /// Cached traffic time-factor forecast for `class` at `eta`.
    ///
    /// # Errors
    /// [`EcError::ProviderUnavailable`] when every tier is exhausted.
    pub fn traffic_time_forecast(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<SourcedInterval, EcError> {
        let bucket = eta_bucket(eta);
        let key = (class.tag(), bucket.as_secs(), false);
        self.fetch(
            FeedKind::Traffic,
            &self.traffic_cache,
            &self.traffic_lkg,
            key,
            now,
            false,
            || {
                self.stats.traffic_calls.fetch_add(1, Ordering::Relaxed);
                self.traffic.forecast_time_factor(class, now, bucket)
            },
        )
    }

    /// Cached traffic energy-factor forecast for `class` at `eta`.
    ///
    /// # Errors
    /// [`EcError::ProviderUnavailable`] when every tier is exhausted.
    pub fn traffic_energy_forecast(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<SourcedInterval, EcError> {
        let bucket = eta_bucket(eta);
        let key = (class.tag(), bucket.as_secs(), true);
        self.fetch(
            FeedKind::Traffic,
            &self.traffic_cache,
            &self.traffic_lkg,
            key,
            now,
            false,
            || {
                self.stats.traffic_calls.fetch_add(1, Ordering::Relaxed);
                self.traffic.forecast_energy_factor(class, now, bucket)
            },
        )
    }

    /// Upstream call counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// `(hits, misses)` across the fresh caches.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        let (h1, m1) = self.sun_cache.stats();
        let (h2, m2) = self.avail_cache.stats();
        let (h3, m3) = self.traffic_cache.stats();
        (h1 + h2 + h3, m1 + m2 + m3)
    }

    /// Unified accounting for every cache this server owns: the four
    /// fresh forecast caches folded into the `eis.fresh` tier and the
    /// four last-known-good caches into `eis.lkg`. Unlike the legacy
    /// [`InfoServer::cache_stats`] pair (which predates the wind feed
    /// and ignores it), this covers all eight maps.
    #[must_use]
    pub fn cache_metrics(&self) -> CacheMetrics {
        let mut m = CacheMetrics::new();
        let fresh = self
            .sun_cache
            .snapshot()
            .merge(self.wind_cache.snapshot())
            .merge(self.avail_cache.snapshot())
            .merge(self.traffic_cache.snapshot());
        let lkg = self
            .sun_lkg
            .snapshot()
            .merge(self.wind_lkg.snapshot())
            .merge(self.avail_lkg.snapshot())
            .merge(self.traffic_lkg.snapshot());
        m.record("eis.fresh", fresh);
        m.record("eis.lkg", lkg);
        m
    }

    /// Start logging fresh-tier computations for federation export.
    /// Idempotent; a server that never federates pays nothing.
    pub fn enable_federation(&self) {
        self.sun_cache.enable_fresh_log();
        self.wind_cache.enable_fresh_log();
        self.avail_cache.enable_fresh_log();
        self.traffic_cache.enable_fresh_log();
    }

    /// Drain the fresh-tier cells computed here since the last export,
    /// with the share ledger's ownership claims for them (empty claims
    /// when no ledger is attached). Requires [`InfoServer::enable_federation`]
    /// — without it the bundle is always empty.
    #[must_use]
    pub fn export_fresh_cells(&self) -> ForecastCells {
        let sun = self.sun_cache.drain_fresh();
        let wind = self.wind_cache.drain_fresh();
        let avail = self.avail_cache.drain_fresh();
        let traffic = self.traffic_cache.drain_fresh();
        let mut owners = Vec::new();
        if let Some(share) = self.share.get() {
            let mut claim = |feed: FeedKind, cell: u64| {
                if let Some(owner) = share.owner_of(feed, cell) {
                    owners.push((feed, cell, owner));
                }
            };
            for (k, _, _) in &sun {
                claim(FeedKind::Weather, crate::share::ledger_cell(&k.0, k.1));
            }
            for (k, _, _) in &wind {
                claim(FeedKind::Wind, crate::share::ledger_cell(&k.0, k.1));
            }
            for (k, _, _) in &avail {
                claim(FeedKind::Availability, crate::share::ledger_cell(&k.0, k.1));
            }
            for (k, _, _) in &traffic {
                claim(FeedKind::Traffic, crate::share::ledger_cell(&k.0, k.1));
            }
        }
        ForecastCells { sun, wind, avail, traffic, owners }
    }

    /// Install a peer's exported cells into this server's fresh tier and
    /// adopt its ownership claims into the attached share ledger.
    /// Existing local entries (cache cells and claims) always win —
    /// installation is idempotent and, by forecast purity, value-neutral
    /// (see [`ForecastCells`]).
    pub fn install_fresh_cells(&self, cells: &ForecastCells) {
        self.sun_cache.install(&cells.sun);
        self.wind_cache.install(&cells.wind);
        self.avail_cache.install(&cells.avail);
        self.traffic_cache.install(&cells.traffic);
        if !cells.owners.is_empty() {
            let share = self.forecast_share();
            for &(feed, cell, owner) in &cells.owners {
                share.adopt_owner(feed, cell, owner);
            }
        }
    }

    /// Drop expired entries from every cache (the last-known-good tier
    /// keeps entries for its own, much longer TTL).
    pub fn evict_expired(&self, now: SimTime) {
        self.sun_cache.evict_expired(now);
        self.avail_cache.evict_expired(now);
        self.traffic_cache.evict_expired(now);
        self.wind_cache.evict_expired(now);
        self.sun_lkg.evict_expired(now);
        self.avail_lkg.evict_expired(now);
        self.traffic_lkg.evict_expired(now);
        self.wind_lkg.evict_expired(now);
    }
}

impl std::fmt::Debug for InfoServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.cache_stats();
        f.debug_struct("InfoServer")
            .field("cache_hits", &hits)
            .field("cache_misses", &misses)
            .field("upstream_calls", &self.stats.snapshot())
            .field("stale_served", &self.stats.stale_served())
            .field("resilience", &self.guards.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::SimProviders;
    use crate::resilience::BreakerPolicy;
    use chargers::ChargerKind;
    use ec_models::SiteArchetype;
    use ec_types::{ChargerId, ComponentQuality, DayOfWeek, Kilowatts, NodeId};

    fn server() -> InfoServer {
        InfoServer::from_sims(SimProviders::new(7))
    }

    fn charger(id: u32) -> Charger {
        Charger {
            id: ChargerId(id),
            loc: GeoPoint::new(8.2, 53.1),
            node: NodeId(0),
            kind: ChargerKind::Ac22,
            panel: Kilowatts(30.0),
            wind: Kilowatts(0.0),
            archetype: SiteArchetype::Downtown,
        }
    }

    #[test]
    fn repeated_queries_hit_cache() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        let loc = GeoPoint::new(8.2, 53.1);
        let a = s.sun_forecast(&loc, now, eta).unwrap();
        let b = s.sun_forecast(&loc, now, eta).unwrap();
        assert_eq!(a, b);
        assert!(a.quality.is_fresh());
        assert_eq!(s.stats().snapshot().0, 1, "only one upstream weather call");
        let (hits, _) = s.cache_stats();
        assert!(hits >= 1);
    }

    #[test]
    fn nearby_locations_share_weather_cache_entry() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        let a = GeoPoint::new(8.20, 53.10);
        let b = a.offset_m(800.0, 400.0);
        let _ = s.sun_forecast(&a, now, eta).unwrap();
        let _ = s.sun_forecast(&b, now, eta).unwrap();
        assert_eq!(s.stats().snapshot().0, 1);
    }

    #[test]
    fn distinct_chargers_fetch_separately() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        let _ = s.availability_forecast(&charger(0), now, eta).unwrap();
        let _ = s.availability_forecast(&charger(1), now, eta).unwrap();
        let _ = s.availability_forecast(&charger(0), now, eta).unwrap();
        assert_eq!(s.stats().snapshot().1, 2);
    }

    #[test]
    fn cache_expires_after_ttl() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_hours(2);
        let loc = GeoPoint::new(8.2, 53.1);
        let _ = s.sun_forecast(&loc, now, eta).unwrap();
        let later = now + SimDuration::from_mins(20); // past the 15-min TTL
        let _ = s.sun_forecast(&loc, later, eta).unwrap();
        assert_eq!(s.stats().snapshot().0, 2);
    }

    #[test]
    fn time_and_energy_traffic_cached_independently() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 8, 0);
        let eta = now + SimDuration::from_mins(20);
        let t = s.traffic_time_forecast(RoadClass::Primary, now, eta).unwrap();
        let e = s.traffic_energy_forecast(RoadClass::Primary, now, eta).unwrap();
        assert!(t.value.hi() >= e.value.hi(), "energy factor is damped");
        assert_eq!(s.stats().snapshot().2, 2);
    }

    #[test]
    fn stale_serving_widens_and_tags_the_cached_value() {
        use crate::provider::FlakyProvider;
        // Period 2 → call 1 ok (cached + LKG), call 2 (after the fresh
        // TTL) fails → the LKG value is served widened.
        let sims = SimProviders::new(7);
        let flaky = std::sync::Arc::new(FlakyProvider::new(sims, 2, "bundle"));
        let s = InfoServer::new(flaky.clone(), flaky.clone(), flaky).with_stale_serving();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_hours(3);
        let loc = GeoPoint::new(8.2, 53.1);
        let first = s.sun_forecast(&loc, now, eta).unwrap(); // upstream call #1: ok
        let later = now + SimDuration::from_mins(20); // past the 15-min TTL
        let second = s.sun_forecast(&loc, later, eta).unwrap(); // call #2 fails → stale
        assert!(first.quality.is_fresh());
        let ComponentQuality::Stale { age } = second.quality else {
            panic!("expected a stale tag, got {:?}", second.quality);
        };
        assert_eq!(age, SimDuration::from_mins(20));
        assert!(
            second.value.lo() <= first.value.lo() && second.value.hi() >= first.value.hi(),
            "stale interval {} must contain the fresh one {}",
            second.value,
            first.value
        );
        assert_eq!(s.stats().stale_served(), 1);
        // Without stale serving the same sequence errors.
        let sims = SimProviders::new(7);
        let flaky = std::sync::Arc::new(FlakyProvider::new(sims, 2, "bundle"));
        let strict = InfoServer::new(flaky.clone(), flaky.clone(), flaky);
        let _ = strict.sun_forecast(&loc, now, eta).unwrap();
        assert!(strict.sun_forecast(&loc, later, eta).is_err());
    }

    #[test]
    fn breaker_sheds_upstream_calls_and_recovers() {
        use crate::provider::FlakyProvider;
        // Period 1 → every upstream call fails.
        let sims = SimProviders::new(7);
        let flaky = std::sync::Arc::new(FlakyProvider::new(sims, 1, "bundle"));
        let policy = ResiliencePolicy {
            breaker: BreakerPolicy { failure_threshold: 2, cooldown: SimDuration::from_mins(5) },
            ..Default::default()
        };
        let s = InfoServer::new(flaky.clone(), flaky.clone(), flaky.clone())
            .with_resilience(policy, 42);
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_hours(2);
        let loc = GeoPoint::new(8.2, 53.1);
        // Two failing logical calls open the breaker.
        assert!(s.sun_forecast(&loc, now, eta).is_err());
        assert!(s.sun_forecast(&loc, now + SimDuration::from_mins(1), eta).is_err());
        assert!(matches!(s.breaker_state(FeedKind::Weather), Some(BreakerState::Open { .. })));
        let upstream_before = s.stats().snapshot().0;
        // While open: shed — the upstream counter must NOT move.
        assert!(s.sun_forecast(&loc, now + SimDuration::from_mins(2), eta).is_err());
        assert_eq!(s.stats().snapshot().0, upstream_before, "open breaker sheds load");
        assert!(s.virtual_backoff_ms() > 0.0, "retries accounted their backoff");
        // FlakyProvider with period 1 fails every call, so heal it by
        // swapping expectations: after the cooldown the probe reaches the
        // upstream again (counter moves), even though it still fails.
        let after = now + SimDuration::from_mins(10);
        assert!(s.sun_forecast(&loc, after, eta).is_err());
        assert_eq!(s.stats().snapshot().0, upstream_before + 1, "half-open probe goes upstream");
    }

    #[test]
    fn weather_and_wind_cell_centers_stay_in_coordinate_range() {
        // Regression: cell_center used to clamp only latitude, so a
        // charger near the antimeridian produced a representative point
        // with |lon| > 180 and the weather simulator was queried outside
        // its domain. Both helpers must clamp both axes.
        for lon in [-179.99, -0.3, 0.3, 179.99] {
            for lat in [-89.95, -0.2, 0.2, 89.95] {
                let p = GeoPoint::new(lon, lat);
                let (_, _, wc) = cell_center(&p);
                assert!(wc.lon.abs() <= 180.0, "weather lon {} from {p:?}", wc.lon);
                assert!(wc.lat.abs() <= 90.0, "weather lat {} from {p:?}", wc.lat);
                let (_, _, nc) = wind_cell_center(&p);
                assert!(nc.lon.abs() <= 180.0, "wind lon {} from {p:?}", nc.lon);
                assert!(nc.lat.abs() <= 90.0, "wind lat {} from {p:?}", nc.lat);
            }
        }
    }

    #[test]
    fn staleness_widening_is_zero_fresh_monotone_and_capped() {
        assert_eq!(staleness_half_width(SimDuration::ZERO), 0.0);
        let mut prev = 0.0;
        for mins in [5u64, 15, 60, 180, 600, 6000] {
            let w = staleness_half_width(SimDuration::from_mins(mins));
            assert!(w >= prev, "widening must be monotone in age");
            prev = w;
        }
        assert!(prev <= 0.25, "widening is capped by the model ceiling");
    }

    #[test]
    fn widen_rules_contain_their_input() {
        let unit = Interval::new(0.3, 0.6);
        let wide = widen_unit(unit, 0.1);
        assert!(wide.lo() <= unit.lo() && wide.hi() >= unit.hi());
        assert!(wide.lo() >= 0.0 && wide.hi() <= 1.0);
        // Near the domain edge the clamp holds.
        let edge = widen_unit(Interval::new(0.0, 0.98), 0.1);
        assert_eq!(edge.lo(), 0.0);
        assert_eq!(edge.hi(), 1.0);
        let factor = Interval::new(1.05, 1.4);
        let wide = widen_factor(factor, 0.1);
        assert!(wide.lo() <= factor.lo() && wide.hi() >= factor.hi());
        assert!(wide.lo() >= 1.0, "free-flow floor");
    }

    #[test]
    fn forecasts_are_pure_per_window() {
        // The purity contract behind lazy pruning: a forecast is a pure
        // function of (feed key, forecast window). Whatever the exact
        // `now` inside the window, whatever the cache history, the value
        // is byte-identical — and it can be re-derived later on a fresh
        // server by replaying any `now` from the original window.
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 7);
        let same_window = SimTime::at(0, DayOfWeek::Tue, 9, 13);
        let eta = now + SimDuration::from_hours(2);
        let loc = GeoPoint::new(8.2, 53.1);
        let ch = charger(3);

        let s = server();
        let a1 = s.availability_forecast(&ch, now, eta).unwrap();
        let a2 = s.availability_forecast(&ch, same_window, eta).unwrap();
        assert_eq!(a1, a2, "same window, same value — regardless of exact now");

        // A fresh server whose first-ever query lands late in the window
        // still derives the identical value: history cannot matter.
        let replay = server();
        let _ = replay.sun_forecast(&loc, same_window, eta).unwrap();
        let b = replay.availability_forecast(&ch, same_window, eta).unwrap();
        assert_eq!(a1, b, "value must not depend on which call populated the cache");
        assert_eq!(forecast_window(now), forecast_window(same_window));
        assert_ne!(
            forecast_window(now),
            forecast_window(now + SimDuration::from_mins(15)),
            "adjacent windows are distinct keys"
        );
    }

    #[test]
    fn forecast_share_attributes_cross_session_hits() {
        use crate::share::SessionScope;
        let s = server();
        let share = s.forecast_share();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        let ch = charger(5);
        {
            let _scope = SessionScope::enter(1);
            let _ = s.availability_forecast(&ch, now, eta).unwrap(); // miss: session 1 pays
            let _ = s.availability_forecast(&ch, now, eta).unwrap(); // its own hit
        }
        let under_two = {
            let _scope = SessionScope::enter(2);
            s.availability_forecast(&ch, now, eta).unwrap() // inherited hit
        };
        let snap = s.forecast_share_stats().unwrap();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.self_hits, 1);
        assert_eq!(snap.shared_hits, 1);
        assert_eq!(share.snapshot(), snap);
        // The ledger is observational: an anonymous read still returns
        // byte-identical data to the attributed ones.
        let anon = s.availability_forecast(&ch, now, eta).unwrap();
        assert_eq!(under_two, anon);
        assert_eq!(s.forecast_share_stats().unwrap().untagged_hits, 1);
    }

    #[test]
    fn evict_expired_runs() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        let _ = s.sun_forecast(&GeoPoint::new(8.2, 53.1), now, eta).unwrap();
        s.evict_expired(now + SimDuration::from_hours(1));
        // Re-query must go upstream again.
        let _ = s.sun_forecast(&GeoPoint::new(8.2, 53.1), now + SimDuration::from_hours(1), eta);
        assert_eq!(s.stats().snapshot().0, 2);
    }
}
