//! The consolidated information server.
//!
//! [`InfoServer`] fronts the three provider feeds with TTL caches keyed on
//! coarse buckets (weather cell × forecast hour, charger × forecast hour,
//! road class × forecast hour), mirroring how the paper's EIS
//! "consolidate\[s\] the required data and distribute\[s\] to individual
//! clients as per request" while "mitigat\[ing\] the need for redundant API
//! call requests" (§IV). Per-provider upstream-call counters let the
//! evaluation show how much the caches save.

use crate::cache::TtlCache;
use crate::provider::{AvailabilityProvider, TrafficProvider, WeatherProvider, WindProvider};
use chargers::Charger;
use ec_types::{EcError, GeoPoint, Interval, SimDuration, SimTime};
use roadnet::RoadClass;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Weather cache cell edge, degrees (matches the simulator's weather-cell
/// granularity so caching cannot change answers).
const WEATHER_CELL_DEG: f64 = 0.5;

/// How long a cached forecast stays valid, sim-time.
const FORECAST_TTL: SimDuration = SimDuration::from_mins(15);

/// Quantise an ETA to its cache bucket's representative instant (the
/// middle of the hour). The *inputs* to every upstream call are derived
/// from the cache key, never from the exact query — so a cache hit and a
/// fresh fetch return byte-identical forecasts, and cache state can never
/// change a ranking (only its cost). Hourly L/A/traffic granularity
/// matches the sources being modelled (popular-times histograms and
/// weather feeds are hourly).
fn eta_bucket(eta: SimTime) -> SimTime {
    SimTime::from_secs((eta.as_secs() / 3_600) * 3_600 + 1_800)
}

/// Edge length of a wind cell, degrees (synoptic scale, matching the wind
/// simulator).
const WIND_CELL_DEG: f64 = 2.0;

/// The representative point of the wind cell containing `loc`.
fn wind_cell_center(loc: &GeoPoint) -> (i64, i64, GeoPoint) {
    let cx = (loc.lon / WIND_CELL_DEG).floor() as i64;
    let cy = (loc.lat / WIND_CELL_DEG).floor() as i64;
    let center = GeoPoint::new(
        ((cx as f64 + 0.5) * WIND_CELL_DEG).clamp(-179.9, 179.9),
        ((cy as f64 + 0.5) * WIND_CELL_DEG).clamp(-89.9, 89.9),
    );
    (cx, cy, center)
}

/// The representative point of the weather cell containing `loc`.
fn cell_center(loc: &GeoPoint) -> (i64, i64, GeoPoint) {
    let cx = (loc.lon / WEATHER_CELL_DEG).floor() as i64;
    let cy = (loc.lat / WEATHER_CELL_DEG).floor() as i64;
    let center = GeoPoint::new(
        (cx as f64 + 0.5) * WEATHER_CELL_DEG,
        ((cy as f64 + 0.5) * WEATHER_CELL_DEG).clamp(-89.9, 89.9),
    );
    (cx, cy, center)
}

/// Upstream API-call counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Calls that reached the weather provider.
    pub weather_calls: AtomicU64,
    /// Calls that reached the availability provider.
    pub availability_calls: AtomicU64,
    /// Calls that reached the traffic provider.
    pub traffic_calls: AtomicU64,
    /// Calls that reached the wind provider.
    pub wind_calls: AtomicU64,
}

impl ServerStats {
    /// Snapshot `(weather, availability, traffic, wind)` upstream call
    /// counts.
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.weather_calls.load(Ordering::Relaxed),
            self.availability_calls.load(Ordering::Relaxed),
            self.traffic_calls.load(Ordering::Relaxed),
            self.wind_calls.load(Ordering::Relaxed),
        )
    }
}

/// The EcoCharge Information Server: cached, counted provider access.
pub struct InfoServer {
    weather: Arc<dyn WeatherProvider>,
    availability: Arc<dyn AvailabilityProvider>,
    traffic: Arc<dyn TrafficProvider>,
    wind: Option<Arc<dyn WindProvider>>,
    sun_cache: TtlCache<(i64, i64, u64), Interval>,
    wind_cache: TtlCache<(i64, i64, u64), Interval>,
    avail_cache: TtlCache<(u32, u64), Interval>,
    traffic_cache: TtlCache<(u8, u64, bool), Interval>,
    stats: ServerStats,
    serve_stale: bool,
}

impl InfoServer {
    /// Wire a server over the three provider feeds.
    #[must_use]
    pub fn new(
        weather: Arc<dyn WeatherProvider>,
        availability: Arc<dyn AvailabilityProvider>,
        traffic: Arc<dyn TrafficProvider>,
    ) -> Self {
        Self {
            weather,
            availability,
            traffic,
            wind: None,
            sun_cache: TtlCache::new(),
            wind_cache: TtlCache::new(),
            avail_cache: TtlCache::new(),
            traffic_cache: TtlCache::new(),
            stats: ServerStats::default(),
            serve_stale: false,
        }
    }

    /// Enable degraded-mode reads: when an upstream provider fails, serve
    /// the last cached value for the bucket (if any) even past its TTL.
    /// The client still sees a typed error when no stale value exists.
    #[must_use]
    pub fn with_stale_serving(mut self) -> Self {
        self.serve_stale = true;
        self
    }

    /// Whether degraded-mode (stale) reads are enabled.
    #[must_use]
    pub const fn serves_stale(&self) -> bool {
        self.serve_stale
    }

    /// Convenience: a server over one [`crate::SimProviders`] bundle
    /// (all four feeds, including wind).
    #[must_use]
    pub fn from_sims(sims: crate::provider::SimProviders) -> Self {
        let shared = Arc::new(sims);
        Self::new(shared.clone(), shared.clone(), shared.clone()).with_wind(shared)
    }

    /// Attach a wind feed (stations with zero wind capacity never ask).
    #[must_use]
    pub fn with_wind(mut self, wind: Arc<dyn WindProvider>) -> Self {
        self.wind = Some(wind);
        self
    }

    /// Cached wind capacity-factor forecast for the wind cell containing
    /// `loc` at the hour of `eta`.
    ///
    /// # Errors
    /// [`EcError::ProviderUnavailable`] when no wind feed is attached or
    /// the upstream fails without a stale fallback.
    pub fn wind_forecast(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        let Some(provider) = &self.wind else {
            return Err(EcError::ProviderUnavailable("wind".into()));
        };
        let (cx, cy, center) = wind_cell_center(loc);
        let bucket = eta_bucket(eta);
        let key = (cx, cy, bucket.as_secs());
        let fresh = self.wind_cache.get_or_insert_with(key, now, FORECAST_TTL, || {
            self.stats.wind_calls.fetch_add(1, Ordering::Relaxed);
            provider.forecast_wind(&center, now, bucket)
        });
        match fresh {
            Err(e) if self.serve_stale => self
                .wind_cache
                .get_allow_stale(&key, now)
                .map(|(v, _)| v)
                .ok_or(e),
            other => other,
        }
    }

    /// Cached sun-fraction forecast for the weather cell containing `loc`
    /// at the hour of `eta`.
    pub fn sun_forecast(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        let (cx, cy, center) = cell_center(loc);
        let bucket = eta_bucket(eta);
        let key = (cx, cy, bucket.as_secs());
        let fresh = self.sun_cache.get_or_insert_with(key, now, FORECAST_TTL, || {
            self.stats.weather_calls.fetch_add(1, Ordering::Relaxed);
            self.weather.forecast_sun(&center, now, bucket)
        });
        match fresh {
            Err(e) if self.serve_stale => self
                .sun_cache
                .get_allow_stale(&key, now)
                .map(|(v, _)| v)
                .ok_or(e),
            other => other,
        }
    }

    /// Cached availability forecast for `charger` at `eta`.
    pub fn availability_forecast(
        &self,
        charger: &Charger,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        let bucket = eta_bucket(eta);
        let key = (charger.id.0, bucket.as_secs());
        let fresh = self.avail_cache.get_or_insert_with(key, now, FORECAST_TTL, || {
            self.stats.availability_calls.fetch_add(1, Ordering::Relaxed);
            self.availability.forecast_availability(charger, now, bucket)
        });
        match fresh {
            Err(e) if self.serve_stale => self
                .avail_cache
                .get_allow_stale(&key, now)
                .map(|(v, _)| v)
                .ok_or(e),
            other => other,
        }
    }

    /// Cached traffic time-factor forecast for `class` at `eta`.
    pub fn traffic_time_forecast(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        let bucket = eta_bucket(eta);
        let key = (class.tag(), bucket.as_secs(), false);
        let fresh = self.traffic_cache.get_or_insert_with(key, now, FORECAST_TTL, || {
            self.stats.traffic_calls.fetch_add(1, Ordering::Relaxed);
            self.traffic.forecast_time_factor(class, now, bucket)
        });
        match fresh {
            Err(e) if self.serve_stale => self
                .traffic_cache
                .get_allow_stale(&key, now)
                .map(|(v, _)| v)
                .ok_or(e),
            other => other,
        }
    }

    /// Cached traffic energy-factor forecast for `class` at `eta`.
    pub fn traffic_energy_forecast(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        let bucket = eta_bucket(eta);
        let key = (class.tag(), bucket.as_secs(), true);
        let fresh = self.traffic_cache.get_or_insert_with(key, now, FORECAST_TTL, || {
            self.stats.traffic_calls.fetch_add(1, Ordering::Relaxed);
            self.traffic.forecast_energy_factor(class, now, bucket)
        });
        match fresh {
            Err(e) if self.serve_stale => self
                .traffic_cache
                .get_allow_stale(&key, now)
                .map(|(v, _)| v)
                .ok_or(e),
            other => other,
        }
    }

    /// Upstream call counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// `(hits, misses)` across all three caches.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        let (h1, m1) = self.sun_cache.stats();
        let (h2, m2) = self.avail_cache.stats();
        let (h3, m3) = self.traffic_cache.stats();
        (h1 + h2 + h3, m1 + m2 + m3)
    }

    /// Drop expired entries from every cache.
    pub fn evict_expired(&self, now: SimTime) {
        self.sun_cache.evict_expired(now);
        self.avail_cache.evict_expired(now);
        self.traffic_cache.evict_expired(now);
        self.wind_cache.evict_expired(now);
    }
}

impl std::fmt::Debug for InfoServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses) = self.cache_stats();
        f.debug_struct("InfoServer")
            .field("cache_hits", &hits)
            .field("cache_misses", &misses)
            .field("upstream_calls", &self.stats.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::SimProviders;
    use chargers::ChargerKind;
    use ec_models::SiteArchetype;
    use ec_types::{ChargerId, DayOfWeek, Kilowatts, NodeId};

    fn server() -> InfoServer {
        InfoServer::from_sims(SimProviders::new(7))
    }

    fn charger(id: u32) -> Charger {
        Charger {
            id: ChargerId(id),
            loc: GeoPoint::new(8.2, 53.1),
            node: NodeId(0),
            kind: ChargerKind::Ac22,
            panel: Kilowatts(30.0),
            wind: Kilowatts(0.0),
            archetype: SiteArchetype::Downtown,
        }
    }

    #[test]
    fn repeated_queries_hit_cache() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        let loc = GeoPoint::new(8.2, 53.1);
        let a = s.sun_forecast(&loc, now, eta).unwrap();
        let b = s.sun_forecast(&loc, now, eta).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.stats().snapshot().0, 1, "only one upstream weather call");
        let (hits, _) = s.cache_stats();
        assert!(hits >= 1);
    }

    #[test]
    fn nearby_locations_share_weather_cache_entry() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        let a = GeoPoint::new(8.20, 53.10);
        let b = a.offset_m(800.0, 400.0);
        let _ = s.sun_forecast(&a, now, eta).unwrap();
        let _ = s.sun_forecast(&b, now, eta).unwrap();
        assert_eq!(s.stats().snapshot().0, 1);
    }

    #[test]
    fn distinct_chargers_fetch_separately() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        let _ = s.availability_forecast(&charger(0), now, eta).unwrap();
        let _ = s.availability_forecast(&charger(1), now, eta).unwrap();
        let _ = s.availability_forecast(&charger(0), now, eta).unwrap();
        assert_eq!(s.stats().snapshot().1, 2);
    }

    #[test]
    fn cache_expires_after_ttl() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_hours(2);
        let loc = GeoPoint::new(8.2, 53.1);
        let _ = s.sun_forecast(&loc, now, eta).unwrap();
        let later = now + SimDuration::from_mins(20); // past the 15-min TTL
        let _ = s.sun_forecast(&loc, later, eta).unwrap();
        assert_eq!(s.stats().snapshot().0, 2);
    }

    #[test]
    fn time_and_energy_traffic_cached_independently() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 8, 0);
        let eta = now + SimDuration::from_mins(20);
        let t = s.traffic_time_forecast(RoadClass::Primary, now, eta).unwrap();
        let e = s.traffic_energy_forecast(RoadClass::Primary, now, eta).unwrap();
        assert!(t.hi() >= e.hi(), "energy factor is damped");
        assert_eq!(s.stats().snapshot().2, 2);
    }

    #[test]
    fn stale_serving_uses_expired_entry() {
        use crate::provider::FlakyProvider;
        // Provider succeeds exactly once (fails every call from the 2nd):
        // period 1 fails every call, so warm the cache through a healthy
        // bundle sharing the *same* cache is not possible from outside.
        // Instead: period 2 → call 1 ok (cached), call 2 fails (after
        // TTL) → stale value served.
        let sims = SimProviders::new(7);
        let flaky = std::sync::Arc::new(FlakyProvider::new(sims, 2, "bundle"));
        let s = InfoServer::new(flaky.clone(), flaky.clone(), flaky).with_stale_serving();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_hours(3);
        let loc = GeoPoint::new(8.2, 53.1);
        let first = s.sun_forecast(&loc, now, eta).unwrap(); // upstream call #1: ok
        let later = now + SimDuration::from_mins(20); // past the 15-min TTL
        let second = s.sun_forecast(&loc, later, eta).unwrap(); // call #2 fails → stale
        assert_eq!(first, second, "degraded mode must serve the cached value");
        // Without stale serving the same sequence errors.
        let sims = SimProviders::new(7);
        let flaky = std::sync::Arc::new(FlakyProvider::new(sims, 2, "bundle"));
        let strict = InfoServer::new(flaky.clone(), flaky.clone(), flaky);
        let _ = strict.sun_forecast(&loc, now, eta).unwrap();
        assert!(strict.sun_forecast(&loc, later, eta).is_err());
    }

    #[test]
    fn evict_expired_runs() {
        let s = server();
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        let _ = s.sun_forecast(&GeoPoint::new(8.2, 53.1), now, eta).unwrap();
        s.evict_expired(now + SimDuration::from_hours(1));
        // Re-query must go upstream again.
        let _ = s.sun_forecast(&GeoPoint::new(8.2, 53.1), now + SimDuration::from_hours(1), eta);
        assert_eq!(s.stats().snapshot().0, 2);
    }
}
