//! Retry and circuit-breaker machinery for the provider feeds.
//!
//! A CkNN-EC deployment talks to third-party APIs that fail, rate-limit
//! and brown out. This module gives the EIS two standard defences, both
//! fully deterministic (sim-time only, seeded jitter — no wall clock):
//!
//! * **bounded retry with backoff** — a failed upstream call is retried up
//!   to a configured number of times; the backoff that a real deployment
//!   would sleep is *accounted* (it cannot advance the simulation clock)
//!   and surfaces through [`GuardStats::virtual_backoff_ms`] so the mode
//!   cost model can price degraded refreshes honestly;
//! * **per-feed circuit breaker** — after `failure_threshold` consecutive
//!   failures a feed's breaker opens and upstream calls are shed without
//!   being attempted; after `cooldown` of sim-time a single half-open
//!   probe is allowed, and a successful probe closes the breaker again.
//!
//! [`FeedGuard`] combines the two around one feed and is used in two
//! places: inside [`crate::InfoServer`] (so the server's upstream-call
//! counters visibly stop moving while a breaker is open) and by the
//! standalone [`ResilientProvider`] wrapper for deployments that stack
//! resilience under their own caching layer.

use crate::provider::{AvailabilityProvider, TrafficProvider, WeatherProvider, WindProvider};
use chargers::Charger;
use ec_types::rng::{mix, subseed};
use ec_types::{EcError, GeoPoint, Interval, SimDuration, SimTime, SplitMix64};
use parking_lot::Mutex;
use roadnet::RoadClass;
use std::sync::atomic::{AtomicU64, Ordering};

/// The four upstream feeds the EIS fronts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FeedKind {
    /// Solar / weather forecasts.
    Weather,
    /// Wind capacity-factor forecasts.
    Wind,
    /// Charger busy-timetable forecasts.
    Availability,
    /// Live-traffic factor forecasts.
    Traffic,
}

impl FeedKind {
    /// All feeds, in guard-array order.
    pub const ALL: [FeedKind; 4] = [Self::Weather, Self::Wind, Self::Availability, Self::Traffic];

    /// Stable index into per-feed arrays.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Self::Weather => 0,
            Self::Wind => 1,
            Self::Availability => 2,
            Self::Traffic => 3,
        }
    }

    /// The provider name carried in [`EcError::ProviderUnavailable`].
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Weather => "weather",
            Self::Wind => "wind",
            Self::Availability => "availability",
            Self::Traffic => "traffic",
        }
    }
}

/// Bounded-retry configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per logical call (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff_ms: f64,
    /// Extra backoff jitter as a fraction of the backoff (0 = none).
    /// Drawn from a seeded stream, so runs are reproducible.
    pub jitter_frac: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, base_backoff_ms: 40.0, jitter_frac: 0.2 }
    }
}

impl RetryPolicy {
    /// Deterministic backoff (ms) before retry number `retry` (1-based)
    /// of logical call `call`, jittered from the per-guard seed.
    #[must_use]
    pub fn backoff_ms(&self, seed: u64, call: u64, retry: u32) -> f64 {
        let exp = self.base_backoff_ms * f64::from(1u32 << (retry - 1).min(16));
        let jitter = if self.jitter_frac > 0.0 {
            let mut rng = SplitMix64::new(mix(seed, mix(call, u64::from(retry))));
            rng.next_f64() * self.jitter_frac * exp
        } else {
            0.0
        };
        exp + jitter
    }
}

/// Circuit-breaker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive failures (of whole retried calls) that open the
    /// breaker.
    pub failure_threshold: u32,
    /// Sim-time the breaker stays open before allowing a half-open probe.
    pub cooldown: SimDuration,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self { failure_threshold: 3, cooldown: SimDuration::from_mins(5) }
    }
}

/// Retry + breaker configuration for one feed (or all feeds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResiliencePolicy {
    /// Retry settings.
    pub retry: RetryPolicy,
    /// Breaker settings.
    pub breaker: BreakerPolicy,
}

/// Inspectable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; counts consecutive whole-call failures.
    Closed {
        /// Consecutive failures so far (resets on success).
        consecutive_failures: u32,
    },
    /// Shedding: upstream is not attempted until `until`.
    Open {
        /// When the cooldown elapses and a probe becomes allowed.
        until: SimTime,
    },
    /// Cooldown elapsed; the next call is the probe that decides.
    HalfOpen,
}

impl BreakerState {
    /// True when the breaker is currently shedding or probing.
    #[must_use]
    pub const fn is_degraded(&self) -> bool {
        !matches!(self, Self::Closed { .. })
    }
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    policy: BreakerPolicy,
}

impl Breaker {
    /// Whether an upstream attempt may proceed at `now`, advancing
    /// Open → HalfOpen when the cooldown has elapsed.
    fn admit(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn on_success(&mut self) {
        self.state = BreakerState::Closed { consecutive_failures: 0 };
    }

    fn on_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::Closed { consecutive_failures } => {
                let n = consecutive_failures + 1;
                if n >= self.policy.failure_threshold {
                    self.state = BreakerState::Open { until: now + self.policy.cooldown };
                } else {
                    self.state = BreakerState::Closed { consecutive_failures: n };
                }
            }
            // A failed probe re-opens for a fresh cooldown.
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open { until: now + self.policy.cooldown };
            }
            BreakerState::Open { .. } => {}
        }
    }
}

/// Counters one [`FeedGuard`] keeps. All monotone, all relaxed — they are
/// diagnostics, not synchronisation.
#[derive(Debug, Default)]
pub struct GuardStats {
    calls: AtomicU64,
    attempts: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
    short_circuits: AtomicU64,
    probes: AtomicU64,
    /// Accumulated backoff the caller *would* have slept, in microseconds
    /// (stored integrally so an atomic suffices).
    virtual_backoff_us: AtomicU64,
}

/// A point-in-time copy of [`GuardStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuardSnapshot {
    /// Logical calls through the guard.
    pub calls: u64,
    /// Upstream attempts (≥ calls that were admitted).
    pub attempts: u64,
    /// Attempts beyond the first per call.
    pub retries: u64,
    /// Logical calls that exhausted every attempt.
    pub failures: u64,
    /// Logical calls shed without an attempt (breaker open).
    pub short_circuits: u64,
    /// Half-open probes issued.
    pub probes: u64,
}

impl GuardStats {
    fn snapshot(&self) -> GuardSnapshot {
        GuardSnapshot {
            calls: self.calls.load(Ordering::Relaxed),
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            short_circuits: self.short_circuits.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
        }
    }
}

/// Retry + circuit breaker around one upstream feed.
#[derive(Debug)]
pub struct FeedGuard {
    feed: FeedKind,
    policy: ResiliencePolicy,
    seed: u64,
    breaker: Mutex<Breaker>,
    stats: GuardStats,
}

impl FeedGuard {
    /// A guard for `feed` under `policy`; `seed` drives the backoff
    /// jitter stream.
    #[must_use]
    pub fn new(feed: FeedKind, policy: ResiliencePolicy, seed: u64) -> Self {
        Self {
            feed,
            policy,
            seed: subseed(seed, feed.index() as u64),
            breaker: Mutex::new(Breaker {
                state: BreakerState::Closed { consecutive_failures: 0 },
                policy: policy.breaker,
            }),
            stats: GuardStats::default(),
        }
    }

    /// Which feed this guard protects.
    #[must_use]
    pub const fn feed(&self) -> FeedKind {
        self.feed
    }

    /// Current breaker state (inspectable, e.g. for dashboards/tests).
    #[must_use]
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().state
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> GuardSnapshot {
        self.stats.snapshot()
    }

    /// Total backoff a real deployment would have slept, milliseconds.
    #[must_use]
    pub fn virtual_backoff_ms(&self) -> f64 {
        self.stats.virtual_backoff_us.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Run `attempt` through the breaker and bounded retry.
    ///
    /// The closure is invoked zero times (breaker open), or between one
    /// and `max_attempts` times. The final error of an exhausted call —
    /// or the shed marker when the breaker is open — is
    /// [`EcError::ProviderUnavailable`] with this feed's name, so callers
    /// see one uniform failure type.
    ///
    /// # Errors
    /// [`EcError::ProviderUnavailable`] when shed or exhausted.
    pub fn call<T>(
        &self,
        now: SimTime,
        mut attempt: impl FnMut() -> Result<T, EcError>,
    ) -> Result<T, EcError> {
        let call_no = self.stats.calls.fetch_add(1, Ordering::Relaxed);
        let probing = {
            let mut breaker = self.breaker.lock();
            if !breaker.admit(now) {
                self.stats.short_circuits.fetch_add(1, Ordering::Relaxed);
                return Err(EcError::ProviderUnavailable(self.feed.name()));
            }
            breaker.state == BreakerState::HalfOpen
        };
        if probing {
            self.stats.probes.fetch_add(1, Ordering::Relaxed);
        }
        // A half-open probe gets exactly one attempt: hammering a feed
        // that just came out of cooldown defeats the breaker's purpose.
        let max_attempts = if probing { 1 } else { self.policy.retry.max_attempts.max(1) };

        let mut last_err = EcError::ProviderUnavailable(self.feed.name());
        for n in 1..=max_attempts {
            self.stats.attempts.fetch_add(1, Ordering::Relaxed);
            match attempt() {
                Ok(v) => {
                    self.breaker.lock().on_success();
                    return Ok(v);
                }
                Err(e) => last_err = e,
            }
            if n < max_attempts {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                let backoff = self.policy.retry.backoff_ms(self.seed, call_no, n);
                self.stats
                    .virtual_backoff_us
                    .fetch_add((backoff * 1_000.0) as u64, Ordering::Relaxed);
            }
        }
        self.stats.failures.fetch_add(1, Ordering::Relaxed);
        self.breaker.lock().on_failure(now);
        Err(last_err)
    }
}

/// One [`FeedGuard`] per feed — the set the [`crate::InfoServer`] holds
/// when resilience is enabled.
#[derive(Debug)]
pub struct GuardSet {
    guards: [FeedGuard; 4],
}

impl GuardSet {
    /// Build guards for all four feeds under one policy and seed.
    #[must_use]
    pub fn new(policy: ResiliencePolicy, seed: u64) -> Self {
        Self { guards: FeedKind::ALL.map(|k| FeedGuard::new(k, policy, seed)) }
    }

    /// The guard for `feed`.
    #[must_use]
    pub fn guard(&self, feed: FeedKind) -> &FeedGuard {
        &self.guards[feed.index()]
    }

    /// Total virtual backoff across all feeds, milliseconds.
    #[must_use]
    pub fn virtual_backoff_ms(&self) -> f64 {
        self.guards.iter().map(FeedGuard::virtual_backoff_ms).sum()
    }
}

/// A provider bundle wrapped in per-feed retry + circuit breaking — the
/// standalone form of the machinery the [`crate::InfoServer`] embeds, for
/// deployments that stack their own cache on top.
#[derive(Debug)]
pub struct ResilientProvider<P> {
    inner: P,
    guards: GuardSet,
}

impl<P> ResilientProvider<P> {
    /// Wrap `inner` with fresh guards.
    #[must_use]
    pub fn new(inner: P, policy: ResiliencePolicy, seed: u64) -> Self {
        Self { inner, guards: GuardSet::new(policy, seed) }
    }

    /// The guard protecting `feed` (state + counters).
    #[must_use]
    pub fn guard(&self, feed: FeedKind) -> &FeedGuard {
        self.guards.guard(feed)
    }

    /// The wrapped provider.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: WeatherProvider> WeatherProvider for ResilientProvider<P> {
    fn forecast_sun(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.guards.guard(FeedKind::Weather).call(now, || self.inner.forecast_sun(loc, now, eta))
    }
}

impl<P: WindProvider> WindProvider for ResilientProvider<P> {
    fn forecast_wind(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.guards.guard(FeedKind::Wind).call(now, || self.inner.forecast_wind(loc, now, eta))
    }
}

impl<P: AvailabilityProvider> AvailabilityProvider for ResilientProvider<P> {
    fn forecast_availability(
        &self,
        charger: &Charger,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.guards
            .guard(FeedKind::Availability)
            .call(now, || self.inner.forecast_availability(charger, now, eta))
    }
}

impl<P: TrafficProvider> TrafficProvider for ResilientProvider<P> {
    fn forecast_time_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.guards
            .guard(FeedKind::Traffic)
            .call(now, || self.inner.forecast_time_factor(class, now, eta))
    }

    fn forecast_energy_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.guards
            .guard(FeedKind::Traffic)
            .call(now, || self.inner.forecast_energy_factor(class, now, eta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::{FlakyProvider, SimProviders};
    use ec_types::DayOfWeek;

    fn t(min: u64) -> SimTime {
        SimTime::at(0, DayOfWeek::Tue, 9, 0) + SimDuration::from_mins(min)
    }

    fn guard(threshold: u32, attempts: u32) -> FeedGuard {
        FeedGuard::new(
            FeedKind::Weather,
            ResiliencePolicy {
                retry: RetryPolicy { max_attempts: attempts, ..Default::default() },
                breaker: BreakerPolicy {
                    failure_threshold: threshold,
                    cooldown: SimDuration::from_mins(5),
                },
            },
            7,
        )
    }

    #[test]
    fn retries_mask_transient_failures() {
        let g = guard(10, 3);
        let mut calls = 0u32;
        let r = g.call(t(0), || {
            calls += 1;
            if calls < 3 {
                Err(EcError::ProviderUnavailable("weather"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r, Ok(42));
        assert_eq!(calls, 3);
        let s = g.stats();
        assert_eq!((s.calls, s.attempts, s.retries, s.failures), (1, 3, 2, 0));
        assert!(g.virtual_backoff_ms() > 0.0, "retries must account backoff");
    }

    #[test]
    fn exhausted_retries_count_one_failure() {
        let g = guard(10, 2);
        let r: Result<(), _> = g.call(t(0), || Err(EcError::OutOfCoverage("x".into())));
        assert_eq!(r, Err(EcError::OutOfCoverage("x".into())), "last real error surfaces");
        let s = g.stats();
        assert_eq!((s.calls, s.attempts, s.failures), (1, 2, 1));
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_after_cooldown() {
        let g = guard(2, 1);
        let fail = || -> Result<(), EcError> { Err(EcError::ProviderUnavailable("weather")) };
        assert!(g.call(t(0), fail).is_err());
        assert!(matches!(g.breaker_state(), BreakerState::Closed { consecutive_failures: 1 }));
        assert!(g.call(t(1), fail).is_err());
        assert!(matches!(g.breaker_state(), BreakerState::Open { .. }));

        // While open: shed without attempting.
        let mut attempted = false;
        let r: Result<(), _> = g.call(t(2), || {
            attempted = true;
            fail()
        });
        assert_eq!(r, Err(EcError::ProviderUnavailable("weather")));
        assert!(!attempted, "open breaker must not touch the upstream");
        assert_eq!(g.stats().short_circuits, 1);

        // After cooldown: exactly one probe; success closes.
        let r = g.call(t(10), || Ok(7));
        assert_eq!(r, Ok(7));
        assert_eq!(g.stats().probes, 1);
        assert!(matches!(g.breaker_state(), BreakerState::Closed { consecutive_failures: 0 }));
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_cooldown() {
        let g = guard(1, 3);
        let fail = || -> Result<(), EcError> { Err(EcError::ProviderUnavailable("weather")) };
        assert!(g.call(t(0), fail).is_err()); // opens (threshold 1)
        let mut attempts = 0;
        let _: Result<(), _> = g.call(t(6), || {
            attempts += 1;
            fail()
        });
        assert_eq!(attempts, 1, "probe gets a single attempt, not the retry budget");
        assert!(matches!(g.breaker_state(), BreakerState::Open { until } if until == t(11)));
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = RetryPolicy::default();
        let a = p.backoff_ms(1, 0, 1);
        let b = p.backoff_ms(1, 0, 1);
        assert_eq!(a, b, "same seed/call/retry → same jitter");
        assert!(p.backoff_ms(1, 0, 2) > p.backoff_ms(1, 0, 1) * 1.5, "exponential growth");
        assert_ne!(p.backoff_ms(1, 0, 1), p.backoff_ms(1, 1, 1), "per-call jitter");
    }

    #[test]
    fn resilient_provider_wraps_all_feeds() {
        let sims = SimProviders::new(3);
        // Fails every 2nd call: with 3 attempts every logical call succeeds.
        let flaky = FlakyProvider::new(sims, 2, "bundle");
        let rp = ResilientProvider::new(flaky, ResiliencePolicy::default(), 11);
        let now = t(0);
        let loc = GeoPoint::new(8.2, 53.1);
        for _ in 0..8 {
            assert!(rp.forecast_sun(&loc, now, now).is_ok());
        }
        let s = rp.guard(FeedKind::Weather).stats();
        assert_eq!(s.failures, 0);
        assert!(s.retries > 0, "the flaky inner must have forced retries");
        assert!(s.attempts > s.calls);
    }
}
