//! The three operating modes.
//!
//! §IV: "(i) Mode 1, where EcoCharge operates in a vehicle's embedded
//! operating system …; (ii) Mode 2, where EIS takes over EcoCharge
//! calculations centrally; and (iii) Mode 3, where EcoCharge
//! functionalities are managed by an edge device."
//!
//! The modes differ in *where* the ranking runs and therefore in the
//! communication each Offering Table costs. [`ModeCosts`] captures that
//! request-cost model; the deployment examples and the mode-equivalence
//! integration tests use it to show that all three modes return the same
//! tables at different latency/byte budgets.

use roadnet::DetourBackend;
use serde::{Deserialize, Serialize};

/// Where the EcoCharge computation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Mode 1 — in the vehicle's embedded OS (Android Automotive, VW OS).
    Embedded,
    /// Mode 2 — centrally on the EIS; the vehicle receives finished
    /// Offering Tables.
    Server,
    /// Mode 3 — on a tethered edge device (Android Auto / CarPlay phone).
    Edge,
}

impl Mode {
    /// All modes.
    pub const ALL: [Mode; 3] = [Self::Embedded, Self::Server, Self::Edge];

    /// The request-cost model for this mode.
    #[must_use]
    pub const fn costs(self) -> ModeCosts {
        match self {
            // The vehicle fetches raw provider data over its own uplink
            // and computes locally: one data round-trip per refresh, no
            // query round-trip, modest CPU.
            Self::Embedded => ModeCosts {
                query_rtt_ms: 0.0,
                data_fetch_rtt_ms: 120.0,
                compute_scale: 1.3,
                result_bytes: 0,
                threads: 1,
                // An in-vehicle deployment has neither the RAM headroom
                // nor the startup budget for CH preprocessing.
                detour_backend: DetourBackend::Dijkstra,
            },
            // The server already holds hot provider caches; the vehicle
            // pays one query round-trip and receives the finished table.
            Self::Server => ModeCosts {
                query_rtt_ms: 60.0,
                data_fetch_rtt_ms: 0.0,
                compute_scale: 1.0,
                result_bytes: 2_048,
                threads: 1,
                // The server sizes its engine to the deployment: the
                // cost-model resolution picks CH on networks big enough
                // to repay the (amortised) build and the plain sweeps on
                // city-scale graphs, where the detour benchmarks measured
                // CH slower.
                detour_backend: DetourBackend::Auto,
            },
            // The phone fetches data like Mode 1 but over a faster link,
            // and talks to the head unit over a negligible local hop.
            Self::Edge => ModeCosts {
                query_rtt_ms: 5.0,
                data_fetch_rtt_ms: 80.0,
                compute_scale: 1.15,
                result_bytes: 1_024,
                threads: 1,
                detour_backend: DetourBackend::Dijkstra,
            },
        }
    }
}

/// What one Offering-Table refresh costs in a given mode, beyond the
/// ranking computation itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeCosts {
    /// Round-trip to ask for (and receive) a finished table, ms.
    pub query_rtt_ms: f64,
    /// Round-trip(s) to refresh raw provider data, ms (amortised per
    /// refresh; zero when the data already lives with the computation).
    pub data_fetch_rtt_ms: f64,
    /// Relative CPU cost of the ranking on this platform (server = 1.0).
    pub compute_scale: f64,
    /// Bytes shipped to the vehicle per table.
    pub result_bytes: usize,
    /// Worker threads the platform dedicates to one refresh. The compute
    /// term scales as `compute_ms / threads` — an idealised linear bound;
    /// the per-candidate fan-out is embarrassingly parallel, so real
    /// scaling tracks it closely until the candidate pool is exhausted.
    pub threads: usize,
    /// Which detour engine this platform runs. Bit-identical either way
    /// (the mode-equivalence tests rely on that); the choice trades CH
    /// preprocessing memory/startup time for per-query speed.
    #[serde(default)]
    pub detour_backend: DetourBackend,
}

impl ModeCosts {
    /// This cost model with `threads` workers per refresh.
    #[must_use]
    pub const fn with_threads(self, threads: usize) -> Self {
        Self { threads, ..self }
    }

    /// This cost model with a different detour engine.
    #[must_use]
    pub const fn with_detour_backend(self, detour_backend: DetourBackend) -> Self {
        Self { detour_backend, ..self }
    }

    /// End-to-end latency of one refresh given the pure ranking time
    /// `compute_ms` (measured single-threaded on the reference platform)
    /// and whether the provider data was already cached locally.
    #[must_use]
    pub fn refresh_latency_ms(&self, compute_ms: f64, data_cached: bool) -> f64 {
        let fetch = if data_cached { 0.0 } else { self.data_fetch_rtt_ms };
        let workers = self.threads.max(1) as f64;
        self.query_rtt_ms + fetch + compute_ms * self.compute_scale / workers
    }

    /// [`Self::refresh_latency_ms`] under degraded upstreams:
    /// `fault_overhead_ms` is the accounted extra waiting this refresh
    /// caused — retry backoff (`InfoServer::virtual_backoff_ms` /
    /// `FeedGuard::virtual_backoff_ms`) plus injected provider latency
    /// (`ChaosProvider::injected_latency_ms`). The overhead is upstream
    /// waiting, so it is only paid where the data fetch is paid: a refresh
    /// answered entirely from local caches hides the faults.
    #[must_use]
    pub fn degraded_refresh_latency_ms(
        &self,
        compute_ms: f64,
        data_cached: bool,
        fault_overhead_ms: f64,
    ) -> f64 {
        let overhead = if data_cached { 0.0 } else { fault_overhead_ms.max(0.0) };
        self.refresh_latency_ms(compute_ms, data_cached) + overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_mode_has_no_data_fetch() {
        assert_eq!(Mode::Server.costs().data_fetch_rtt_ms, 0.0);
        assert!(Mode::Embedded.costs().data_fetch_rtt_ms > 0.0);
    }

    #[test]
    fn embedded_has_no_query_rtt() {
        assert_eq!(Mode::Embedded.costs().query_rtt_ms, 0.0);
    }

    #[test]
    fn cached_data_removes_fetch_cost() {
        let c = Mode::Edge.costs();
        let cold = c.refresh_latency_ms(50.0, false);
        let warm = c.refresh_latency_ms(50.0, true);
        assert!(cold > warm);
        assert!((cold - warm - c.data_fetch_rtt_ms).abs() < 1e-9);
    }

    #[test]
    fn server_fastest_when_everything_cached_remotely() {
        // With warm caches, Mode 2 pays only the query RTT + reference
        // compute; Mode 1 pays scaled compute but no RTT. Both orders are
        // legitimate depending on compute_ms — check the crossover exists.
        let slow_compute = 300.0;
        let fast_compute = 10.0;
        let m1 = Mode::Embedded.costs();
        let m2 = Mode::Server.costs();
        assert!(
            m2.refresh_latency_ms(slow_compute, true) < m1.refresh_latency_ms(slow_compute, true)
        );
        assert!(
            m1.refresh_latency_ms(fast_compute, true) < m2.refresh_latency_ms(fast_compute, true)
        );
    }

    #[test]
    fn fault_overhead_is_paid_only_with_the_fetch() {
        let c = Mode::Edge.costs();
        let clean = c.refresh_latency_ms(50.0, false);
        let degraded = c.degraded_refresh_latency_ms(50.0, false, 120.0);
        assert!((degraded - clean - 120.0).abs() < 1e-9);
        // Warm caches never touched the upstream, so no fault cost.
        assert_eq!(
            c.degraded_refresh_latency_ms(50.0, true, 120.0),
            c.refresh_latency_ms(50.0, true)
        );
        // Negative overhead is nonsense; clamp to zero.
        assert_eq!(
            c.degraded_refresh_latency_ms(50.0, false, -5.0),
            c.refresh_latency_ms(50.0, false)
        );
    }

    #[test]
    fn all_modes_enumerable() {
        assert_eq!(Mode::ALL.len(), 3);
    }

    #[test]
    fn only_the_server_adapts_its_engine() {
        // Modes 1 and 3 run on battery/phone hardware — they keep the
        // zero-preprocessing backend unconditionally. Mode 2 lets the
        // cost model decide whether a CH build would repay itself.
        assert_eq!(Mode::Embedded.costs().detour_backend, DetourBackend::Dijkstra);
        assert_eq!(Mode::Server.costs().detour_backend, DetourBackend::Auto);
        assert_eq!(Mode::Edge.costs().detour_backend, DetourBackend::Dijkstra);
        // The override knob works and is const-friendly.
        const EDGE_CH: ModeCosts = Mode::Edge.costs().with_detour_backend(DetourBackend::Ch);
        assert_eq!(EDGE_CH.detour_backend, DetourBackend::Ch);
        assert_eq!(EDGE_CH.query_rtt_ms, Mode::Edge.costs().query_rtt_ms);
    }

    #[test]
    fn threads_divide_only_the_compute_term() {
        let base = Mode::Server.costs();
        assert_eq!(base.threads, 1, "defaults stay single-threaded");
        let quad = base.with_threads(4);
        let single = base.refresh_latency_ms(100.0, true);
        let parallel = quad.refresh_latency_ms(100.0, true);
        // RTT is unaffected; the compute term shrinks 4x.
        assert!((single - base.query_rtt_ms - 100.0).abs() < 1e-9);
        assert!((parallel - base.query_rtt_ms - 25.0).abs() < 1e-9);
        // threads = 0 is treated as 1, not a divide-by-zero.
        assert_eq!(base.with_threads(0).refresh_latency_ms(100.0, true), single);
    }
}
