//! Real-world occupancy observations feeding back into availability.
//!
//! The paper's availability component `A` is a *forecast*; the closed-loop
//! outcome simulator (`ecocharge-outcomes`) adds the missing other half:
//! when a driver arrives at a charger they *see* the true plug occupancy.
//! That observation is worth more than the model for a short while — the
//! plugs that were full at 09:12 are probably still full at 09:20 — and
//! decays toward worthless as sessions turn over.
//!
//! [`ObservationFeed`] is the channel: the outcome world records one
//! [`OccupancyObservation`] per driver arrival, and an [`crate::InfoServer`]
//! built with [`crate::InfoServer::with_observations`] blends the latest
//! observation into every subsequent availability forecast for that
//! charger. The blend is applied *post-fetch* — the fresh/LKG caches only
//! ever store pure model values, so detaching the feed restores the exact
//! uncorrected server, and the correction itself is a pure function of
//! `(cached value, latest observation, now)`.
//!
//! Corrected values are tagged [`ComponentQuality::Corrected`], which is
//! *not* degraded (the correction carries strictly more information than
//! the bare forecast) but is also not `Fresh` — so the purity gates that
//! key on `availability_model_backed()` (lazy pruning, offering-table
//! caching, parallel serving) all disable themselves automatically when a
//! feed is attached. See `DESIGN.md` §4m.

use ec_types::{ChargerId, ComponentQuality, Interval, SimDuration, SimTime, SourcedInterval};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// How long an occupancy observation keeps influencing forecasts. At this
/// age its blend weight has decayed to zero and the forecast is the pure
/// model value again. Half an hour spans one to two typical AC session
/// turnovers — beyond that, who was plugged in when the driver looked
/// says little.
pub const OBSERVATION_TTL: SimDuration = SimDuration::from_mins(30);

/// Minimum half-width of a corrected interval. A fresh observation pins
/// the blend at the observed fraction; without a floor the interval would
/// collapse to a point and claim certainty no snapshot of a queue can
/// honestly deliver (a car may leave the second the driver looks away).
const CORRECTION_FLOOR: f64 = 0.05;

/// One arrival-discovery snapshot: what a driver saw at a charger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancyObservation {
    /// When the driver looked.
    pub at: SimTime,
    /// Plugs free at that instant.
    pub free: u32,
    /// Total plugs at the site.
    pub plugs: u32,
}

impl OccupancyObservation {
    /// The observed availability fraction in `[0,1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.plugs == 0 {
            return 0.0;
        }
        f64::from(self.free.min(self.plugs)) / f64::from(self.plugs)
    }
}

/// Counters for the observation channel, snapshot-style like
/// [`crate::ServerStats`].
#[derive(Debug, Default)]
pub struct ObservationStats {
    /// Observations recorded (arrivals that looked at a plug bank).
    pub recorded: AtomicU64,
    /// Forecasts that were blended with an observation.
    pub corrections: AtomicU64,
    /// Forecasts that found only an expired observation (older than
    /// [`OBSERVATION_TTL`]) and passed through unchanged.
    pub expired: AtomicU64,
}

impl ObservationStats {
    /// Snapshot `(recorded, corrections, expired)`.
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.recorded.load(Ordering::Relaxed),
            self.corrections.load(Ordering::Relaxed),
            self.expired.load(Ordering::Relaxed),
        )
    }
}

/// Latest-observation store, one slot per charger. Shared between the
/// outcome world (writer) and an [`crate::InfoServer`] (reader) via `Arc`.
///
/// Determinism: the map is keyed and iterated in `ChargerId` order, and
/// the serving layer runs sequentially whenever a feed is attached (the
/// feed disables `availability_model_backed()`, which gates parallel
/// serving) — so reads always see a well-defined prefix of writes.
#[derive(Debug, Default)]
pub struct ObservationFeed {
    latest: Mutex<BTreeMap<ChargerId, OccupancyObservation>>,
    stats: ObservationStats,
}

impl ObservationFeed {
    /// Record what a driver saw on arrival. Keeps the newest observation
    /// per charger (ties by `at` overwrite — the later recording wins,
    /// and the outcome world records in virtual-time order).
    pub fn record(&self, charger: ChargerId, obs: OccupancyObservation) {
        let mut map = self.latest.lock();
        let keep = match map.get(&charger) {
            Some(prev) => obs.at >= prev.at,
            None => true,
        };
        if keep {
            map.insert(charger, obs);
        }
        self.stats.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// The newest observation for `charger`, if any was ever recorded.
    #[must_use]
    pub fn latest(&self, charger: ChargerId) -> Option<OccupancyObservation> {
        self.latest.lock().get(&charger).copied()
    }

    /// Chargers with at least one recorded observation.
    #[must_use]
    pub fn len(&self) -> usize {
        self.latest.lock().len()
    }

    /// True when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.latest.lock().is_empty()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> &ObservationStats {
        &self.stats
    }

    /// Blend the latest observation for `charger` into a model forecast.
    ///
    /// With an unexpired observation of age `a`: the interval bounds are
    /// pulled toward the observed fraction by weight `w = 1 − a/TTL`
    /// (a fresh observation dominates, an old one barely nudges), then
    /// re-widened by the same staleness growth the last-known-good tier
    /// uses plus a small floor — the observation is a point sample, not a
    /// forecast, and its certainty decays the same way. The result is
    /// tagged [`ComponentQuality::Corrected`] (or the base quality if
    /// that was already worse). Without a usable observation the base
    /// passes through untouched.
    #[must_use]
    pub fn correct(
        &self,
        charger: ChargerId,
        base: SourcedInterval,
        now: SimTime,
    ) -> SourcedInterval {
        let Some(obs) = self.latest(charger) else {
            return base;
        };
        let age = now.saturating_since(obs.at);
        if age > OBSERVATION_TTL || obs.plugs == 0 {
            self.stats.expired.fetch_add(1, Ordering::Relaxed);
            return base;
        }
        let w = 1.0 - age.as_secs() as f64 / OBSERVATION_TTL.as_secs() as f64;
        let o = obs.fraction();
        let lo = base.value.lo() + (o - base.value.lo()) * w;
        let hi = base.value.hi() + (o - base.value.hi()) * w;
        let shifted = Interval::new(lo.min(hi), lo.max(hi));
        let half = crate::server::staleness_half_width(age) + CORRECTION_FLOOR;
        let value = crate::server::widen_unit(shifted, half);
        self.stats.corrections.fetch_add(1, Ordering::Relaxed);
        SourcedInterval { value, quality: base.quality.worst(ComponentQuality::Corrected { age }) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SourcedInterval {
        SourcedInterval::fresh(Interval::new(0.6, 0.9))
    }

    #[test]
    fn no_observation_passes_through() {
        let feed = ObservationFeed::default();
        let now = SimTime::from_secs(9 * 3600);
        assert_eq!(feed.correct(ChargerId(3), base(), now), base());
        assert!(feed.is_empty());
    }

    #[test]
    fn fresh_observation_pins_the_interval_near_the_observed_fraction() {
        let feed = ObservationFeed::default();
        let now = SimTime::from_secs(9 * 3600);
        feed.record(ChargerId(3), OccupancyObservation { at: now, free: 0, plugs: 2 });
        let c = feed.correct(ChargerId(3), base(), now);
        // Observed full → blended to 0.0, floor-widened.
        assert!(c.value.hi() <= CORRECTION_FLOOR + 1e-9, "hi {} near zero", c.value.hi());
        assert_eq!(c.quality, ComponentQuality::Corrected { age: SimDuration::ZERO });
        assert!(!c.quality.is_degraded());
        assert_eq!(feed.stats().snapshot(), (1, 1, 0));
    }

    #[test]
    fn correction_decays_with_observation_age() {
        let feed = ObservationFeed::default();
        let seen = SimTime::from_secs(9 * 3600);
        feed.record(ChargerId(7), OccupancyObservation { at: seen, free: 0, plugs: 4 });
        let soon = feed.correct(ChargerId(7), base(), seen + SimDuration::from_mins(2));
        let late = feed.correct(ChargerId(7), base(), seen + SimDuration::from_mins(25));
        // The older the observation, the closer the blend stays to the model.
        assert!(late.value.mid() > soon.value.mid());
        // Past the TTL the model value returns untouched.
        let gone = feed.correct(ChargerId(7), base(), seen + SimDuration::from_mins(31));
        assert_eq!(gone, base());
        assert_eq!(feed.stats().snapshot().2, 1, "one expired pass-through");
    }

    #[test]
    fn newer_observation_wins_older_recording_is_ignored() {
        let feed = ObservationFeed::default();
        let t0 = SimTime::from_secs(9 * 3600);
        let t1 = t0 + SimDuration::from_mins(5);
        feed.record(ChargerId(1), OccupancyObservation { at: t1, free: 2, plugs: 2 });
        feed.record(ChargerId(1), OccupancyObservation { at: t0, free: 0, plugs: 2 });
        assert_eq!(feed.latest(ChargerId(1)).unwrap().free, 2, "stale write ignored");
        assert_eq!(feed.len(), 1);
    }

    #[test]
    fn corrected_interval_reflects_partial_occupancy() {
        let feed = ObservationFeed::default();
        let now = SimTime::from_secs(12 * 3600);
        feed.record(ChargerId(9), OccupancyObservation { at: now, free: 1, plugs: 4 });
        let c = feed.correct(ChargerId(9), SourcedInterval::fresh(Interval::new(0.7, 0.8)), now);
        assert!(c.value.contains(0.25), "interval {} should cover the observed 1/4", c.value);
        assert!(c.value.hi() < 0.7, "pulled well below the model's optimistic range");
    }

    #[test]
    fn quality_keeps_the_worse_of_base_and_correction() {
        let feed = ObservationFeed::default();
        let now = SimTime::from_secs(12 * 3600);
        feed.record(ChargerId(2), OccupancyObservation { at: now, free: 1, plugs: 2 });
        let stale_base =
            SourcedInterval::stale(Interval::new(0.4, 0.9), SimDuration::from_mins(40));
        let c = feed.correct(ChargerId(2), stale_base, now);
        assert_eq!(
            c.quality,
            ComponentQuality::Stale { age: SimDuration::from_mins(40) },
            "staleness dominates a correction in the badge"
        );
    }
}
