//! Data-provider traits and their simulator-backed implementations.
//!
//! The paper's EIS fronts OpenWeather (solar forecasts), Google-Maps-style
//! busy timetables (availability) and a live-traffic GIS (§IV). Each feed
//! is a trait here so that the core algorithm can run against the
//! simulators, against cached server-side copies, or against a
//! failure-injected wrapper, without changing a line.

use chargers::Charger;
use ec_models::{AvailabilityModel, TrafficModel, WeatherSim, WindSim};
use ec_types::{EcError, GeoPoint, Interval, SimTime};
use roadnet::RoadClass;
use std::sync::atomic::{AtomicU64, Ordering};

/// Solar/weather forecast feed.
pub trait WeatherProvider: Send + Sync {
    /// Forecast, issued at `now`, of the sun fraction (0–1 of panel
    /// rating) at `loc` at time `eta`.
    fn forecast_sun(&self, loc: &GeoPoint, now: SimTime, eta: SimTime)
        -> Result<Interval, EcError>;
}

/// Wind-farm capacity-factor feed (for the net-metered wind stations of
/// §II-A).
pub trait WindProvider: Send + Sync {
    /// Forecast, issued at `now`, of the wind capacity factor (0–1 of
    /// nameplate rating) at `loc` at time `eta`.
    fn forecast_wind(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError>;
}

/// Charger busy-timetable feed.
pub trait AvailabilityProvider: Send + Sync {
    /// Forecast availability `[A_min, A_max]` of `charger` at `eta`.
    fn forecast_availability(
        &self,
        charger: &Charger,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError>;
}

/// Live-traffic feed.
pub trait TrafficProvider: Send + Sync {
    /// Forecast multiplier interval on free-flow travel *time* for roads
    /// of `class` at `eta`.
    fn forecast_time_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError>;

    /// Forecast multiplier interval on traction *energy* (damped relative
    /// to the time factor — stop-and-go recuperates).
    fn forecast_energy_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError>;
}

/// Map a road class onto the congestibility scale the traffic simulator
/// speaks: arterials congest worst, residential streets barely.
#[must_use]
pub fn congestibility(class: RoadClass) -> ec_models::traffic::roadclass_shim::Congestibility {
    use ec_models::traffic::roadclass_shim::Congestibility;
    match class {
        RoadClass::Motorway => Congestibility(2.0),
        RoadClass::Primary => Congestibility(2.4),
        RoadClass::Secondary => Congestibility(1.8),
        RoadClass::Residential => Congestibility(1.3),
    }
}

/// The bundle of simulator-backed providers plus the simulators
/// themselves (exposed so oracles can read the ground truth).
#[derive(Debug, Clone)]
pub struct SimProviders {
    /// Weather ground truth + forecasts.
    pub weather: WeatherSim,
    /// Availability ground truth + forecasts.
    pub availability: AvailabilityModel,
    /// Traffic ground truth + forecasts.
    pub traffic: TrafficModel,
    /// Wind ground truth + forecasts.
    pub wind: WindSim,
}

impl SimProviders {
    /// Build all three simulators from one master seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            weather: WeatherSim::new(ec_types::rng::subseed(seed, 20)),
            availability: AvailabilityModel::new(ec_types::rng::subseed(seed, 21)),
            traffic: TrafficModel::new(ec_types::rng::subseed(seed, 22)),
            wind: WindSim::new(ec_types::rng::subseed(seed, 23)),
        }
    }
}

/// The issue instant a simulator forecast is computed as of: the start of
/// the query's forecast window. This makes every `SimProviders` forecast
/// a pure function of `(feed key, window, eta bucket)` — any `now` inside
/// the same window yields byte-identical intervals, so a forecast can be
/// re-derived later exactly (the purity contract the lazy filter–refine
/// engine and `InfoServer`'s window-keyed caches rely on; see
/// `crate::forecast_window`). Quantised here, in the *model-backed*
/// provider, rather than in the server: wrapped third-party or
/// fault-injected feeds must keep seeing the true query instant.
fn issue_time(now: SimTime) -> SimTime {
    crate::server::forecast_window(now)
}

impl WeatherProvider for SimProviders {
    fn forecast_sun(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        Ok(self.weather.forecast_sun_fraction(loc, issue_time(now), eta))
    }
}

impl WindProvider for SimProviders {
    fn forecast_wind(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        Ok(self.wind.forecast_capacity_factor(loc, issue_time(now), eta))
    }
}

impl AvailabilityProvider for SimProviders {
    fn forecast_availability(
        &self,
        charger: &Charger,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        Ok(self.availability.forecast_availability(
            charger.entity_seed(),
            charger.archetype,
            issue_time(now),
            eta,
        ))
    }
}

impl TrafficProvider for SimProviders {
    fn forecast_time_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        Ok(self.traffic.forecast_time_factor(congestibility(class), issue_time(now), eta))
    }

    fn forecast_energy_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        Ok(self.traffic.forecast_energy_factor(congestibility(class), issue_time(now), eta))
    }
}

/// Failure-injection wrapper: every `period`-th call to any wrapped feed
/// fails with [`EcError::ProviderUnavailable`]. Deterministic, so
/// resilience tests are reproducible.
#[derive(Debug)]
pub struct FlakyProvider<P> {
    inner: P,
    period: u64,
    calls: AtomicU64,
    name: &'static str,
}

impl<P> FlakyProvider<P> {
    /// Wrap `inner`; every `period`-th call fails (period 0 = never).
    #[must_use]
    pub fn new(inner: P, period: u64, name: &'static str) -> Self {
        Self { inner, period, calls: AtomicU64::new(0), name }
    }

    fn tick(&self) -> Result<(), EcError> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if self.period > 0 && n.is_multiple_of(self.period) {
            Err(EcError::ProviderUnavailable(self.name))
        } else {
            Ok(())
        }
    }

    /// Total calls observed (including failed ones).
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<P: WeatherProvider> WeatherProvider for FlakyProvider<P> {
    fn forecast_sun(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.tick()?;
        self.inner.forecast_sun(loc, now, eta)
    }
}

impl<P: WindProvider> WindProvider for FlakyProvider<P> {
    fn forecast_wind(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.tick()?;
        self.inner.forecast_wind(loc, now, eta)
    }
}

impl<P: AvailabilityProvider> AvailabilityProvider for FlakyProvider<P> {
    fn forecast_availability(
        &self,
        charger: &Charger,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.tick()?;
        self.inner.forecast_availability(charger, now, eta)
    }
}

impl<P: TrafficProvider> TrafficProvider for FlakyProvider<P> {
    fn forecast_time_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.tick()?;
        self.inner.forecast_time_factor(class, now, eta)
    }

    fn forecast_energy_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.tick()?;
        self.inner.forecast_energy_factor(class, now, eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chargers::ChargerKind;
    use ec_models::SiteArchetype;
    use ec_types::{ChargerId, DayOfWeek, Kilowatts, NodeId, SimDuration};

    fn charger() -> Charger {
        Charger {
            id: ChargerId(0),
            loc: GeoPoint::new(8.2, 53.1),
            node: NodeId(0),
            kind: ChargerKind::Ac22,
            panel: Kilowatts(30.0),
            wind: Kilowatts(0.0),
            archetype: SiteArchetype::Mall,
        }
    }

    #[test]
    fn sim_providers_answer_all_feeds() {
        let p = SimProviders::new(1);
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(30);
        assert!(p.forecast_sun(&GeoPoint::new(8.2, 53.1), now, eta).is_ok());
        assert!(p.forecast_availability(&charger(), now, eta).is_ok());
        assert!(p.forecast_time_factor(RoadClass::Primary, now, eta).is_ok());
        let e = p.forecast_energy_factor(RoadClass::Primary, now, eta).unwrap();
        assert!(e.lo() >= 1.0);
    }

    #[test]
    fn subsystem_seeds_are_independent() {
        let a = SimProviders::new(1);
        let b = SimProviders::new(2);
        let now = SimTime::at(0, DayOfWeek::Tue, 12, 0);
        let eta = now + SimDuration::from_mins(60);
        let loc = GeoPoint::new(8.2, 53.1);
        // Different master seeds give different realisations.
        assert_ne!(
            a.forecast_sun(&loc, now, eta).unwrap(),
            b.forecast_sun(&loc, now, eta).unwrap()
        );
    }

    #[test]
    fn flaky_fails_every_nth() {
        let p = FlakyProvider::new(SimProviders::new(1), 3, "weather");
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        let eta = now + SimDuration::from_mins(10);
        let loc = GeoPoint::new(8.2, 53.1);
        let results: Vec<bool> = (0..6).map(|_| p.forecast_sun(&loc, now, eta).is_ok()).collect();
        assert_eq!(results, [true, true, false, true, true, false]);
        assert_eq!(p.calls(), 6);
    }

    #[test]
    fn flaky_period_zero_never_fails() {
        let p = FlakyProvider::new(SimProviders::new(1), 0, "weather");
        let now = SimTime::at(0, DayOfWeek::Tue, 9, 0);
        for _ in 0..10 {
            assert!(p.forecast_sun(&GeoPoint::new(8.2, 53.1), now, now).is_ok());
        }
    }

    #[test]
    fn congestibility_orders_classes() {
        assert!(congestibility(RoadClass::Primary).0 > congestibility(RoadClass::Residential).0);
    }
}
