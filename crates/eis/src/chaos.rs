//! Chaos-grade fault injection for the provider feeds.
//!
//! [`FlakyProvider`](crate::FlakyProvider) fails every n-th call — enough
//! for unit tests, too regular to exercise retry/breaker/stale machinery
//! the way a real outage does. [`ChaosProvider`] generalises it:
//!
//! * a **seeded random failure rate** — each call flips a coin drawn from
//!   a per-call [`SplitMix64`] stream, so two runs with the same seed see
//!   byte-identical fault patterns;
//! * **burst outage windows** — during a sim-time window `[from, until)` a
//!   targeted feed (or all feeds) fails *every* call, modelling a provider
//!   blackout rather than sporadic flakiness;
//! * **per-feed targeting** — failure rate and outages can hit one feed
//!   while the others stay healthy;
//! * **injected latency** — every call that reaches the wrapper accrues a
//!   seeded latency draw into an accounted total, which
//!   [`crate::ModeCosts::degraded_refresh_latency_ms`] turns into honest
//!   end-to-end refresh cost under faults.
//!
//! Everything is driven by the call's sim-time and a per-call counter —
//! no wall clock, no OS entropy — so chaos soaks are reproducible.

use crate::provider::{AvailabilityProvider, TrafficProvider, WeatherProvider, WindProvider};
use crate::resilience::FeedKind;
use chargers::Charger;
use ec_types::rng::mix;
use ec_types::{EcError, GeoPoint, Interval, SimTime, SplitMix64};
use roadnet::RoadClass;
use std::sync::atomic::{AtomicU64, Ordering};

/// A total blackout of one feed (or all feeds) over `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The feed taken down; `None` hits every feed.
    pub feed: Option<FeedKind>,
    /// Blackout start (inclusive).
    pub from: SimTime,
    /// Blackout end (exclusive).
    pub until: SimTime,
}

impl OutageWindow {
    /// Whether a call to `feed` at `now` falls inside this blackout.
    #[must_use]
    pub fn covers(&self, feed: FeedKind, now: SimTime) -> bool {
        self.feed.is_none_or(|f| f == feed) && self.from <= now && now < self.until
    }
}

/// Fault-injection plan for a [`ChaosProvider`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the failure/latency streams.
    pub seed: u64,
    /// Per-call probability of a random failure, `[0,1]`.
    pub failure_rate: f64,
    /// Feed the random failures target; `None` hits every feed.
    pub target: Option<FeedKind>,
    /// Total blackout windows, checked before the random coin.
    pub outages: Vec<OutageWindow>,
    /// Mean injected latency per upstream call, ms (drawn uniformly from
    /// `[0, 2·mean]` so the expectation is the configured mean).
    pub mean_latency_ms: f64,
}

impl ChaosConfig {
    /// A plan with no faults at all (useful as a baseline).
    #[must_use]
    pub fn calm(seed: u64) -> Self {
        Self { seed, failure_rate: 0.0, target: None, outages: Vec::new(), mean_latency_ms: 0.0 }
    }
}

/// Provider wrapper that injects seeded failures, burst outages and
/// latency according to a [`ChaosConfig`].
#[derive(Debug)]
pub struct ChaosProvider<P> {
    inner: P,
    config: ChaosConfig,
    calls: AtomicU64,
    failures: AtomicU64,
    injected_latency_us: AtomicU64,
}

impl<P> ChaosProvider<P> {
    /// Wrap `inner` under the given fault plan.
    #[must_use]
    pub fn new(inner: P, config: ChaosConfig) -> Self {
        Self {
            inner,
            config,
            calls: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            injected_latency_us: AtomicU64::new(0),
        }
    }

    /// Total calls observed (failed or not).
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Calls failed by injection.
    #[must_use]
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Accumulated injected latency, milliseconds — the time a real
    /// deployment would have spent waiting on the degraded upstreams.
    #[must_use]
    pub fn injected_latency_ms(&self) -> f64 {
        self.injected_latency_us.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// The wrapped provider.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Fault gate run before every inner call: account latency, then fail
    /// if a blackout covers the call or the seeded coin comes up bad.
    fn gate(&self, feed: FeedKind, now: SimTime) -> Result<(), EcError> {
        let call_no = self.calls.fetch_add(1, Ordering::Relaxed);
        let mut rng = SplitMix64::new(mix(self.config.seed, mix(feed.index() as u64, call_no)));
        if self.config.mean_latency_ms > 0.0 {
            let latency = rng.next_f64() * 2.0 * self.config.mean_latency_ms;
            self.injected_latency_us.fetch_add((latency * 1_000.0) as u64, Ordering::Relaxed);
        }
        let blackout = self.config.outages.iter().any(|o| o.covers(feed, now));
        let random = self.config.failure_rate > 0.0
            && self.config.target.is_none_or(|t| t == feed)
            && rng.next_f64() < self.config.failure_rate;
        if blackout || random {
            self.failures.fetch_add(1, Ordering::Relaxed);
            Err(EcError::ProviderUnavailable(feed.name()))
        } else {
            Ok(())
        }
    }
}

impl<P: WeatherProvider> WeatherProvider for ChaosProvider<P> {
    fn forecast_sun(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.gate(FeedKind::Weather, now)?;
        self.inner.forecast_sun(loc, now, eta)
    }
}

impl<P: WindProvider> WindProvider for ChaosProvider<P> {
    fn forecast_wind(
        &self,
        loc: &GeoPoint,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.gate(FeedKind::Wind, now)?;
        self.inner.forecast_wind(loc, now, eta)
    }
}

impl<P: AvailabilityProvider> AvailabilityProvider for ChaosProvider<P> {
    fn forecast_availability(
        &self,
        charger: &Charger,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.gate(FeedKind::Availability, now)?;
        self.inner.forecast_availability(charger, now, eta)
    }
}

impl<P: TrafficProvider> TrafficProvider for ChaosProvider<P> {
    fn forecast_time_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.gate(FeedKind::Traffic, now)?;
        self.inner.forecast_time_factor(class, now, eta)
    }

    fn forecast_energy_factor(
        &self,
        class: RoadClass,
        now: SimTime,
        eta: SimTime,
    ) -> Result<Interval, EcError> {
        self.gate(FeedKind::Traffic, now)?;
        self.inner.forecast_energy_factor(class, now, eta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::SimProviders;
    use ec_types::{DayOfWeek, SimDuration};

    fn t(min: u64) -> SimTime {
        SimTime::at(0, DayOfWeek::Tue, 9, 0) + SimDuration::from_mins(min)
    }

    fn chaos(config: ChaosConfig) -> ChaosProvider<SimProviders> {
        ChaosProvider::new(SimProviders::new(5), config)
    }

    #[test]
    fn calm_plan_never_fails() {
        let p = chaos(ChaosConfig::calm(1));
        let loc = GeoPoint::new(8.2, 53.1);
        for i in 0..50 {
            assert!(p.forecast_sun(&loc, t(i), t(i + 30)).is_ok());
        }
        assert_eq!(p.failures(), 0);
        assert_eq!(p.injected_latency_ms(), 0.0);
    }

    #[test]
    fn failure_rate_is_roughly_honoured_and_seeded() {
        let run = |seed: u64| -> Vec<bool> {
            let p = chaos(ChaosConfig { failure_rate: 0.3, ..ChaosConfig::calm(seed) });
            let loc = GeoPoint::new(8.2, 53.1);
            (0..200).map(|i| p.forecast_sun(&loc, t(i), t(i + 30)).is_ok()).collect()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a, b, "same seed → identical fault pattern");
        let failures = a.iter().filter(|ok| !**ok).count();
        assert!((30..=90).contains(&failures), "~30% of 200, got {failures}");
        assert_ne!(run(10), a, "different seed → different pattern");
    }

    #[test]
    fn outage_window_blacks_out_only_its_feed_and_span() {
        let p = chaos(ChaosConfig {
            outages: vec![OutageWindow {
                feed: Some(FeedKind::Weather),
                from: t(10),
                until: t(20),
            }],
            ..ChaosConfig::calm(3)
        });
        let loc = GeoPoint::new(8.2, 53.1);
        assert!(p.forecast_sun(&loc, t(9), t(40)).is_ok(), "before the window");
        assert_eq!(
            p.forecast_sun(&loc, t(10), t(40)),
            Err(EcError::ProviderUnavailable("weather")),
            "start is inclusive"
        );
        assert!(p.forecast_sun(&loc, t(19), t(40)).is_err(), "inside");
        assert!(p.forecast_sun(&loc, t(20), t(40)).is_ok(), "end is exclusive");
        // Another feed sails through the blackout.
        assert!(p.forecast_time_factor(RoadClass::Primary, t(15), t(40)).is_ok());
    }

    #[test]
    fn targeted_random_failures_spare_other_feeds() {
        let p = chaos(ChaosConfig {
            failure_rate: 1.0,
            target: Some(FeedKind::Availability),
            ..ChaosConfig::calm(4)
        });
        let loc = GeoPoint::new(8.2, 53.1);
        assert!(p.forecast_sun(&loc, t(0), t(30)).is_ok());
        assert!(p.forecast_wind(&loc, t(0), t(30)).is_ok());
    }

    #[test]
    fn injected_latency_accumulates_deterministically() {
        let run = || {
            let p = chaos(ChaosConfig { mean_latency_ms: 25.0, ..ChaosConfig::calm(8) });
            let loc = GeoPoint::new(8.2, 53.1);
            for i in 0..40 {
                let _ = p.forecast_sun(&loc, t(i), t(i + 30));
            }
            p.injected_latency_ms()
        };
        let total = run();
        assert!(total > 0.0);
        // 40 draws with mean 25ms — loose sanity band.
        assert!((200.0..=1_800.0).contains(&total), "got {total}");
        assert_eq!(run(), total, "latency accounting is seeded");
    }
}
