//! A minimal request/response bus over crossbeam channels.
//!
//! Mode 2 runs the ranking "centrally on a server" (§IV). [`ServiceBus`]
//! provides the thread boundary for that deployment shape: a server thread
//! owns the state (graph, fleet, caches) and answers typed requests;
//! clients hold a cheap cloneable handle. The payload types are generic so
//! the core crate can ship Offering-Table requests without `eis` knowing
//! about them.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One in-flight request envelope.
struct Envelope<Req, Resp> {
    req: Req,
    reply: Sender<Resp>,
}

/// Client handle to a running service.
#[derive(Debug)]
pub struct ServiceClient<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
}

impl<Req, Resp> Clone for ServiceClient<Req, Resp> {
    fn clone(&self) -> Self {
        Self { tx: self.tx.clone() }
    }
}

impl<Req: Send + 'static, Resp: Send + 'static> ServiceClient<Req, Resp> {
    /// Send a request and block for the response.
    ///
    /// Returns `None` when the server has shut down, or when the handler
    /// panicked on *this* request (the service itself survives).
    pub fn call(&self, req: Req) -> Option<Resp> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx.send(Envelope { req, reply: reply_tx }).ok()?;
        reply_rx.recv().ok()
    }
}

/// A running service (one or more worker threads); dropping the last
/// client ends it.
#[derive(Debug)]
pub struct ServiceBus {
    handles: Vec<JoinHandle<()>>,
}

impl ServiceBus {
    /// Spawn a server thread running `handler` over each request, in
    /// arrival order. The service stops when every client clone is
    /// dropped.
    pub fn spawn<Req, Resp, F>(mut handler: F) -> (ServiceClient<Req, Resp>, ServiceBus)
    where
        Req: Send + 'static,
        Resp: Send + 'static,
        F: FnMut(Req) -> Resp + Send + 'static,
    {
        type Channel<Req, Resp> = (Sender<Envelope<Req, Resp>>, Receiver<Envelope<Req, Resp>>);
        let (tx, rx): Channel<Req, Resp> = unbounded();
        let handle = std::thread::spawn(move || {
            while let Ok(Envelope { req, reply }) = rx.recv() {
                // A panicking handler must not take the service down: the
                // panicked request's caller sees `None` (its reply sender
                // drops unanswered) and the loop keeps serving the queue.
                match catch_unwind(AssertUnwindSafe(|| handler(req))) {
                    // A client that hung up mid-call is not an error.
                    Ok(resp) => {
                        let _ = reply.send(resp);
                    }
                    Err(_) => drop(reply),
                }
            }
        });
        (ServiceClient { tx }, ServiceBus { handles: vec![handle] })
    }

    /// Spawn `workers` server threads draining one shared request bus —
    /// the Mode-2 deployment's parallel server loop. `make_handler(w)`
    /// builds each worker's private handler (its own ranking state /
    /// search scratch), so no handler state is shared.
    ///
    /// Workers contend only on the receive side (the bus lock is held
    /// across `recv` alone, never while handling), so requests pipeline
    /// across workers while each individual request is answered by
    /// exactly one of them. The service stops when every client clone is
    /// dropped.
    pub fn spawn_pool<Req, Resp, F, H>(
        workers: usize,
        make_handler: F,
    ) -> (ServiceClient<Req, Resp>, ServiceBus)
    where
        Req: Send + 'static,
        Resp: Send + 'static,
        F: Fn(usize) -> H,
        H: FnMut(Req) -> Resp + Send + 'static,
    {
        type Channel<Req, Resp> = (Sender<Envelope<Req, Resp>>, Receiver<Envelope<Req, Resp>>);
        let (tx, rx): Channel<Req, Resp> = unbounded();
        // The vendored Receiver is Send but not Sync/Clone; a mutex makes
        // it a shared pop-end the workers drain cooperatively.
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|w| {
                let rx = Arc::clone(&rx);
                let mut handler = make_handler(w);
                std::thread::spawn(move || loop {
                    // Hold the bus lock only across the blocking recv;
                    // release before handling so other workers can pull
                    // the next request concurrently.
                    let envelope = rx.lock().recv();
                    match envelope {
                        Ok(Envelope { req, reply }) => {
                            // A worker that panicked mid-handler used to
                            // unwind out of this loop; once every worker
                            // had died, already-queued callers were left
                            // waiting on a bus nobody drains. Contain the
                            // panic instead: this caller gets `None`, the
                            // worker lives on to serve pending requests.
                            match catch_unwind(AssertUnwindSafe(|| handler(req))) {
                                Ok(resp) => {
                                    let _ = reply.send(resp);
                                }
                                Err(_) => drop(reply),
                            }
                        }
                        Err(_) => break, // all clients hung up
                    }
                })
            })
            .collect();
        (ServiceClient { tx }, ServiceBus { handles })
    }

    /// Block until every service thread exits (all clients dropped).
    pub fn join(mut self) {
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceBus {
    fn drop(&mut self) {
        // Detach: the threads exit once the clients hang up.
        self.handles.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_requests() {
        let (client, _bus) = ServiceBus::spawn(|x: u32| x * 2);
        assert_eq!(client.call(21), Some(42));
        assert_eq!(client.call(5), Some(10));
    }

    #[test]
    fn clients_clone_and_share() {
        let (client, _bus) = ServiceBus::spawn(|s: String| s.len());
        let c2 = client.clone();
        let t = std::thread::spawn(move || c2.call("hello".to_string()));
        assert_eq!(client.call("worlds!".to_string()), Some(7));
        assert_eq!(t.join().unwrap(), Some(5));
    }

    #[test]
    fn server_stops_when_clients_drop() {
        let (client, bus) = ServiceBus::spawn(|x: u32| x);
        drop(client);
        bus.join(); // must not hang
    }

    #[test]
    fn pool_serves_every_request() {
        let (client, bus) = ServiceBus::spawn_pool(4, |_w| |x: u32| x * 2);
        let mut got: Vec<Option<u32>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16u32)
                .map(|i| {
                    let c = client.clone();
                    scope.spawn(move || c.call(i))
                })
                .collect();
            for h in handles {
                got.push(h.join().unwrap());
            }
        });
        let mut vals: Vec<u32> = got.into_iter().map(|v| v.unwrap()).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..16u32).map(|i| i * 2).collect::<Vec<_>>());
        drop(client);
        bus.join(); // every worker must exit
    }

    #[test]
    fn pool_workers_have_private_state() {
        // Each worker counts its own requests; the sum over workers must
        // equal the total even though no state is shared.
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let total = Arc::new(AtomicU32::new(0));
        let (client, _bus) = ServiceBus::spawn_pool(3, |_w| {
            let total = Arc::clone(&total);
            let mut local = 0u32;
            move |_: ()| {
                local += 1;
                total.fetch_add(1, Ordering::Relaxed);
                local
            }
        });
        for _ in 0..12 {
            let served = client.call(()).unwrap();
            assert!(served >= 1);
        }
        assert_eq!(total.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn pool_of_one_behaves_like_spawn() {
        let (client, _bus) = ServiceBus::spawn_pool(1, |_w| |x: u32| x + 1);
        assert_eq!(client.call(1), Some(2));
        assert_eq!(client.call(2), Some(3));
    }

    #[test]
    fn spawn_survives_handler_panic() {
        let (client, _bus) = ServiceBus::spawn(|x: u32| {
            assert!(x.is_multiple_of(2), "injected fault");
            x / 2
        });
        assert_eq!(client.call(8), Some(4));
        // The poisoned request fails cleanly…
        assert_eq!(client.call(3), None);
        // …and the server thread is still alive to answer the next one.
        assert_eq!(client.call(10), Some(5));
    }

    #[test]
    fn pool_survives_worker_panic_and_serves_pending_requests() {
        // Regression: a handler panic used to unwind the worker loop;
        // with every worker dead, queued callers blocked on a bus nobody
        // drains. Every call below must complete — the panicked one as
        // `None`, the rest answered.
        let (client, _bus) = ServiceBus::spawn_pool(2, |_w| {
            |x: u32| {
                assert!(x != 13, "injected fault");
                x * 2
            }
        });
        std::thread::scope(|scope| {
            let bad = {
                let c = client.clone();
                scope.spawn(move || c.call(13))
            };
            let good: Vec<_> = (0..8u32)
                .map(|i| {
                    let c = client.clone();
                    scope.spawn(move || c.call(i))
                })
                .collect();
            assert_eq!(bad.join().unwrap(), None, "panic propagates as a failed call");
            let mut got: Vec<u32> =
                good.into_iter().map(|h| h.join().unwrap().expect("worker survived")).collect();
            got.sort_unstable();
            assert_eq!(got, (0..8u32).map(|i| i * 2).collect::<Vec<_>>());
        });
        // Both workers remain healthy afterwards.
        assert_eq!(client.call(4), Some(8));
        assert_eq!(client.call(13), None);
        assert_eq!(client.call(5), Some(10));
    }

    #[test]
    fn stateful_handler() {
        let mut count = 0u32;
        let (client, _bus) = ServiceBus::spawn(move |_: ()| {
            count += 1;
            count
        });
        assert_eq!(client.call(()), Some(1));
        assert_eq!(client.call(()), Some(2));
    }
}
