//! A minimal request/response bus over crossbeam channels.
//!
//! Mode 2 runs the ranking "centrally on a server" (§IV). [`ServiceBus`]
//! provides the thread boundary for that deployment shape: a server thread
//! owns the state (graph, fleet, caches) and answers typed requests;
//! clients hold a cheap cloneable handle. The payload types are generic so
//! the core crate can ship Offering-Table requests without `eis` knowing
//! about them.

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::thread::JoinHandle;

/// One in-flight request envelope.
struct Envelope<Req, Resp> {
    req: Req,
    reply: Sender<Resp>,
}

/// Client handle to a running service.
#[derive(Debug)]
pub struct ServiceClient<Req, Resp> {
    tx: Sender<Envelope<Req, Resp>>,
}

impl<Req, Resp> Clone for ServiceClient<Req, Resp> {
    fn clone(&self) -> Self {
        Self { tx: self.tx.clone() }
    }
}

impl<Req: Send + 'static, Resp: Send + 'static> ServiceClient<Req, Resp> {
    /// Send a request and block for the response.
    ///
    /// Returns `None` when the server has shut down.
    pub fn call(&self, req: Req) -> Option<Resp> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx.send(Envelope { req, reply: reply_tx }).ok()?;
        reply_rx.recv().ok()
    }
}

/// A running service thread; dropping the last client ends it.
#[derive(Debug)]
pub struct ServiceBus {
    handle: Option<JoinHandle<()>>,
}

impl ServiceBus {
    /// Spawn a server thread running `handler` over each request, in
    /// arrival order. The service stops when every client clone is
    /// dropped.
    pub fn spawn<Req, Resp, F>(mut handler: F) -> (ServiceClient<Req, Resp>, ServiceBus)
    where
        Req: Send + 'static,
        Resp: Send + 'static,
        F: FnMut(Req) -> Resp + Send + 'static,
    {
        type Channel<Req, Resp> = (Sender<Envelope<Req, Resp>>, Receiver<Envelope<Req, Resp>>);
        let (tx, rx): Channel<Req, Resp> = unbounded();
        let handle = std::thread::spawn(move || {
            while let Ok(Envelope { req, reply }) = rx.recv() {
                // A client that hung up mid-call is not an error.
                let _ = reply.send(handler(req));
            }
        });
        (ServiceClient { tx }, ServiceBus { handle: Some(handle) })
    }

    /// Block until the service thread exits (all clients dropped).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceBus {
    fn drop(&mut self) {
        // Detach: the thread exits once the clients hang up.
        let _ = self.handle.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_requests() {
        let (client, _bus) = ServiceBus::spawn(|x: u32| x * 2);
        assert_eq!(client.call(21), Some(42));
        assert_eq!(client.call(5), Some(10));
    }

    #[test]
    fn clients_clone_and_share() {
        let (client, _bus) = ServiceBus::spawn(|s: String| s.len());
        let c2 = client.clone();
        let t = std::thread::spawn(move || c2.call("hello".to_string()));
        assert_eq!(client.call("worlds!".to_string()), Some(7));
        assert_eq!(t.join().unwrap(), Some(5));
    }

    #[test]
    fn server_stops_when_clients_drop() {
        let (client, bus) = ServiceBus::spawn(|x: u32| x);
        drop(client);
        bus.join(); // must not hang
    }

    #[test]
    fn stateful_handler() {
        let mut count = 0u32;
        let (client, _bus) = ServiceBus::spawn(move |_: ()| {
            count += 1;
            count
        });
        assert_eq!(client.call(()), Some(1));
        assert_eq!(client.call(()), Some(2));
    }
}
