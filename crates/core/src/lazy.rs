//! Bound-driven lazy filter–refine (DESIGN.md §4g).
//!
//! The eager pipeline evaluates every candidate's availability forecast —
//! the one genuinely per-charger upstream feed — before the refinement
//! phase discards most of the pool. This module inverts that: candidates
//! stream in ascending distance ([`chargers::ChargerFleet::nearest_iter`]),
//! the cheap stage (`ETA`/`L`/`D`, whose inputs are already batched or
//! class-level) runs for the whole pool, and the expensive availability
//! step runs **lazily**, in descending order of an optimistic score bound,
//! stopping once the next bound cannot beat the running pessimistic k-th
//! score. The bound substitutes the *availability envelope*
//! ([`ec_models::forecast_envelope`]) — a superset of every forecast the
//! in-tree model can serve for that charger/time-bucket — for the exact
//! forecast interval.
//!
//! **Identity, not approximation.** The pruned path produces bit-identical
//! Offering Tables to the eager path:
//!
//! * the cheap stage and the pool normalisations run over the *same pool*
//!   in the *same fold order* as the eager path, so every evaluated
//!   candidate's `L`/`D` (and hence score interval) is bit-equal;
//! * the envelope contains the exact forecast, and
//!   [`crate::score::Weights::interval_score`] is monotone in `A` under
//!   IEEE rounding, so `bound ≥ sc.hi` for every candidate;
//! * the stop threshold is the k-th largest exact `sc.lo` among evaluated
//!   candidates — a subset of the full pool, hence `threshold ≤` the full
//!   pool's k-th largest `sc.lo`. Every candidate the eager
//!   [`crate::score::prune_dominated`] keeps satisfies
//!   `sc.hi ≥ kth_lo ≥ threshold`, so its bound clears the threshold and
//!   it gets evaluated; every candidate this module skips satisfies
//!   `sc.hi ≤ bound < threshold ≤ kth_lo`, so the eager path discards it
//!   too. The evaluated set is a pool-order subsequence containing every
//!   eager survivor *and* every top-k-by-`sc.lo` candidate, which makes
//!   the downstream `prune_dominated`/`refine_topk` decisions — including
//!   index tie-breaks — identical.
//!
//! Skipped candidates are not discarded: they become
//! [`ShadowComponent`]s in the Dynamic Cache, each carrying its exactly
//! computed cold-time components (minus `A`) and its envelope, so a later
//! adapted query can re-bound them against the *new* detour geometry and
//! materialise exactly the ones that could enter the table — the forecast
//! purity of the window-keyed information server
//! ([`eis::forecast_window`]) guarantees a late materialisation reproduces
//! the value the cold solve would have computed, bit for bit.
//!
//! Anything that could make the envelope unsound — stale serving,
//! resilience fallbacks, a non-model availability feed, a non-`Fresh`
//! component — makes the engine **abandon** to the eager path for that
//! query instead of risking a divergent table.

use crate::cache::{CachedSolution, ShadowComponent};
use crate::context::QueryCtx;
use crate::detour::detour_batch;
use crate::objectives::{
    assemble, component_or_fallback, eval_availability, eval_cheap, normalize_clean_power,
    normalize_derouting, Components,
};
use ec_types::{ChargerId, ComponentQuality, GeoPoint, Interval, NodeId, SimTime};
use roadnet::{RoadClass, SearchEngine};

/// Evaluation-count accounting for the lazy filter–refine engine,
/// accumulated across queries by [`crate::algorithm::EcoCharge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Candidates that entered a cold solve's component pool (cheap stage
    /// survivors — the set the eager path would evaluate exactly).
    pub pool: u64,
    /// Exact availability evaluations actually performed: cold-solve
    /// evaluations plus adapted-query shadow materialisations. With
    /// pruning off this equals `pool`.
    pub exact_evals: u64,
    /// Cold-solve candidates whose exact evaluation was skipped (became
    /// cache shadows).
    pub pruned: u64,
    /// Candidates dropped while streaming, before the cheap stage, by the
    /// straight-line battery-feasibility bound (the eager path drops the
    /// same candidates inside its cheap stage).
    pub streamed_out: u64,
}

impl PruneStats {
    /// Fold another counter set into this one.
    pub fn accumulate(&mut self, other: Self) {
        self.pool += other.pool;
        self.exact_evals += other.exact_evals;
        self.pruned += other.pruned;
        self.streamed_out += other.streamed_out;
    }
}

/// First evaluation wave: enough to seed a meaningful threshold.
pub(crate) const SEED_WAVE_MIN: usize = 16;
/// Follow-up wave size; the threshold is recomputed only at wave
/// boundaries, keeping the schedule independent of thread count.
pub(crate) const WAVE: usize = 32;

/// Outcome of a lazy cold solve.
pub(crate) enum LazyCold {
    /// `comps` are the exactly evaluated pool members (pool order);
    /// `shadows` the skipped ones (pool order, disjoint positions).
    Done { comps: Vec<Components>, shadows: Vec<ShadowComponent>, stats: PruneStats },
    /// A precondition failed mid-flight (provider error or non-`Fresh`
    /// component) — the caller must run the eager path.
    Abandon,
}

/// Outcome of a lazy adapted solve over a shadow-bearing cache.
pub(crate) enum LazyAdapted {
    /// `comps` is the refreshed output pool (exact members plus
    /// materialised shadows, pool order); `promotions` the materialised
    /// shadows' *cold-time* components for [`crate::cache::DynamicCache::promote`].
    Done { comps: Vec<Components>, promotions: Vec<(u32, Components)>, stats: PruneStats },
    /// Fall back to a full (cold) solve.
    Abandon,
}

/// The cheapest per-km energy rate of any road class — turns a
/// straight-line distance into a sound lower bound on path energy (every
/// edge costs `len_m / 1000 × class.kwh_per_km()` and edge lengths are
/// never shorter than the straight line between their endpoints).
fn min_kwh_per_km() -> f64 {
    RoadClass::ALL.iter().map(|c| c.kwh_per_km()).fold(f64::INFINITY, f64::min)
}

/// Envelope of every availability forecast the window-keyed server can
/// serve for `charger` at `eta`, as seen from a query at `now`:
/// reproduces the exact instants the server evaluates at (forecast window
/// and hourly ETA bucket) and widens the archetype's truth bounds by the
/// worst-case forecast half-width plus skew.
pub(crate) fn availability_envelope(
    charger: &chargers::Charger,
    now: SimTime,
    eta: SimTime,
) -> Interval {
    EnvelopeMemo::new(now).envelope(charger.archetype, eta)
}

/// Per-solve envelope computer: the forecast window depends only on the
/// query's `now`, and the envelope itself only on `(archetype, ETA
/// bucket)` — a handful of distinct pairs across a pool whose ETAs span
/// at most a few hours. Hoisting the window and memoising the pairs turns
/// the per-candidate envelope into (mostly) one small linear probe.
/// Purely a latency optimisation: every hit returns the exact `Interval`
/// the direct computation produces.
struct EnvelopeMemo {
    window: SimTime,
    memo: Vec<(u8, u64, Interval)>,
}

impl EnvelopeMemo {
    fn new(now: SimTime) -> Self {
        Self { window: eis::forecast_window(now), memo: Vec::with_capacity(8) }
    }

    fn envelope(&mut self, arch: ec_models::SiteArchetype, eta: SimTime) -> Interval {
        let bucket = eis::eta_bucket(eta);
        let tag = arch as u8;
        if let Some(&(_, _, e)) =
            self.memo.iter().find(|&&(t, b, _)| t == tag && b == bucket.as_secs())
        {
            return e;
        }
        let horizon_h = bucket.saturating_since(self.window).as_hours_f64();
        let (t_lo, t_hi) = ec_models::availability_truth_bounds(arch, bucket);
        let e = ec_models::forecast_envelope(t_lo, t_hi, horizon_h);
        self.memo.push((tag, bucket.as_secs(), e));
        e
    }
}

/// The k-th largest value in `lows` (`-∞` with fewer than `k` values) —
/// the pessimistic score every pruned candidate must fail to beat.
/// `scratch` is reused across waves to keep the selection allocation-free
/// after the first call; selection (not a full sort) suffices because
/// only the k-th order statistic is consumed.
fn kth_largest(lows: &[f64], k: usize, scratch: &mut Vec<f64>) -> f64 {
    if lows.len() < k || k == 0 {
        return f64::NEG_INFINITY;
    }
    scratch.clear();
    scratch.extend_from_slice(lows);
    let (_, kth, _) = scratch.select_nth_unstable_by(k - 1, |a, b| b.total_cmp(a));
    *kth
}

/// Stream the candidate pool for a cold solve: every charger within
/// radius `R` of `pos` in ascending distance, minus candidates the
/// configured vehicle provably cannot afford (straight-line energy lower
/// bound — monotone under the battery check, so the eager cheap stage
/// would drop exactly these too). Returns the pool plus the
/// streamed-out count.
fn stream_candidates(
    ctx: &QueryCtx<'_>,
    pos: &GeoPoint,
    at_node: NodeId,
    rejoin_node: NodeId,
) -> (Vec<ChargerId>, u64) {
    let radius_m = ctx.config.radius_km * 1_000.0;
    let at_pos = ctx.graph.point(at_node);
    let rejoin_pos = ctx.graph.point(rejoin_node);
    let rate = min_kwh_per_km();
    let mut streamed_out = 0u64;
    let mut pool = Vec::new();
    for (cid, dist_m) in ctx.fleet.nearest_iter(pos) {
        if dist_m > radius_m {
            break; // ascending distance: nothing further qualifies
        }
        if let Some(v) = &ctx.config.vehicle {
            let cpos = ctx.graph.point(ctx.fleet.get(cid).node);
            let crow_m = at_pos.fast_dist_m(&cpos) + cpos.fast_dist_m(&rejoin_pos);
            // 1e-6 relative slack absorbs the f32 rounding of stored edge
            // lengths, keeping the bound strictly below the true energy.
            let lb_kwh = crow_m / 1_000.0 * rate * (1.0 - 1e-6);
            if !v.can_afford(lb_kwh) {
                streamed_out += 1;
                continue;
            }
        }
        pool.push(cid);
    }
    (pool, streamed_out)
}

/// Cold solve with bound-driven pruning. Preconditions (checked by the
/// caller): pruning enabled, server fresh (no stale serving, no
/// resilience guards) and availability model-backed.
pub(crate) fn lazy_cold_solve(
    ctx: &QueryCtx<'_>,
    engine: &mut SearchEngine,
    pos: &GeoPoint,
    at_node: NodeId,
    rejoin_node: NodeId,
    now: SimTime,
) -> LazyCold {
    let (candidates, streamed_out) = stream_candidates(ctx, pos, at_node, rejoin_node);
    if candidates.is_empty() {
        let stats = PruneStats { streamed_out, ..PruneStats::default() };
        return LazyCold::Done { comps: Vec::new(), shadows: Vec::new(), stats };
    }
    let nodes: Vec<NodeId> = candidates.iter().map(|&c| ctx.fleet.get(c).node).collect();
    let threads = ctx.config.threads;
    let det = detour_batch(ctx, engine, at_node, rejoin_node, &nodes, true);

    // Cheap stage for the whole pool — identical calls, identical order
    // to the eager path (the availability step is the only one withheld).
    let Ok(slots) = ec_exec::try_parallel_map(
        threads,
        &candidates,
        |_| (),
        |(), i, &cid| eval_cheap(ctx, &det, i, cid, now),
    ) else {
        return LazyCold::Abandon; // provider failure: replay eagerly
    };
    let stages: Vec<_> = slots.into_iter().flatten().collect();
    if stages
        .iter()
        .any(|s| s.l_quality != ComponentQuality::Fresh || s.d_quality != ComponentQuality::Fresh)
    {
        return LazyCold::Abandon; // degraded component: envelope unsound
    }
    if stages.is_empty() {
        let stats = PruneStats { streamed_out, ..PruneStats::default() };
        return LazyCold::Done { comps: Vec::new(), shadows: Vec::new(), stats };
    }

    // Proto components: exact `L`/`D` via the same pool normalisations
    // the eager path runs (they read only cheap-stage fields, so every
    // value is bit-equal); `A` stays a placeholder.
    let mut proto: Vec<Components> =
        stages.iter().map(|s| assemble(s, Interval::zero(), ComponentQuality::Fresh)).collect();
    normalize_derouting(&mut proto, ctx.norm.max_derouting_kwh);
    normalize_clean_power(&mut proto);

    let n = proto.len();
    let mut env_memo = EnvelopeMemo::new(now);
    let env: Vec<Interval> = proto
        .iter()
        .map(|c| env_memo.envelope(ctx.fleet.get(c.charger).archetype, c.eta))
        .collect();
    let bound: Vec<f64> = proto
        .iter()
        .zip(&env)
        .map(|(c, e)| ctx.config.weights.interval_score(c.l, *e, c.d).hi())
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| bound[y].total_cmp(&bound[x]).then(x.cmp(&y)));

    // Best-bound-first evaluation in fixed-size waves. The threshold (the
    // k-th largest exact `sc.lo` so far) moves only at wave boundaries,
    // so the schedule — and hence the evaluated set — is a deterministic
    // function of the pool, independent of thread count.
    let k = ctx.config.k;
    let mut a_vals: Vec<Option<(Interval, ComponentQuality)>> = vec![None; n];
    let mut evaluated_lo: Vec<f64> = Vec::with_capacity(n.min(4 * WAVE));
    let mut sel_scratch: Vec<f64> = Vec::new();
    let mut threshold = f64::NEG_INFINITY;
    let mut cursor = 0usize;
    let mut wave_cap = k.max(SEED_WAVE_MIN);
    while cursor < n {
        // Next wave: the longest prefix of the remaining bound order that
        // still clears the threshold, capped at the wave size.
        let wave_end = order[cursor..]
            .iter()
            .take(wave_cap)
            .take_while(|&&idx| bound[idx] >= threshold)
            .count()
            + cursor;
        if wave_end == cursor {
            break; // best remaining bound cannot reach the table
        }
        let wave = &order[cursor..wave_end];
        let Ok(results) = ec_exec::try_parallel_map(
            threads,
            wave,
            |_| (),
            |(), _, &idx| {
                let c = &proto[idx];
                eval_availability(ctx, ctx.fleet.get(c.charger), now, c.eta)
            },
        ) else {
            return LazyCold::Abandon;
        };
        for (&idx, (a, q)) in wave.iter().zip(results) {
            if q != ComponentQuality::Fresh {
                return LazyCold::Abandon;
            }
            let c = &proto[idx];
            evaluated_lo.push(ctx.config.weights.interval_score(c.l, a, c.d).lo());
            a_vals[idx] = Some((a, q));
        }
        cursor = wave_end;
        threshold = kth_largest(&evaluated_lo, k, &mut sel_scratch);
        wave_cap = WAVE;
    }

    // Split the pool (original order preserved) into exact components and
    // cache shadows.
    let exact = evaluated_lo.len() as u64;
    let mut comps = Vec::with_capacity(evaluated_lo.len());
    let mut shadows = Vec::with_capacity(n - evaluated_lo.len());
    for (i, mut c) in proto.into_iter().enumerate() {
        match a_vals[i] {
            Some((a, q)) => {
                c.a = a;
                c.quality.a = q;
                comps.push(c);
            }
            None => shadows.push(ShadowComponent {
                pool_pos: u32::try_from(i).expect("pool fits u32"),
                a_env: env[i],
                comp: c,
            }),
        }
    }
    let stats =
        PruneStats { pool: n as u64, exact_evals: exact, pruned: n as u64 - exact, streamed_out };
    LazyCold::Done { comps, shadows, stats }
}

/// Adapted solve over a shadow-bearing cached solution: refresh `D` for
/// the *whole* cached pool (exact members and shadows alike, so the
/// derouting normalisation divisor matches the eager path's), then
/// materialise exactly those shadows whose re-bounded optimistic score
/// still clears the exact members' pessimistic k-th score. A shadow
/// materialises at the **cold** timestamp (`cached.computed_at`), which
/// the window-keyed server maps to the same forecast the cold solve would
/// have produced.
pub(crate) fn lazy_adapt(
    ctx: &QueryCtx<'_>,
    engine: &mut SearchEngine,
    at_node: NodeId,
    rejoin_node: NodeId,
    now: SimTime,
    cached: &CachedSolution,
) -> LazyAdapted {
    // Re-interleave exact members and shadows into original pool order.
    let total = cached.components.len() + cached.shadows.len();
    let mut members: Vec<(Option<&ShadowComponent>, &Components)> = Vec::with_capacity(total);
    {
        let mut sh = cached.shadows.iter().peekable();
        let mut ex = cached.components.iter();
        for pool_pos in 0..u32::try_from(total).expect("pool fits u32") {
            if sh.peek().is_some_and(|s| s.pool_pos == pool_pos) {
                let s = sh.next().expect("peeked");
                members.push((Some(s), &s.comp));
            } else {
                members.push((None, ex.next().expect("pool positions cover the pool")));
            }
        }
    }

    let nodes: Vec<NodeId> = members.iter().map(|(_, c)| ctx.fleet.get(c.charger).node).collect();
    let threads = ctx.config.threads;
    let det = detour_batch(ctx, engine, at_node, rejoin_node, &nodes, false);

    // Refresh the derouting component for every reachable member —
    // operation-for-operation the eager `refresh_derouting` — keeping the
    // slots aligned with `members` so shadows stay identifiable.
    let refreshed = ec_exec::try_parallel_map(
        threads,
        &members,
        |_| (),
        |(), i, (_, comp)| {
            let (Some(e_fwd), Some(e_ret)) = (det.kwh_fwd[i], det.kwh_ret[i]) else {
                return Ok::<_, ec_types::EcError>(None); // unreachable from the new position
            };
            let (factor, d_q) = component_or_fallback(
                ctx.server.traffic_energy_forecast(det.class[i], now, comp.eta),
                ctx.config.degraded.traffic(),
            )?;
            let mut r = (*comp).clone();
            r.detour_kwh = Interval::point(e_fwd + e_ret) * factor;
            r.quality.d = d_q;
            Ok(Some(r))
        },
    );
    let Ok(slots) = refreshed else {
        return LazyAdapted::Abandon;
    };
    if slots.iter().flatten().any(|r: &Components| r.quality.d != ComponentQuality::Fresh) {
        return LazyAdapted::Abandon;
    }
    // Flatten to the reachable pool (pool order), remembering each
    // entry's member index, and normalise `D` over the whole pool.
    let mut reach: Vec<Components> = Vec::with_capacity(total);
    let mut reach_member: Vec<usize> = Vec::with_capacity(total);
    for (i, slot) in slots.into_iter().enumerate() {
        if let Some(c) = slot {
            reach.push(c);
            reach_member.push(i);
        }
    }
    normalize_derouting(&mut reach, ctx.norm.max_derouting_kwh);

    // Threshold from the exact members only — a subset of the full pool,
    // so it lower-bounds the full pool's k-th pessimistic score.
    let exact_lo: Vec<f64> = reach
        .iter()
        .zip(&reach_member)
        .filter(|&(_, &m)| members[m].0.is_none())
        .map(|(c, _)| ctx.config.weights.interval_score(c.l, c.a, c.d).lo())
        .collect();
    let threshold = kth_largest(&exact_lo, ctx.config.k, &mut Vec::new());

    // Decide materialisation per reachable shadow by re-bounding with the
    // refreshed `D` and the stored cold-time envelope.
    let mut picks: Vec<usize> = Vec::new(); // indices into `reach`
    for (r, c) in reach.iter().enumerate() {
        let Some(shadow) = members[reach_member[r]].0 else { continue };
        if ctx.config.weights.interval_score(c.l, shadow.a_env, c.d).hi() >= threshold {
            picks.push(r);
        }
    }
    // Materialise picked shadows at the cold timestamp: the window-keyed
    // server maps it to the same forecast window the cold solve used, so
    // the value is the one the unpruned path would have cached.
    let Ok(avail) = ec_exec::try_parallel_map(
        threads,
        &picks,
        |_| (),
        |(), _, &r| {
            let c = &reach[r];
            eval_availability(ctx, ctx.fleet.get(c.charger), cached.computed_at, c.eta)
        },
    ) else {
        return LazyAdapted::Abandon;
    };
    if avail.iter().any(|(_, q)| *q != ComponentQuality::Fresh) {
        return LazyAdapted::Abandon;
    }

    // Route each materialised value twice: into the refreshed output comp
    // and into a cold-time promotion entry for the cache.
    let mut promotions: Vec<(u32, Components)> = Vec::with_capacity(picks.len());
    let mut materialized: Vec<Option<(Interval, ComponentQuality)>> = vec![None; reach.len()];
    for (&r, (a, q)) in picks.iter().zip(avail) {
        materialized[r] = Some((a, q));
        let shadow = members[reach_member[r]].0.expect("picks are shadows");
        let mut cold = shadow.comp.clone();
        cold.a = a;
        cold.quality.a = q;
        promotions.push((shadow.pool_pos, cold));
    }

    // Output pool: exact members plus materialised shadows, pool order —
    // a subsequence of the eager refresh over the full cached pool.
    let mut comps: Vec<Components> = Vec::with_capacity(reach.len());
    for (r, mut c) in reach.into_iter().enumerate() {
        if members[reach_member[r]].0.is_none() {
            comps.push(c);
        } else if let Some((a, q)) = materialized[r] {
            c.a = a;
            c.quality.a = q;
            comps.push(c);
        }
    }
    let stats = PruneStats { exact_evals: picks.len() as u64, ..PruneStats::default() };
    LazyAdapted::Done { comps, promotions, stats }
}
